//! # systolizer
//!
//! A complete implementation of the systolizing compilation scheme of
//! Barnett & Lengauer, *A Systolizing Compilation Scheme* (ICPP 1991 /
//! LFCS report ECS-LFCS-91-134): from nested-loop source programs and
//! systolic array specifications to distributed-memory programs, with
//! code generation, a simulated target machine, and end-to-end
//! verification against sequential execution.
//!
//! ## Quickstart
//!
//! ```
//! use systolizer::{systolize_source, SystolizeOptions};
//!
//! let src = "
//!     program polyprod;
//!     size n;
//!     var a[0..n], b[0..n], c[0..2*n];
//!     for i = 0 <- 1 -> n
//!     for j = 0 <- 1 -> n {
//!       c[i+j] = c[i+j] + a[i] * b[j];
//!     }
//! ";
//! let sys = systolize_source(src, &SystolizeOptions::default()).unwrap();
//! // The derived distributed program, in the paper's notation:
//! let code = sys.paper_code();
//! assert!(code.contains("parfor"));
//! // Simulated execution matches the sequential semantics:
//! sys.verify(&[6], &["a", "b"], 42).unwrap();
//! ```
//!
//! The pipeline stages are re-exported: [`lang`] (parsing), [`ir`]
//! (source IR + sequential reference), [`synthesis`] (step/place
//! derivation), [`core`] (the compilation scheme), [`ast`] (code
//! generation), [`runtime`] + [`interp`] (the simulated machine).

pub mod cli;

pub use systolic_ast as ast;
pub use systolic_core as core;
pub use systolic_interp as interp;
pub use systolic_ir as ir;
pub use systolic_lang as lang;
pub use systolic_math as math;
pub use systolic_runtime as runtime;
pub use systolic_service as service;
pub use systolic_sim as sim;
pub use systolic_synthesis as synthesis;

use std::fmt;
use systolic_core::{CompileError, Options as CoreOptions, SystolicProgram};
use systolic_ir::{SourceProgram, StreamId};
use systolic_math::Env;
use systolic_runtime::{ChannelPolicy, RunStats};
use systolic_synthesis::SystolicArray;

/// How to obtain the spatial distribution.
#[derive(Clone, Debug, Default)]
pub enum PlaceChoice {
    /// Search for an optimal step and a compatible place automatically.
    #[default]
    Auto,
    /// Use the given projection direction (null space of `place`).
    Projection(Vec<i64>),
    /// Use an explicit array (step and place).
    Explicit(SystolicArray),
}

/// Options for the full pipeline.
#[derive(Clone, Debug)]
pub struct SystolizeOptions {
    pub place: PlaceChoice,
    /// Coefficient bound for the schedule search.
    pub step_bound: i64,
    /// Sample size for validation and schedule ranking.
    pub sample_size: i64,
    /// Loading & recovery vectors for stationary streams.
    pub loading_vectors: Vec<(usize, Vec<i64>)>,
}

impl Default for SystolizeOptions {
    fn default() -> SystolizeOptions {
        SystolizeOptions {
            place: PlaceChoice::Auto,
            step_bound: 2,
            sample_size: 4,
            loading_vectors: Vec::new(),
        }
    }
}

/// Pipeline failures.
#[derive(Debug)]
pub enum Error {
    Parse(systolic_lang::ParseError),
    /// No valid schedule/place within the search bound.
    NoArrayFound,
    Compile(CompileError),
    /// The compiled plan could not be lowered to process bytecode for the
    /// given host data (misaligned pipes, missing/short host arrays).
    Elaborate(systolic_interp::ElabError),
    /// Simulated and sequential executions disagree (should be
    /// unreachable for accepted inputs — surfaced for the test harness).
    Mismatch(String),
    Deadlock(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(e) => write!(f, "parse error: {e}"),
            Error::NoArrayFound => write!(f, "no valid systolic array within the search bound"),
            Error::Compile(e) => write!(f, "compilation failed: {e}"),
            Error::Elaborate(e) => write!(f, "elaboration failed: {e}"),
            Error::Mismatch(m) => write!(f, "equivalence failure: {m}"),
            Error::Deadlock(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for Error {}

/// The result of the full pipeline: source, array, and compiled plan.
pub struct Systolized {
    pub source: SourceProgram,
    pub array: SystolicArray,
    pub plan: SystolicProgram,
}

/// Parse source text and systolize it.
pub fn systolize_source(src: &str, opts: &SystolizeOptions) -> Result<Systolized, Error> {
    let program = systolic_lang::parse(src).map_err(Error::Parse)?;
    systolize(&program, opts)
}

/// Systolize an already-built IR program.
pub fn systolize(program: &SourceProgram, opts: &SystolizeOptions) -> Result<Systolized, Error> {
    // Validate the Appendix A envelope before synthesis: dependence
    // extraction assumes rank r-1 index maps.
    systolic_ir::validate(program, opts.sample_size.max(1))
        .map_err(|v| Error::Compile(CompileError::Source(v)))?;
    let array = match &opts.place {
        PlaceChoice::Explicit(a) => a.clone(),
        PlaceChoice::Projection(u) => {
            let step = systolic_synthesis::optimal_step(program, opts.step_bound, opts.sample_size)
                .ok_or(Error::NoArrayFound)?;
            SystolicArray::new(step, systolic_synthesis::place_from_projection(u))
        }
        PlaceChoice::Auto => {
            systolic_synthesis::derive_array(program, opts.step_bound, opts.sample_size)
                .ok_or(Error::NoArrayFound)?
        }
    };
    let mut core_opts = CoreOptions {
        sample_size: opts.sample_size,
        ..Default::default()
    };
    for (s, v) in &opts.loading_vectors {
        core_opts = core_opts.with_loading_vector(StreamId(*s), v.clone());
    }
    let plan = systolic_core::compile(program, &array, &core_opts).map_err(Error::Compile)?;
    Ok(Systolized {
        source: program.clone(),
        array,
        plan,
    })
}

impl Systolized {
    /// Bind the problem-size symbols, in declaration order.
    pub fn size_env(&self, sizes: &[i64]) -> Env {
        assert_eq!(sizes.len(), self.source.sizes.len(), "size arity mismatch");
        let mut env = Env::new();
        for (&v, &val) in self.source.sizes.iter().zip(sizes) {
            env.bind(v, val);
        }
        env
    }

    /// The derivation report (all symbolic quantities, paper-style).
    pub fn report(&self) -> String {
        systolic_core::report::render(&self.plan)
    }

    /// The generated program in the paper's abstract notation.
    pub fn paper_code(&self) -> String {
        systolic_ast::paper_style(&systolic_ast::lower(&self.plan))
    }

    /// The generated program, occam-like.
    pub fn occam_code(&self) -> String {
        systolic_ast::occam_style(&systolic_ast::lower(&self.plan))
    }

    /// The generated program, C-like.
    pub fn c_code(&self) -> String {
        systolic_ast::c_style(&systolic_ast::lower(&self.plan))
    }

    /// Run the systolic program on the cooperative simulator with the
    /// given host data; returns the recovered store and statistics.
    pub fn run(
        &self,
        sizes: &[i64],
        store: &systolic_ir::HostStore,
    ) -> Result<systolic_interp::SystolicRun, Error> {
        self.run_with(sizes, store, &systolic_interp::ElabOptions::default())
    }

    /// [`Systolized::run`] under explicit elaboration options (protocol
    /// variants: split propagation, merged host i/o, buffer ablations).
    pub fn run_with(
        &self,
        sizes: &[i64],
        store: &systolic_ir::HostStore,
        opts: &systolic_interp::ElabOptions,
    ) -> Result<systolic_interp::SystolicRun, Error> {
        let env = self.size_env(sizes);
        systolic_interp::run_plan(&self.plan, &env, store, ChannelPolicy::Rendezvous, opts).map_err(
            |e| match e {
                systolic_interp::ExecError::Elab(el) => Error::Elaborate(el),
                systolic_interp::ExecError::Run(r) => Error::Deadlock(r.to_string()),
                short @ systolic_interp::ExecError::ShortOutput { .. } => {
                    Error::Mismatch(short.to_string())
                }
            },
        )
    }

    /// Verify observational equivalence with the sequential execution on
    /// seeded random inputs; returns the run statistics.
    pub fn verify(&self, sizes: &[i64], inputs: &[&str], seed: u64) -> Result<RunStats, Error> {
        self.verify_with(
            sizes,
            inputs,
            seed,
            &systolic_interp::ElabOptions::default(),
        )
    }

    /// [`Systolized::verify`] under explicit elaboration options.
    pub fn verify_with(
        &self,
        sizes: &[i64],
        inputs: &[&str],
        seed: u64,
        opts: &systolic_interp::ElabOptions,
    ) -> Result<RunStats, Error> {
        let env = self.size_env(sizes);
        systolic_interp::verify_equivalence_with(&self.plan, &env, inputs, seed, opts)
            .map_err(Error::Mismatch)
    }

    /// [`Systolized::verify_with`] through the steady-state batching gate
    /// (see `systolic_runtime::batch`), the wavefront executor (see
    /// `systolic_runtime::wavefront`), and the ProcIR optimizer (see
    /// `systolic_runtime::opt`): identical experiment and result; the
    /// returned flags say whether the batched fast path and the wavefront
    /// executor actually engaged, and the report (if any) describes what
    /// the optimizer fused. `--opt off` (`OptMode::Off`) is the exactness
    /// oracle: stats then carry the unfused message/step counts.
    #[allow(clippy::too_many_arguments)]
    pub fn verify_batch(
        &self,
        sizes: &[i64],
        inputs: &[&str],
        seed: u64,
        opts: &systolic_interp::ElabOptions,
        batch: systolic_interp::BatchMode,
        opt: systolic_interp::OptMode,
        wavefront: systolic_interp::WavefrontMode,
    ) -> Result<(RunStats, bool, bool, Option<systolic_interp::OptReport>), Error> {
        let (stats, batched, wf, opt, _) = self.verify_batch_kernel(
            sizes,
            inputs,
            seed,
            opts,
            batch,
            opt,
            wavefront,
            systolic_interp::KernelMode::Auto,
        )?;
        Ok((stats, batched, wf, opt))
    }

    /// [`Systolized::verify_batch`] with an explicit
    /// [`KernelMode`](systolic_interp::KernelMode) (`--kernel auto|off`)
    /// and the kernel engagement report in the return — `None` when the
    /// wavefront executor did not run.
    #[allow(clippy::too_many_arguments, clippy::type_complexity)]
    pub fn verify_batch_kernel(
        &self,
        sizes: &[i64],
        inputs: &[&str],
        seed: u64,
        opts: &systolic_interp::ElabOptions,
        batch: systolic_interp::BatchMode,
        opt: systolic_interp::OptMode,
        wavefront: systolic_interp::WavefrontMode,
        kernel: systolic_interp::KernelMode,
    ) -> Result<
        (
            RunStats,
            bool,
            bool,
            Option<systolic_interp::OptReport>,
            Option<systolic_interp::KernelReport>,
        ),
        Error,
    > {
        let env = self.size_env(sizes);
        let mut store = systolic_ir::HostStore::allocate(&self.source, &env);
        for (i, name) in inputs.iter().enumerate() {
            store.fill_random(name, seed.wrapping_add(i as u64), -9, 9);
        }
        let mut expected = store.clone();
        systolic_ir::seq::run(&self.source, &env, &mut expected);
        let run = systolic_interp::run_plan_batch_kernel(
            &self.plan,
            &env,
            &store,
            ChannelPolicy::Rendezvous,
            opts,
            batch,
            opt,
            wavefront,
            kernel,
            None,
            &[],
        )
        .map_err(|e| Error::Mismatch(e.to_string()))?;
        for name in expected.names() {
            if run.store.get(name) != expected.get(name) {
                return Err(Error::Mismatch(format!(
                    "variable {name} differs between sequential and systolic execution"
                )));
            }
        }
        Ok((run.stats, run.batched, run.wavefront, run.opt, run.kernel))
    }

    /// The schedule's makespan at a problem size (`max step - min step + 1`).
    pub fn makespan(&self, sizes: &[i64]) -> i64 {
        self.array.makespan(&self.source, &self.size_env(sizes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const POLYPROD: &str = "
        program polyprod;
        size n;
        var a[0..n], b[0..n], c[0..2*n];
        for i = 0 <- 1 -> n
        for j = 0 <- 1 -> n {
          c[i+j] = c[i+j] + a[i] * b[j];
        }
    ";

    #[test]
    fn auto_pipeline() {
        let sys = systolize_source(POLYPROD, &SystolizeOptions::default()).unwrap();
        sys.verify(&[5], &["a", "b"], 1).unwrap();
        assert!(sys.report().contains("increment"));
        assert!(sys.paper_code().contains("parfor"));
        assert!(sys.occam_code().contains("PAR"));
        assert!(sys.c_code().contains("PARFOR"));
    }

    #[test]
    fn projection_choice_reproduces_paper_design() {
        let opts = SystolizeOptions {
            place: PlaceChoice::Projection(vec![1, -1]),
            ..Default::default()
        };
        let sys = systolize_source(POLYPROD, &opts).unwrap();
        // place i + j: PS_max = 2n.
        assert_eq!(
            systolic_math::affine::display_point(&sys.plan.ps_max, &sys.plan.vars),
            "2*n"
        );
        sys.verify(&[4], &["a", "b"], 9).unwrap();
    }

    #[test]
    fn parse_errors_surface() {
        match systolize_source("program x size n;", &SystolizeOptions::default()) {
            Err(Error::Parse(_)) => {}
            other => panic!("expected parse error, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn makespan_formula() {
        let sys = systolize_source(POLYPROD, &SystolizeOptions::default()).unwrap();
        // Any optimal schedule for polyprod has makespan 2n + something
        // linear; just check monotone linear growth.
        let m4 = sys.makespan(&[4]);
        let m8 = sys.makespan(&[8]);
        assert!(m8 > m4);
        assert_eq!(m8 - m4, sys.makespan(&[12]) - m8, "linear in n");
    }
}
