//! The `systolizer` command-line compiler driver.
//!
//! ```text
//! systolizer compile <file> [--place auto|proj:<c,c,..>] [--emit paper|occam|c|report]
//! systolizer run     <file> --sizes <n[,m..]> [--seed S] [--protocol paper|split] [--merge-io yes|no]
//!                           [--batch auto|off] [--metrics PATH] [--trace-out PATH]
//! systolizer verify  <file> --sizes <n[,m..]> [--seed S] [--protocol paper|split] [--merge-io yes|no]
//!                           [--batch auto|off]
//! systolizer explore <file> [--bound B] [--sample N]
//! systolizer explore <file> --schedules N --sizes <n[,m..]> [--seed S] [--out PATH]
//! systolizer replay  --schedule <file>
//! systolizer serve   [--addr HOST:PORT] [--workers N] [--queue-cap N] [--max-size N] [--deadline-ms MS]
//! ```
//!
//! `explore --schedules N` is deterministic schedule exploration: the
//! compiled program is run under N seeds × 3 adversarial schedule
//! policies; any divergence from the FIFO baseline is shrunk to a
//! minimal decision-log prefix and written as a `systolic-schedule-v1`
//! JSON counterexample that `replay --schedule` reproduces. See
//! `docs/testing.md`.
//!
//! `--metrics` writes a `systolic-metrics-v1` JSON report (per-process op
//! and phase counts, per-channel waits, makespan attribution);
//! `--trace-out` writes a Chrome `trace_event` JSON viewable in
//! <https://ui.perfetto.dev>. See `docs/observability.md`.
//!
//! The input is a source program in the front-end syntax (Sec. 3.1 made
//! concrete); see `programs/` and `README.md`.

use std::process::ExitCode;
use systolizer::cli;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  \
         systolizer compile <file> [--place auto|proj:C,C,..] [--emit paper|occam|c|report]\n  \
         systolizer run     <file> --sizes N[,M..] [--seed S] [--protocol paper|split] [--merge-io yes|no]\n  \
                            [--batch auto|off] [--metrics PATH] [--trace-out PATH]\n  \
         systolizer verify  <file> --sizes N[,M..] [--seed S] [--protocol paper|split] [--merge-io yes|no]\n  \
                            [--batch auto|off]\n  \
         systolizer describe <file> --sizes N[,M..]\n  \
         systolizer explore <file> [--bound B] [--sample N]\n  \
         systolizer explore <file> --schedules N --sizes N[,M..] [--seed S] [--out PATH]\n  \
         systolizer replay  --schedule <file>\n  \
         systolizer serve   [--addr HOST:PORT] [--workers N] [--queue-cap N] [--max-size N] [--deadline-ms MS]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(inv) = cli::parse_args(&raw) else {
        return usage();
    };
    if inv.command == "serve" {
        // The service reads no file: programs arrive over the wire
        // (`docs/service.md`). Runs until killed.
        return match cli::start_service(&inv) {
            Ok((service, handle)) => {
                println!(
                    "systolic-service-v1 listening on {} ({} workers, queue {})",
                    handle.addr, service.pool.n_workers, service.pool.queue_cap
                );
                loop {
                    std::thread::sleep(std::time::Duration::from_secs(3600));
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let src = match std::fs::read_to_string(&inv.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", inv.file);
            return ExitCode::FAILURE;
        }
    };
    match cli::execute(&inv, &src) {
        Ok(out) => {
            println!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
