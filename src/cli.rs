//! The command-line driver's argument handling and command execution,
//! factored out of `main` for testability.

use crate::{systolize_source, PlaceChoice, SystolizeOptions};
use systolic_interp::ElabOptions;

/// Parsed command-line invocation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Invocation {
    pub command: String,
    pub file: String,
    pub flags: Vec<(String, String)>,
}

/// Parse raw arguments (after the binary name). `None` on malformed
/// input (flag without a value, missing command/file). `replay` takes no
/// positional: its `--schedule <file>` value *is* the file to read.
/// `serve` takes no file at all — the service compiles programs sent
/// over the wire.
pub fn parse_args(raw: &[String]) -> Option<Invocation> {
    let mut it = raw.iter();
    let command = it.next()?.clone();
    let mut file = None;
    let mut flags = Vec::new();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            flags.push((name.to_string(), it.next()?.clone()));
        } else if file.is_none() {
            file = Some(a.clone());
        } else {
            return None; // extra positional argument
        }
    }
    let file = file
        .or_else(|| {
            flags
                .iter()
                .find(|(n, _)| n == "schedule")
                .map(|(_, v)| v.clone())
        })
        .or_else(|| (command == "serve").then(String::new))?;
    Some(Invocation {
        command,
        file,
        flags,
    })
}

impl Invocation {
    pub fn flag(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Parse `N[,M..]` size lists.
pub fn parse_sizes(spec: &str) -> Option<Vec<i64>> {
    spec.split(',').map(|p| p.trim().parse().ok()).collect()
}

/// Build pipeline options from flags.
pub fn build_options(inv: &Invocation) -> Option<SystolizeOptions> {
    let mut opts = SystolizeOptions::default();
    if let Some(p) = inv.flag("place") {
        opts.place = if p == "auto" {
            PlaceChoice::Auto
        } else if let Some(spec) = p.strip_prefix("proj:") {
            PlaceChoice::Projection(parse_sizes(spec)?)
        } else {
            return None;
        };
    }
    if let Some(b) = inv.flag("bound") {
        opts.step_bound = b.parse().ok()?;
    }
    if let Some(s) = inv.flag("sample") {
        opts.sample_size = s.parse().ok()?;
    }
    Some(opts)
}

/// Build elaboration (protocol) options from flags: `--protocol
/// paper|split`, `--merge-io yes|no`.
pub fn build_elab_options(inv: &Invocation) -> Option<ElabOptions> {
    let mut opts = ElabOptions::default();
    match inv.flag("protocol") {
        None | Some("paper") => {}
        Some("split") => opts.split_propagation = true,
        Some(_) => return None,
    }
    match inv.flag("merge-io") {
        None | Some("no") => {}
        Some("yes") => opts.merge_io = true,
        Some(_) => return None,
    }
    Some(opts)
}

/// Parse `--batch auto|off` (default `auto`): whether the steady-state
/// batching fast path may engage on eligible runs (see
/// `docs/scheduler.md`). `None` on any other value.
pub fn build_batch_mode(inv: &Invocation) -> Option<systolic_interp::BatchMode> {
    match inv.flag("batch") {
        None | Some("auto") => Some(systolic_interp::BatchMode::Auto),
        Some("off") => Some(systolic_interp::BatchMode::Off),
        Some(_) => None,
    }
}

/// Parse `--opt auto|off` (default `auto`): whether the ProcIR optimizer
/// (relay-chain fusion into delay rings, see `docs/process-ir.md`) may
/// rewrite the module before a batched run. `--opt off` is the exactness
/// oracle: stats keep the unfused message/step counts. `None` on any
/// other value.
pub fn build_opt_mode(inv: &Invocation) -> Option<systolic_interp::OptMode> {
    match inv.flag("opt") {
        None | Some("auto") => Some(systolic_interp::OptMode::Auto),
        Some("off") => Some(systolic_interp::OptMode::Off),
        Some(_) => None,
    }
}

/// Parse `--wavefront auto|off|par` (default `auto`): whether the
/// wavefront executor (topologically staged chunk sweeps, see
/// `docs/wavefront.md`) may replace the batched macro-sweep on eligible
/// runs, and whether its chunks run on scoped threads (`par`). The
/// fallback ladder is wavefront → batched → plain; stores and logical
/// message/step counts are invariant across all rungs. `None` on any
/// other value.
pub fn build_wavefront_mode(inv: &Invocation) -> Option<systolic_interp::WavefrontMode> {
    match inv.flag("wavefront") {
        None | Some("auto") => Some(systolic_interp::WavefrontMode::Auto),
        Some("off") => Some(systolic_interp::WavefrontMode::Off),
        Some("par") => Some(systolic_interp::WavefrontMode::Par),
        Some(_) => None,
    }
}

/// Parse `--kernel auto|off` (default `auto`): whether wavefront runs may
/// execute eligible chunks through the compiled struct-of-arrays kernel
/// (see `docs/kernels.md`) instead of scalar macro-steps. Stores and
/// logical message/step counts are invariant either way; only wall clock
/// changes. `None` on any other value.
pub fn build_kernel_mode(inv: &Invocation) -> Option<systolic_interp::KernelMode> {
    match inv.flag("kernel") {
        None | Some("auto") => Some(systolic_interp::KernelMode::Auto),
        Some("off") => Some(systolic_interp::KernelMode::Off),
        Some(_) => None,
    }
}

/// Execute an invocation; returns the text to print, or an error message.
pub fn execute(inv: &Invocation, src: &str) -> Result<String, String> {
    match inv.command.as_str() {
        "compile" => {
            let opts = build_options(inv).ok_or("bad options")?;
            let sys = systolize_source(src, &opts).map_err(|e| e.to_string())?;
            let emit = inv.flag("emit").unwrap_or("paper");
            match emit {
                "paper" => Ok(sys.paper_code()),
                "occam" => Ok(sys.occam_code()),
                "c" => Ok(sys.c_code()),
                "report" => Ok(sys.report()),
                "rust" => {
                    // The runnable back end is concrete: it needs a size.
                    let sizes = inv
                        .flag("sizes")
                        .and_then(parse_sizes)
                        .ok_or("--emit rust requires --sizes N[,M..]")?;
                    if sizes.len() != sys.source.sizes.len() {
                        return Err("size arity mismatch".into());
                    }
                    let seed: u64 = inv.flag("seed").and_then(|s| s.parse().ok()).unwrap_or(42);
                    let env = sys.size_env(&sizes);
                    // `--opt auto` routes through the delay-ring back
                    // end; `off` (the default here — the generated
                    // program is the paper's hand translation) does not.
                    match inv.flag("opt") {
                        None | Some("off") => Ok(systolic_interp::rustgen::generate_rust(
                            &sys.plan, &env, seed,
                        )),
                        Some("auto") => Ok(systolic_interp::rustgen::generate_rust_opt(
                            &sys.plan, &env, seed,
                        )),
                        Some(_) => Err("bad --opt value (auto|off)".into()),
                    }
                }
                other => Err(format!("unknown --emit {other}")),
            }
        }
        "run" | "verify" => {
            let opts = build_options(inv).ok_or("bad options")?;
            let elab = build_elab_options(inv).ok_or("bad protocol options")?;
            let sizes = inv
                .flag("sizes")
                .and_then(parse_sizes)
                .ok_or("--sizes N[,M..] is required")?;
            let seed: u64 = inv.flag("seed").and_then(|s| s.parse().ok()).unwrap_or(42);
            let sys = systolize_source(src, &opts).map_err(|e| e.to_string())?;
            if sizes.len() != sys.source.sizes.len() {
                return Err(format!(
                    "program has {} size parameter(s), {} given",
                    sys.source.sizes.len(),
                    sizes.len()
                ));
            }
            let inputs: Vec<String> = sys
                .source
                .variables
                .iter()
                .map(|v| v.name.clone())
                .collect();
            let input_refs: Vec<&str> = inputs.iter().map(|s| s.as_str()).collect();
            let batch = build_batch_mode(inv).ok_or("bad --batch value (auto|off)")?;
            let opt = build_opt_mode(inv).ok_or("bad --opt value (auto|off)")?;
            let wavefront =
                build_wavefront_mode(inv).ok_or("bad --wavefront value (auto|off|par)")?;
            let kernel = build_kernel_mode(inv).ok_or("bad --kernel value (auto|off)")?;
            let (stats, batched, wavefronted, opt_report, kernel_report) = sys
                .verify_batch_kernel(&sizes, &input_refs, seed, &elab, batch, opt, wavefront, kernel)
                .map_err(|e| format!("FAILED: {e}"))?;
            // Kernels only show in the marker when they actually fused
            // waves — compiled-but-idle (or `--kernel off`) stays silent.
            let kerneled = kernel_report.as_ref().is_some_and(|k| k.waves_fused > 0);
            let mut out = format!(
                "OK: {} processes, {} scheduler rounds, {} logical messages, {} steps{}; \
                 systolic result == sequential result",
                stats.processes,
                stats.rounds,
                stats.messages,
                stats.steps,
                match (wavefronted, kerneled, batched, &opt_report) {
                    (true, true, _, Some(_)) => " [wavefront+kernels+optimized]",
                    (true, true, _, None) => " [wavefront+kernels]",
                    (true, false, _, Some(_)) => " [wavefront+optimized]",
                    (true, false, _, None) => " [wavefront]",
                    (false, _, true, Some(_)) => " [batched+optimized]",
                    (false, _, true, None) => " [batched]",
                    (false, _, false, _) => "",
                }
            );
            if let Some(report) = &opt_report {
                out.push_str(&format!("\noptimizer: {}", report.summary()));
            }
            if let Some(path) = inv.flag("opt-report") {
                let base = opt_report
                    .as_ref()
                    .map(systolic_interp::OptReport::to_json)
                    .unwrap_or_else(|| "{\n  \"schema\": \"systolic-opt-v1\"\n}\n".to_string());
                let json = splice_wavefront_section(&base, &sys, &sizes, seed, &input_refs, &elab)?;
                std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
                out.push_str(&format!("\noptimizer report: {path}"));
            }
            // Observability artifacts: re-run the same seeded problem
            // with recorders attached and write the requested files.
            if inv.flag("metrics").is_some() || inv.flag("trace-out").is_some() {
                let env = sys.size_env(&sizes);
                let mut store = systolic_ir::HostStore::allocate(&sys.source, &env);
                for (i, name) in input_refs.iter().enumerate() {
                    store.fill_random(name, seed.wrapping_add(i as u64), -9, 9);
                }
                let obs = systolic_interp::observe_plan(
                    &sys.plan,
                    &env,
                    &store,
                    systolic_runtime::ChannelPolicy::Rendezvous,
                    &elab,
                )
                .map_err(|e| format!("FAILED: {e}"))?;
                if let Some(path) = inv.flag("metrics") {
                    std::fs::write(path, obs.metrics_json())
                        .map_err(|e| format!("cannot write {path}: {e}"))?;
                    out.push_str(&format!("\nmetrics report: {path}"));
                }
                if let Some(path) = inv.flag("trace-out") {
                    std::fs::write(path, &obs.perfetto_json)
                        .map_err(|e| format!("cannot write {path}: {e}"))?;
                    out.push_str(&format!(
                        "\nperfetto trace: {path} (open in ui.perfetto.dev)"
                    ));
                }
            }
            Ok(out)
        }
        "describe" => {
            let opts = build_options(inv).ok_or("bad options")?;
            let sizes = inv
                .flag("sizes")
                .and_then(parse_sizes)
                .ok_or("--sizes N[,M..] is required")?;
            let sys = systolize_source(src, &opts).map_err(|e| e.to_string())?;
            if sizes.len() != sys.source.sizes.len() {
                return Err("size arity mismatch".into());
            }
            let env = sys.size_env(&sizes);
            let mut out = systolic_core::report::render_layout(&sys.plan, &env);
            out.push('\n');
            out.push_str(&systolic_interp::describe(&sys.plan, &env));
            Ok(out)
        }
        "explore" => {
            // With --schedules N this is deterministic schedule
            // exploration (DST) of the compiled program; without it, the
            // historical design-space exploration. `--batch` is accepted
            // for interface uniformity but DST runs always take the
            // unbatched engine: adversarial schedule policies and the
            // round recorder both close the batching gate (and with it
            // the optimizer and the wavefront executor, which ride the
            // same gate).
            let _ = build_batch_mode(inv).ok_or("bad --batch value (auto|off)")?;
            let _ = build_opt_mode(inv).ok_or("bad --opt value (auto|off)")?;
            let _ = build_wavefront_mode(inv).ok_or("bad --wavefront value (auto|off|par)")?;
            let _ = build_kernel_mode(inv).ok_or("bad --kernel value (auto|off)")?;
            if let Some(n) = inv.flag("schedules") {
                let n: u64 = n.parse().map_err(|_| "--schedules needs a number")?;
                return explore_schedules(inv, src, n);
            }
            if let Some(spec) = inv.flag("sweep-sizes") {
                return explore_sweep(inv, src, spec);
            }
            let bound: i64 = inv.flag("bound").and_then(|s| s.parse().ok()).unwrap_or(2);
            let sample: i64 = inv.flag("sample").and_then(|s| s.parse().ok()).unwrap_or(6);
            let program = systolic_lang::parse(src).map_err(|e| e.to_string())?;
            let designs = systolic_synthesis::explore(&program, bound, sample);
            Ok(systolic_synthesis::explore::render_table(
                &program, &designs, 20,
            ))
        }
        "replay" => {
            // `src` is the schedule file itself (parse_args routed the
            // --schedule value into `inv.file`).
            let file = systolic_sim::ScheduleFile::from_json(src)?;
            let subject = subject_from_schedule(&file)?;
            let report = systolic_sim::replay(subject.as_ref(), &file)?;
            if report.reproduced {
                Ok(format!(
                    "REPRODUCED: design {} diverges from the FIFO baseline after replaying \
                     {} recorded round(s)\n{}",
                    file.design,
                    report.rounds_replayed,
                    report.reason.unwrap_or_default()
                ))
            } else {
                Ok(format!(
                    "did not reproduce: design {} matched the FIFO baseline under the \
                     recorded schedule ({} round(s))",
                    file.design, report.rounds_replayed
                ))
            }
        }
        other => Err(format!("unknown command {other}")),
    }
}

/// Splice a `"wavefront"` section into an optimizer-report JSON document:
/// whether the wavefront executor can take this module and, when it (or
/// any channel) is disqualified, the per-channel ineligibility reasons
/// from `systolic_interp::channel_diagnostics`. The base document's own
/// fields are untouched, so `OptReport::from_json` round-trips through
/// the written file exactly as before.
fn splice_wavefront_section(
    base: &str,
    sys: &crate::Systolized,
    sizes: &[i64],
    seed: u64,
    inputs: &[&str],
    elab: &ElabOptions,
) -> Result<String, String> {
    use std::fmt::Write as _;
    let env = sys.size_env(sizes);
    let mut store = systolic_ir::HostStore::allocate(&sys.source, &env);
    for (i, name) in inputs.iter().enumerate() {
        store.fill_random(name, seed.wrapping_add(i as u64), -9, 9);
    }
    let cm = systolic_interp::ModuleStore::global()
        .module(&sys.plan, &env, &store, elab)
        .map_err(|e| e.to_string())?;
    let wp = cm.wavefront_plan();
    let escape = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let mut sec = String::new();
    match wp.reject_reason() {
        None => {
            let _ = write!(
                sec,
                "  \"wavefront\": {{\n    \"eligible\": true,\n    \"waves\": {},\n    \
                 \"chunks\": {},\n    \"max_ring_capacity\": {},\n",
                wp.n_waves(),
                wp.n_chunks(),
                wp.max_capacity()
            );
        }
        Some(r) => {
            let _ = write!(
                sec,
                "  \"wavefront\": {{\n    \"eligible\": false,\n    \"reason\": \"{}\",\n",
                escape(r)
            );
        }
    }
    sec.push_str("    \"channels\": [");
    let mut first = true;
    for (c, why) in systolic_interp::channel_diagnostics(&cm.elab.module)
        .iter()
        .enumerate()
    {
        if let Some(why) = why {
            let _ = write!(
                sec,
                "{}\n      {{ \"chan\": {c}, \"reason\": \"{}\" }}",
                if first { "" } else { "," },
                escape(why)
            );
            first = false;
        }
    }
    sec.push_str(if first { "]\n  }" } else { "\n    ]\n  }" });
    let stem = base
        .trim_end()
        .strip_suffix('}')
        .ok_or("optimizer report JSON ends with its root object brace")?
        .trim_end()
        .to_string();
    Ok(format!("{stem},\n{sec}\n}}\n"))
}

/// DST mode of `explore`: sweep the adversary-policy seed matrix over
/// the compiled source program; on divergence, write the shrunk
/// counterexample schedule to `--out` (default `counterexample.json`).
fn explore_schedules(inv: &Invocation, src: &str, n_seeds: u64) -> Result<String, String> {
    let opts = build_options(inv).ok_or("bad options")?;
    let sizes = inv
        .flag("sizes")
        .and_then(parse_sizes)
        .ok_or("--sizes N[,M..] is required with --schedules")?;
    let seed: u64 = inv.flag("seed").and_then(|s| s.parse().ok()).unwrap_or(42);
    let sys = systolize_source(src, &opts).map_err(|e| e.to_string())?;
    if sizes.len() != sys.source.sizes.len() {
        return Err("size arity mismatch".into());
    }
    let inputs: Vec<String> = sys
        .source
        .variables
        .iter()
        .map(|v| v.name.clone())
        .collect();
    let input_refs: Vec<&str> = inputs.iter().map(|s| s.as_str()).collect();
    let subject = systolic_sim::PlanSubject::from_plan(
        "source",
        Some(src.to_string()),
        &sys.plan,
        &sizes,
        &input_refs,
        seed,
    )?;
    let cfg = systolic_sim::ExploreConfig::matrix(n_seeds);
    let report = systolic_sim::explore(&subject, &cfg)?;
    match report.counterexample {
        None => Ok(format!(
            "schedule-independent: {} adversarial schedules ({} policies x {} seeds) \
             all matched the FIFO baseline",
            report.runs,
            cfg.policies.len(),
            cfg.seeds.len()
        )),
        Some(ce) => {
            let path = inv.flag("out").unwrap_or("counterexample.json");
            std::fs::write(path, ce.schedule.to_json())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            Err(format!(
                "SCHEDULE DEPENDENCE under {}:{} — {}\nshrunk to {} of {} recorded round(s); \
                 replay with: systolic replay --schedule {path}",
                ce.policy,
                ce.seed,
                ce.reason,
                ce.schedule.log.rounds.len(),
                ce.full_rounds
            ))
        }
    }
}

/// Size-sweep mode of `explore`: run the compiled program at every size
/// in `LO:HI` through the module store — the skeleton compiles once,
/// each size pays only instantiation — and attribute wall time to
/// elaboration vs simulation per size. The sweep demonstrates the
/// two-phase elaborator's contract: across a whole size range the
/// elaboration column stays a small fraction of the simulation column.
fn explore_sweep(inv: &Invocation, src: &str, spec: &str) -> Result<String, String> {
    use std::fmt::Write as _;
    use std::time::Instant;
    let bad = "--sweep-sizes needs LO:HI with 1 <= LO <= HI";
    let (lo, hi) = spec.split_once(':').ok_or(bad)?;
    let lo: i64 = lo.trim().parse().map_err(|_| bad)?;
    let hi: i64 = hi.trim().parse().map_err(|_| bad)?;
    if lo < 1 || hi < lo {
        return Err(bad.into());
    }
    let opts = build_options(inv).ok_or("bad options")?;
    let seed: u64 = inv.flag("seed").and_then(|s| s.parse().ok()).unwrap_or(42);
    let sys = systolize_source(src, &opts).map_err(|e| e.to_string())?;
    if sys.source.sizes.len() != 1 {
        return Err("--sweep-sizes sweeps a single size parameter".into());
    }
    let inputs: Vec<String> = sys
        .source
        .variables
        .iter()
        .map(|v| v.name.clone())
        .collect();
    let ms = systolic_interp::ModuleStore::global();
    let before = ms.stats();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "size sweep {lo}..{hi}: one skeleton, per-size instantiation"
    );
    let _ = writeln!(
        out,
        "{:>6} {:>12} {:>12} {:>10} {:>12}",
        "n", "elab_us", "sim_us", "rounds", "messages"
    );
    let (mut elab_total, mut sim_total) = (0u128, 0u128);
    for n in lo..=hi {
        let env = sys.size_env(&[n]);
        let mut store = systolic_ir::HostStore::allocate(&sys.source, &env);
        for (i, name) in inputs.iter().enumerate() {
            store.fill_random(name, seed.wrapping_add(i as u64), -9, 9);
        }
        let t = Instant::now();
        ms.module(&sys.plan, &env, &store, &ElabOptions::default())
            .map_err(|e| format!("n={n}: {e}"))?;
        let elab_us = t.elapsed().as_micros();
        let t = Instant::now();
        let run = systolic_interp::run_plan(
            &sys.plan,
            &env,
            &store,
            systolic_runtime::ChannelPolicy::Rendezvous,
            &ElabOptions::default(),
        )
        .map_err(|e| format!("n={n}: {e}"))?;
        let sim_us = t.elapsed().as_micros();
        elab_total += elab_us;
        sim_total += sim_us;
        let _ = writeln!(
            out,
            "{:>6} {:>12} {:>12} {:>10} {:>12}",
            n, elab_us, sim_us, run.stats.rounds, run.stats.messages
        );
    }
    let after = ms.stats();
    let skeleton_builds = after.skeleton_misses - before.skeleton_misses;
    let sizes = (hi - lo + 1) as u128;
    let pct = (sim_total * 100)
        .checked_div(elab_total + sim_total)
        .unwrap_or(100);
    let _ = writeln!(
        out,
        "totals: {sizes} sizes, {skeleton_builds} skeleton build(s), \
         elaboration {elab_total}us, simulation {sim_total}us ({pct}% simulation)"
    );
    let _ = writeln!(out, "cache: {}", after.to_json());
    Ok(out)
}

/// Resolve a schedule file to its subject: embedded-source designs are
/// recompiled here (the CLI owns the front end); registry designs and
/// the race-sink builtin resolve inside `systolic-sim`.
fn subject_from_schedule(
    file: &systolic_sim::ScheduleFile,
) -> Result<Box<dyn systolic_sim::DstSubject>, String> {
    if file.design == "source" {
        let src = file
            .source
            .as_ref()
            .ok_or("schedule file has design \"source\" but no embedded program text")?;
        let sys = systolize_source(src, &SystolizeOptions::default()).map_err(|e| e.to_string())?;
        let inputs: Vec<String> = sys
            .source
            .variables
            .iter()
            .map(|v| v.name.clone())
            .collect();
        let input_refs: Vec<&str> = inputs.iter().map(|s| s.as_str()).collect();
        Ok(Box::new(systolic_sim::PlanSubject::from_plan(
            "source",
            Some(src.clone()),
            &sys.plan,
            &file.sizes,
            &input_refs,
            file.input_seed,
        )?))
    } else {
        systolic_sim::subject_for(&file.design, &file.sizes, file.input_seed)
    }
}

/// Build the service configuration for `serve` from flags:
/// `--workers N`, `--queue-cap N`, `--max-size N`, `--deadline-ms MS`.
/// `None` on unparseable values.
pub fn build_service_config(inv: &Invocation) -> Option<systolic_service::ServiceConfig> {
    let mut cfg = systolic_service::ServiceConfig::default();
    if let Some(w) = inv.flag("workers") {
        cfg.workers = w.parse().ok().filter(|&w: &usize| w >= 1)?;
    }
    if let Some(q) = inv.flag("queue-cap") {
        cfg.queue_cap = q.parse().ok().filter(|&q: &usize| q >= 1)?;
    }
    if let Some(m) = inv.flag("max-size") {
        cfg.max_size = m.parse().ok().filter(|&m: &i64| m >= 1)?;
    }
    if let Some(d) = inv.flag("deadline-ms") {
        cfg.default_deadline_ms = d.parse().ok().filter(|&d: &u64| d >= 1)?;
    }
    Some(cfg)
}

/// Boot the simulation service (`serve` command): bind `--addr`
/// (default `127.0.0.1:8077`), print the bound address, return the
/// running server. `main` blocks on the handle; tests shut it down.
pub fn start_service(
    inv: &Invocation,
) -> Result<(std::sync::Arc<systolic_service::Service>, systolic_service::http::ServerHandle), String>
{
    let cfg = build_service_config(inv)
        .ok_or("bad serve flags (--workers/--queue-cap/--max-size/--deadline-ms take positive integers)")?;
    let addr = inv.flag("addr").unwrap_or("127.0.0.1:8077");
    let listener = std::net::TcpListener::bind(addr)
        .map_err(|e| format!("cannot bind {addr}: {e}"))?;
    let service = systolic_service::Service::new(cfg);
    let handle = systolic_service::http::serve(std::sync::Arc::clone(&service), listener)
        .map_err(|e| format!("cannot serve: {e}"))?;
    Ok((service, handle))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "
        program p;
        size n;
        var a[0..n], b[0..n], c[0..2*n];
        for i = 0 <- 1 -> n
        for j = 0 <- 1 -> n {
          c[i+j] = c[i+j] + a[i] * b[j];
        }
    ";

    fn args(raw: &[&str]) -> Vec<String> {
        raw.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_flags_and_positionals() {
        let inv = parse_args(&args(&["verify", "f.sys", "--sizes", "4", "--seed", "9"])).unwrap();
        assert_eq!(inv.command, "verify");
        assert_eq!(inv.file, "f.sys");
        assert_eq!(inv.flag("sizes"), Some("4"));
        assert_eq!(inv.flag("seed"), Some("9"));
        assert_eq!(inv.flag("nope"), None);
    }

    #[test]
    fn rejects_malformed_args() {
        assert!(parse_args(&args(&["compile"])).is_none(), "missing file");
        assert!(
            parse_args(&args(&["compile", "f", "--emit"])).is_none(),
            "flag w/o value"
        );
        assert!(
            parse_args(&args(&["compile", "f", "g"])).is_none(),
            "extra positional"
        );
    }

    #[test]
    fn sizes_parsing() {
        assert_eq!(parse_sizes("4"), Some(vec![4]));
        assert_eq!(parse_sizes("4, 7"), Some(vec![4, 7]));
        assert_eq!(parse_sizes("x"), None);
    }

    #[test]
    fn protocol_flags() {
        let inv = parse_args(&args(&[
            "verify",
            "f",
            "--sizes",
            "3",
            "--protocol",
            "split",
            "--merge-io",
            "yes",
        ]))
        .unwrap();
        let elab = build_elab_options(&inv).unwrap();
        assert!(elab.split_propagation);
        assert!(elab.merge_io);
        let inv = parse_args(&args(&[
            "verify",
            "f",
            "--protocol",
            "bogus",
            "--sizes",
            "3",
        ]))
        .unwrap();
        assert!(build_elab_options(&inv).is_none());
    }

    #[test]
    fn execute_verify_with_split_protocol() {
        let inv = parse_args(&args(&[
            "verify",
            "f",
            "--sizes",
            "4",
            "--protocol",
            "split",
        ]))
        .unwrap();
        let out = execute(&inv, SRC).unwrap();
        assert!(out.contains("OK:"), "{out}");
    }

    #[test]
    fn emit_rust_requires_sizes_and_generates_main() {
        let inv = parse_args(&args(&["compile", "f", "--emit", "rust"])).unwrap();
        assert!(execute(&inv, SRC).is_err(), "sizes required");
        let inv = parse_args(&args(&["compile", "f", "--emit", "rust", "--sizes", "3"])).unwrap();
        let out = execute(&inv, SRC).unwrap();
        assert!(out.contains("fn main()"));
        assert!(out.contains("sync_channel"));
    }

    #[test]
    fn execute_compile_and_explore() {
        let inv = parse_args(&args(&["compile", "f", "--emit", "occam"])).unwrap();
        assert!(execute(&inv, SRC).unwrap().contains("PAR"));
        let inv = parse_args(&args(&["explore", "f", "--bound", "2", "--sample", "4"])).unwrap();
        assert!(execute(&inv, SRC).unwrap().contains("makespan"));
    }

    #[test]
    fn batch_flag_gates_the_fast_path() {
        // `--opt off` on both sides: with the optimizer disabled the
        // logical message/step counts are engine-invariant. `--wavefront
        // off` pins the batched rung of the ladder (the wavefront rung
        // has its own gating test below).
        let inv = parse_args(&args(&[
            "verify",
            "f",
            "--sizes",
            "4",
            "--opt",
            "off",
            "--wavefront",
            "off",
        ]))
        .unwrap();
        let auto = execute(&inv, SRC).unwrap();
        assert!(auto.contains("[batched]"), "{auto}");
        assert!(!auto.contains("[batched+optimized]"), "{auto}");
        let inv = parse_args(&args(&[
            "verify", "f", "--sizes", "4", "--batch", "off", "--opt", "off",
        ]))
        .unwrap();
        let off = execute(&inv, SRC).unwrap();
        assert!(!off.contains("[batched]"), "{off}");
        let invariant = |s: &str| {
            let t = s.split("rounds, ").nth(1).unwrap();
            t.split(" steps").next().unwrap().to_string()
        };
        assert_eq!(invariant(&auto), invariant(&off));
        let inv = parse_args(&args(&["verify", "f", "--sizes", "4", "--batch", "maybe"])).unwrap();
        assert!(execute(&inv, SRC).unwrap_err().contains("--batch"));
        let inv = parse_args(&args(&["explore", "f", "--batch", "bogus"])).unwrap();
        assert!(execute(&inv, SRC).unwrap_err().contains("--batch"));
    }

    #[test]
    fn opt_flag_gates_the_optimizer_and_writes_the_report() {
        // This design has pure relay chains at n=4, so `--opt auto`
        // (the default) engages the optimizer; results stay verified.
        let report =
            std::env::temp_dir().join(format!("systolizer-opt-{}.json", std::process::id()));
        let inv = parse_args(&args(&[
            "verify",
            "f",
            "--sizes",
            "4",
            "--wavefront",
            "off",
            "--opt-report",
            report.to_str().unwrap(),
        ]))
        .unwrap();
        let auto = execute(&inv, SRC).unwrap();
        assert!(auto.contains("OK:"), "{auto}");
        assert!(auto.contains("[batched+optimized]"), "{auto}");
        assert!(auto.contains("optimizer: "), "{auto}");
        assert!(auto.contains("optimizer report: "), "{auto}");
        let j = std::fs::read_to_string(&report).unwrap();
        assert!(j.contains("\"schema\": \"systolic-opt-v1\""), "{j}");
        // The wavefront staging facts ride along in the same document
        // (with per-channel ineligibility reasons when any exist).
        assert!(j.contains("\"wavefront\""), "{j}");
        assert!(j.contains("\"eligible\""), "{j}");
        assert!(j.contains("\"channels\""), "{j}");
        let _ = std::fs::remove_file(&report);
        // `--opt off` keeps the plain batched engine.
        let inv = parse_args(&args(&["verify", "f", "--sizes", "4", "--opt", "off"])).unwrap();
        let off = execute(&inv, SRC).unwrap();
        assert!(!off.contains("optimized"), "{off}");
        // Bad values are messages on both commands.
        let inv = parse_args(&args(&["verify", "f", "--sizes", "4", "--opt", "max"])).unwrap();
        assert!(execute(&inv, SRC).unwrap_err().contains("--opt"));
        let inv = parse_args(&args(&["explore", "f", "--opt", "bogus"])).unwrap();
        assert!(execute(&inv, SRC).unwrap_err().contains("--opt"));
    }

    #[test]
    fn wavefront_flag_gates_the_fourth_executor() {
        // Default `--wavefront auto` takes the top rung of the ladder;
        // `--opt off` keeps the message/step counts engine-invariant and
        // `--kernel off` pins the scalar wavefront marker (the kernel
        // rung has its own gating test below).
        let inv = parse_args(&args(&[
            "verify", "f", "--sizes", "4", "--opt", "off", "--kernel", "off",
        ]))
        .unwrap();
        let wf = execute(&inv, SRC).unwrap();
        assert!(wf.contains("[wavefront]"), "{wf}");
        // `par` runs the same chunks on pool threads — same result.
        let inv = parse_args(&args(&[
            "verify",
            "f",
            "--sizes",
            "4",
            "--opt",
            "off",
            "--kernel",
            "off",
            "--wavefront",
            "par",
        ]))
        .unwrap();
        let par = execute(&inv, SRC).unwrap();
        assert!(par.contains("[wavefront]"), "{par}");
        // `off` drops to the batched rung.
        let inv = parse_args(&args(&[
            "verify",
            "f",
            "--sizes",
            "4",
            "--opt",
            "off",
            "--wavefront",
            "off",
        ]))
        .unwrap();
        let off = execute(&inv, SRC).unwrap();
        assert!(off.contains("[batched]"), "{off}");
        assert!(!off.contains("[wavefront]"), "{off}");
        // Logical messages and steps are invariant across the ladder.
        let invariant = |s: &str| {
            let t = s.split("rounds, ").nth(1).unwrap();
            t.split(" steps").next().unwrap().to_string()
        };
        assert_eq!(invariant(&wf), invariant(&off));
        assert_eq!(invariant(&wf), invariant(&par));
        // With the optimizer on (kernels pinned off), the marker names
        // both engines.
        let inv =
            parse_args(&args(&["verify", "f", "--sizes", "4", "--kernel", "off"])).unwrap();
        let both = execute(&inv, SRC).unwrap();
        assert!(both.contains("[wavefront+optimized]"), "{both}");
        // Bad values are messages on both commands.
        let inv = parse_args(&args(&[
            "verify",
            "f",
            "--sizes",
            "4",
            "--wavefront",
            "max",
        ]))
        .unwrap();
        assert!(execute(&inv, SRC).unwrap_err().contains("--wavefront"));
        let inv = parse_args(&args(&["explore", "f", "--wavefront", "bogus"])).unwrap();
        assert!(execute(&inv, SRC).unwrap_err().contains("--wavefront"));
    }

    #[test]
    fn kernel_flag_gates_the_vectorized_wave_path() {
        // Default `--kernel auto`: polyprod's unguarded `c := c + a*b`
        // body compiles, the wavefront chunks are eligible, and the
        // marker names the fused path. `--opt off` keeps the logical
        // counts comparable across the gate.
        let inv = parse_args(&args(&["verify", "f", "--sizes", "4", "--opt", "off"])).unwrap();
        let auto = execute(&inv, SRC).unwrap();
        assert!(auto.contains("[wavefront+kernels]"), "{auto}");
        // `off` runs the same waves through scalar macro-steps.
        let inv = parse_args(&args(&[
            "verify", "f", "--sizes", "4", "--opt", "off", "--kernel", "off",
        ]))
        .unwrap();
        let off = execute(&inv, SRC).unwrap();
        assert!(off.contains("[wavefront]"), "{off}");
        assert!(!off.contains("kernels"), "{off}");
        // The kernel path is a pure execution strategy: logical messages
        // and steps are invariant across the gate.
        let invariant = |s: &str| {
            let t = s.split("rounds, ").nth(1).unwrap();
            t.split(" steps").next().unwrap().to_string()
        };
        assert_eq!(invariant(&auto), invariant(&off));
        // With the optimizer on, the marker names all three engines.
        let inv = parse_args(&args(&["verify", "f", "--sizes", "4"])).unwrap();
        let all = execute(&inv, SRC).unwrap();
        assert!(all.contains("[wavefront+kernels+optimized]"), "{all}");
        // Bad values are messages on both commands.
        let inv = parse_args(&args(&["verify", "f", "--sizes", "4", "--kernel", "max"])).unwrap();
        assert!(execute(&inv, SRC).unwrap_err().contains("--kernel"));
        let inv = parse_args(&args(&["explore", "f", "--kernel", "bogus"])).unwrap();
        assert!(execute(&inv, SRC).unwrap_err().contains("--kernel"));
    }

    #[test]
    fn emit_rust_opt_routes_through_the_delay_ring_back_end() {
        let inv = parse_args(&args(&[
            "compile", "f", "--emit", "rust", "--sizes", "4", "--opt", "auto",
        ]))
        .unwrap();
        let out = execute(&inv, SRC).unwrap();
        assert!(out.contains("fn main()"));
        assert!(out.contains("//! Optimized:"), "relays should fuse at n=4");
    }

    #[test]
    fn execute_describe() {
        let inv = parse_args(&args(&["describe", "f", "--sizes", "3"])).unwrap();
        let out = execute(&inv, SRC).unwrap();
        assert!(out.contains("network map"), "{out}");
        assert!(out.contains("comp"), "{out}");
        assert!(out.contains("pipe @"), "{out}");
    }

    #[test]
    fn run_writes_metrics_and_trace_artifacts() {
        let dir = std::env::temp_dir();
        let metrics = dir.join(format!("systolizer-metrics-{}.json", std::process::id()));
        let trace = dir.join(format!("systolizer-trace-{}.json", std::process::id()));
        let inv = parse_args(&args(&[
            "run",
            "f",
            "--sizes",
            "4",
            "--metrics",
            metrics.to_str().unwrap(),
            "--trace-out",
            trace.to_str().unwrap(),
        ]))
        .unwrap();
        let out = execute(&inv, SRC).unwrap();
        assert!(out.contains("OK:"), "{out}");
        assert!(out.contains("metrics report:"), "{out}");
        assert!(out.contains("perfetto trace:"), "{out}");
        let m = std::fs::read_to_string(&metrics).unwrap();
        assert!(m.contains("\"schema\": \"systolic-metrics-v1\""));
        assert!(m.contains("\"makespan\""));
        assert!(m.contains("\"elab_cache\""), "{m}");
        assert!(m.contains("\"module_misses\""), "{m}");
        let t = std::fs::read_to_string(&trace).unwrap();
        assert!(t.contains("\"traceEvents\""));
        assert!(t.contains("thread_name"));
        let _ = std::fs::remove_file(&metrics);
        let _ = std::fs::remove_file(&trace);
    }

    #[test]
    fn unwritable_artifact_path_is_a_message_not_a_panic() {
        let inv = parse_args(&args(&[
            "run",
            "f",
            "--sizes",
            "3",
            "--metrics",
            "/nonexistent-dir/metrics.json",
        ]))
        .unwrap();
        let err = execute(&inv, SRC).unwrap_err();
        assert!(err.contains("cannot write"), "{err}");
    }

    #[test]
    fn replay_takes_its_file_from_the_schedule_flag() {
        let inv = parse_args(&args(&["replay", "--schedule", "ce.json"])).unwrap();
        assert_eq!(inv.command, "replay");
        assert_eq!(inv.file, "ce.json");
        assert_eq!(inv.flag("schedule"), Some("ce.json"));
    }

    #[test]
    fn explore_schedules_reports_schedule_independence() {
        let inv = parse_args(&args(&["explore", "f", "--schedules", "2", "--sizes", "3"])).unwrap();
        let out = execute(&inv, SRC).unwrap();
        assert!(out.contains("schedule-independent"), "{out}");
        assert!(out.contains("6 adversarial schedules"), "{out}");
    }

    #[test]
    fn explore_sweep_amortizes_the_skeleton_over_many_sizes() {
        let inv = parse_args(&args(&["explore", "f", "--sweep-sizes", "1:20"])).unwrap();
        let out = execute(&inv, SRC).unwrap();
        assert!(out.contains("size sweep 1..20"), "{out}");
        assert!(out.contains("20 sizes"), "{out}");
        assert!(out.contains("skeleton build(s)"), "{out}");
        assert!(out.contains("\"module_hits\""), "{out}");
        // Every size appears as a row.
        for n in [1, 10, 20] {
            assert!(
                out.lines().any(|l| l.trim().starts_with(&format!("{n} "))),
                "missing row for n={n}: {out}"
            );
        }
    }

    #[test]
    fn explore_sweep_rejects_bad_ranges() {
        for bad in ["5", "0:4", "7:3", "a:b"] {
            let inv = parse_args(&args(&["explore", "f", "--sweep-sizes", bad])).unwrap();
            assert!(
                execute(&inv, SRC).unwrap_err().contains("--sweep-sizes"),
                "{bad} should be rejected"
            );
        }
    }

    #[test]
    fn explore_schedules_requires_sizes() {
        let inv = parse_args(&args(&["explore", "f", "--schedules", "2"])).unwrap();
        let err = execute(&inv, SRC).unwrap_err();
        assert!(err.contains("--sizes"), "{err}");
    }

    #[test]
    fn replay_reproduces_a_race_sink_counterexample_end_to_end() {
        // Full loop: explorer catches the seeded interleaving bug,
        // shrinks it, serializes it; the CLI replays the file and
        // reproduces the divergence.
        use crate::sim::{explore, ExploreConfig, RaceSubject};
        let subject = RaceSubject { k: 6 };
        let ce = explore(&subject, &ExploreConfig::matrix(4))
            .unwrap()
            .counterexample
            .expect("race-sink diverges");
        let text = ce.schedule.to_json();
        let inv = parse_args(&args(&["replay", "--schedule", "ce.json"])).unwrap();
        let out = execute(&inv, &text).unwrap();
        assert!(out.contains("REPRODUCED"), "{out}");
        assert!(out.contains("race-sink"), "{out}");
    }

    #[test]
    fn replay_of_an_empty_schedule_does_not_reproduce() {
        use crate::sim::{DstSubject, RaceSubject};
        let stub = RaceSubject { k: 4 }.schedule_stub();
        let inv = parse_args(&args(&["replay", "--schedule", "ce.json"])).unwrap();
        let out = execute(&inv, &stub.to_json()).unwrap();
        assert!(out.contains("did not reproduce"), "{out}");
    }

    #[test]
    fn replay_rejects_malformed_schedule_files() {
        let inv = parse_args(&args(&["replay", "--schedule", "ce.json"])).unwrap();
        assert!(execute(&inv, "{not json").is_err());
        assert!(execute(&inv, "{\"schema\":\"v0\"}").is_err());
    }

    #[test]
    fn execute_errors_are_messages_not_panics() {
        let inv = parse_args(&args(&["verify", "f", "--sizes", "3,4"])).unwrap();
        let err = execute(&inv, SRC).unwrap_err();
        assert!(err.contains("size parameter"));
        let inv = parse_args(&args(&["compile", "f", "--emit", "brainfuck"])).unwrap();
        assert!(execute(&inv, SRC).is_err());
        let inv = parse_args(&args(&["nonsense", "f"])).unwrap();
        assert!(execute(&inv, SRC).is_err());
    }

    #[test]
    fn serve_needs_no_file_and_builds_its_config_from_flags() {
        let inv = parse_args(&args(&["serve", "--workers", "3", "--queue-cap", "9"])).unwrap();
        assert_eq!(inv.command, "serve");
        assert_eq!(inv.file, "");
        let cfg = build_service_config(&inv).unwrap();
        assert_eq!((cfg.workers, cfg.queue_cap), (3, 9));
        // Junk values are a usage error, not a default.
        let inv = parse_args(&args(&["serve", "--workers", "zero"])).unwrap();
        assert!(build_service_config(&inv).is_none());
    }

    #[test]
    fn serve_boots_a_real_server_on_an_ephemeral_port() {
        use std::io::{Read as _, Write as _};
        let inv = parse_args(&args(&["serve", "--addr", "127.0.0.1:0", "--workers", "1"]))
            .unwrap();
        let (_service, handle) = start_service(&inv).unwrap();
        let mut s = std::net::TcpStream::connect(handle.addr).unwrap();
        s.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        assert!(resp.contains("200 OK"), "{resp}");
        assert!(resp.contains("{\"ok\":true}"), "{resp}");
        handle.shutdown();
    }
}
