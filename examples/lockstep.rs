//! The protocol-deadlock finding, interactively (see EXPERIMENTS.md,
//! "Protocol findings").
//!
//! A perfectly valid source program — streams `a` and `c` share the
//! index map `(i+j)` — deadlocks the paper's sequential-phase
//! propagation protocol. The simulator detects the deadlock exactly and
//! names the blocked processes; switching to the split-propagation
//! protocol (per-stream escort processes) executes it correctly.
//!
//! ```sh
//! cargo run --example lockstep
//! ```

use systolizer::core::{compile, Options};
use systolizer::interp::{run_plan, ElabOptions};
use systolizer::ir::expr::build::*;
use systolizer::ir::{
    program::covering_bounds, seq, BasicStatement, HostStore, IndexedVar, Loop, SourceProgram,
    Stream,
};
use systolizer::math::{Affine, Env, Matrix, VarTable};
use systolizer::runtime::ChannelPolicy;

fn lockstep_program() -> SourceProgram {
    let mut vars = VarTable::new();
    let n = vars.size("n");
    let loops = vec![
        Loop {
            index_name: "i".into(),
            lb: Affine::zero(),
            rb: Affine::var(n) + Affine::int(1),
            step: 1,
        },
        Loop {
            index_name: "j".into(),
            lb: Affine::zero(),
            rb: Affine::var(n),
            step: 1,
        },
    ];
    let maps = [
        Matrix::from_rows(&[vec![1, 1]]), // a[i+j]  <- same map as c!
        Matrix::from_rows(&[vec![1, 0]]), // b[i]
        Matrix::from_rows(&[vec![1, 1]]), // c[i+j]
    ];
    let variables: Vec<IndexedVar> = ["a", "b", "c"]
        .iter()
        .zip(&maps)
        .map(|(name, m)| IndexedVar {
            name: (*name).into(),
            bounds: covering_bounds(m, &loops),
        })
        .collect();
    let streams: Vec<Stream> = maps
        .iter()
        .enumerate()
        .map(|(k, m)| Stream {
            variable: k,
            index_map: m.clone(),
        })
        .collect();
    SourceProgram {
        name: "lockstep".into(),
        vars,
        sizes: vec![n],
        loops,
        variables,
        streams,
        body: BasicStatement {
            updates: vec![assign(2, add(s(2), mul(s(0), s(1))))],
        },
    }
}

fn main() {
    let p = lockstep_program();
    println!("source: c[i+j] += a[i+j] * b[i]   (a and c share an index map)");
    systolizer::ir::validate(&p, 3).expect("inside the Appendix A envelope");
    println!("Appendix A validation: OK — this is a legal source program\n");

    let a = systolizer::synthesis::derive_array(&p, 1, 3).unwrap();
    println!(
        "derived array: step {:?}, projection {:?}\n",
        a.step,
        a.projection_direction()
    );
    let plan = compile(&p, &a, &Options::default()).unwrap();

    let n = 3i64;
    let mut env = Env::new();
    env.bind(p.sizes[0], n);
    let mut store = HostStore::allocate(&p, &env);
    store.fill_random("a", 1, -5, 5);
    store.fill_random("b", 2, -5, 5);
    let mut expected = store.clone();
    seq::run(&p, &env, &mut expected);

    println!("--- the paper's sequential-phase protocol ---");
    match run_plan(
        &plan,
        &env,
        &store,
        ChannelPolicy::Rendezvous,
        &ElabOptions::default(),
    ) {
        Ok(_) => println!("(completed — unexpected on this design)"),
        Err(d) => println!("{d}\n"),
    }

    println!("--- split-propagation protocol (per-stream escorts) ---");
    let opts = ElabOptions {
        split_propagation: true,
        ..Default::default()
    };
    let run = run_plan(&plan, &env, &store, ChannelPolicy::Rendezvous, &opts).unwrap();
    let ok = run.store.get("c") == expected.get("c");
    println!(
        "completed: {} processes ({} escorts), {} rounds; matches sequential: {ok}",
        run.stats.processes, run.census.escorts, run.stats.rounds
    );
}
