//! Appendix E end to end: matrix-matrix multiplication under the simple
//! place `(i,j)` (E.1 — one stationary operand, the parallelizing-compiler
//! projection) and the Kung–Leiserson place `(i-k, j-k)` (E.2 — all three
//! streams moving through a hexagonally-connected array with external
//! buffer processes).
//!
//! ```sh
//! cargo run --example matmul
//! ```

use systolizer::ir::HostStore;
use systolizer::synthesis::placement::paper;
use systolizer::{systolize, PlaceChoice, SystolizeOptions};

fn main() {
    let (program, _) = paper::matmul_e1();

    for (label, projection) in [
        ("E.1: place.(i,j,k) = (i,j)", vec![0, 0, 1]),
        (
            "E.2: place.(i,j,k) = (i-k, j-k)  [Kung-Leiserson]",
            vec![1, 1, 1],
        ),
    ] {
        println!("==================== {label} ====================");
        let opts = SystolizeOptions {
            place: PlaceChoice::Projection(projection),
            ..Default::default()
        };
        let sys = systolize(&program, &opts).unwrap();
        println!("{}", sys.report());

        let n = 3i64;
        let env = sys.size_env(&[n]);
        let mut store = HostStore::allocate(&sys.source, &env);
        // A deterministic pair: A[i][k] = i + k, B[k][j] = (k+1)*(j+1).
        for i in 0..=n {
            for k in 0..=n {
                store.get_mut("a").set(&[i, k], i + k);
                store.get_mut("b").set(&[i, k], (i + 1) * (k + 1));
            }
        }
        let run = sys.run(&[n], &store).unwrap();
        println!("C = A * B at n = {n}:");
        for i in 0..=n {
            let row: Vec<i64> = (0..=n).map(|j| run.store.get("c").get(&[i, j])).collect();
            println!("  {row:?}");
        }
        println!(
            "processes {} (comp {}, external buffers {}) | rounds {} | messages {}",
            run.stats.processes,
            run.census.computation,
            run.census.external_buffers,
            run.stats.rounds,
            run.stats.messages,
        );
        println!();
    }

    // Makespan scaling: linear in n for both designs, cubic work.
    println!("== makespan scaling (virtual rendezvous rounds) ==");
    println!("{:>4} {:>12} {:>10} {:>12}", "n", "seq ops", "E.1", "E.2");
    for n in [2i64, 4, 6, 8] {
        let mut cells = Vec::new();
        for projection in [vec![0, 0, 1], vec![1, 1, 1]] {
            let opts = SystolizeOptions {
                place: PlaceChoice::Projection(projection),
                ..Default::default()
            };
            let sys = systolize(&program, &opts).unwrap();
            let stats = sys.verify(&[n], &["a", "b"], 7).unwrap();
            cells.push(stats.rounds);
        }
        println!(
            "{:>4} {:>12} {:>10} {:>12}",
            n,
            (n + 1).pow(3),
            cells[0],
            cells[1]
        );
    }
}
