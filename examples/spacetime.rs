//! Space–time diagram: the classic picture of a systolic computation.
//!
//! Runs Appendix D.1 (polynomial product, place `i`) with tracing and
//! prints which streams arrive at which cell in which rendezvous round —
//! the software analogue of the data-flow figures in the systolic-array
//! literature (Kung & Leiserson 1980). Then shows the activity wavefront
//! of the 2-D Kung–Leiserson matrix array.
//!
//! ```sh
//! cargo run --example spacetime
//! ```

use systolizer::interp::trace::{activity_profile, render_1d, run_traced};
use systolizer::ir::HostStore;
use systolizer::synthesis::placement::paper;
use systolizer::{systolize, PlaceChoice, SystolizeOptions};

fn main() {
    // 1-D: Appendix D.1.
    let (program, array) = paper::polyprod_d1();
    let sys = systolize(
        &program,
        &SystolizeOptions {
            place: PlaceChoice::Explicit(array),
            ..Default::default()
        },
    )
    .unwrap();
    let n = 4i64;
    let env = sys.size_env(&[n]);
    let mut store = HostStore::allocate(&sys.source, &env);
    store.fill_random("a", 1, 1, 9);
    store.fill_random("b", 2, 1, 9);
    let (events, rounds) = run_traced(&sys.plan, &env, &store).unwrap();
    println!("Appendix D.1 at n = {n}: cell activity per rendezvous round");
    println!("(letters = streams arriving at that cell; a is loaded/");
    println!(" recovered, b moves at half speed, c at full speed)");
    println!();
    println!("{}", render_1d(&sys.plan, &events, &env));
    println!("total rounds: {rounds}");
    println!();

    // 2-D: the Kung-Leiserson wavefront.
    let (program, array) = paper::matmul_e2();
    let sys = systolize(
        &program,
        &SystolizeOptions {
            place: PlaceChoice::Explicit(array),
            ..Default::default()
        },
    )
    .unwrap();
    let n = 4i64;
    let env = sys.size_env(&[n]);
    let mut store = HostStore::allocate(&sys.source, &env);
    store.fill_random("a", 3, 1, 9);
    store.fill_random("b", 4, 1, 9);
    let (events, rounds) = run_traced(&sys.plan, &env, &store).unwrap();
    println!("Kung-Leiserson array at n = {n}: transfers per round (the wavefront)");
    for (round, count) in activity_profile(&events) {
        println!("{round:>5} | {}", "#".repeat(count.min(100)));
    }
    println!("total rounds: {rounds}");
}
