//! Partitioned execution: mapping the systolic program onto a machine
//! with fewer processors than processes — the Sec. 8 refinement
//! ("not enough processors ... techniques of partitioning").
//!
//! The Kung–Leiserson array at n = 8 elaborates to several hundred
//! virtual processes; we run it on 1, 2, 4, and 8 worker threads and
//! check the results stay identical.
//!
//! ```sh
//! cargo run --release --example partitioned
//! ```

use std::time::{Duration, Instant};
use systolizer::interp::run_plan_partitioned;
use systolizer::ir::{seq, HostStore};
use systolizer::synthesis::placement::paper;
use systolizer::{systolize, PlaceChoice, SystolizeOptions};

fn main() {
    let (program, array) = paper::matmul_e2();
    let sys = systolize(
        &program,
        &SystolizeOptions {
            place: PlaceChoice::Explicit(array),
            ..Default::default()
        },
    )
    .unwrap();

    let n = 8i64;
    let env = sys.size_env(&[n]);
    let mut store = HostStore::allocate(&sys.source, &env);
    store.fill_random("a", 11, -9, 9);
    store.fill_random("b", 12, -9, 9);
    let mut expected = store.clone();
    seq::run(&sys.source, &env, &mut expected);

    println!("Kung-Leiserson matrix product at n = {n}");
    println!(
        "{:>8} {:>10} {:>12} {:>8}",
        "workers", "procs", "wall", "agree"
    );
    for workers in [1usize, 2, 4, 8] {
        let t0 = Instant::now();
        let run = run_plan_partitioned(&sys.plan, &env, &store, workers, Duration::from_secs(120))
            .expect("partitioned run");
        let wall = t0.elapsed();
        let agree = run.store.get("c") == expected.get("c");
        println!(
            "{:>8} {:>10} {:>12?} {:>8}",
            workers, run.stats.processes, wall, agree
        );
    }
    println!();
    println!("Every worker count multiplexes the same virtual processes over the");
    println!("same rendezvous engine; the partition changes scheduling only.");
}
