//! Design-space exploration: "once [step] has been derived, many
//! different place functions are possible" (Sec. 3.2). Enumerate every
//! valid (step, place) design for the paper's two kernels, rank them by
//! makespan / processor count / area-time, and point out where the
//! appendix designs sit in the space.
//!
//! ```sh
//! cargo run --example design_space
//! ```

use systolizer::synthesis::explore::{explore, render_table};

fn main() {
    let poly = systolizer::ir::gallery::polynomial_product();
    let designs = explore(&poly, 2, 8);
    println!("== polynomial product (reference size n = 8) ==");
    println!("{}", render_table(&poly, &designs, 12));
    println!(
        "The paper's D.1 design (step (2,1), place i) and D.2 (place i+j)\n\
         both appear; the search also finds step (1,-1) at makespan 2n+1,\n\
         beating the paper's 3n+1 (see EXPERIMENTS.md, X4).\n"
    );

    let mm = systolizer::ir::gallery::matrix_product();
    let designs = explore(&mm, 1, 4);
    println!("== matrix product (reference size n = 4) ==");
    println!("{}", render_table(&mm, &designs, 12));
    println!(
        "All unit-coefficient schedules tie at makespan 3n+1; the places\n\
         then trade processors for data movement: the simple place (i,j)\n\
         uses (n+1)^2 cells with c stationary, the Kung-Leiserson place\n\
         (i-k, j-k) uses the (2n+1)^2 box with every stream moving."
    );

    let fir = systolizer::ir::gallery::fir_filter();
    let designs = explore(&fir, 2, 6);
    println!();
    println!("== FIR filter (n = m = 6) ==");
    println!("{}", render_table(&fir, &designs, 8));
}
