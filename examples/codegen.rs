//! Code generation showcase: render all four appendix designs in the
//! three back ends — the paper's abstract notation, occam-like (the
//! transputer experiments of Sec. 8), and C with communication directives
//! (the Symult s2010 experiments).
//!
//! ```sh
//! cargo run --example codegen            # all designs, paper notation
//! cargo run --example codegen -- occam   # a different back end
//! ```

use systolizer::synthesis::placement::paper;
use systolizer::{systolize, PlaceChoice, SystolizeOptions};

fn main() {
    let style = std::env::args().nth(1).unwrap_or_else(|| "paper".into());
    for (label, program, array) in paper::all() {
        let opts = SystolizeOptions {
            place: PlaceChoice::Explicit(array),
            ..Default::default()
        };
        let sys = systolize(&program, &opts).unwrap();
        println!(
            "/* ============ Appendix {label}: {} ============ */",
            sys.source.name
        );
        let code = match style.as_str() {
            "occam" => sys.occam_code(),
            "c" => sys.c_code(),
            _ => sys.paper_code(),
        };
        println!("{code}");
        println!();
    }
}
