//! Quickstart: parse a nested-loop source program, derive a systolic
//! array automatically, compile it to a distributed program, and run the
//! result on the simulated processor network.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use systolizer::{systolize_source, SystolizeOptions};

const SOURCE: &str = "
    program polyprod;
    size n;
    var a[0..n], b[0..n], c[0..2*n];
    for i = 0 <- 1 -> n
    for j = 0 <- 1 -> n {
      c[i+j] = c[i+j] + a[i] * b[j];
    }
";

fn main() {
    // 1. Parse + derive (step, place) + compile.
    let sys = systolize_source(SOURCE, &SystolizeOptions::default())
        .expect("the source program satisfies the paper's restrictions");

    println!("== derived systolic array ==");
    println!("step coefficients : {:?}", sys.array.step);
    println!(
        "makespan at n=8   : {} steps (vs 81 sequential ops)",
        sys.makespan(&[8])
    );
    println!();

    // 2. The symbolic derivation report (Secs. 6-7 of the paper).
    println!("{}", sys.report());

    // 3. The generated distributed program, in the paper's notation.
    println!("== generated program (paper notation) ==");
    println!("{}", sys.paper_code());

    // 4. Execute on the simulated distributed-memory machine and verify
    //    against sequential execution.
    let n = 8;
    let stats = sys
        .verify(&[n], &["a", "b"], 2024)
        .expect("executions agree");
    println!("== simulated execution at n={n} ==");
    println!("processes          : {}", stats.processes);
    println!("rendezvous rounds  : {}", stats.rounds);
    println!("messages           : {}", stats.messages);
    println!("result matches the sequential reference — OK");
}
