//! A kernel beyond the paper's appendices: FIR filtering (correlation)
//! with two independent problem-size symbols — `n+1` taps over an
//! `m+1`-sample output window — written in the textual front end and
//! systolized fully automatically.
//!
//! ```sh
//! cargo run --example convolution
//! ```

use systolizer::ir::HostStore;
use systolizer::{systolize_source, SystolizeOptions};

const SOURCE: &str = "
    program fir;
    size n, m;
    var h[0..n], x[-n..m], y[0..m];
    for i = 0 <- 1 -> m
    for j = 0 <- 1 -> n {
      y[i] = y[i] + h[j] * x[i-j];
    }
";

fn main() {
    let sys = systolize_source(SOURCE, &SystolizeOptions::default()).unwrap();
    println!("{}", sys.report());

    // A 3-tap moving-average-like filter over a step signal.
    let (n, m) = (2i64, 11i64);
    let env = sys.size_env(&[n, m]);
    let mut store = HostStore::allocate(&sys.source, &env);
    for j in 0..=n {
        store.get_mut("h").set(&[j], 1); // box filter
    }
    for i in -n..=m {
        store
            .get_mut("x")
            .set(&[i], if (0..=5).contains(&i) { 3 } else { 0 });
    }
    let run = sys.run(&[n, m], &store).unwrap();
    let y: Vec<i64> = (0..=m).map(|i| run.store.get("y").get(&[i])).collect();
    println!("box-filtered step signal: {y:?}");
    println!(
        "processes {} | rounds {} | messages {}",
        run.stats.processes, run.stats.rounds, run.stats.messages
    );

    // Independent size scaling: the array length follows the projection,
    // not the signal length.
    println!();
    println!("== scaling the signal at fixed tap count (n = 4) ==");
    println!(
        "{:>6} {:>10} {:>10} {:>10}",
        "m", "seq ops", "procs", "rounds"
    );
    for m in [8i64, 16, 32, 64] {
        let stats = sys.verify(&[4, m], &["h", "x"], 3).unwrap();
        println!(
            "{:>6} {:>10} {:>10} {:>10}",
            m,
            5 * (m + 1),
            stats.processes,
            stats.rounds
        );
    }
}
