//! A downstream application: big-integer multiplication on the systolic
//! polynomial-product array.
//!
//! A base-10000 bignum is a polynomial in x = 10000; multiplying two of
//! them is exactly the polynomial product the array computes. The host
//! does what hosts do in the paper's model: prepare the streams, inject,
//! recover, and post-process (carry propagation).
//!
//! ```sh
//! cargo run --example bignum
//! ```

use systolizer::ir::HostStore;
use systolizer::{systolize_source, SystolizeOptions};

const BASE: i64 = 10_000;

const SOURCE: &str = "
    program polyprod;
    size n;
    var a[0..n], b[0..n], c[0..2*n];
    for i = 0 <- 1 -> n
    for j = 0 <- 1 -> n {
      c[i+j] = c[i+j] + a[i] * b[j];
    }
";

/// Parse a decimal string into little-endian base-10000 limbs.
fn to_limbs(s: &str) -> Vec<i64> {
    let digits: Vec<u8> = s.bytes().map(|b| b - b'0').collect();
    let mut limbs = Vec::new();
    let mut i = digits.len();
    while i > 0 {
        let lo = i.saturating_sub(4);
        let limb: i64 = digits[lo..i].iter().fold(0, |acc, &d| acc * 10 + d as i64);
        limbs.push(limb);
        i = lo;
    }
    if limbs.is_empty() {
        limbs.push(0);
    }
    limbs
}

/// Render little-endian limbs as a decimal string.
fn from_limbs(limbs: &[i64]) -> String {
    let mut out = String::new();
    for (i, &l) in limbs.iter().enumerate().rev() {
        if out.is_empty() {
            if l != 0 || i == 0 {
                out.push_str(&l.to_string());
            }
        } else {
            out.push_str(&format!("{l:04}"));
        }
    }
    out
}

/// Grade-school reference multiply for the check.
fn reference_multiply(a: &str, b: &str) -> String {
    let (la, lb) = (to_limbs(a), to_limbs(b));
    let mut acc = vec![0i64; la.len() + lb.len()];
    for (i, &x) in la.iter().enumerate() {
        for (j, &y) in lb.iter().enumerate() {
            acc[i + j] += x * y;
        }
    }
    carry(&mut acc);
    from_limbs(&acc)
}

fn carry(limbs: &mut Vec<i64>) {
    let mut c = 0i64;
    for l in limbs.iter_mut() {
        *l += c;
        c = *l / BASE;
        *l %= BASE;
    }
    while c > 0 {
        limbs.push(c % BASE);
        c /= BASE;
    }
}

fn main() {
    let x = "299792458000000008128312570216302006619";
    let y = "662607015000000314159265358979323846264";

    // Host-side preparation: limbs, padded to a common degree.
    let (mut la, mut lb) = (to_limbs(x), to_limbs(y));
    let deg = la.len().max(lb.len());
    la.resize(deg, 0);
    lb.resize(deg, 0);
    let n = (deg - 1) as i64;

    // Compile once (symbolic in n) and instantiate at this degree.
    let sys = systolize_source(SOURCE, &SystolizeOptions::default()).unwrap();
    let env = sys.size_env(&[n]);
    let mut store = HostStore::allocate(&sys.source, &env);
    for (i, (&xa, &xb)) in la.iter().zip(&lb).enumerate() {
        store.get_mut("a").set(&[i as i64], xa);
        store.get_mut("b").set(&[i as i64], xb);
    }

    // Inject, run the array, recover.
    let run = sys.run(&[n], &store).unwrap();
    let mut limbs: Vec<i64> = (0..=2 * n).map(|k| run.store.get("c").get(&[k])).collect();
    carry(&mut limbs); // host post-processing
    let product = from_limbs(&limbs);

    println!("x            = {x}");
    println!("y            = {y}");
    println!("systolic x*y = {product}");
    let expect = reference_multiply(x, y);
    assert_eq!(
        product, expect,
        "systolic product disagrees with the reference"
    );
    println!("reference    = {expect}");
    println!();
    println!(
        "computed on {} processes in {} rendezvous rounds ({} limb products)",
        run.stats.processes,
        run.stats.rounds,
        (n + 1) * (n + 1)
    );
}
