//! Appendix D end to end: polynomial product under both of the paper's
//! place functions — `place.(i,j) = i` (D.1, a simple place) and
//! `place.(i,j) = i + j` (D.2) — with the derived quantities, generated
//! programs, and simulated executions side by side.
//!
//! ```sh
//! cargo run --example polyprod
//! ```

use systolizer::ir::HostStore;
use systolizer::synthesis::placement::paper;
use systolizer::{systolize, PlaceChoice, SystolizeOptions};

fn main() {
    let n = 6i64;
    let designs = [
        ("D.1: step 2i+j, place.(i,j) = i", paper::polyprod_d1()),
        ("D.2: step 2i+j, place.(i,j) = i + j", paper::polyprod_d2()),
    ];
    for (label, (program, array)) in designs {
        println!("==================== {label} ====================");
        let opts = SystolizeOptions {
            place: PlaceChoice::Explicit(array),
            ..Default::default()
        };
        let sys = systolize(&program, &opts).unwrap();
        println!("{}", sys.report());

        // Deterministic input data: f(x) with coefficients 1..n+1,
        // g(x) with alternating signs.
        let env = sys.size_env(&[n]);
        let mut store = HostStore::allocate(&sys.source, &env);
        for i in 0..=n {
            store.get_mut("a").set(&[i], i + 1);
            store
                .get_mut("b")
                .set(&[i], if i % 2 == 0 { 1 } else { -1 });
        }
        let run = sys.run(&[n], &store).unwrap();
        let c: Vec<i64> = (0..=2 * n).map(|k| run.store.get("c").get(&[k])).collect();
        println!("product coefficients: {c:?}");
        println!(
            "processes {} | rounds {} | messages {} | internal buffers {}",
            run.stats.processes, run.stats.rounds, run.stats.messages, run.census.internal_buffers
        );
        println!();
    }

    // Both designs compute the same polynomial, with different layouts:
    // D.1 uses n+1 processes (a stays put), D.2 uses 2n+1 (c stays put).
    println!("Note: D.1 keeps stream a stationary on n+1 processes;");
    println!("      D.2 keeps stream c stationary on 2n+1 processes.");
    println!("      Both reproduce the coefficients of f(x) * g(x).");
}
