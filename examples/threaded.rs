//! The threaded executor: run the Kung–Leiserson matrix-product array on
//! real OS threads (one per process, blocking rendezvous) and compare
//! wall-clock time with the single-threaded cooperative simulation and
//! the plain sequential reference.
//!
//! ```sh
//! cargo run --release --example threaded
//! ```

use std::time::{Duration, Instant};
use systolizer::interp;
use systolizer::ir::{seq, HostStore};
use systolizer::synthesis::placement::paper;
use systolizer::{systolize, PlaceChoice, SystolizeOptions};

fn main() {
    let (program, _) = paper::matmul_e2();
    let opts = SystolizeOptions {
        place: PlaceChoice::Projection(vec![1, 1, 1]),
        ..Default::default()
    };
    let sys = systolize(&program, &opts).unwrap();

    println!(
        "{:>4} {:>10} {:>12} {:>12} {:>12} {:>8}",
        "n", "procs", "seq", "coop sim", "threads", "agree"
    );
    for n in [4i64, 6, 8] {
        let env = sys.size_env(&[n]);
        let mut store = HostStore::allocate(&sys.source, &env);
        store.fill_random("a", 1, -9, 9);
        store.fill_random("b", 2, -9, 9);

        let t0 = Instant::now();
        let mut expected = store.clone();
        seq::run(&sys.source, &env, &mut expected);
        let t_seq = t0.elapsed();

        let t0 = Instant::now();
        let coop = sys.run(&[n], &store).unwrap();
        let t_coop = t0.elapsed();

        let t0 = Instant::now();
        let threaded =
            interp::run_plan_threaded(&sys.plan, &env, &store, Duration::from_secs(60)).unwrap();
        let t_thr = t0.elapsed();

        let agree = coop.store.get("c") == expected.get("c")
            && threaded.store.get("c") == expected.get("c");
        println!(
            "{:>4} {:>10} {:>12?} {:>12?} {:>12?} {:>8}",
            n, threaded.stats.processes, t_seq, t_coop, t_thr, agree
        );
    }
    println!();
    println!("The simulator exists for semantics and schedule measurement, not speed:");
    println!("per-element compute here is one multiply-add, so communication dominates.");
}
