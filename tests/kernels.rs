//! Wave-kernel equivalence suite (see `docs/kernels.md`): the compiled
//! struct-of-arrays kernel path must be observationally invisible. On
//! every design in the corpus, `--kernel auto` and `--kernel off` must
//! produce bit-identical stores with invariant logical `messages`/`steps`
//! counts, and both must match the sequential oracle — the kernel is a
//! pure execution strategy for the wavefront executor's compute chunks,
//! never a semantic change. A deliberately inhomogeneous design (a
//! guarded update, i.e. data-dependent control) pins the other side of
//! the contract: the module is rejected with a reason, every wave runs
//! on the scalar `macro_step` path, and the run still verifies.

use proptest::prelude::*;
use systolizer::core::{compile, Options};
use systolizer::interp::{
    run_plan_batch_kernel, BatchMode, ElabOptions, KernelMode, OptMode, WavefrontMode,
};
use systolizer::ir::{gallery, seq, HostStore, SourceProgram};
use systolizer::math::Env;
use systolizer::runtime::ChannelPolicy;
use systolizer::synthesis::{derive_array, placement::paper};
use systolizer::{systolize_source, SystolizeOptions};

/// Compile one design from the corpus (the 4 paper appendix designs
/// followed by the 5 gallery programs) at size `n`, with seeded inputs.
fn prepared(
    design: usize,
    n: i64,
    seed: u64,
) -> (systolizer::core::SystolicProgram, Env, HostStore) {
    let (p, a): (SourceProgram, _) = if design < 4 {
        let (_, p, a) = paper::all().swap_remove(design);
        (p, a)
    } else {
        let p = gallery::all().swap_remove(design - 4);
        let a = derive_array(&p, 2, 4).unwrap();
        (p, a)
    };
    let plan = compile(&p, &a, &Options::default()).unwrap();
    let mut env = Env::new();
    for &s in &p.sizes {
        env.bind(s, n);
    }
    let mut store = HostStore::allocate(&p, &env);
    let inputs: &[&str] = if p.name == "fir_filter" {
        &["h", "x"]
    } else {
        &["a", "b"]
    };
    for (i, name) in inputs.iter().enumerate() {
        store.fill_random(name, seed.wrapping_add(i as u64), -9, 9);
    }
    (plan, env, store)
}

fn n_designs() -> usize {
    paper::all().len() + gallery::all().len()
}

fn go(
    plan: &systolizer::core::SystolicProgram,
    env: &Env,
    store: &HostStore,
    opt: OptMode,
    wavefront: WavefrontMode,
    kernel: KernelMode,
) -> systolizer::interp::SystolicRun {
    run_plan_batch_kernel(
        plan,
        env,
        store,
        ChannelPolicy::Rendezvous,
        &ElabOptions::default(),
        BatchMode::Auto,
        opt,
        wavefront,
        kernel,
        None,
        &[],
    )
    .unwrap()
}

/// Every design in the corpus: the kernel path agrees bit-for-bit with
/// the scalar macro-step path AND the sequential oracle, and on the
/// homogeneous designs it actually engages (waves fused, iterations
/// retired) rather than vacuously matching through the fallback.
#[test]
fn kernel_path_matches_macro_step_and_the_oracle_on_every_design() {
    let mut engaged = 0usize;
    for design in 0..n_designs() {
        let (plan, env, store) = prepared(design, 4, 17);
        let mut expected = store.clone();
        seq::run(&plan.source, &env, &mut expected);

        let scalar = go(&plan, &env, &store, OptMode::Off, WavefrontMode::Auto, KernelMode::Off);
        assert!(scalar.wavefront, "design {design}: wavefront gate");
        let k = scalar.kernel.as_ref().expect("wavefront runs carry a report");
        assert!(!k.enabled, "design {design}: --kernel off is disabled");
        assert_eq!(k.waves_fused, 0, "design {design}: off must not fuse");
        assert_eq!(scalar.store, expected, "design {design}: scalar vs oracle");

        let fused = go(&plan, &env, &store, OptMode::Off, WavefrontMode::Auto, KernelMode::Auto);
        assert!(fused.wavefront, "design {design}");
        assert_eq!(fused.store, expected, "design {design}: kernel vs oracle");
        assert_eq!(fused.store, scalar.store, "design {design}: kernel vs scalar");
        assert_eq!(fused.stats.messages, scalar.stats.messages, "design {design}");
        assert_eq!(fused.stats.steps, scalar.stats.steps, "design {design}");
        assert_eq!(fused.stats.processes, scalar.stats.processes);

        let k = fused.kernel.as_ref().unwrap();
        assert!(k.enabled, "design {design}");
        assert!(k.compiled, "design {design}: corpus bodies all kernelize");
        if k.eligible_chunks > 0 {
            // Eligible chunks exist, so the kernel path must actually
            // run, not vacuously match through the fallback.
            assert!(
                k.waves_fused > 0 && k.iterations > 0,
                "design {design}: eligible but idle (report: {k:?})"
            );
            engaged += 1;
        } else {
            // A design whose compute cells sit in one SCC (e.g. a
            // bidirectional pipeline) is all cyclic chunks: the report
            // must say so rather than silently fusing nothing.
            assert!(
                k.fallbacks.iter().any(|(r, _)| r.contains("cyclic chunk")),
                "design {design}: {:?}",
                k.fallbacks
            );
        }
        // Sources and sinks are transport processes; they always stay
        // scalar, and the report says why.
        assert!(
            k.fallbacks.iter().any(|(r, _)| r.contains("transport process")),
            "design {design}: {:?}",
            k.fallbacks
        );
    }
    // 5 of 9 at the time of writing: the unidirectional pipelines fuse;
    // the bidirectional designs are single-SCC waves and stay scalar.
    assert!(
        engaged >= 5,
        "most of the acyclic corpus must take the kernel path, got {engaged}/{}",
        n_designs()
    );
}

/// The same contract through the optimizer: delay-ring fusion rewrites
/// the module, the kernel plan is rebuilt against the optimized
/// wavefront staging, and stores remain bit-identical across the gate.
#[test]
fn kernel_path_is_invisible_on_the_optimized_module() {
    for design in 0..n_designs() {
        let (plan, env, store) = prepared(design, 4, 23);
        let off = go(&plan, &env, &store, OptMode::Auto, WavefrontMode::Auto, KernelMode::Off);
        let auto = go(&plan, &env, &store, OptMode::Auto, WavefrontMode::Auto, KernelMode::Auto);
        assert_eq!(auto.store, off.store, "design {design}");
        assert_eq!(auto.stats.messages, off.stats.messages, "design {design}");
        assert_eq!(auto.stats.steps, off.stats.steps, "design {design}");
    }
}

/// A deliberately inhomogeneous design: the guard makes the body
/// control-divergent across lanes, so the module must be rejected with
/// the documented reason and every compute chunk must fall back to the
/// scalar path — while the run still verifies against the oracle.
#[test]
fn guarded_bodies_fall_back_to_scalar_with_the_reject_reason() {
    let src = "
        program guarded;
        size n;
        var a[0..n], b[0..n], c[0..2*n];
        for i = 0 <- 1 -> n
        for j = 0 <- 1 -> n {
          if i <= j -> c[i+j] = c[i+j] + a[i] * b[j];
        }
    ";
    let sys = systolize_source(src, &SystolizeOptions::default()).unwrap();
    let (_, _, wavefronted, _, kernel) = sys
        .verify_batch_kernel(
            &[4],
            &["a", "b"],
            13,
            &ElabOptions::default(),
            BatchMode::Auto,
            OptMode::Off,
            WavefrontMode::Auto,
            KernelMode::Auto,
        )
        .expect("the scalar fallback still verifies");
    assert!(wavefronted, "the wavefront gate is independent of kernels");
    let k = kernel.expect("wavefront runs carry a report");
    assert!(k.enabled && !k.compiled);
    let reject = k.reject.as_deref().unwrap_or_default();
    assert!(
        reject.contains("guarded update (data-dependent control)"),
        "got: {reject}"
    );
    assert_eq!(k.waves_fused, 0, "nothing may fuse without a kernel");
    assert_eq!(k.eligible_chunks, 0);
    assert!(k.scalar_chunks > 0, "the waves all ran — on the scalar path");
    assert!(
        k.fallbacks.iter().any(|(r, _)| r.contains("guarded update")),
        "{:?}",
        k.fallbacks
    );

    // The direct compiler agrees with the executor's verdict.
    let err = systolizer::interp::kernelize(&sys.source.body).unwrap_err();
    assert!(err.contains("guarded update"), "{err}");
}

/// Case count override (see `tests/random_programs.rs`).
fn env_cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: env_cases(16), ..ProptestConfig::default() })]

    /// Kernel-on and kernel-off agree — stores bit-identical against
    /// each other and the sequential oracle, logical messages/steps
    /// invariant — over random (design, size, seed, gate) draws,
    /// including the parallel chunk mode (pool threads) and the
    /// optimized module.
    #[test]
    fn kernels_are_unobservable_on_random_configurations(
        design in 0usize..9,
        n in 1i64..=4,
        seed in 0u64..1000,
        opt_on in 0u8..2,
        par in 0u8..2,
    ) {
        let (plan, env, store) = prepared(design, n, seed);
        let opt = if opt_on == 1 { OptMode::Auto } else { OptMode::Off };
        let wavefront = if par == 1 { WavefrontMode::Par } else { WavefrontMode::Auto };
        let mut expected = store.clone();
        seq::run(&plan.source, &env, &mut expected);
        let off = go(&plan, &env, &store, opt, wavefront, KernelMode::Off);
        let auto = go(&plan, &env, &store, opt, wavefront, KernelMode::Auto);
        prop_assert_eq!(&off.store, &expected);
        prop_assert_eq!(&auto.store, &expected);
        prop_assert_eq!(auto.stats.messages, off.stats.messages);
        prop_assert_eq!(auto.stats.steps, off.stats.steps);
        prop_assert_eq!(auto.stats.rounds, off.stats.rounds);
        prop_assert!(auto.wavefront && off.wavefront);
    }
}
