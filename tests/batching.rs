//! Steady-state batching regression: the macro-stepping fast path
//! (`systolic_runtime::batch`, see `docs/scheduler.md`) must be
//! observationally invisible — bit-identical recovered stores and
//! invariant logical `messages`/`steps` counts against the rendezvous
//! engine on all three executors — and its engagement gate must be
//! exactly as documented: `--batch off`, a buffered channel policy, an
//! attached recorder, or a non-FIFO schedule policy each force the
//! unbatched engine. All runs here pass `OptMode::Off`: the message and
//! step pins below are the *unfused* counts, and the optimizer (which
//! legitimately changes them) has its own differential suite in
//! `tests/optimizer.rs`.

use proptest::prelude::*;
use std::time::Duration;
use systolizer::core::{compile, Options};
use systolizer::interp::{
    run_plan, run_plan_batch, run_plan_partitioned_batch, run_plan_threaded_batch, BatchMode,
    ElabOptions, OptMode, WavefrontMode,
};
use systolizer::ir::{gallery, HostStore, SourceProgram};
use systolizer::math::Env;
use systolizer::runtime::{shared, ChanId, ChannelPolicy, FifoPolicy, MetricsRecorder};
use systolizer::synthesis::{derive_array, placement::paper};

/// Compile one design from the corpus (the 4 paper appendix designs
/// followed by the 5 gallery programs) at size `n`, with seeded inputs.
fn prepared(
    design: usize,
    n: i64,
    seed: u64,
) -> (systolizer::core::SystolicProgram, Env, HostStore) {
    let (p, a): (SourceProgram, _) = if design < 4 {
        let (_, p, a) = paper::all().swap_remove(design);
        (p, a)
    } else {
        let p = gallery::all().swap_remove(design - 4);
        let a = derive_array(&p, 2, 4).unwrap();
        (p, a)
    };
    let plan = compile(&p, &a, &Options::default()).unwrap();
    let mut env = Env::new();
    for &s in &p.sizes {
        env.bind(s, n);
    }
    let mut store = HostStore::allocate(&p, &env);
    let inputs: &[&str] = if p.name == "fir_filter" {
        &["h", "x"]
    } else {
        &["a", "b"]
    };
    for (i, name) in inputs.iter().enumerate() {
        store.fill_random(name, seed.wrapping_add(i as u64), -9, 9);
    }
    (plan, env, store)
}

fn n_designs() -> usize {
    paper::all().len() + gallery::all().len()
}

#[test]
fn batched_coop_is_bit_identical_with_invariant_logical_stats() {
    for design in 0..n_designs() {
        let (plan, env, store) = prepared(design, 4, 11);
        let base = run_plan(
            &plan,
            &env,
            &store,
            ChannelPolicy::Rendezvous,
            &ElabOptions::default(),
        )
        .unwrap();
        let fast = run_plan_batch(
            &plan,
            &env,
            &store,
            ChannelPolicy::Rendezvous,
            &ElabOptions::default(),
            BatchMode::Auto,
            OptMode::Off,
            WavefrontMode::Off,
            None,
            &[],
        )
        .unwrap();
        assert!(fast.batched, "design {design}: gate should admit this run");
        assert_eq!(fast.store, base.store, "design {design}: store differs");
        assert_eq!(fast.stats.messages, base.stats.messages, "design {design}");
        assert_eq!(fast.stats.steps, base.stats.steps, "design {design}");
        assert_eq!(fast.stats.processes, base.stats.processes);
        assert!(
            fast.stats.rounds <= base.stats.rounds,
            "design {design}: batching must not add scheduler rounds \
             ({} vs {})",
            fast.stats.rounds,
            base.stats.rounds
        );
    }
}

#[test]
fn batched_threaded_and_partitioned_agree_with_the_coop_baseline() {
    let timeout = Duration::from_secs(30);
    for design in 0..n_designs() {
        let (plan, env, store) = prepared(design, 3, 7);
        let base = run_plan(
            &plan,
            &env,
            &store,
            ChannelPolicy::Rendezvous,
            &ElabOptions::default(),
        )
        .unwrap();
        let th =
            run_plan_threaded_batch(&plan, &env, &store, timeout, BatchMode::Auto, OptMode::Off)
                .unwrap();
        assert!(th.batched, "design {design}");
        assert_eq!(th.store, base.store, "design {design}: threaded store");
        assert_eq!(th.stats.messages, base.stats.messages, "design {design}");
        assert_eq!(th.stats.steps, base.stats.steps, "design {design}");
        for workers in [1usize, 3] {
            let pt = run_plan_partitioned_batch(
                &plan,
                &env,
                &store,
                workers,
                timeout,
                BatchMode::Auto,
                OptMode::Off,
            )
            .unwrap();
            assert!(pt.batched, "design {design} w={workers}");
            assert_eq!(pt.store, base.store, "design {design} w={workers}: store");
            assert_eq!(pt.stats.messages, base.stats.messages, "w={workers}");
            assert_eq!(pt.stats.steps, base.stats.steps, "w={workers}");
        }
    }
}

/// A policy that actually exercises its hooks (reverses each round's
/// firing order) and honestly reports `is_fifo() == false`.
struct ReversePolicy;

impl systolizer::runtime::SchedulePolicy for ReversePolicy {
    fn schedule_round(&mut self, _round: u64, fire: &mut Vec<ChanId>, _defer: &mut Vec<ChanId>) {
        fire.reverse();
    }

    fn label(&self) -> String {
        "reverse".into()
    }
}

/// The engagement gate, pinned feature by feature. Every configuration
/// still produces the correct store; only the `batched` flag may change.
#[test]
fn gate_closes_for_every_observable_feature() {
    let (plan, env, store) = prepared(2, 3, 5); // E.1
    let elab = ElabOptions::default();
    let run = |policy, batch, sched, recorders: &[_]| {
        run_plan_batch(
            &plan,
            &env,
            &store,
            policy,
            &elab,
            batch,
            OptMode::Off,
            WavefrontMode::Off,
            sched,
            recorders,
        )
        .unwrap()
    };
    let base = run(ChannelPolicy::Rendezvous, BatchMode::Off, None, &[]);
    assert!(!base.batched, "--batch off forces the rendezvous engine");

    let auto = run(ChannelPolicy::Rendezvous, BatchMode::Auto, None, &[]);
    assert!(auto.batched, "plain Auto run engages");
    assert_eq!(auto.store, base.store);

    let fifo = run(
        ChannelPolicy::Rendezvous,
        BatchMode::Auto,
        Some(Box::new(FifoPolicy)),
        &[],
    );
    assert!(fifo.batched, "the identity policy keeps the gate open");
    assert_eq!(fifo.store, base.store);

    let perturbed = run(
        ChannelPolicy::Rendezvous,
        BatchMode::Auto,
        Some(Box::new(ReversePolicy)),
        &[],
    );
    assert!(!perturbed.batched, "a non-FIFO policy closes the gate");
    assert_eq!(perturbed.store, base.store);

    let (metrics, recorder) = shared(MetricsRecorder::new());
    let observed = run(
        ChannelPolicy::Rendezvous,
        BatchMode::Auto,
        None,
        &[recorder],
    );
    assert!(!observed.batched, "a recorder closes the gate");
    assert_eq!(observed.store, base.store);
    assert!(
        metrics.lock().report().transfers > 0,
        "the recorder really observed the run"
    );

    let buffered = run(ChannelPolicy::Buffered(4), BatchMode::Auto, None, &[]);
    assert!(!buffered.batched, "the buffered ablation closes the gate");
    assert_eq!(buffered.store, base.store);
}

/// The wavefront executor's gate corners (see `docs/wavefront.md`): the
/// degenerate sizes still engage and agree; any feature that closes the
/// batching gate closes the wavefront gate with it (the wavefront rung
/// sits strictly above the batched rung on the same ladder), and the run
/// still produces the correct store.
#[test]
fn wavefront_gate_corners() {
    let elab = ElabOptions::default();
    // n=0 and n=1: one-iteration loop nests — trivial pipelines with
    // single-process waves. The wavefront path must engage and agree.
    for n in [0i64, 1, 2] {
        let (plan, env, store) = prepared(0, n, 31); // D.1
        let batched = run_plan_batch(
            &plan,
            &env,
            &store,
            ChannelPolicy::Rendezvous,
            &elab,
            BatchMode::Auto,
            OptMode::Off,
            WavefrontMode::Off,
            None,
            &[],
        )
        .unwrap();
        let wf = run_plan_batch(
            &plan,
            &env,
            &store,
            ChannelPolicy::Rendezvous,
            &elab,
            BatchMode::Auto,
            OptMode::Off,
            WavefrontMode::Auto,
            None,
            &[],
        )
        .unwrap();
        assert!(wf.wavefront, "n={n}: the wavefront gate should admit");
        assert!(wf.batched, "n={n}: wavefront implies batched");
        assert_eq!(wf.store, batched.store, "n={n}");
        assert_eq!(wf.stats.messages, batched.stats.messages, "n={n}");
        assert_eq!(wf.stats.steps, batched.stats.steps, "n={n}");
    }

    let (plan, env, store) = prepared(2, 3, 5); // E.1
    let run = |sched, recorders: &[_]| {
        run_plan_batch(
            &plan,
            &env,
            &store,
            ChannelPolicy::Rendezvous,
            &elab,
            BatchMode::Auto,
            OptMode::Off,
            WavefrontMode::Auto,
            sched,
            recorders,
        )
        .unwrap()
    };
    let base = run(None, &[]);
    assert!(base.wavefront, "plain Auto run takes the wavefront rung");

    let (metrics, recorder) = shared(MetricsRecorder::new());
    let observed = run(None, &[recorder]);
    assert!(!observed.wavefront, "a recorder closes the wavefront gate");
    assert!(!observed.batched, "…and the batching gate beneath it");
    assert_eq!(observed.store, base.store);
    assert!(metrics.lock().report().transfers > 0);

    let perturbed = run(Some(Box::new(ReversePolicy)), &[]);
    assert!(!perturbed.wavefront, "a non-FIFO policy closes the gate");
    assert!(!perturbed.batched);
    assert_eq!(perturbed.store, base.store);
}

/// Case count override (see `tests/random_programs.rs`).
fn env_cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: env_cases(16), ..ProptestConfig::default() })]

    /// Batched and unbatched execution agree — stores bit-identical,
    /// logical messages/steps invariant — on all three executors, over
    /// random (design, size, input seed, worker count) draws.
    #[test]
    fn batching_is_unobservable_on_random_configurations(
        design in 0usize..9,
        n in 1i64..=4,
        seed in 0u64..1000,
        workers in 1usize..=4,
    ) {
        let (plan, env, store) = prepared(design, n, seed);
        let timeout = Duration::from_secs(30);
        let base = run_plan(
            &plan,
            &env,
            &store,
            ChannelPolicy::Rendezvous,
            &ElabOptions::default(),
        )
        .unwrap();
        let coop = run_plan_batch(
            &plan,
            &env,
            &store,
            ChannelPolicy::Rendezvous,
            &ElabOptions::default(),
            BatchMode::Auto,
            OptMode::Off,
            WavefrontMode::Off,
            None,
            &[],
        )
        .unwrap();
        prop_assert_eq!(&coop.store, &base.store);
        prop_assert_eq!(coop.stats.messages, base.stats.messages);
        prop_assert_eq!(coop.stats.steps, base.stats.steps);
        let th = run_plan_threaded_batch(&plan, &env, &store, timeout, BatchMode::Auto, OptMode::Off).unwrap();
        prop_assert_eq!(&th.store, &base.store);
        prop_assert_eq!(th.stats.messages, base.stats.messages);
        prop_assert_eq!(th.stats.steps, base.stats.steps);
        let pt = run_plan_partitioned_batch(
            &plan,
            &env,
            &store,
            workers,
            timeout,
            BatchMode::Auto,
            OptMode::Off,
        )
        .unwrap();
        prop_assert_eq!(&pt.store, &base.store);
        prop_assert_eq!(pt.stats.messages, base.stats.messages);
        prop_assert_eq!(pt.stats.steps, base.stats.steps);
    }

    /// The wavefront executor is differentially pinned against the
    /// batched run it replaces: bit-identical stores, invariant logical
    /// messages/steps, in both the sequential and the parallel chunk
    /// modes, over random (design, size, seed) draws.
    #[test]
    fn wavefront_agrees_with_the_batched_run(
        design in 0usize..9,
        n in 1i64..=4,
        seed in 0u64..1000,
    ) {
        let (plan, env, store) = prepared(design, n, seed);
        let go = |wavefront| {
            run_plan_batch(
                &plan,
                &env,
                &store,
                ChannelPolicy::Rendezvous,
                &ElabOptions::default(),
                BatchMode::Auto,
                OptMode::Off,
                wavefront,
                None,
                &[],
            )
            .unwrap()
        };
        let batched = go(WavefrontMode::Off);
        prop_assert!(batched.batched);
        prop_assert!(!batched.wavefront);
        for mode in [WavefrontMode::Auto, WavefrontMode::Par] {
            let wf = go(mode);
            prop_assert!(wf.wavefront, "design {} n={}: gate should admit", design, n);
            prop_assert_eq!(&wf.store, &batched.store);
            prop_assert_eq!(wf.stats.messages, batched.stats.messages);
            prop_assert_eq!(wf.stats.steps, batched.stats.steps);
            prop_assert_eq!(wf.stats.processes, batched.stats.processes);
        }
    }
}
