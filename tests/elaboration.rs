//! Differential suite for two-phase elaboration: across the whole
//! design gallery, `elaborate_skeleton` + `instantiate` must be
//! **bit-identical** to the direct single-phase `elaborate` — same
//! module structure, same output maps, same census and endpoint tables
//! — at every size and under every protocol variant. The direct
//! elaborator is the oracle; the module store in front of the two-phase
//! path must never change a result, however warm.

use proptest::prelude::*;
use std::time::Duration;
use systolizer::core::{compile, Options, SystolicProgram};
use systolizer::interp::{
    elaborate, elaborate_skeleton, instantiate, run_plan, run_plan_batch, BatchMode, ElabOptions,
    ModuleStore, OptMode, WavefrontMode,
};
use systolizer::ir::{seq, HostStore};
use systolizer::math::Env;
use systolizer::runtime::ChannelPolicy;
use systolizer::synthesis::placement::paper;

/// The same gallery as `tests/oracle.rs`: the four appendix designs
/// plus the FIR filter on a derived array and the shipped `fir.sys`
/// through the full front end.
struct Design {
    label: &'static str,
    plan: SystolicProgram,
    inputs: Vec<&'static str>,
    sizes: Vec<Vec<i64>>,
}

fn designs() -> Vec<Design> {
    let mut out = Vec::new();
    for (label, p, a) in paper::all() {
        out.push(Design {
            label,
            plan: compile(&p, &a, &Options::default()).unwrap(),
            inputs: vec!["a", "b"],
            sizes: if label.starts_with("matmul") {
                vec![vec![1], vec![2], vec![4]]
            } else {
                vec![vec![1], vec![3], vec![6]]
            },
        });
    }
    let p = systolizer::ir::gallery::fir_filter();
    let a = systolizer::synthesis::derive_array(&p, 2, 4).unwrap();
    out.push(Design {
        label: "fir",
        plan: compile(&p, &a, &Options::default()).unwrap(),
        inputs: vec!["h", "x"],
        sizes: vec![vec![1, 2], vec![2, 5], vec![3, 4]],
    });
    let sys = systolizer::systolize_source(
        include_str!("../programs/fir.sys"),
        &systolizer::SystolizeOptions::default(),
    )
    .unwrap();
    out.push(Design {
        label: "fir.sys",
        plan: sys.plan,
        inputs: vec!["h", "x"],
        sizes: vec![vec![1, 2], vec![2, 5], vec![3, 4]],
    });
    out
}

fn size_env(plan: &SystolicProgram, vals: &[i64]) -> Env {
    let mut env = Env::new();
    for (&s, &v) in plan.source.sizes.iter().zip(vals) {
        env.bind(s, v);
    }
    env
}

fn seeded_store(d: &Design, env: &Env, seed: u64) -> HostStore {
    let mut store = HostStore::allocate(&d.plan.source, env);
    for (i, name) in d.inputs.iter().enumerate() {
        store.fill_random(name, seed.wrapping_add(i as u64), -9, 9);
    }
    store
}

/// Every elaboration-options variant the executors can request.
fn option_variants() -> Vec<(&'static str, ElabOptions)> {
    vec![
        ("default", ElabOptions::default()),
        (
            "split_propagation",
            ElabOptions {
                split_propagation: true,
                ..Default::default()
            },
        ),
        (
            "merge_io",
            ElabOptions {
                merge_io: true,
                ..Default::default()
            },
        ),
        (
            "no_internal_buffers",
            ElabOptions {
                internal_buffers: false,
                ..Default::default()
            },
        ),
    ]
}

#[test]
fn two_phase_elaboration_is_bit_identical_across_the_gallery() {
    for d in designs() {
        for (opts_label, opts) in option_variants() {
            let skel = elaborate_skeleton(&d.plan, &opts);
            for sizes in &d.sizes {
                let env = size_env(&d.plan, sizes);
                let store = seeded_store(&d, &env, 7);
                let ctx = format!("{} {opts_label} sizes={sizes:?}", d.label);
                let direct = elaborate(&d.plan, &env, &store, &opts)
                    .unwrap_or_else(|e| panic!("{ctx}: direct: {e}"));
                let two_phase = instantiate(&skel, &env, &store)
                    .unwrap_or_else(|e| panic!("{ctx}: two-phase: {e}"));
                assert!(
                    direct.module.same_structure(&two_phase.module),
                    "{ctx}: module structure diverges"
                );
                assert_eq!(direct.outputs, two_phase.outputs, "{ctx}: output maps");
                assert_eq!(direct.census, two_phase.census, "{ctx}: census");
                assert_eq!(direct.endpoints, two_phase.endpoints, "{ctx}: endpoints");
                assert_eq!(direct.comp_at, two_phase.comp_at, "{ctx}: comp table");
            }
        }
    }
}

#[test]
fn warm_cache_runs_bit_match_cold_runs_across_engine_modes() {
    // Twice through every (batch, opt) configuration: the second run is
    // a guaranteed module-store hit and must return the same store and
    // stats as the first (a miss or a hit from another test — either
    // way the sequential oracle pins correctness).
    for d in designs() {
        let sizes = &d.sizes[1];
        let env = size_env(&d.plan, sizes);
        let store = seeded_store(&d, &env, 23);
        let mut expected = store.clone();
        seq::run(&d.plan.source, &env, &mut expected);
        for (batch, opt, wavefront) in [
            (BatchMode::Auto, OptMode::Auto, WavefrontMode::Auto),
            (BatchMode::Auto, OptMode::Auto, WavefrontMode::Off),
            (BatchMode::Auto, OptMode::Off, WavefrontMode::Auto),
            (BatchMode::Auto, OptMode::Off, WavefrontMode::Off),
            (BatchMode::Off, OptMode::Off, WavefrontMode::Off),
        ] {
            let ctx = format!(
                "{} sizes={sizes:?} {batch:?}/{opt:?}/{wavefront:?}",
                d.label
            );
            let run_once = || {
                run_plan_batch(
                    &d.plan,
                    &env,
                    &store,
                    ChannelPolicy::Rendezvous,
                    &ElabOptions::default(),
                    batch,
                    opt,
                    wavefront,
                    None,
                    &[],
                )
                .unwrap_or_else(|e| panic!("{ctx}: {e}"))
            };
            let cold = run_once();
            let warm = run_once();
            assert_eq!(cold.stats, warm.stats, "{ctx}: stats drift across hits");
            assert_eq!(cold.batched, warm.batched, "{ctx}");
            assert_eq!(cold.wavefront, warm.wavefront, "{ctx}");
            for name in expected.names() {
                assert_eq!(cold.store.get(name), expected.get(name), "{ctx}: {name}");
                assert_eq!(warm.store.get(name), cold.store.get(name), "{ctx}: {name}");
            }
        }
    }
}

#[test]
fn explicit_invalidation_dirties_and_regenerates() {
    let (p, a) = paper::polyprod_d1();
    let plan = compile(&p, &a, &Options::default()).unwrap();
    let mut env = Env::new();
    env.bind(plan.source.sizes[0], 4);
    let store = HostStore::allocate(&plan.source, &env);
    let ms = ModuleStore::new();
    let opts = ElabOptions::default();
    ms.module(&plan, &env, &store, &opts).unwrap();
    ms.module(&plan, &env, &store, &opts).unwrap();
    let s = ms.stats();
    assert_eq!((s.module_misses, s.module_hits), (1, 1));
    let g0 = ms.generation();
    ms.invalidate();
    assert_eq!(ms.generation(), g0 + 1, "invalidation bumps the generation");
    ms.module(&plan, &env, &store, &opts).unwrap();
    let s = ms.stats();
    assert_eq!(s.module_misses, 2, "flushed entries must re-instantiate");
    assert_eq!(s.skeleton_misses, 2, "skeletons are flushed too");
    assert_eq!(s.generation, 1, "generation is part of the stats snapshot");
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        ..Default::default()
    })]

    /// Cache hits never change results: for a random design, size, and
    /// input seed, running twice through the (global) module store —
    /// second run a guaranteed hit — matches the sequential reference
    /// both times, with identical stats.
    #[test]
    fn cache_hits_never_change_results(
        which in 0usize..4,
        n in 1i64..=4,
        seed in 0u64..100_000,
    ) {
        let (label, p, a) = paper::all().remove(which);
        let plan = compile(&p, &a, &Options::default()).unwrap();
        let mut env = Env::new();
        env.bind(plan.source.sizes[0], n);
        let mut store = HostStore::allocate(&plan.source, &env);
        for (i, name) in ["a", "b"].iter().enumerate() {
            store.fill_random(name, seed.wrapping_add(i as u64), -9, 9);
        }
        let mut expected = store.clone();
        seq::run(&plan.source, &env, &mut expected);
        let first = run_plan(&plan, &env, &store, ChannelPolicy::Rendezvous, &ElabOptions::default())
            .map_err(|e| TestCaseError::fail(format!("{label} n={n}: {e}")))?;
        let second = run_plan(&plan, &env, &store, ChannelPolicy::Rendezvous, &ElabOptions::default())
            .map_err(|e| TestCaseError::fail(format!("{label} n={n}: {e}")))?;
        prop_assert_eq!(&first.stats, &second.stats);
        for name in expected.names() {
            prop_assert_eq!(first.store.get(name), expected.get(name), "{} n={} {}", label, n, name);
            prop_assert_eq!(second.store.get(name), expected.get(name), "{} n={} {}", label, n, name);
        }
    }
}

// Keep the executors honest about sharing: a threaded and a partitioned
// run after a coop run of the same configuration must all be served by
// the same cached module (the elaboration happens at most once).
#[test]
fn all_executors_share_one_cached_module() {
    let (p, a) = paper::matmul_e1();
    let plan = compile(&p, &a, &Options::default()).unwrap();
    let mut env = Env::new();
    env.bind(plan.source.sizes[0], 2);
    let store = HostStore::allocate(&plan.source, &env);
    let ms = ModuleStore::new();
    let opts = ElabOptions::default();
    let first = ms.module(&plan, &env, &store, &opts).unwrap();
    let again = ms.module(&plan, &env, &store, &opts).unwrap();
    assert!(
        std::sync::Arc::ptr_eq(&first.elab.module, &again.elab.module),
        "repeat lookups must share the very same Arc<ProcIrModule>"
    );
    let _ = systolizer::interp::verify_equivalence_all(
        &plan,
        &env,
        &["a", "b"],
        3,
        2,
        Duration::from_secs(60),
    )
    .unwrap();
}
