//! Whole-pipeline fuzzing over *generated source programs*: random loop
//! nests, index maps, bodies, and loop directions — not just the fixed
//! gallery. Every accepted (program, array) pair must compile, satisfy
//! the Appendix B theorems, and execute equivalently to its own
//! sequential semantics.

use proptest::prelude::*;
use systolizer::core::{compile, theorems, Options};
use systolizer::interp::verify_equivalence;
use systolizer::ir::expr::build::*;
use systolizer::ir::{
    program::covering_bounds, BasicStatement, IndexedVar, Loop, SourceProgram, Stream,
};
use systolizer::math::{Affine, Env, Matrix, VarTable};

/// Candidate index-map rows for r = 2 (must be non-zero, constant-free).
const ROWS2: &[[i64; 2]] = &[[1, 0], [0, 1], [1, 1], [1, -1], [-1, 1], [2, 1], [1, 2]];

/// Candidate 2x3 index maps for r = 3 (rank checked at build time).
const ROWS3: &[[i64; 3]] = &[
    [1, 0, 0],
    [0, 1, 0],
    [0, 0, 1],
    [1, 0, -1],
    [0, 1, -1],
    [1, -1, 0],
    [1, 1, 0],
    [0, 1, 1],
];

#[derive(Clone, Debug)]
struct Spec {
    r: usize,
    /// Row choices per stream (1 row for r=2, 2 for r=3).
    maps: Vec<Vec<usize>>,
    /// rb offset per loop (rb = n + offset).
    offsets: Vec<i64>,
    /// Loop directions.
    steps: Vec<i64>,
    /// Body shape selector.
    body: u8,
}

fn spec_strategy() -> impl Strategy<Value = Spec> {
    (2usize..=3).prop_flat_map(|r| {
        let row_count = r - 1;
        let pool = if r == 2 { ROWS2.len() } else { ROWS3.len() };
        (
            proptest::collection::vec(proptest::collection::vec(0..pool, row_count), 3),
            proptest::collection::vec(0i64..=2, r),
            proptest::collection::vec(prop_oneof![Just(1i64), Just(-1i64)], r),
            0u8..3,
        )
            .prop_map(move |(maps, offsets, steps, body)| Spec {
                r,
                maps,
                offsets,
                steps,
                body,
            })
    })
}

/// Build a source program from a spec; `None` if the index maps are
/// rank-deficient or duplicate a variable's map (out of envelope).
fn build_program(spec: &Spec) -> Option<SourceProgram> {
    let mut vars = VarTable::new();
    let n = vars.size("n");
    let names = ["a", "b", "c"];
    let loops: Vec<Loop> = (0..spec.r)
        .map(|i| Loop {
            index_name: format!("x{i}"),
            lb: Affine::zero(),
            rb: Affine::var(n) + Affine::int(spec.offsets[i]),
            step: spec.steps[i],
        })
        .collect();
    let mut streams = Vec::new();
    let mut variables = Vec::new();
    for (k, rows_idx) in spec.maps.iter().enumerate() {
        let rows: Vec<Vec<i64>> = rows_idx
            .iter()
            .map(|&ri| {
                if spec.r == 2 {
                    ROWS2[ri].to_vec()
                } else {
                    ROWS3[ri].to_vec()
                }
            })
            .collect();
        let m = Matrix::from_rows(&rows);
        if m.rank() != spec.r - 1 {
            return None;
        }
        variables.push(IndexedVar {
            name: names[k].into(),
            bounds: covering_bounds(&m, &loops),
        });
        streams.push(Stream {
            variable: k,
            index_map: m,
        });
    }
    let body = match spec.body {
        // c := c + a * b (the classic accumulation).
        0 => BasicStatement {
            updates: vec![assign(2, add(s(2), mul(s(0), s(1))))],
        },
        // c := max(c, a + b) (tropical semiring — shortest/longest paths).
        1 => BasicStatement {
            updates: vec![assign(2, max(s(2), add(s(0), s(1))))],
        },
        // Guarded update + unguarded second update.
        _ => BasicStatement {
            updates: vec![
                guarded(
                    cmp(systolizer::ir::CmpOp::Le, idx(0), idx(spec.r - 1)),
                    2,
                    add(s(2), mul(s(0), s(1))),
                ),
                assign(2, add(s(2), s(0))),
            ],
        },
    };
    Some(SourceProgram {
        name: "generated".into(),
        vars,
        sizes: vec![n],
        loops,
        variables,
        streams,
        body,
    })
}

/// Case count: default, overridable via PROPTEST_CASES for deep fuzzing.
fn env_cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: env_cases(40), ..ProptestConfig::default() })]

    #[test]
    fn generated_programs_compile_and_run_correctly(
        spec in spec_strategy(),
        nval in 1i64..=3,
        seed in 0u64..500,
    ) {
        let Some(program) = build_program(&spec) else { return Ok(()) };
        if systolizer::ir::validate(&program, 3).is_err() {
            return Ok(()); // out of the Appendix A envelope
        }
        let Some(array) = systolizer::synthesis::derive_array(&program, 1, 3) else {
            return Ok(()); // no valid schedule within the bound
        };
        let plan = match compile(&program, &array, &Options::default()) {
            Ok(p) => p,
            Err(systolizer::core::CompileError::NonIntegerSolution { .. }) => return Ok(()),
            Err(e) => return Err(TestCaseError::fail(format!("compile: {e}"))),
        };
        let mut env = Env::new();
        env.bind(program.sizes[0], nval);
        let audit = theorems::audit(&plan, &env);
        prop_assert!(audit.ok(), "theorems: {:?} (spec {spec:?})", audit.failures);
        // The paper's sequential-phase protocol is not deadlock-free for
        // every valid design (a reproduction finding; see EXPERIMENTS.md).
        // When it deadlocks, the split-propagation protocol must succeed
        // — and when it doesn't, the results must be correct.
        match verify_equivalence(&plan, &env, &["a", "b"], seed) {
            Ok(_) => {}
            Err(e) if e.contains("deadlock") => {
                let opts = systolizer::interp::ElabOptions {
                    split_propagation: true,
                    ..Default::default()
                };
                let res = systolizer::interp::verify_equivalence_with(
                    &plan, &env, &["a", "b"], seed, &opts,
                );
                prop_assert!(
                    res.is_ok(),
                    "split propagation also failed: {:?} (spec {spec:?})",
                    res.err()
                );
            }
            Err(e) => return Err(TestCaseError::fail(format!("{e} (spec {spec:?})"))),
        }
    }

    /// Merged host i/o (Sec. 4.2's deferred optimization) composed with
    /// split propagation on arbitrary generated designs: results must
    /// stay correct whenever the run completes, and any deadlock must be
    /// detected (not a hang). Merging serializes the host, which can in
    /// principle interact with tight rendezvous schedules — the test
    /// documents the observed envelope.
    #[test]
    fn merged_io_is_correct_when_it_completes(
        spec in spec_strategy(),
        nval in 1i64..=3,
        seed in 0u64..500,
    ) {
        let Some(program) = build_program(&spec) else { return Ok(()) };
        if systolizer::ir::validate(&program, 3).is_err() {
            return Ok(());
        }
        let Some(array) = systolizer::synthesis::derive_array(&program, 1, 3) else {
            return Ok(());
        };
        let plan = match compile(&program, &array, &Options::default()) {
            Ok(p) => p,
            Err(_) => return Ok(()),
        };
        let mut env = Env::new();
        env.bind(program.sizes[0], nval);
        let opts = systolizer::interp::ElabOptions {
            merge_io: true,
            split_propagation: true,
            ..Default::default()
        };
        match systolizer::interp::verify_equivalence_with(&plan, &env, &["a", "b"], seed, &opts) {
            Ok(_) => {}
            Err(e) => {
                prop_assert!(
                    e.contains("deadlock"),
                    "non-deadlock failure under merged io: {e} (spec {spec:?})"
                );
            }
        }
    }

    /// The split-propagation protocol is itself correct on arbitrary
    /// generated designs (not only as a deadlock fallback).
    #[test]
    fn split_propagation_is_always_correct(
        spec in spec_strategy(),
        nval in 1i64..=3,
        seed in 0u64..500,
    ) {
        let Some(program) = build_program(&spec) else { return Ok(()) };
        if systolizer::ir::validate(&program, 3).is_err() {
            return Ok(());
        }
        let Some(array) = systolizer::synthesis::derive_array(&program, 1, 3) else {
            return Ok(());
        };
        let plan = match compile(&program, &array, &Options::default()) {
            Ok(p) => p,
            Err(_) => return Ok(()),
        };
        let mut env = Env::new();
        env.bind(program.sizes[0], nval);
        let opts = systolizer::interp::ElabOptions {
            split_propagation: true,
            ..Default::default()
        };
        let res = systolizer::interp::verify_equivalence_with(
            &plan, &env, &["a", "b"], seed, &opts,
        );
        prop_assert!(res.is_ok(), "{:?} (spec {spec:?})", res.err());
    }

    /// The covering-bounds helper really covers: every accessed element
    /// lies inside the declared variable space.
    #[test]
    fn covering_bounds_cover_all_accesses(
        spec in spec_strategy(),
        nval in 0i64..=4,
    ) {
        let Some(program) = build_program(&spec) else { return Ok(()) };
        let mut env = Env::new();
        env.bind(program.sizes[0], nval);
        for st in &program.streams {
            let b: Vec<(i64, i64)> = program.variables[st.variable]
                .bounds
                .iter()
                .map(|(lo, hi)| (lo.eval_int(&env), hi.eval_int(&env)))
                .collect();
            for x in program.index_space_seq(&env) {
                let e = st.index_map.apply_int(&x);
                for (v, &(lo, hi)) in e.iter().zip(&b) {
                    prop_assert!(*v >= lo && *v <= hi, "{e:?} outside {b:?}");
                }
            }
        }
    }
}
