//! Byte-exact snapshot tests for the generated programs of the four
//! appendix designs. Unlike `codegen_golden.rs` (which checks structural
//! content against the paper's text), these pin our *own* output so that
//! codegen changes are always deliberate.
//!
//! Regenerate after an intentional change with:
//! `UPDATE_GOLDEN=1 cargo test --test golden_snapshots`

use std::fs;
use std::path::PathBuf;
use systolizer::synthesis::placement::paper;
use systolizer::{systolize, PlaceChoice, SystolizeOptions};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn check(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        fs::create_dir_all(golden_dir()).unwrap();
        fs::write(&path, actual).unwrap();
        return;
    }
    let expected = fs::read_to_string(&path)
        .unwrap_or_else(|_| panic!("missing golden file {path:?}; run with UPDATE_GOLDEN=1"));
    assert_eq!(
        actual, expected,
        "generated text for {name} changed; review and regenerate with UPDATE_GOLDEN=1"
    );
}

fn design(idx: usize) -> systolizer::Systolized {
    let (_, p, a) = paper::all().into_iter().nth(idx).unwrap();
    systolize(
        &p,
        &SystolizeOptions {
            place: PlaceChoice::Explicit(a),
            ..Default::default()
        },
    )
    .unwrap()
}

#[test]
fn paper_code_snapshots() {
    for (idx, name) in [
        (0usize, "d1_paper.txt"),
        (1, "d2_paper.txt"),
        (2, "e1_paper.txt"),
        (3, "e2_paper.txt"),
    ] {
        check(name, &design(idx).paper_code());
    }
}

#[test]
fn occam_code_snapshots() {
    check("d1_occam.txt", &design(0).occam_code());
    check("e2_occam.txt", &design(3).occam_code());
}

#[test]
fn c_code_snapshots() {
    check("d1_c.txt", &design(0).c_code());
    check("e2_c.txt", &design(3).c_code());
}

/// One observed run of polyprod D.1 at n=4 with seeded inputs — the
/// fixture behind the observability snapshots below. Everything in the
/// artifacts is virtual-time-based, so the bytes are deterministic.
fn observed_d1() -> systolizer::interp::Observed {
    use systolizer::interp::{observe_plan, ElabOptions};
    use systolizer::runtime::ChannelPolicy;
    let sys = design(0);
    let env = sys.size_env(&[4]);
    let mut store = systolizer::ir::HostStore::allocate(&sys.source, &env);
    store.fill_random("a", 11, -9, 9);
    store.fill_random("b", 12, -9, 9);
    observe_plan(
        &sys.plan,
        &env,
        &store,
        ChannelPolicy::Rendezvous,
        &ElabOptions::default(),
    )
    .unwrap()
}

/// Pins the `systolic-metrics-v1` JSON for D.1: schema drift (renamed
/// keys, reordered sections, changed histograms) must be deliberate,
/// because downstream tooling parses this document.
#[test]
fn metrics_json_snapshot() {
    check("d1_metrics.json", &observed_d1().report.to_json());
}

/// Pins the Perfetto track names (the `thread_name`/`process_name`
/// metadata) for D.1: the stream-and-coordinate naming (`a@(3):in`) is
/// the contract that makes traces readable in the paper's vocabulary.
/// Only metadata lines are pinned — slice events are covered by the
/// metrics snapshot's counts.
#[test]
fn perfetto_track_names_snapshot() {
    let obs = observed_d1();
    let mut tracks: String = obs
        .perfetto_json
        .lines()
        .filter(|l| l.contains("\"process_name\"") || l.contains("\"thread_name\""))
        .map(|l| l.trim().trim_end_matches(','))
        .collect::<Vec<_>>()
        .join("\n");
    tracks.push('\n');
    check("d1_perfetto_tracks.txt", &tracks);
}

#[test]
fn report_snapshots() {
    for (idx, name) in [
        (0usize, "d1_report.txt"),
        (1, "d2_report.txt"),
        (2, "e1_report.txt"),
        (3, "e2_report.txt"),
    ] {
        check(name, &design(idx).report());
    }
}
