//! Differential suite for the ProcIR optimizer (`systolic_runtime::opt`,
//! see `docs/process-ir.md`): `--opt auto` may fuse relay chains into
//! delay rings and rewrite ops, but the recovered store must stay
//! bit-identical to the `--opt off` exactness oracle on all three
//! executors, over the whole design corpus and random configurations.
//! A second proptest sweeps random synthetic transport networks through
//! the fusion legality check: multi-producer/consumer topologies must
//! reject chain fusion outright, and processes holding `Keep`/`Eject`
//! endpoints (stationary stream ends) are never fused away.

use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;
use systolizer::core::{compile, Options};
use systolizer::interp::{
    run_plan_batch, run_plan_partitioned_batch, run_plan_threaded_batch, BatchMode, ElabOptions,
    OptMode, WavefrontMode,
};
use systolizer::ir::{gallery, HostStore, SourceProgram};
use systolizer::math::Env;
use systolizer::runtime::{optimize, ChannelPolicy, MovingLink, ProcIrModule, ProcOp, ProcRecord};
use systolizer::synthesis::{derive_array, placement::paper};

/// The corpus: 4 appendix designs, 5 gallery programs, and the shipped
/// `programs/fir.sys` through the full front end.
fn prepared(
    design: usize,
    n: i64,
    seed: u64,
) -> (systolizer::core::SystolicProgram, Env, HostStore) {
    let n_gallery = gallery::all().len();
    let plan = if design < 4 {
        let (_, p, a) = paper::all().swap_remove(design);
        compile(&p, &a, &Options::default()).unwrap()
    } else if design < 4 + n_gallery {
        let p: SourceProgram = gallery::all().swap_remove(design - 4);
        let a = derive_array(&p, 2, 4).unwrap();
        compile(&p, &a, &Options::default()).unwrap()
    } else {
        systolizer::systolize_source(
            include_str!("../programs/fir.sys"),
            &systolizer::SystolizeOptions::default(),
        )
        .unwrap()
        .plan
    };
    let mut env = Env::new();
    for &s in &plan.source.sizes {
        env.bind(s, n);
    }
    let mut store = HostStore::allocate(&plan.source, &env);
    let inputs: &[&str] = if plan.source.name.starts_with("fir") {
        &["h", "x"]
    } else {
        &["a", "b"]
    };
    for (i, name) in inputs.iter().enumerate() {
        store.fill_random(name, seed.wrapping_add(i as u64), -9, 9);
    }
    (plan, env, store)
}

fn n_designs() -> usize {
    paper::all().len() + gallery::all().len() + 1
}

#[test]
fn opt_auto_stores_are_bit_identical_to_the_oracle_on_all_executors() {
    let timeout = Duration::from_secs(60);
    let mut fused_somewhere = false;
    for design in 0..n_designs() {
        for n in [2i64, 4] {
            let (plan, env, store) = prepared(design, n, 23);
            let oracle = run_plan_batch(
                &plan,
                &env,
                &store,
                ChannelPolicy::Rendezvous,
                &ElabOptions::default(),
                BatchMode::Auto,
                OptMode::Off,
                WavefrontMode::Off,
                None,
                &[],
            )
            .unwrap();
            assert!(
                oracle.opt.is_none(),
                "design {design}: --opt off leaks a report"
            );
            let auto = run_plan_batch(
                &plan,
                &env,
                &store,
                ChannelPolicy::Rendezvous,
                &ElabOptions::default(),
                BatchMode::Auto,
                OptMode::Auto,
                WavefrontMode::Off,
                None,
                &[],
            )
            .unwrap();
            assert_eq!(
                auto.store, oracle.store,
                "design {design} n={n}: coop store"
            );
            if let Some(r) = &auto.opt {
                fused_somewhere = true;
                assert!(r.processes_after <= r.processes_before, "design {design}");
                assert_eq!(
                    auto.stats.processes as usize, r.processes_after,
                    "design {design} n={n}: stats must describe the optimized module"
                );
                assert!(
                    auto.stats.messages <= oracle.stats.messages,
                    "design {design} n={n}: fusion must not add messages"
                );
            }
            let th = run_plan_threaded_batch(
                &plan,
                &env,
                &store,
                timeout,
                BatchMode::Auto,
                OptMode::Auto,
            )
            .unwrap();
            assert_eq!(
                th.store, oracle.store,
                "design {design} n={n}: threaded store"
            );
            for workers in [1usize, 3] {
                let pt = run_plan_partitioned_batch(
                    &plan,
                    &env,
                    &store,
                    workers,
                    timeout,
                    BatchMode::Auto,
                    OptMode::Auto,
                )
                .unwrap();
                assert_eq!(
                    pt.store, oracle.store,
                    "design {design} n={n} w={workers}: partitioned store"
                );
            }
        }
    }
    assert!(fused_somewhere, "no corpus design engaged the optimizer");
}

/// Case count override (see `tests/random_programs.rs`).
fn env_cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: env_cases(16), ..ProptestConfig::default() })]

    /// Store bit-identity over random (design, size, seed, workers).
    #[test]
    fn optimizer_is_store_invisible_on_random_configurations(
        design in 0usize..10,
        n in 1i64..=4,
        seed in 0u64..1000,
        workers in 1usize..=4,
    ) {
        let (plan, env, store) = prepared(design, n, seed);
        let timeout = Duration::from_secs(60);
        let oracle = run_plan_batch(
            &plan,
            &env,
            &store,
            ChannelPolicy::Rendezvous,
            &ElabOptions::default(),
            BatchMode::Auto,
            OptMode::Off,
            WavefrontMode::Off,
            None,
            &[],
        )
        .unwrap();
        let auto = run_plan_batch(
            &plan,
            &env,
            &store,
            ChannelPolicy::Rendezvous,
            &ElabOptions::default(),
            BatchMode::Auto,
            OptMode::Auto,
            WavefrontMode::Off,
            None,
            &[],
        )
        .unwrap();
        prop_assert_eq!(&auto.store, &oracle.store);
        let th = run_plan_threaded_batch(
            &plan, &env, &store, timeout, BatchMode::Auto, OptMode::Auto,
        )
        .unwrap();
        prop_assert_eq!(&th.store, &oracle.store);
        let pt = run_plan_partitioned_batch(
            &plan, &env, &store, workers, timeout, BatchMode::Auto, OptMode::Auto,
        )
        .unwrap();
        prop_assert_eq!(&pt.store, &oracle.store);
    }
}

/// One process of a synthetic transport network.
#[derive(Clone, Debug)]
enum Node {
    /// Host source: `count` values onto `chan`.
    Emitter { chan: usize, count: usize },
    /// Pure relay — the only kind fusion may delete.
    Relay { inp: usize, out: usize, n: u64 },
    /// Host sink: `count` values off `chan`.
    Sink { chan: usize, count: usize },
    /// A stationary stream end: `Keep` and `Eject` with live slot
    /// (separated by a `Pass`, like a real load/recover pair around a
    /// computation). Must never be fused away.
    Stationary {
        inp: usize,
        thru: usize,
        out: usize,
        n: u64,
    },
}

const CHANS: usize = 6;

fn node() -> impl Strategy<Value = Node> {
    let c = 0..CHANS;
    prop_oneof![
        (c.clone(), 1usize..4).prop_map(|(chan, count)| Node::Emitter { chan, count }),
        (c.clone(), c.clone(), 1u64..4).prop_map(|(inp, out, n)| Node::Relay { inp, out, n }),
        (c.clone(), 1usize..4).prop_map(|(chan, count)| Node::Sink { chan, count }),
        (c.clone(), c.clone(), c.clone(), 1u64..4)
            .prop_map(|(inp, thru, out, n)| Node::Stationary { inp, thru, out, n }),
    ]
}

/// Assemble a [`ProcIrModule`] from node descriptors. The topology may
/// be nonsensical as a program (dangling channels, unbalanced traffic);
/// the optimizer's legality analysis must *reject* fusion there rather
/// than misbehave.
fn build(nodes: &[Node]) -> ProcIrModule {
    let mut m = ProcIrModule {
        ops: Vec::new(),
        data: Vec::new(),
        moving: Vec::<MovingLink>::new(),
        points: Vec::new(),
        procs: Vec::new(),
        n_chans: CHANS,
        n_outputs: 0,
        body: None,
        kernel: None,
        kernel_reject: None,
    };
    for (i, node) in nodes.iter().enumerate() {
        let ops_start = m.ops.len() as u32;
        let data_start = m.data.len() as u32;
        let mut n_locals = 0;
        let mut output = None;
        match *node {
            Node::Emitter { chan, count } => {
                for v in 0..count {
                    m.ops.push(ProcOp::Emit { chan });
                    m.data.push(v as i64 + 1);
                }
            }
            Node::Relay { inp, out, n } => m.ops.push(ProcOp::Pass { inp, out, n }),
            Node::Sink { chan, count } => {
                for _ in 0..count {
                    m.ops.push(ProcOp::Collect { chan });
                }
                output = Some(m.n_outputs as u32);
                m.n_outputs += 1;
            }
            Node::Stationary { inp, thru, out, n } => {
                n_locals = 1;
                m.ops.push(ProcOp::Keep { chan: inp, slot: 0 });
                m.ops.push(ProcOp::Pass { inp, out: thru, n });
                m.ops.push(ProcOp::Eject { chan: out, slot: 0 });
            }
        }
        m.procs.push(ProcRecord {
            label: format!("node{i}"),
            ops: (ops_start, m.ops.len() as u32),
            data: (data_start, m.data.len() as u32),
            moving: (0, 0),
            repeater: (0, 0),
            n_locals,
            output,
        });
    }
    m
}

/// Per-channel (producer count, consumer count) in the pre-opt module.
fn fan(m: &ProcIrModule) -> Vec<(usize, usize)> {
    let mut fan = vec![(0usize, 0usize); m.n_chans];
    for pid in 0..m.procs.len() {
        for op in m.ops_of(pid) {
            match *op {
                ProcOp::Emit { chan } | ProcOp::Eject { chan, .. } => fan[chan].0 += 1,
                ProcOp::Collect { chan } | ProcOp::Keep { chan, .. } => fan[chan].1 += 1,
                ProcOp::Pass { inp, out, .. } => {
                    fan[inp].1 += 1;
                    fan[out].0 += 1;
                }
                ProcOp::Compute { .. } => {}
            }
        }
    }
    fan
}

proptest! {
    #![proptest_config(ProptestConfig { cases: env_cases(256), ..ProptestConfig::default() })]

    /// Fusion legality on arbitrary transport topologies: only pure
    /// relays are ever deleted, chains demand single-producer /
    /// single-consumer channels end to end, and a module with any
    /// multi-endpoint channel grows no chains at all.
    #[test]
    fn fusion_legality_on_random_transport_networks(
        nodes in proptest::collection::vec(node(), 1..12),
    ) {
        let module = Arc::new(build(&nodes));
        let fan = fan(&module);
        let multi = fan.iter().any(|&(p, c)| p > 1 || c > 1);
        let Some(o) = optimize(&module) else { return Ok(()) };
        let r = &o.report;
        if multi {
            // Endpoint analysis bails module-wide on any shared channel:
            // peephole rewrites may still fire, chains must not.
            prop_assert!(r.chains.is_empty(), "chains on a multi-endpoint module");
        }
        for (pid, mapped) in r.proc_map.iter().enumerate() {
            if mapped.is_none() {
                prop_assert!(
                    matches!(nodes[pid], Node::Relay { .. }),
                    "fused process {pid} was {:?}, not a pure relay",
                    nodes[pid]
                );
            }
        }
        for ch in &r.chains {
            prop_assert_eq!(fan[ch.entry], (1, 1), "chain entry channel is shared");
            prop_assert_eq!(fan[ch.exit], (1, 1), "chain exit channel is shared");
            prop_assert!(ch.capacity >= 1);
            for &pid in &ch.relays {
                prop_assert!(r.proc_map[pid].is_none(), "chain relay {pid} survives");
                let &Node::Relay { inp, out, .. } = &nodes[pid] else {
                    prop_assert!(false, "chain relay {} is {:?}", pid, nodes[pid]);
                    unreachable!()
                };
                prop_assert_eq!(fan[inp], (1, 1));
                prop_assert_eq!(fan[out], (1, 1));
            }
            // Balanced traffic along the chain.
            for &pid in &ch.relays {
                if let &Node::Relay { n, .. } = &nodes[pid] {
                    prop_assert_eq!(n, ch.traffic, "unbalanced relay fused");
                }
            }
        }
        // Bookkeeping is dense and consistent.
        prop_assert_eq!(r.processes_before, module.procs.len());
        prop_assert_eq!(r.processes_after, o.module.procs.len());
        prop_assert_eq!(r.channels_after, o.module.n_chans);
        let survivors = r.proc_map.iter().filter(|m| m.is_some()).count();
        prop_assert_eq!(survivors, r.processes_after);
    }
}

#[test]
fn mapping_report_round_trips_through_json() {
    use systolizer::interp::OptReport;
    let (plan, env, store) = prepared(3, 4, 7); // E.2 fuses
    let el = systolizer::interp::elaborate::elaborate(&plan, &env, &store, &ElabOptions::default())
        .unwrap();
    let o = el.optimize(OptMode::Auto).expect("E.2 n=4 fuses");
    let j = o.report.to_json();
    assert!(j.contains("\"schema\": \"systolic-opt-v1\""));
    let back = OptReport::from_json(&j).expect("parseable report");
    assert_eq!(back.to_json(), j, "report JSON must round-trip");
}
