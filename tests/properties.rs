//! Property-based cross-crate tests: across randomized valid (step,
//! place) pairs for the gallery kernels, the compiled plan must satisfy
//! every Appendix B theorem, the FIFO conservation law, and observational
//! equivalence with the sequential reference.

use proptest::prelude::*;
use systolizer::core::{compile, theorems, Options, StreamKind};
use systolizer::interp::verify_equivalence;
use systolizer::math::{point, Env};
use systolizer::synthesis::SystolicArray;

/// Strategy: a random unit projection direction of dimension `r`.
fn projection(r: usize) -> impl Strategy<Value = Vec<i64>> {
    proptest::collection::vec(-1i64..=1, r).prop_filter("non-zero", |u| !point::is_zero(u))
}

/// Strategy: random small step coefficients.
fn step(r: usize) -> impl Strategy<Value = Vec<i64>> {
    proptest::collection::vec(-2i64..=2, r)
}

fn check_pair(
    program: &systolizer::ir::SourceProgram,
    step: Vec<i64>,
    u: Vec<i64>,
    n: i64,
    seed: u64,
    inputs: &[&str],
) -> Result<(), TestCaseError> {
    let place = systolizer::synthesis::place_from_projection(&u);
    let array = SystolicArray::new(step, place);
    if array.validate(program).is_err() {
        return Ok(()); // invalid pairs are out of scope
    }
    let plan = match compile(program, &array, &Options::default()) {
        Ok(p) => p,
        Err(e) => {
            // The only acceptable failure for a validated array is the
            // non-integer-solution restriction.
            prop_assert!(
                matches!(e, systolizer::core::CompileError::NonIntegerSolution { .. }),
                "unexpected compile failure: {e}"
            );
            return Ok(());
        }
    };
    let mut env = Env::new();
    for &s in &program.sizes {
        env.bind(s, n);
    }
    // Appendix B theorems.
    let audit = theorems::audit(&plan, &env);
    prop_assert!(audit.ok(), "theorem failures: {:?}", audit.failures);
    // End-to-end equivalence.
    let res = verify_equivalence(&plan, &env, inputs, seed);
    prop_assert!(res.is_ok(), "equivalence: {:?}", res.err());
    Ok(())
}

/// Case count: default, overridable via PROPTEST_CASES for deep fuzzing.
fn env_cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: env_cases(48), ..ProptestConfig::default() })]

    #[test]
    fn polyprod_random_designs(
        st in step(2),
        u in projection(2),
        n in 1i64..=5,
        seed in 0u64..1000,
    ) {
        let p = systolizer::ir::gallery::polynomial_product();
        check_pair(&p, st, u, n, seed, &["a", "b"])?;
    }

    #[test]
    fn matmul_random_designs(
        st in step(3),
        u in projection(3),
        n in 1i64..=3,
        seed in 0u64..1000,
    ) {
        let p = systolizer::ir::gallery::matrix_product();
        check_pair(&p, st, u, n, seed, &["a", "b"])?;
    }

    #[test]
    fn fir_random_designs(
        st in step(2),
        u in projection(2),
        n in 1i64..=3,
        m in 1i64..=5,
        seed in 0u64..1000,
    ) {
        let p = systolizer::ir::gallery::fir_filter();
        let place = systolizer::synthesis::place_from_projection(&u);
        let array = SystolicArray::new(st, place);
        if array.validate(&p).is_err() {
            return Ok(());
        }
        let plan = match compile(&p, &array, &Options::default()) {
            Ok(plan) => plan,
            Err(systolizer::core::CompileError::NonIntegerSolution { .. }) => return Ok(()),
            Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
        };
        let mut env = Env::new();
        env.bind(p.sizes[0], n).bind(p.sizes[1], m);
        let audit = theorems::audit(&plan, &env);
        prop_assert!(audit.ok(), "theorem failures: {:?}", audit.failures);
        let res = verify_equivalence(&plan, &env, &["h", "x"], seed);
        prop_assert!(res.is_ok(), "equivalence: {:?}", res.err());
    }

    /// Loading & recovery vectors are a free choice (Sec. 4.2): any unit
    /// neighbour vector must work for E.1's stationary stream.
    #[test]
    fn matmul_e1_random_loading_vectors(
        lx in -1i64..=1,
        ly in -1i64..=1,
        n in 1i64..=3,
        seed in 0u64..1000,
    ) {
        prop_assume!((lx, ly) != (0, 0));
        let (p, a) = systolizer::synthesis::placement::paper::matmul_e1();
        let opts = Options::default()
            .with_loading_vector(systolizer::ir::StreamId(2), vec![lx, ly]);
        let plan = compile(&p, &a, &opts).unwrap();
        let is_stationary = matches!(plan.streams[2].kind, StreamKind::Stationary { .. });
        prop_assert!(is_stationary);
        let mut env = Env::new();
        env.bind(p.sizes[0], n);
        let res = verify_equivalence(&plan, &env, &["a", "b"], seed);
        prop_assert!(res.is_ok(), "loading ({lx},{ly}): {:?}", res.err());
    }

    /// All three executors agree with the sequential oracle — and with
    /// each other — on store contents and executor-invariant statistics,
    /// for random designs, sizes, worker counts, and data. The ranges
    /// deliberately include the degenerate corners: `n = 0` (the
    /// iteration space collapses to a single point), one worker (fully
    /// serialized partition), and 64 workers (more workers than
    /// processes, so most groups are empty).
    #[test]
    fn executors_agree_with_the_sequential_oracle(
        design in 0usize..4,
        n in 0i64..=3,
        workers in prop_oneof![Just(1usize), 2usize..=6, Just(64usize)],
        seed in 0u64..1000,
    ) {
        use std::time::Duration;
        use systolizer::interp::{run_plan, run_plan_partitioned, run_plan_threaded, ElabOptions};
        use systolizer::runtime::ChannelPolicy;
        let paper = systolizer::synthesis::placement::paper::all();
        let (_, p, a) = &paper[design];
        let plan = compile(p, a, &Options::default()).unwrap();
        let mut env = Env::new();
        env.bind(p.sizes[0], n);
        let mut store = systolizer::ir::HostStore::allocate(p, &env);
        store.fill_random("a", seed, -9, 9);
        store.fill_random("b", seed + 1, -9, 9);
        let mut expected = store.clone();
        systolizer::ir::seq::run(p, &env, &mut expected);

        let coop = run_plan(&plan, &env, &store, ChannelPolicy::Rendezvous, &ElabOptions::default())
            .unwrap();
        let threaded = run_plan_threaded(&plan, &env, &store, Duration::from_secs(60)).unwrap();
        let part = run_plan_partitioned(&plan, &env, &store, workers, Duration::from_secs(60))
            .unwrap();
        for name in expected.names() {
            prop_assert_eq!(coop.store.get(name), expected.get(name), "coop {}", name);
            prop_assert_eq!(threaded.store.get(name), expected.get(name), "threaded {}", name);
            prop_assert_eq!(part.store.get(name), expected.get(name), "partitioned {}", name);
        }
        // Messages and steps are network properties, not executor ones.
        prop_assert_eq!(coop.stats.messages, threaded.stats.messages);
        prop_assert_eq!(coop.stats.messages, part.stats.messages);
        prop_assert_eq!(coop.stats.steps, threaded.stats.steps);
        prop_assert_eq!(coop.stats.steps, part.stats.steps);
        prop_assert_eq!(coop.stats.processes, threaded.stats.processes);
    }

    /// Channel policy is semantically inert: buffered channels of any
    /// capacity produce the same results as rendezvous.
    #[test]
    fn channel_capacity_is_semantically_inert(
        cap in 1usize..=6,
        n in 1i64..=4,
        seed in 0u64..1000,
    ) {
        use systolizer::interp::{run_plan, ElabOptions};
        use systolizer::runtime::ChannelPolicy;
        let (p, a) = systolizer::synthesis::placement::paper::polyprod_d2();
        let plan = compile(&p, &a, &Options::default()).unwrap();
        let mut env = Env::new();
        env.bind(p.sizes[0], n);
        let mut store = systolizer::ir::HostStore::allocate(&p, &env);
        store.fill_random("a", seed, -9, 9);
        store.fill_random("b", seed + 1, -9, 9);
        let r1 = run_plan(&plan, &env, &store, ChannelPolicy::Rendezvous, &ElabOptions::default())
            .unwrap();
        let r2 = run_plan(&plan, &env, &store, ChannelPolicy::Buffered(cap), &ElabOptions::default())
            .unwrap();
        prop_assert_eq!(r1.store.get("c"), r2.store.get("c"));
        // Buffered transfers are counted twice (enqueue + dequeue).
        prop_assert_eq!(2 * r1.stats.messages, r2.stats.messages);
    }
}

/// Named regressions for the degenerate corners the proptest above only
/// samples: they must stay pinned even when the fuzz budget is tiny.
mod degenerate_corners {
    use std::time::Duration;
    use systolizer::core::{compile, Options};
    use systolizer::interp::{run_plan, run_plan_partitioned, run_plan_threaded, ElabOptions};
    use systolizer::ir::HostStore;
    use systolizer::math::Env;
    use systolizer::runtime::ChannelPolicy;
    use systolizer::synthesis::placement::paper;

    fn seeded_store(p: &systolizer::ir::SourceProgram, env: &Env) -> HostStore {
        let mut store = HostStore::allocate(p, env);
        store.fill_random("a", 7, -9, 9);
        store.fill_random("b", 8, -9, 9);
        store
    }

    /// A single worker serializes every process into one group; the
    /// partition must still agree with the cooperative engine bit for
    /// bit on every paper design.
    #[test]
    fn one_worker_partition_agrees_with_coop() {
        for (label, p, a) in paper::all() {
            let plan = compile(&p, &a, &Options::default()).unwrap();
            let mut env = Env::new();
            env.bind(p.sizes[0], 3);
            let store = seeded_store(&p, &env);
            let coop = run_plan(
                &plan,
                &env,
                &store,
                ChannelPolicy::Rendezvous,
                &ElabOptions::default(),
            )
            .unwrap();
            let part =
                run_plan_partitioned(&plan, &env, &store, 1, Duration::from_secs(30)).unwrap();
            assert_eq!(part.store, coop.store, "{label}: one-worker store");
            assert_eq!(part.stats.messages, coop.stats.messages, "{label}");
            assert_eq!(part.stats.steps, coop.stats.steps, "{label}");
        }
    }

    /// More workers than processes leaves most partition groups empty;
    /// empty groups must be inert, not deadlock or panic.
    #[test]
    fn more_workers_than_processes_is_inert() {
        let (p, a) = paper::polyprod_d1();
        let plan = compile(&p, &a, &Options::default()).unwrap();
        let mut env = Env::new();
        env.bind(p.sizes[0], 2);
        let store = seeded_store(&p, &env);
        let coop = run_plan(
            &plan,
            &env,
            &store,
            ChannelPolicy::Rendezvous,
            &ElabOptions::default(),
        )
        .unwrap();
        assert!(coop.stats.processes < 64, "pick a size below worker count");
        let part = run_plan_partitioned(&plan, &env, &store, 64, Duration::from_secs(30)).unwrap();
        assert_eq!(part.store, coop.store, "oversubscribed store");
        assert_eq!(part.stats.messages, coop.stats.messages);
        assert_eq!(part.stats.steps, coop.stats.steps);
    }

    /// `n = 0` collapses every loop to the single point 0 (bounds are
    /// inclusive). All three executors must still run the pipeline clean
    /// and agree with the sequential reference.
    #[test]
    fn empty_iteration_space_runs_clean_on_all_executors() {
        for (label, p, a) in paper::all() {
            let plan = compile(&p, &a, &Options::default()).unwrap();
            let mut env = Env::new();
            env.bind(p.sizes[0], 0);
            let store = seeded_store(&p, &env);
            let mut expected = store.clone();
            systolizer::ir::seq::run(&p, &env, &mut expected);

            let coop = run_plan(
                &plan,
                &env,
                &store,
                ChannelPolicy::Rendezvous,
                &ElabOptions::default(),
            )
            .unwrap();
            let threaded = run_plan_threaded(&plan, &env, &store, Duration::from_secs(30)).unwrap();
            let part =
                run_plan_partitioned(&plan, &env, &store, 2, Duration::from_secs(30)).unwrap();
            for name in expected.names() {
                assert_eq!(coop.store.get(name), expected.get(name), "{label} {name}");
                assert_eq!(
                    threaded.store.get(name),
                    expected.get(name),
                    "{label} {name}"
                );
                assert_eq!(part.store.get(name), expected.get(name), "{label} {name}");
            }
        }
    }
}
