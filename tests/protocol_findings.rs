//! Regression tests for the two reproduction findings about the paper's
//! data-propagation protocol (recorded in EXPERIMENTS.md).
//!
//! 1. The sequential-phase protocol (load / soak per stream / repeater /
//!    drain per stream / recover) is *not* deadlock-free for every valid
//!    design: when two streams share an index map their pipes move in
//!    lock-step, and a downstream cell soaking one stream refuses the
//!    repeater's par-send of the other — a circular wait. The paper's
//!    own designs never hit this; a fuzzer-generated valid program does.
//! 2. The split-propagation protocol (per-stream escort processes,
//!    within the paper's "only one of many possible choices" latitude)
//!    executes the same plans deadlock-free.

use systolizer::core::{compile, Options};
use systolizer::interp::{verify_equivalence, verify_equivalence_with, ElabOptions};
use systolizer::ir::expr::build::*;
use systolizer::ir::{
    program::covering_bounds, BasicStatement, IndexedVar, Loop, SourceProgram, Stream,
};
use systolizer::math::{Affine, Env, Matrix, VarTable};
use systolizer::synthesis::placement::paper;

/// The minimal fuzzer counterexample: streams `a` and `c` share the
/// index map `(i + j)`; `b` uses `(i)`; outer loop one longer.
fn lockstep_program() -> SourceProgram {
    let mut vars = VarTable::new();
    let n = vars.size("n");
    let loops = vec![
        Loop {
            index_name: "i".into(),
            lb: Affine::zero(),
            rb: Affine::var(n) + Affine::int(1),
            step: 1,
        },
        Loop {
            index_name: "j".into(),
            lb: Affine::zero(),
            rb: Affine::var(n),
            step: 1,
        },
    ];
    let maps = [
        Matrix::from_rows(&[vec![1, 1]]),
        Matrix::from_rows(&[vec![1, 0]]),
        Matrix::from_rows(&[vec![1, 1]]),
    ];
    let variables: Vec<IndexedVar> = ["a", "b", "c"]
        .iter()
        .zip(&maps)
        .map(|(name, m)| IndexedVar {
            name: (*name).into(),
            bounds: covering_bounds(m, &loops),
        })
        .collect();
    let streams: Vec<Stream> = maps
        .iter()
        .enumerate()
        .map(|(k, m)| Stream {
            variable: k,
            index_map: m.clone(),
        })
        .collect();
    SourceProgram {
        name: "lockstep".into(),
        vars,
        sizes: vec![n],
        loops,
        variables,
        streams,
        body: BasicStatement {
            updates: vec![assign(2, add(s(2), mul(s(0), s(1))))],
        },
    }
}

#[test]
fn lockstep_program_is_within_the_appendix_a_envelope() {
    let p = lockstep_program();
    systolizer::ir::validate(&p, 3).expect("valid per Appendix A");
}

#[test]
fn paper_protocol_deadlocks_on_the_lockstep_design() {
    let p = lockstep_program();
    let a = systolizer::synthesis::derive_array(&p, 1, 3).expect("valid array exists");
    let plan = compile(&p, &a, &Options::default()).unwrap();
    let mut env = Env::new();
    env.bind(p.sizes[0], 2);
    let err = verify_equivalence(&plan, &env, &["a", "b"], 0)
        .expect_err("the sequential-phase protocol deadlocks here");
    assert!(err.contains("deadlock"), "{err}");
}

#[test]
fn split_propagation_executes_the_lockstep_design_correctly() {
    let p = lockstep_program();
    let a = systolizer::synthesis::derive_array(&p, 1, 3).unwrap();
    let plan = compile(&p, &a, &Options::default()).unwrap();
    let opts = ElabOptions {
        split_propagation: true,
        ..Default::default()
    };
    for n in [1i64, 2, 4] {
        let mut env = Env::new();
        env.bind(p.sizes[0], n);
        verify_equivalence_with(&plan, &env, &["a", "b"], 5, &opts)
            .unwrap_or_else(|e| panic!("n={n}: {e}"));
    }
}

#[test]
fn split_propagation_also_runs_all_paper_designs() {
    let opts = ElabOptions {
        split_propagation: true,
        ..Default::default()
    };
    for (label, p, a) in paper::all() {
        let plan = compile(&p, &a, &Options::default()).unwrap();
        let mut env = Env::new();
        env.bind(p.sizes[0], 3);
        verify_equivalence_with(&plan, &env, &["a", "b"], 21, &opts)
            .unwrap_or_else(|e| panic!("{label}: {e}"));
    }
}

#[test]
fn merged_io_runs_all_paper_designs() {
    // Sec. 4.2 defers merging the i/o processes "to a later stage"; our
    // round-robin merged host processes execute every appendix design
    // correctly. (Whether merging is *always* safe is a different
    // question — the fuzz suite exercises it on generated designs.)
    let opts = ElabOptions {
        merge_io: true,
        ..Default::default()
    };
    for (label, p, a) in paper::all() {
        let plan = compile(&p, &a, &Options::default()).unwrap();
        for n in [1i64, 3] {
            let mut env = Env::new();
            env.bind(p.sizes[0], n);
            verify_equivalence_with(&plan, &env, &["a", "b"], 33, &opts)
                .unwrap_or_else(|e| panic!("{label} n={n}: {e}"));
        }
    }
}

#[test]
fn merged_io_reduces_host_process_count() {
    let (p, a) = paper::matmul_e2();
    let plan = compile(&p, &a, &Options::default()).unwrap();
    let mut env = Env::new();
    env.bind(p.sizes[0], 3);
    let store = systolizer::ir::HostStore::allocate(&p, &env);
    let separate =
        systolizer::interp::elaborate(&plan, &env, &store, &ElabOptions::default()).unwrap();
    let merged = systolizer::interp::elaborate(
        &plan,
        &env,
        &store,
        &ElabOptions {
            merge_io: true,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(merged.census.inputs, 3, "one host input per stream");
    assert_eq!(merged.census.outputs, 3);
    assert!(separate.census.inputs > 9, "E.2 has many per-pipe inputs");
}

#[test]
fn deadlock_diagnosis_names_processes_and_channels() {
    // The structured error, not just its rendering: RunError::Deadlock
    // carries every blocked process label with the channel endpoints it
    // waits on ("label [recv@N,send@M]").
    use systolizer::interp::{run_plan, ExecError};
    use systolizer::runtime::{ChannelPolicy, RunError};
    let p = lockstep_program();
    let a = systolizer::synthesis::derive_array(&p, 1, 3).unwrap();
    let plan = compile(&p, &a, &Options::default()).unwrap();
    let mut env = Env::new();
    env.bind(p.sizes[0], 2);
    let mut store = systolizer::ir::HostStore::allocate(&p, &env);
    store.fill_random("a", 1, -9, 9);
    store.fill_random("b", 2, -9, 9);
    let err = match run_plan(
        &plan,
        &env,
        &store,
        ChannelPolicy::Rendezvous,
        &ElabOptions::default(),
    ) {
        Err(e) => e,
        Ok(_) => panic!("the sequential-phase protocol deadlocks here"),
    };
    let ExecError::Run(RunError::Deadlock(d)) = &err else {
        panic!("expected a structured deadlock, got {err}");
    };
    assert!(!d.blocked.is_empty());
    for b in &d.blocked {
        assert!(
            b.contains("recv@") || b.contains("send@"),
            "blocked entry without a channel endpoint: {b}"
        );
        assert!(b.contains('['), "blocked entry without a label: {b}");
    }
    // Computation processes are among the blocked, by label.
    assert!(
        d.blocked.iter().any(|b| b.starts_with("comp@")),
        "{:?}",
        d.blocked
    );
    let msg = err.to_string();
    assert!(msg.contains("deadlock") && msg.contains("blocked"), "{msg}");
}

#[test]
fn protocol_violation_names_both_claimants_and_the_channel() {
    // A malformed network — two sources driving one channel — is
    // diagnosed as RunError::Protocol with the channel id, the claimed
    // endpoint, and both process labels.
    use systolizer::runtime::{ChannelPolicy, Network, ProcIrBuilder, RunError};
    let mut b = ProcIrBuilder::new();
    b.source(0, &[1], "src-one");
    b.source(0, &[2], "src-two");
    b.sink(0, 2, "sink");
    let module = b.build(None);
    let mut net = Network::new(ChannelPolicy::Rendezvous);
    for p in module.instantiate().procs {
        net.add(p);
    }
    let err = net.run().unwrap_err();
    let RunError::Protocol(v) = &err else {
        panic!("expected a protocol violation, got {err}");
    };
    assert_eq!(v.chan, 0);
    assert_eq!(v.endpoint, "sender");
    let claimants = [v.first.as_str(), v.second.as_str()];
    assert!(claimants.contains(&"src-one"), "{claimants:?}");
    assert!(claimants.contains(&"src-two"), "{claimants:?}");
    let msg = err.to_string();
    assert!(msg.contains("protocol violation"), "{msg}");
    assert!(msg.contains("src-one") && msg.contains("src-two"), "{msg}");
}

#[test]
fn non_rectangular_image_is_rejected_by_validation() {
    // The other fuzzer finding: a map like (i-k, k) images the index box
    // onto a parallelogram, so a covering rectangular variable has
    // untouched elements — requirement A.1, now checked.
    let mut vars = VarTable::new();
    let n = vars.size("n");
    let mk_loop = |name: &str| Loop {
        index_name: name.into(),
        lb: Affine::zero(),
        rb: Affine::var(n),
        step: 1,
    };
    let loops = vec![mk_loop("i"), mk_loop("j"), mk_loop("k")];
    let skewed = Matrix::from_rows(&[vec![1, 0, -1], vec![0, 0, 1]]);
    let square = Matrix::from_rows(&[vec![1, 0, 0], vec![0, 1, 0]]);
    let kj = Matrix::from_rows(&[vec![0, 0, 1], vec![0, 1, 0]]);
    let p = SourceProgram {
        name: "skewed".into(),
        sizes: vec![n],
        loops: loops.clone(),
        variables: vec![
            IndexedVar {
                name: "a".into(),
                bounds: covering_bounds(&skewed, &loops),
            },
            IndexedVar {
                name: "b".into(),
                bounds: covering_bounds(&kj, &loops),
            },
            IndexedVar {
                name: "c".into(),
                bounds: covering_bounds(&square, &loops),
            },
        ],
        streams: vec![
            Stream {
                variable: 0,
                index_map: skewed,
            },
            Stream {
                variable: 1,
                index_map: kj,
            },
            Stream {
                variable: 2,
                index_map: square,
            },
        ],
        body: BasicStatement {
            updates: vec![assign(2, add(s(2), mul(s(0), s(1))))],
        },
        vars,
    };
    let errs = systolizer::ir::validate(&p, 3).unwrap_err();
    assert!(
        errs.iter().any(|e| matches!(
            e,
            systolizer::ir::Violation::ElementsNotCovered { stream: 0, .. }
        )),
        "{errs:?}"
    );
}
