//! The mechanized Sec. 8 experiment: generate a standalone Rust program
//! from each appendix design, compile it with `rustc`, run it, and let
//! its embedded self-check compare the systolic results against the
//! sequential reference. The paper's hand translations become generated,
//! compiled, executed translations — "the only errors were mistakes made
//! in the hand translation", and there is no hand translation left.

use std::path::PathBuf;
use std::process::Command;
use systolizer::core::{compile, Options};
use systolizer::interp::rustgen::{generate_rust, generate_rust_opt};
use systolizer::math::Env;
use systolizer::synthesis::placement::paper;

fn compile_and_run(name: &str, source: &str) {
    let dir = std::env::temp_dir().join(format!("systolizer-gen-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let src_path: PathBuf = dir.join(format!("{name}.rs"));
    let bin_path: PathBuf = dir.join(name);
    std::fs::write(&src_path, source).unwrap();

    let out = Command::new("rustc")
        .args(["-O", "-o"])
        .arg(&bin_path)
        .arg(&src_path)
        .output()
        .expect("rustc available");
    assert!(
        out.status.success(),
        "{name}: generated program failed to compile:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let run = Command::new(&bin_path)
        .output()
        .expect("run generated binary");
    assert!(
        run.status.success(),
        "{name}: generated program failed its self-check:\n{}\n{}",
        String::from_utf8_lossy(&run.stdout),
        String::from_utf8_lossy(&run.stderr)
    );
    let stdout = String::from_utf8_lossy(&run.stdout);
    assert!(stdout.contains("all pipes verified"), "{name}: {stdout}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn d1_generated_rust_compiles_and_verifies() {
    let (p, a) = paper::polyprod_d1();
    let plan = compile(&p, &a, &Options::default()).unwrap();
    let mut env = Env::new();
    env.bind(p.sizes[0], 5);
    compile_and_run("d1", &generate_rust(&plan, &env, 11));
}

#[test]
fn d2_generated_rust_compiles_and_verifies() {
    let (p, a) = paper::polyprod_d2();
    let plan = compile(&p, &a, &Options::default()).unwrap();
    let mut env = Env::new();
    env.bind(p.sizes[0], 4);
    compile_and_run("d2", &generate_rust(&plan, &env, 12));
}

#[test]
fn e1_generated_rust_compiles_and_verifies() {
    let (p, a) = paper::matmul_e1();
    let plan = compile(&p, &a, &Options::default()).unwrap();
    let mut env = Env::new();
    env.bind(p.sizes[0], 3);
    compile_and_run("e1", &generate_rust(&plan, &env, 13));
}

#[test]
fn e2_generated_rust_compiles_and_verifies() {
    let (p, a) = paper::matmul_e2();
    let plan = compile(&p, &a, &Options::default()).unwrap();
    let mut env = Env::new();
    env.bind(p.sizes[0], 2);
    compile_and_run("e2", &generate_rust(&plan, &env, 14));
}

#[test]
fn e2_optimized_generated_rust_compiles_and_verifies() {
    // The delay-ring back end: fused relays become channel capacity, and
    // the generated program still passes its embedded self-check.
    let (p, a) = paper::matmul_e2();
    let plan = compile(&p, &a, &Options::default()).unwrap();
    let mut env = Env::new();
    env.bind(p.sizes[0], 4);
    let src = generate_rust_opt(&plan, &env, 14);
    assert!(src.contains("//! Optimized:"), "E.2 n=4 should fuse chains");
    compile_and_run("e2opt", &src);
}

#[test]
fn d2_optimized_generated_rust_compiles_and_verifies() {
    let (p, a) = paper::polyprod_d2();
    let plan = compile(&p, &a, &Options::default()).unwrap();
    let mut env = Env::new();
    env.bind(p.sizes[0], 5);
    compile_and_run("d2opt", &generate_rust_opt(&plan, &env, 12));
}

#[test]
fn guarded_body_generated_rust() {
    // A guarded update exercises the if-rendering in the generated code.
    let src = "
        program tri;
        size n;
        var a[0..n], b[0..n], c[0..2*n];
        for i = 0 <- 1 -> n
        for j = 0 <- 1 -> n {
          if i <= j -> c[i+j] = c[i+j] + a[i] * b[j];
        }
    ";
    let sys = systolizer::systolize_source(src, &systolizer::SystolizeOptions::default()).unwrap();
    let env = sys.size_env(&[4]);
    compile_and_run("tri", &generate_rust(&sys.plan, &env, 15));
}
