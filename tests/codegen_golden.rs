//! Experiment X3: codegen fidelity against the appendix final programs.
//!
//! We check the *structural* content of the generated text against
//! Appendices D.1.7, D.2.7, E.1.7, and E.2.7: the channel declarations,
//! the i/o repeaters, the load/soak/repeater/drain/recover sequences with
//! the paper's derived counts, and the basic-statement communications.
//! (Byte-exact golden comparison is not meaningful — the paper's programs
//! are typeset with ad-hoc simplifications — but every derived quantity
//! it prints must appear.)

use systolizer::synthesis::placement::paper;
use systolizer::{systolize, PlaceChoice, SystolizeOptions};

fn code_for(idx: usize) -> String {
    let (_, p, a) = paper::all().into_iter().nth(idx).unwrap();
    let sys = systolize(
        &p,
        &SystolizeOptions {
            place: PlaceChoice::Explicit(a),
            ..Default::default()
        },
    )
    .unwrap();
    sys.paper_code()
}

#[test]
fn d1_final_program() {
    let code = code_for(0);
    for needle in [
        "chan a_chan[0..n + 1]",
        "chan b_chan[0..n + 1]",
        "chan c_chan[0..n + 1]",
        "send b {0 n 1} to b_chan[0]",
        "send c {0 2*n 1} to c_chan[0]",
        "send a {0 n 1} to a_chan[0]",
        "parfor col from 0 to n do",
        "load a, n - col",
        "pass c, col",
        "{(col, 0) (col, n) (0,1)} :",
        "c := c + a * b",
        "pass c, n - col",
        "recover a, col",
        // The D.1.7 buffer loop and buffered read.
        "chan b_buff[0..n]",
        "receive foo from b_chan[col]",
        "send foo to b_buff[col]",
        "receive b from b_buff[col]",
        "send b to b_chan[col + 1]",
        "receive b {0 n 1} from b_chan[n + 1]",
    ] {
        assert!(code.contains(needle), "D.1 missing {needle:?}\n{code}");
    }
}

#[test]
fn d2_final_program() {
    let code = code_for(1);
    for needle in [
        "chan a_chan[0..2*n + 1]",
        "send b {n 0 -1} to b_chan[0]",
        "send c {0 2*n 1} to c_chan[0]",
        "parfor col from 0 to 2*n do",
        "first_x :=",
        "if 0 <= col <= n  ->  (0, col)",
        "[] 0 <= col - n <= n  ->  (col - n, n)",
        "load c,",
        "recover c,",
        "c := c + a * b",
    ] {
        assert!(code.contains(needle), "D.2 missing {needle:?}\n{code}");
    }
}

#[test]
fn e1_final_program() {
    let code = code_for(2);
    for needle in [
        "chan a_chan[0..n, 0..n + 1]",
        "chan b_chan[0..n + 1, 0..n]",
        "parfor col from 0 to n do",
        "parfor row from 0 to n do",
        "send a {(col, 0) (col, n) (0,1)} to a_chan[col, 0]",
        "send b {(0, row) (n, row) (1,0)} to b_chan[0, row]",
        "send c {(0, row) (n, row) (1,0)} to c_chan[0, row]",
        "load c, n - col",
        "{(col, row, 0) (col, row, n) (0,0,1)} :",
        "recover c, col",
        "receive a from a_chan[col, row]",
        "send a to a_chan[col, row + 1]",
        "send b to b_chan[col + 1, row]",
        "receive a {(col, 0) (col, n) (0,1)} from a_chan[col, n + 1]",
    ] {
        assert!(code.contains(needle), "E.1 missing {needle:?}\n{code}");
    }
}

#[test]
fn e2_final_program() {
    let code = code_for(3);
    for needle in [
        // Channel fringes on the negative sides for c (flow (-1,-1)).
        "chan c_chan[-n - 1..n, -n - 1..n]",
        "parfor col from -n to n do",
        // first with three alternatives and a null else (E.2.7).
        "if 0 <= row - col <= n  /\\  0 <= -col <= n  ->  (0, row - col, -col)",
        "[] 0 <= col - row <= n  /\\  0 <= -row <= n  ->  (col - row, 0, -row)",
        "[] 0 <= col <= n  /\\  0 <= row <= n  ->  (col, row, 0)",
        "[] else -> null",
        // The hexagonal basic statement.
        "receive c from c_chan[col, row]",
        "send c to c_chan[col - 1, row - 1]",
        "send a to a_chan[col, row + 1]",
        // Buffer processes outside CS.
        "Buffer Processes",
        "pass a, pass_a",
    ] {
        assert!(code.contains(needle), "E.2 missing {needle:?}\n{code}");
    }
}

#[test]
fn occam_and_c_backends_render_the_same_designs() {
    for (label, p, a) in paper::all() {
        let sys = systolize(
            &p,
            &SystolizeOptions {
                place: PlaceChoice::Explicit(a),
                ..Default::default()
            },
        )
        .unwrap();
        let occam = sys.occam_code();
        let c = sys.c_code();
        assert!(occam.contains("PAR"), "{label}");
        assert!(occam.contains("CHAN OF INT"), "{label}");
        assert!(c.contains("PARFOR"), "{label}");
        assert!(c.contains("channel_t"), "{label}");
        // All three back ends carry the computation.
        assert!(occam.contains("c := c + a * b"), "{label}");
        assert!(c.contains("c = c + a * b;"), "{label}");
    }
}

#[test]
fn generated_text_is_balanced() {
    // Structural sanity of the printers: balanced delimiters in C, and
    // par/parfor blocks closed in the paper style.
    for idx in 0..4 {
        let code = code_for(idx);
        assert_eq!(
            code.matches("parfor ").count(),
            code.matches("end parfor").count(),
            "design {idx}"
        );
        let par_opens = code.lines().filter(|l| l.trim() == "par").count();
        let par_closes = code.lines().filter(|l| l.trim() == "end par").count();
        assert_eq!(par_opens, par_closes, "design {idx}");
    }
}
