//! Edge-case integration tests: degenerate problem sizes, minimal
//! arrays, asymmetric bounds, and failure surfaces.

use systolizer::core::{compile, Options};
use systolizer::interp::verify_equivalence;
use systolizer::math::Env;
use systolizer::synthesis::placement::paper;

fn env1(p: &systolizer::ir::SourceProgram, n: i64) -> Env {
    let mut env = Env::new();
    env.bind(p.sizes[0], n);
    env
}

#[test]
fn n_zero_degenerates_to_one_process() {
    // n = 0: a single basic statement; the array is one process plus its
    // i/o. Every design must still work.
    for (label, p, a) in paper::all() {
        let plan = compile(&p, &a, &Options::default()).unwrap();
        let env = env1(&p, 0);
        let stats = verify_equivalence(&plan, &env, &["a", "b"], 1)
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        assert!(stats.processes >= 3, "{label}: at least comp + i/o");
    }
}

#[test]
fn n_one_smallest_nontrivial() {
    for (label, p, a) in paper::all() {
        let plan = compile(&p, &a, &Options::default()).unwrap();
        let env = env1(&p, 1);
        verify_equivalence(&plan, &env, &["a", "b"], 2).unwrap_or_else(|e| panic!("{label}: {e}"));
    }
}

#[test]
fn asymmetric_bounds_with_offsets() {
    // Loops over [2 .. n+2] and [-1 .. n]: exercises non-zero lower
    // bounds everywhere (basis, faces, guards, pipes).
    use systolizer::ir::{gallery, IndexedVar};
    use systolizer::math::Affine;
    let mut p = gallery::polynomial_product();
    let n = p.sizes[0];
    let two = Affine::int(2);
    let minus_one = Affine::int(-1);
    p.loops[0].lb = two.clone();
    p.loops[0].rb = Affine::var(n) + two.clone();
    p.loops[1].lb = minus_one.clone();
    p.loops[1].rb = Affine::var(n);
    // Variable spaces must cover the accessed elements:
    // a[i] over [2, n+2]; b[j] over [-1, n]; c[i+j] over [1, 2n+2].
    p.variables = vec![
        IndexedVar {
            name: "a".into(),
            bounds: vec![(two.clone(), Affine::var(n) + two.clone())],
        },
        IndexedVar {
            name: "b".into(),
            bounds: vec![(minus_one.clone(), Affine::var(n))],
        },
        IndexedVar {
            name: "c".into(),
            bounds: vec![(
                Affine::int(1),
                Affine::var(n).scale(systolizer::math::Rational::int(2)) + two,
            )],
        },
    ];
    let a = systolizer::synthesis::derive_array(&p, 2, 5).expect("array");
    let plan = compile(&p, &a, &Options::default()).unwrap();
    for n_val in [0i64, 1, 4, 7] {
        let env = env1(&p, n_val);
        verify_equivalence(&plan, &env, &["a", "b"], 4)
            .unwrap_or_else(|e| panic!("n={n_val}: {e}"));
    }
}

#[test]
fn rectangular_not_square_index_space() {
    // FIR with wildly different extents in the two loops.
    let p = systolizer::ir::gallery::fir_filter();
    let a = systolizer::synthesis::derive_array(&p, 2, 4).unwrap();
    let plan = compile(&p, &a, &Options::default()).unwrap();
    for (n, m) in [(0i64, 0i64), (0, 9), (5, 0), (1, 20), (6, 2)] {
        let mut env = Env::new();
        env.bind(p.sizes[0], n).bind(p.sizes[1], m);
        verify_equivalence(&plan, &env, &["h", "x"], 6)
            .unwrap_or_else(|e| panic!("(n,m)=({n},{m}): {e}"));
    }
}

#[test]
fn tensor_r4_runs_at_small_sizes() {
    let p = systolizer::ir::gallery::tensor_contraction();
    let a = systolizer::synthesis::derive_array(&p, 1, 3).unwrap();
    let plan = compile(&p, &a, &Options::default()).unwrap();
    for n in [0i64, 1, 2] {
        let env = env1(&p, n);
        verify_equivalence(&plan, &env, &["a", "b"], 8).unwrap_or_else(|e| panic!("n={n}: {e}"));
    }
}

#[test]
fn kung_leiserson_tensor_style_place_for_r4() {
    // A non-simple place for the r = 4 kernel: project along (1,1,0,1)
    // if valid, else fall back to enumeration and pick any non-simple one.
    let p = systolizer::ir::gallery::tensor_contraction();
    let step = systolizer::synthesis::optimal_step(&p, 1, 3).unwrap();
    let arrays = systolizer::synthesis::enumerate_places(&p, &step);
    let non_simple = arrays.iter().find(|a| {
        a.projection_direction()
            .map(|u| u.iter().filter(|&&c| c != 0).count() > 1)
            .unwrap_or(false)
    });
    if let Some(a) = non_simple {
        let plan = compile(&p, a, &Options::default()).unwrap();
        let env = env1(&p, 1);
        verify_equivalence(&plan, &env, &["a", "b"], 9).unwrap();
    }
}

#[test]
fn all_zero_inputs_roundtrip() {
    // Zero data must still be injected, propagated, and recovered
    // (counts, not values, drive the protocol).
    let (p, a) = paper::matmul_e2();
    let plan = compile(&p, &a, &Options::default()).unwrap();
    let env = env1(&p, 3);
    let store = systolizer::ir::HostStore::allocate(&p, &env);
    let run = systolizer::interp::run_plan(
        &plan,
        &env,
        &store,
        systolizer::runtime::ChannelPolicy::Rendezvous,
        &systolizer::interp::ElabOptions::default(),
    )
    .unwrap();
    assert_eq!(run.store, store, "all-zero store is a fixed point");
}

/// The lockstep counterexample (see tests/protocol_findings.rs) in the
/// front-end syntax: streams `a` and `c` share the index map `i+j`, the
/// outer loop is one longer — the paper protocol deadlocks on it.
const LOCKSTEP_SRC: &str = "
    program lockstep;
    size n;
    var a[0..2*n+1], b[0..n+1], c[0..2*n+1];
    for i = 0 <- 1 -> n+1
    for j = 0 <- 1 -> n {
      c[i+j] = c[i+j] + a[i+j] * b[i];
    }
";

#[test]
fn cli_renders_deadlock_as_a_message_not_a_panic() {
    use systolizer::cli::{execute, parse_args};
    // `--batch off`: the rendezvous engine is the deadlock oracle. The
    // batched engine's ring slack elides this protocol deadlock (see the
    // companion test below and the caveat in docs/scheduler.md).
    let raw: Vec<String> = [
        "verify", "f.sys", "--sizes", "2", "--bound", "1", "--batch", "off",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let inv = parse_args(&raw).unwrap();
    let err = execute(&inv, LOCKSTEP_SRC).expect_err("deadlocks under the paper protocol");
    assert!(err.contains("FAILED"), "{err}");
    assert!(err.contains("deadlock"), "{err}");
    // The diagnosis names blocked processes and their channel endpoints.
    assert!(err.contains("recv@") || err.contains("send@"), "{err}");
}

/// The deliberate flip side: under the default full-auto modes, the ring
/// slack of the fast-path engines lets the lockstep design *complete* —
/// and the result is still verified against the sequential reference, so
/// what the paper's strict rendezvous protocol turns into a deadlock is,
/// semantically, only a scheduling artifact. The default ladder lands on
/// the wavefront rung; `--wavefront off` drops to the batched rung with
/// the same rescue. The strict diagnosis remains available via
/// `--batch off` (previous test) and is pinned unbatched in
/// `tests/protocol_findings.rs`.
#[test]
fn cli_batched_slack_rescues_the_lockstep_deadlock_correctly() {
    use systolizer::cli::{execute, parse_args};
    let raw: Vec<String> = ["verify", "f.sys", "--sizes", "2", "--bound", "1"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let inv = parse_args(&raw).unwrap();
    let out = execute(&inv, LOCKSTEP_SRC).expect("ring slack completes the lockstep design");
    assert!(out.contains("OK:"), "{out}");
    assert!(out.contains("[wavefront"), "{out}");

    let raw: Vec<String> = [
        "verify",
        "f.sys",
        "--sizes",
        "2",
        "--bound",
        "1",
        "--wavefront",
        "off",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let inv = parse_args(&raw).unwrap();
    let out = execute(&inv, LOCKSTEP_SRC).expect("batched slack also completes it");
    assert!(out.contains("OK:"), "{out}");
    // `[batched]` plain or `[batched+optimized]` when the optimizer fuses
    // something here too.
    assert!(out.contains("[batched"), "{out}");
}

#[test]
fn cli_split_protocol_rescues_the_lockstep_design() {
    use systolizer::cli::{execute, parse_args};
    let raw: Vec<String> = [
        "verify",
        "f.sys",
        "--sizes",
        "2",
        "--bound",
        "1",
        "--protocol",
        "split",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let inv = parse_args(&raw).unwrap();
    let out = execute(&inv, LOCKSTEP_SRC).unwrap();
    assert!(out.contains("OK:"), "{out}");
}

#[test]
fn repeated_runs_are_deterministic() {
    let (p, a) = paper::polyprod_d2();
    let plan = compile(&p, &a, &Options::default()).unwrap();
    let env = env1(&p, 5);
    let s1 = verify_equivalence(&plan, &env, &["a", "b"], 42).unwrap();
    let s2 = verify_equivalence(&plan, &env, &["a", "b"], 42).unwrap();
    assert_eq!(s1, s2, "cooperative scheduler is deterministic");
}
