//! Scheduler determinism regression: the event-driven cooperative
//! scheduler must produce bit-identical statistics run over run (its
//! worklist order is sorted, never arrival-dependent), and those
//! statistics are pinned to goldens so a scheduler change that silently
//! alters round structure — extra rounds, dropped messages, reordered
//! completion — fails here rather than only shifting benchmark numbers.
//!
//! The golden tuples are `(processes, rounds, messages, steps)` as
//! captured from the seed (pre-event-driven) scheduler; the rewrite is
//! required to preserve them exactly.

use systolizer::core::{compile, Options};
use systolizer::interp::verify_equivalence;
use systolizer::ir::gallery;
use systolizer::math::Env;
use systolizer::runtime::RunStats;
use systolizer::synthesis::{derive_array, placement::paper};

fn golden(processes: usize, rounds: u64, messages: u64, steps: u64) -> RunStats {
    RunStats {
        rounds,
        messages,
        processes,
        steps,
    }
}

#[test]
fn paper_designs_are_deterministic_and_match_goldens() {
    let goldens = [
        ("D.1", golden(16, 44, 139, 244)),
        ("D.2", golden(24, 70, 235, 444)),
        ("E.1", golden(55, 36, 450, 705)),
        ("E.2", golden(191, 22, 710, 1111)),
    ];
    for (label, p, a) in paper::all() {
        let plan = compile(&p, &a, &Options::default()).unwrap();
        let mut env = Env::new();
        env.bind(p.sizes[0], 4);
        let first = verify_equivalence(&plan, &env, &["a", "b"], 11).unwrap();
        let second = verify_equivalence(&plan, &env, &["a", "b"], 11).unwrap();
        assert_eq!(first, second, "{label}: two runs disagree");
        let want = &goldens
            .iter()
            .find(|(l, _)| *l == label)
            .unwrap_or_else(|| panic!("no golden for paper design {label}"))
            .1;
        assert_eq!(&first, want, "{label}: stats drifted from the seed golden");
    }
}

#[test]
fn gallery_programs_are_deterministic_and_match_goldens() {
    let goldens = [
        ("polynomial_product", golden(14, 39, 103, 188)),
        ("matrix_product", golden(40, 32, 240, 392)),
        ("matrix_product_bt", golden(40, 32, 240, 392)),
        ("fir_filter", golden(14, 39, 103, 188)),
        ("tensor_contraction", golden(160, 32, 960, 1568)),
    ];
    for p in gallery::all() {
        let a = derive_array(&p, 2, 4).unwrap();
        let plan = compile(&p, &a, &Options::default()).unwrap();
        let mut env = Env::new();
        for &s in &p.sizes {
            env.bind(s, 3);
        }
        let inputs: Vec<&str> = match p.name.as_str() {
            "fir_filter" => vec!["h", "x"],
            _ => vec!["a", "b"],
        };
        let first = verify_equivalence(&plan, &env, &inputs, 11).unwrap();
        let second = verify_equivalence(&plan, &env, &inputs, 11).unwrap();
        assert_eq!(first, second, "{}: two runs disagree", p.name);
        let want = &goldens
            .iter()
            .find(|(l, _)| *l == p.name)
            .unwrap_or_else(|| panic!("no golden for gallery program {}", p.name))
            .1;
        assert_eq!(
            &first, want,
            "{}: stats drifted from the seed golden",
            p.name
        );
    }
}
