//! Scheduler determinism regression: the event-driven cooperative
//! scheduler must produce bit-identical statistics run over run (its
//! worklist order is sorted, never arrival-dependent), and those
//! statistics are pinned to goldens so a scheduler change that silently
//! alters round structure — extra rounds, dropped messages, reordered
//! completion — fails here rather than only shifting benchmark numbers.
//!
//! The golden tuples are `(processes, rounds, messages, steps)` as
//! captured from the seed (pre-event-driven) scheduler; the rewrite is
//! required to preserve them exactly.

use std::time::Duration;
use systolizer::core::{compile, Options};
use systolizer::interp::{
    run_plan, run_plan_partitioned, run_plan_scheduled, run_plan_threaded, verify_equivalence,
};
use systolizer::ir::gallery;
use systolizer::ir::HostStore;
use systolizer::math::Env;
use systolizer::runtime::{ChannelPolicy, FifoPolicy, RunStats};
use systolizer::synthesis::{derive_array, placement::paper};

fn golden(processes: usize, rounds: u64, messages: u64, steps: u64) -> RunStats {
    RunStats {
        rounds,
        messages,
        processes,
        steps,
    }
}

#[test]
fn paper_designs_are_deterministic_and_match_goldens() {
    let goldens = [
        ("D.1", golden(16, 44, 139, 244)),
        ("D.2", golden(24, 70, 235, 444)),
        ("E.1", golden(55, 36, 450, 705)),
        ("E.2", golden(191, 22, 710, 1111)),
    ];
    for (label, p, a) in paper::all() {
        let plan = compile(&p, &a, &Options::default()).unwrap();
        let mut env = Env::new();
        env.bind(p.sizes[0], 4);
        let first = verify_equivalence(&plan, &env, &["a", "b"], 11).unwrap();
        let second = verify_equivalence(&plan, &env, &["a", "b"], 11).unwrap();
        assert_eq!(first, second, "{label}: two runs disagree");
        let want = &goldens
            .iter()
            .find(|(l, _)| *l == label)
            .unwrap_or_else(|| panic!("no golden for paper design {label}"))
            .1;
        assert_eq!(&first, want, "{label}: stats drifted from the seed golden");
    }
}

/// All three executors drive the same ProcIR bytecode, so on every paper
/// design they must recover bit-identical host stores and move exactly
/// the golden message/step counts; only `rounds` is scheduler-specific
/// (the threaded executors report 0 — there is no virtual clock).
#[test]
fn executors_agree_bit_for_bit_on_paper_designs() {
    let goldens = [
        ("D.1", golden(16, 44, 139, 244)),
        ("D.2", golden(24, 70, 235, 444)),
        ("E.1", golden(55, 36, 450, 705)),
        ("E.2", golden(191, 22, 710, 1111)),
    ];
    let timeout = Duration::from_secs(20);
    for (label, p, a) in paper::all() {
        let plan = compile(&p, &a, &Options::default()).unwrap();
        let mut env = Env::new();
        env.bind(p.sizes[0], 4);
        let mut store = HostStore::allocate(&p, &env);
        store.fill_random("a", 11, -9, 9);
        store.fill_random("b", 12, -9, 9);

        let coop = run_plan(
            &plan,
            &env,
            &store,
            ChannelPolicy::Rendezvous,
            &Default::default(),
        )
        .unwrap();
        let want = &goldens.iter().find(|(l, _)| *l == label).unwrap().1;
        assert_eq!(&coop.stats, want, "{label}: cooperative stats drifted");

        let threaded = run_plan_threaded(&plan, &env, &store, timeout).unwrap();
        assert_eq!(threaded.store, coop.store, "{label}: threaded store");
        assert_eq!(threaded.stats.messages, want.messages, "{label}");
        assert_eq!(threaded.stats.steps, want.steps, "{label}");
        assert_eq!(threaded.stats.rounds, 0, "{label}: no virtual clock");

        for workers in [1usize, 3] {
            let part = run_plan_partitioned(&plan, &env, &store, workers, timeout).unwrap();
            assert_eq!(part.store, coop.store, "{label} w={workers}: store");
            assert_eq!(part.stats.messages, want.messages, "{label} w={workers}");
            assert_eq!(part.stats.steps, want.steps, "{label} w={workers}");
        }
    }
}

/// The DST schedule hook must be invisible when the policy is FIFO: a
/// run with an explicit [`FifoPolicy`] attached is bit-identical — same
/// recovered store, same round/message/step counts — to the unhooked
/// engine, and both still match the pre-hook seed goldens above. This
/// pins the "policy attached but inert" path, so the hook itself can
/// never perturb the schedule it observes.
#[test]
fn coop_under_explicit_fifo_policy_matches_pre_hook_goldens() {
    let goldens = [
        ("D.1", golden(16, 44, 139, 244)),
        ("D.2", golden(24, 70, 235, 444)),
        ("E.1", golden(55, 36, 450, 705)),
        ("E.2", golden(191, 22, 710, 1111)),
    ];
    for (label, p, a) in paper::all() {
        let plan = compile(&p, &a, &Options::default()).unwrap();
        let mut env = Env::new();
        env.bind(p.sizes[0], 4);
        let mut store = HostStore::allocate(&p, &env);
        store.fill_random("a", 11, -9, 9);
        store.fill_random("b", 12, -9, 9);

        let bare = run_plan(
            &plan,
            &env,
            &store,
            ChannelPolicy::Rendezvous,
            &Default::default(),
        )
        .unwrap();
        let hooked = run_plan_scheduled(
            &plan,
            &env,
            &store,
            ChannelPolicy::Rendezvous,
            &Default::default(),
            Some(Box::new(FifoPolicy)),
            &[],
        )
        .unwrap();
        assert_eq!(hooked.store, bare.store, "{label}: FIFO policy moved data");
        assert_eq!(hooked.stats, bare.stats, "{label}: FIFO policy cost stats");
        let want = &goldens.iter().find(|(l, _)| *l == label).unwrap().1;
        assert_eq!(&hooked.stats, want, "{label}: drifted from seed golden");
    }
}

/// Runs with an observer attached or a non-FIFO schedule policy must
/// take the *unbatched* engine even under `BatchMode::Auto` (see
/// `docs/scheduler.md`): their stats equal the seed goldens exactly —
/// including `rounds`, which the batching fast path would collapse — and
/// the run reports `batched == false`. This pins the engagement gate to
/// the goldens, so a gate regression shows up as a round-count drift
/// here rather than as silently unobserved runs.
#[test]
fn recorder_and_non_fifo_runs_stay_on_the_unbatched_goldens() {
    use systolizer::interp::{run_plan_batch, BatchMode, OptMode, WavefrontMode};
    use systolizer::runtime::{shared, ChanId, MetricsRecorder, SchedulePolicy};

    struct ReversePolicy;
    impl SchedulePolicy for ReversePolicy {
        fn schedule_round(
            &mut self,
            _round: u64,
            fire: &mut Vec<ChanId>,
            _defer: &mut Vec<ChanId>,
        ) {
            fire.reverse();
        }
    }

    let goldens = [
        ("D.1", golden(16, 44, 139, 244)),
        ("D.2", golden(24, 70, 235, 444)),
        ("E.1", golden(55, 36, 450, 705)),
        ("E.2", golden(191, 22, 710, 1111)),
    ];
    for (label, p, a) in paper::all() {
        let plan = compile(&p, &a, &Options::default()).unwrap();
        let mut env = Env::new();
        env.bind(p.sizes[0], 4);
        let mut store = HostStore::allocate(&p, &env);
        store.fill_random("a", 11, -9, 9);
        store.fill_random("b", 12, -9, 9);
        let want = &goldens.iter().find(|(l, _)| *l == label).unwrap().1;

        let (_, recorder) = shared(MetricsRecorder::new());
        let observed = run_plan_batch(
            &plan,
            &env,
            &store,
            ChannelPolicy::Rendezvous,
            &Default::default(),
            BatchMode::Auto,
            OptMode::Auto,
            WavefrontMode::Auto,
            None,
            &[recorder],
        )
        .unwrap();
        assert!(!observed.batched, "{label}: recorder must close the gate");
        assert!(!observed.wavefront, "{label}: and the wavefront gate too");
        assert_eq!(&observed.stats, want, "{label}: observed run drifted");

        let perturbed = run_plan_batch(
            &plan,
            &env,
            &store,
            ChannelPolicy::Rendezvous,
            &Default::default(),
            BatchMode::Auto,
            OptMode::Auto,
            WavefrontMode::Auto,
            Some(Box::new(ReversePolicy)),
            &[],
        )
        .unwrap();
        assert!(!perturbed.batched, "{label}: policy must close the gate");
        assert!(!perturbed.wavefront, "{label}: and the wavefront gate too");
        assert_eq!(
            (perturbed.stats.messages, perturbed.stats.steps),
            (want.messages, want.steps),
            "{label}: perturbed run lost logical invariance"
        );
        assert_eq!(perturbed.store, observed.store, "{label}: stores differ");
    }
}

#[test]
fn gallery_programs_are_deterministic_and_match_goldens() {
    let goldens = [
        ("polynomial_product", golden(14, 39, 103, 188)),
        ("matrix_product", golden(40, 32, 240, 392)),
        ("matrix_product_bt", golden(40, 32, 240, 392)),
        ("fir_filter", golden(14, 39, 103, 188)),
        ("tensor_contraction", golden(160, 32, 960, 1568)),
    ];
    for p in gallery::all() {
        let a = derive_array(&p, 2, 4).unwrap();
        let plan = compile(&p, &a, &Options::default()).unwrap();
        let mut env = Env::new();
        for &s in &p.sizes {
            env.bind(s, 3);
        }
        let inputs: Vec<&str> = match p.name.as_str() {
            "fir_filter" => vec!["h", "x"],
            _ => vec!["a", "b"],
        };
        let first = verify_equivalence(&plan, &env, &inputs, 11).unwrap();
        let second = verify_equivalence(&plan, &env, &inputs, 11).unwrap();
        assert_eq!(first, second, "{}: two runs disagree", p.name);
        let want = &goldens
            .iter()
            .find(|(l, _)| *l == p.name)
            .unwrap_or_else(|| panic!("no golden for gallery program {}", p.name))
            .1;
        assert_eq!(
            &first, want,
            "{}: stats drifted from the seed golden",
            p.name
        );
    }
}
