//! Differential oracle suite: every gallery design — the four appendix
//! designs (polyprod D.1/D.2, matmul E.1/E.2), the FIR filter on a
//! derived array, and the shipped `fir.sys`/`polyprod.sys` files — runs
//! through the sequential reference (`ir::seq`) and the simulated
//! network on all four executors (cooperative, threaded, partitioned,
//! wavefront), at several problem sizes. The final host stores must be
//! bit-identical across all executions, and the executor-invariant
//! statistics (messages, steps) must agree.

use std::time::Duration;
use systolizer::core::{compile, Options, SystolicProgram};
use systolizer::interp::{
    run_plan, run_plan_partitioned, run_plan_threaded, ElabOptions, SystolicRun,
};
use systolizer::ir::{seq, HostStore};
use systolizer::math::Env;
use systolizer::runtime::ChannelPolicy;
use systolizer::synthesis::placement::paper;

/// A gallery design: label, compiled plan, input variables, and the size
/// tuples to exercise.
struct Design {
    label: &'static str,
    plan: SystolicProgram,
    inputs: Vec<&'static str>,
    sizes: Vec<Vec<i64>>,
}

fn designs() -> Vec<Design> {
    let mut out = Vec::new();
    for (label, p, a) in paper::all() {
        out.push(Design {
            label,
            plan: compile(&p, &a, &Options::default()).unwrap(),
            inputs: vec!["a", "b"],
            sizes: if label.starts_with("matmul") {
                vec![vec![1], vec![2], vec![4]]
            } else {
                vec![vec![1], vec![3], vec![6]]
            },
        });
    }
    let p = systolizer::ir::gallery::fir_filter();
    let a = systolizer::synthesis::derive_array(&p, 2, 4).unwrap();
    out.push(Design {
        label: "fir",
        plan: compile(&p, &a, &Options::default()).unwrap(),
        inputs: vec!["h", "x"],
        sizes: vec![vec![1, 2], vec![2, 5], vec![3, 4]],
    });
    // The shipped program file, through the full front end — its long
    // relay pipes make it a second witness for chain fusion.
    let sys = systolizer::systolize_source(
        include_str!("../programs/fir.sys"),
        &systolizer::SystolizeOptions::default(),
    )
    .unwrap();
    out.push(Design {
        label: "fir.sys",
        plan: sys.plan,
        inputs: vec!["h", "x"],
        sizes: vec![vec![1, 2], vec![2, 5], vec![3, 4]],
    });
    // The shipped polynomial product, also through the full front end:
    // the Appendix D source as users would actually write it.
    let sys = systolizer::systolize_source(
        include_str!("../programs/polyprod.sys"),
        &systolizer::SystolizeOptions::default(),
    )
    .unwrap();
    out.push(Design {
        label: "polyprod.sys",
        plan: sys.plan,
        inputs: vec!["a", "b"],
        sizes: vec![vec![1], vec![3], vec![6]],
    });
    out
}

fn size_env(plan: &SystolicProgram, vals: &[i64]) -> Env {
    let mut env = Env::new();
    for (&s, &v) in plan.source.sizes.iter().zip(vals) {
        env.bind(s, v);
    }
    env
}

/// Seeded input store and the sequential-oracle result for a design.
fn oracle(d: &Design, env: &Env, seed: u64) -> (HostStore, HostStore) {
    let mut store = HostStore::allocate(&d.plan.source, env);
    for (i, name) in d.inputs.iter().enumerate() {
        store.fill_random(name, seed.wrapping_add(i as u64), -9, 9);
    }
    let mut expected = store.clone();
    seq::run(&d.plan.source, env, &mut expected);
    (store, expected)
}

/// Every variable of the recovered store matches the oracle bit for bit.
fn assert_stores_identical(label: &str, sizes: &[i64], run: &SystolicRun, expected: &HostStore) {
    for name in expected.names() {
        assert_eq!(
            run.store.get(name),
            expected.get(name),
            "{label} sizes={sizes:?}: variable {name} diverges from the sequential oracle"
        );
    }
}

#[test]
fn coop_matches_the_sequential_oracle_on_every_design() {
    for d in designs() {
        for sizes in &d.sizes {
            let env = size_env(&d.plan, sizes);
            let (store, expected) = oracle(&d, &env, 17);
            let run = run_plan(
                &d.plan,
                &env,
                &store,
                ChannelPolicy::Rendezvous,
                &ElabOptions::default(),
            )
            .unwrap_or_else(|e| panic!("{} sizes={sizes:?}: {e}", d.label));
            assert_stores_identical(d.label, sizes, &run, &expected);
        }
    }
}

#[test]
fn threaded_matches_the_sequential_oracle_on_every_design() {
    for d in designs() {
        // One mid-size point per design: OS threads are costly.
        let sizes = &d.sizes[1];
        let env = size_env(&d.plan, sizes);
        let (store, expected) = oracle(&d, &env, 29);
        let run = run_plan_threaded(&d.plan, &env, &store, Duration::from_secs(60))
            .unwrap_or_else(|e| panic!("{} sizes={sizes:?}: {e}", d.label));
        assert_stores_identical(d.label, sizes, &run, &expected);
    }
}

#[test]
fn partitioned_matches_the_sequential_oracle_on_every_design() {
    for d in designs() {
        let sizes = &d.sizes[1];
        let env = size_env(&d.plan, sizes);
        let (store, expected) = oracle(&d, &env, 31);
        for workers in [1usize, 3, 7] {
            let run = run_plan_partitioned(&d.plan, &env, &store, workers, Duration::from_secs(60))
                .unwrap_or_else(|e| panic!("{} sizes={sizes:?} workers={workers}: {e}", d.label));
            assert_stores_identical(d.label, sizes, &run, &expected);
        }
    }
}

#[test]
fn executors_agree_on_stores_and_invariant_statistics() {
    // Messages and steps are properties of the elaborated network, not of
    // the executor; all four must report the same counts and stores.
    // `verify_equivalence_all` runs the four engines off ONE shared
    // elaboration (a single `Arc<ProcIrModule>` from the module store)
    // and has already compared each against the sequential oracle. Every
    // size of every design is exercised: the wavefront executor's chunk
    // staging is size-dependent, so one mid-size point would not pin it.
    for d in designs() {
        for sizes in &d.sizes {
            let env = size_env(&d.plan, sizes);
            let runs = systolizer::interp::verify_equivalence_all(
                &d.plan,
                &env,
                &d.inputs,
                43,
                4,
                Duration::from_secs(60),
            )
            .unwrap_or_else(|e| panic!("{} sizes={sizes:?}: {e}", d.label));
            let labels: Vec<&str> = runs.iter().map(|(l, _)| *l).collect();
            assert_eq!(
                labels,
                ["coop", "threaded", "partitioned", "wavefront"],
                "{}",
                d.label
            );
            let (_, coop) = &runs[0];
            for (label, other) in &runs[1..] {
                assert_eq!(
                    coop.stats.messages, other.stats.messages,
                    "{} {label}",
                    d.label
                );
                assert_eq!(coop.stats.steps, other.stats.steps, "{} {label}", d.label);
                assert_eq!(
                    coop.stats.processes, other.stats.processes,
                    "{} {label}",
                    d.label
                );
                for name in coop.store.names() {
                    assert_eq!(
                        coop.store.get(name),
                        other.store.get(name),
                        "{} {label}",
                        d.label
                    );
                }
            }
        }
    }
}

/// Order-sensitive checksum over a host array's backing values, used to
/// pin golden stores without serializing whole arrays into the test.
fn checksum(values: &[systolizer::ir::Value]) -> i64 {
    values
        .iter()
        .fold(0i64, |h, &v| h.wrapping_mul(31).wrapping_add(v))
}

#[test]
fn polyprod_sys_golden_stores_are_pinned_at_three_sizes() {
    // The shipped `programs/polyprod.sys` through the full front end,
    // with the recovered `c` store pinned by checksum at three sizes.
    // The sequential oracle already guards correctness; these goldens
    // additionally guard the *front end* — a parser, normalizer, or
    // systolization change that alters what the program computes fails
    // here even if the simulated network faithfully executes the new
    // (wrong) plan. Seed and fill range are part of the golden.
    let goldens: [(i64, i64); 3] = [
        (1, 6554),
        (3, 6_018_320_591),
        (6, 5_341_326_772_481_792_544),
    ];
    let sys = systolizer::systolize_source(
        include_str!("../programs/polyprod.sys"),
        &systolizer::SystolizeOptions::default(),
    )
    .unwrap();
    for (n, want) in goldens {
        let mut env = Env::new();
        env.bind(sys.plan.source.sizes[0], n);
        let mut store = HostStore::allocate(&sys.plan.source, &env);
        store.fill_random("a", 101, -9, 9);
        store.fill_random("b", 102, -9, 9);
        let mut expected = store.clone();
        seq::run(&sys.plan.source, &env, &mut expected);
        let run = run_plan(
            &sys.plan,
            &env,
            &store,
            ChannelPolicy::Rendezvous,
            &ElabOptions::default(),
        )
        .unwrap_or_else(|e| panic!("polyprod.sys n={n}: {e}"));
        assert_eq!(
            run.store.get("c"),
            expected.get("c"),
            "polyprod.sys n={n}: network diverges from the oracle"
        );
        let got = checksum(run.store.get("c").raw());
        assert_eq!(
            got, want,
            "polyprod.sys n={n}: golden store checksum drifted"
        );
    }
}

#[test]
fn observed_runs_match_the_oracle_too() {
    // Attaching recorders must not perturb results: the observed run's
    // store equals the oracle and its report reconciles with the stats.
    for d in designs() {
        let sizes = &d.sizes[1];
        let env = size_env(&d.plan, sizes);
        let (store, expected) = oracle(&d, &env, 59);
        let obs = systolizer::interp::observe_plan(
            &d.plan,
            &env,
            &store,
            ChannelPolicy::Rendezvous,
            &ElabOptions::default(),
        )
        .unwrap_or_else(|e| panic!("{}: {e}", d.label));
        assert_stores_identical(d.label, sizes, &obs.run, &expected);
        assert_eq!(obs.report.transfers, obs.run.stats.messages, "{}", d.label);
        assert_eq!(obs.report.end_time, obs.run.stats.rounds, "{}", d.label);
        let steps: u64 = obs.report.processes.iter().map(|p| p.steps).sum();
        assert_eq!(steps, obs.run.stats.steps, "{}", d.label);
    }
}
