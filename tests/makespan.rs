//! Experiment X2: makespan and optimal parallelism.
//!
//! "Formal methods for systolic array synthesis can automatically
//! generate optimal parallelism" (Sec. 1). We check that (a) the virtual
//! clock of the simulated execution grows like the schedule range
//! `max step - min step + 1` — linear in `n` — while sequential work is
//! quadratic/cubic, and (b) the schedule search finds makespans at least
//! as good as the paper's schedules.

use systolizer::core::{compile, Options};
use systolizer::interp::verify_equivalence;
use systolizer::math::Env;
use systolizer::synthesis::placement::paper;
use systolizer::synthesis::schedule::step_makespan;

fn rounds_at(plan: &systolizer::core::SystolicProgram, n: i64) -> u64 {
    let mut env = Env::new();
    env.bind(plan.source.sizes[0], n);
    verify_equivalence(plan, &env, &["a", "b"], 1)
        .unwrap()
        .rounds
}

#[test]
fn virtual_clock_grows_linearly_for_matmul() {
    for pair in [paper::matmul_e1(), paper::matmul_e2()] {
        let (p, a) = pair;
        let plan = compile(&p, &a, &Options::default()).unwrap();
        let r: Vec<u64> = [2i64, 4, 6].iter().map(|&n| rounds_at(&plan, n)).collect();
        // Linear growth: second differences vanish.
        let d1 = r[1] as i64 - r[0] as i64;
        let d2 = r[2] as i64 - r[1] as i64;
        assert_eq!(d1, d2, "rounds {r:?} are not affine in n");
        // And decisively sub-cubic: (n+1)^3 grows 343/27 ~ 12.7x; the
        // rounds grow ~3x over the same range.
        assert!((r[2] as f64 / r[0] as f64) < 4.0, "rounds {r:?}");
    }
}

#[test]
fn virtual_clock_tracks_the_schedule_range() {
    // The asynchronous execution cannot beat the dependence structure,
    // and our round counter should stay within a small constant factor of
    // the synchronous schedule (each systolic step is a receive round
    // plus a send round, plus i/o fringe).
    for (label, p, a) in paper::all() {
        let plan = compile(&p, &a, &Options::default()).unwrap();
        for n in [3i64, 5] {
            let mut env = Env::new();
            env.bind(p.sizes[0], n);
            let rounds = verify_equivalence(&plan, &env, &["a", "b"], 2)
                .unwrap()
                .rounds as i64;
            let schedule = a.makespan(&p, &env);
            assert!(
                rounds >= schedule / 2,
                "{label} n={n}: rounds {rounds} impossibly beat the schedule {schedule}"
            );
            assert!(
                rounds <= 6 * schedule + 20,
                "{label} n={n}: rounds {rounds} far above the schedule {schedule}"
            );
        }
    }
}

#[test]
fn search_matches_or_beats_paper_schedules() {
    let poly = systolizer::ir::gallery::polynomial_product();
    let mm = systolizer::ir::gallery::matrix_product();
    let mut env = Env::new();
    env.bind(poly.sizes[0], 10);
    let best_poly = systolizer::synthesis::optimal_step(&poly, 2, 10).unwrap();
    assert!(
        step_makespan(&best_poly, &poly, &env) <= step_makespan(&[2, 1], &poly, &env),
        "search must not be worse than the paper's 2i + j"
    );
    let mut env = Env::new();
    env.bind(mm.sizes[0], 10);
    let best_mm = systolizer::synthesis::optimal_step(&mm, 1, 10).unwrap();
    assert_eq!(
        step_makespan(&best_mm, &mm, &env),
        step_makespan(&[1, 1, 1], &mm, &env),
        "i+j+k is optimal for matmul within unit coefficients"
    );
}

#[test]
fn found_schedule_strictly_beats_paper_for_polyprod() {
    // A reproduction finding: with the imperative accumulation chain
    // (1,-1) of stream c, step (1,-1) is valid and has makespan 2n+1,
    // strictly better than the paper's 2i+j at 3n+1. The paper's choice
    // presumably also satisfies design constraints outside this
    // framework; we record the difference as data.
    let poly = systolizer::ir::gallery::polynomial_product();
    let deps = systolizer::synthesis::dependences(&poly);
    assert!(systolizer::synthesis::schedule::is_valid_step(
        &[1, -1],
        &deps
    ));
    let mut env = Env::new();
    env.bind(poly.sizes[0], 10);
    assert_eq!(step_makespan(&[1, -1], &poly, &env), 21);
    assert_eq!(step_makespan(&[2, 1], &poly, &env), 31);
}

#[test]
fn process_counts_match_the_layouts() {
    // D.1: n+1 processes in CS; D.2: 2n+1; E.1: (n+1)^2;
    // E.2: the |col-row| <= n band of the (2n+1)^2 box.
    let n = 4i64;
    let expect = [
        (paper::polyprod_d1(), (n + 1) as usize),
        (paper::polyprod_d2(), (2 * n + 1) as usize),
        (paper::matmul_e1(), ((n + 1) * (n + 1)) as usize),
        (
            paper::matmul_e2(),
            (0..=2 * n)
                .flat_map(|c| (0..=2 * n).map(move |r| (c - n, r - n)))
                .filter(|&(c, r)| (c - r).abs() <= n)
                .count(),
        ),
    ];
    for ((p, a), cs_size) in expect {
        let plan = compile(&p, &a, &Options::default()).unwrap();
        let mut env = Env::new();
        env.bind(p.sizes[0], n);
        let store = systolizer::ir::HostStore::allocate(&p, &env);
        let el = systolizer::interp::elaborate(
            &plan,
            &env,
            &store,
            &systolizer::interp::ElabOptions::default(),
        )
        .unwrap();
        assert_eq!(el.census.computation, cs_size, "{}", p.name);
    }
}
