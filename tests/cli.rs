//! Integration tests for the `systolizer` command-line driver.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_systolizer"))
}

fn program_file() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("programs/polyprod.sys")
}

#[test]
fn verify_subcommand_passes_on_the_sample_program() {
    let out = bin()
        .args(["verify", program_file().to_str().unwrap(), "--sizes", "5"])
        .output()
        .expect("run CLI");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("OK:"), "{stdout}");
    assert!(stdout.contains("systolic result == sequential result"));
}

#[test]
fn compile_emits_each_backend() {
    for (emit, needle) in [
        ("paper", "parfor"),
        ("occam", "PAR"),
        ("c", "PARFOR"),
        ("report", "increment"),
    ] {
        let out = bin()
            .args(["compile", program_file().to_str().unwrap(), "--emit", emit])
            .output()
            .expect("run CLI");
        assert!(out.status.success(), "emit={emit}");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains(needle), "emit={emit}: {stdout}");
    }
}

#[test]
fn compile_with_projection_flag() {
    let out = bin()
        .args([
            "compile",
            program_file().to_str().unwrap(),
            "--place",
            "proj:1,-1",
            "--emit",
            "report",
        ])
        .output()
        .expect("run CLI");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("2*n"),
        "place i+j gives PS_max 2n: {stdout}"
    );
}

#[test]
fn explore_subcommand_prints_a_table() {
    let out = bin()
        .args([
            "explore",
            program_file().to_str().unwrap(),
            "--bound",
            "2",
            "--sample",
            "5",
        ])
        .output()
        .expect("run CLI");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("makespan"));
    assert!(stdout.contains("designs total"));
}

#[test]
fn bad_usage_and_bad_files_fail_cleanly() {
    let out = bin().args(["compile"]).output().unwrap();
    assert!(!out.status.success());
    let out = bin()
        .args(["verify", "/nonexistent.sys", "--sizes", "3"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let out = bin()
        .args(["frobnicate", program_file().to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn size_arity_mismatch_is_reported() {
    let fir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("programs/fir.sys");
    let out = bin()
        .args(["verify", fir.to_str().unwrap(), "--sizes", "3"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("size parameter"), "{stderr}");
    // And the correct arity passes.
    let out = bin()
        .args(["verify", fir.to_str().unwrap(), "--sizes", "3,7"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}
