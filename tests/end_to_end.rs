//! Experiment X1: end-to-end observational equivalence.
//!
//! For each appendix design and each gallery kernel, across a sweep of
//! problem sizes and random seeds, the compiled systolic program executed
//! on the simulated distributed-memory machine must recover exactly the
//! variables the sequential reference computes. This mechanizes the
//! paper's Sec. 8 hardware experiments.

use systolizer::core::{compile, Options};
use systolizer::interp::verify_equivalence;
use systolizer::math::Env;
use systolizer::synthesis::placement::paper;

fn env_for(sizes: &[systolizer::math::Var], vals: &[i64]) -> Env {
    let mut env = Env::new();
    for (&v, &x) in sizes.iter().zip(vals) {
        env.bind(v, x);
    }
    env
}

#[test]
fn appendix_designs_across_sizes_and_seeds() {
    for (label, p, a) in paper::all() {
        let plan = compile(&p, &a, &Options::default()).unwrap();
        let sweep: &[i64] = if p.r() == 2 {
            &[1, 2, 3, 5, 8, 13]
        } else {
            &[1, 2, 3, 5]
        };
        for &n in sweep {
            for seed in [1u64, 99, 512] {
                let env = env_for(&p.sizes, &[n]);
                verify_equivalence(&plan, &env, &["a", "b"], seed)
                    .unwrap_or_else(|e| panic!("{label} n={n} seed={seed}: {e}"));
            }
        }
    }
}

#[test]
fn gallery_kernels_with_derived_arrays() {
    for p in systolizer::ir::gallery::all() {
        let a = systolizer::synthesis::derive_array(&p, 2, 5)
            .unwrap_or_else(|| panic!("{}: no array derived", p.name));
        let plan = compile(&p, &a, &Options::default()).unwrap();
        let inputs: Vec<&str> = if p.name == "fir_filter" {
            vec!["h", "x"]
        } else {
            vec!["a", "b"]
        };
        for vals in [[2i64, 3], [4, 6], [5, 9]] {
            let env = env_for(&p.sizes, &vals[..p.sizes.len()]);
            verify_equivalence(&plan, &env, &inputs, 77)
                .unwrap_or_else(|e| panic!("{} {vals:?}: {e}", p.name));
        }
    }
}

#[test]
fn every_enumerated_place_for_matmul_executes_correctly() {
    // Not just the paper's two designs: every valid unit-projection
    // place for step (1,1,1) must compile and run correctly.
    let p = systolizer::ir::gallery::matrix_product();
    let arrays = systolizer::synthesis::enumerate_places(&p, &[1, 1, 1]);
    assert!(arrays.len() >= 2, "at least the two appendix designs");
    for a in arrays {
        let plan = compile(&p, &a, &Options::default()).unwrap();
        let env = env_for(&p.sizes, &[3]);
        verify_equivalence(&plan, &env, &["a", "b"], 5)
            .unwrap_or_else(|e| panic!("projection {:?}: {e}", a.projection_direction()));
    }
}

#[test]
fn alternate_loading_vectors_work() {
    use systolizer::ir::StreamId;
    let (p, a) = paper::matmul_e1();
    for lv in [vec![1, 0], vec![0, 1], vec![0, -1], vec![1, 1]] {
        let opts = Options::default().with_loading_vector(StreamId(2), lv.clone());
        let plan = compile(&p, &a, &opts).unwrap();
        let env = env_for(&p.sizes, &[3]);
        verify_equivalence(&plan, &env, &["a", "b"], 31)
            .unwrap_or_else(|e| panic!("loading vector {lv:?}: {e}"));
    }
}

#[test]
fn reversed_loop_directions_still_compile_and_run() {
    // Negative loop steps change the sequential order; the scheme must
    // honour them (Sec. 3.1's implicit case distinction).
    let mut p = systolizer::ir::gallery::polynomial_product();
    p.loops[0].step = -1;
    let a = systolizer::synthesis::derive_array(&p, 2, 5).expect("array for reversed loop");
    let plan = compile(&p, &a, &Options::default()).unwrap();
    let env = env_for(&p.sizes, &[5]);
    verify_equivalence(&plan, &env, &["a", "b"], 3).unwrap();
}

#[test]
fn guarded_bodies_execute_correctly() {
    // A guarded basic statement (triangular accumulation) through the
    // full pipeline.
    let src = "
        program tri;
        size n;
        var a[0..n], b[0..n], c[0..2*n];
        for i = 0 <- 1 -> n
        for j = 0 <- 1 -> n {
          if i <= j -> c[i+j] = c[i+j] + a[i] * b[j];
          if i > j  -> c[i+j] = c[i+j] - a[i] * b[j];
        }
    ";
    let sys = systolizer::systolize_source(src, &systolizer::SystolizeOptions::default()).unwrap();
    for n in [2i64, 4, 7] {
        sys.verify(&[n], &["a", "b"], 13).unwrap();
    }
}
