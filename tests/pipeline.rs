//! Experiment X4 + public-API pipeline tests: text source in, derived
//! array, compiled plan, generated code, verified execution out.

use systolizer::{systolize, systolize_source, Error, PlaceChoice, SystolizeOptions};

const POLYPROD: &str = "
    program polyprod;
    size n;
    var a[0..n], b[0..n], c[0..2*n];
    for i = 0 <- 1 -> n
    for j = 0 <- 1 -> n {
      c[i+j] = c[i+j] + a[i] * b[j];
    }
";

const MATMUL: &str = "
    program matmul;
    size n;
    var a[0..n, 0..n], b[0..n, 0..n], c[0..n, 0..n];
    for i = 0 <- 1 -> n
    for j = 0 <- 1 -> n
    for k = 0 <- 1 -> n {
      c[i,j] = c[i,j] + a[i,k] * b[k,j];
    }
";

#[test]
fn text_to_verified_execution() {
    for (src, inputs) in [(POLYPROD, vec!["a", "b"]), (MATMUL, vec!["a", "b"])] {
        let sys = systolize_source(src, &SystolizeOptions::default()).unwrap();
        sys.verify(&[4], &inputs, 17).unwrap();
        assert!(sys.paper_code().len() > 300);
    }
}

#[test]
fn synthesis_finds_the_paper_arrays() {
    // The paper's arrays are reachable through the public API via
    // explicit projections, and validate against the derived step.
    let sys = systolize_source(
        MATMUL,
        &SystolizeOptions {
            place: PlaceChoice::Projection(vec![1, 1, 1]),
            ..Default::default()
        },
    )
    .unwrap();
    // Kung-Leiserson place rows.
    let place = &sys.array.place;
    assert_eq!(place.rows(), 2);
    // The derived step may be a reflected variant; the projection is the
    // same line either way.
    let proj = sys.array.projection_direction().unwrap();
    assert!(
        proj == vec![1, 1, 1] || proj == vec![-1, -1, -1],
        "{proj:?}"
    );
    sys.verify(&[3], &["a", "b"], 23).unwrap();
}

#[test]
fn restriction_violations_are_reported_not_miscompiled() {
    // r-dimensional variable (matmul with a 1-D c) -> rank violation.
    let bad = "
        program bad;
        size n;
        var a[0..n, 0..n], b[0..n, 0..n], c[0..n];
        for i = 0 <- 1 -> n
        for j = 0 <- 1 -> n
        for k = 0 <- 1 -> n {
          c[i] = c[i] + a[i,k] * b[k,j];
        }
    ";
    match systolize_source(bad, &SystolizeOptions::default()) {
        Err(Error::NoArrayFound) | Err(Error::Compile(_)) => {}
        Ok(_) => panic!("rank-deficient index map must not compile"),
        Err(e) => panic!("unexpected error class: {e}"),
    }
}

#[test]
fn fully_sequentializable_program_with_no_valid_array_is_rejected() {
    // Opposing accumulation chains: c[i+j] and d[i-j] both written.
    // Any linear schedule must strictly increase along (1,-1) and (1,1),
    // which is satisfiable -- so instead test a genuinely unschedulable
    // shape: the same variable written under two index maps is already a
    // front-end error.
    let bad = "
        program bad;
        size n;
        var a[0..n], b[0..n], c[0..2*n];
        for i = 0 <- 1 -> n
        for j = 0 <- 1 -> n {
          c[i+j] = c[i+j] + a[i] * b[j];
          c[i-j] = c[i-j] + a[i];
        }
    ";
    match systolize_source(bad, &SystolizeOptions::default()) {
        Err(Error::Parse(e)) => assert!(e.message.contains("two different index maps")),
        other => panic!("expected a parse diagnostic, got {:?}", other.map(|_| ())),
    }
}

#[test]
fn explicit_array_round_trip() {
    let program = systolizer::ir::gallery::polynomial_product();
    let (_, array) = systolizer::synthesis::placement::paper::polyprod_d2();
    let sys = systolize(
        &program,
        &SystolizeOptions {
            place: PlaceChoice::Explicit(array.clone()),
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(sys.array.step, array.step);
    assert_eq!(sys.makespan(&[10]), 31, "2i + j over [0,10]^2");
}

#[test]
fn reports_and_code_are_consistent() {
    let sys = systolize_source(POLYPROD, &SystolizeOptions::default()).unwrap();
    let report = sys.report();
    let code = sys.paper_code();
    // The increment in the report appears in the repeater of the code.
    let inc_line = report
        .lines()
        .find(|l| l.starts_with("increment"))
        .unwrap()
        .split(':')
        .nth(1)
        .unwrap()
        .trim()
        .to_string();
    assert!(code.contains(&inc_line), "increment {inc_line} not in code");
}

#[test]
fn run_with_explicit_store() {
    let sys = systolize_source(POLYPROD, &SystolizeOptions::default()).unwrap();
    let env = sys.size_env(&[2]);
    let mut store = systolizer::ir::HostStore::allocate(&sys.source, &env);
    for (i, v) in [1i64, 2, 3].into_iter().enumerate() {
        store.get_mut("a").set(&[i as i64], v);
        store.get_mut("b").set(&[i as i64], 1);
    }
    let run = sys.run(&[2], &store).unwrap();
    // (1 + 2x + 3x^2)(1 + x + x^2) = 1 + 3x + 6x^2 + 5x^3 + 3x^4.
    let c: Vec<i64> = (0..=4).map(|k| run.store.get("c").get(&[k])).collect();
    assert_eq!(c, vec![1, 3, 6, 5, 3]);
}
