//! Integration suite for the multi-tenant simulation service
//! (`crates/service`, `docs/service.md`): the test-first concurrency
//! harness of PR 9.
//!
//! Three pillars:
//!
//! 1. **Concurrency soak** — N threads hammer one shared service
//!    (one `ModuleStore`, one `PlanCache`, one worker pool) across the
//!    whole gallery × engine-mode matrix. Every response's stores must
//!    be bit-identical to a locally computed sequential oracle, and the
//!    cache counters must be *exactly* what the same workload produces
//!    sequentially — the PR 8 eviction-race regression, extended to the
//!    full service stack.
//! 2. **Error paths** — every malformed, oversized, unknown, or expired
//!    request maps to a distinct structured JSON error with the right
//!    HTTP status, and raw panic text never crosses the wire.
//! 3. **DST integration** — adversarial `SchedulePolicy` seeds and
//!    fault plans run under the service worker pool (in-process, no
//!    sockets), proving adversaries change neither stores nor error
//!    classification; a shrunk race-sink counterexample replays through
//!    the service facade.

use std::collections::HashMap;
use std::io::{Read as _, Write as _};
use std::sync::Arc;
use std::time::Duration;

use systolic_ir::seq;
use systolic_math::Env;
use systolic_service::api::ApiError;
use systolic_service::{compile_design, http, Service, ServiceConfig};
use systolic_sim::{
    explore, json, policy_by_name, replay, subject_for, ExploreConfig, FaultPlan, Json,
    RaceSubject,
};

/// The DST-registry gallery: design keys and sizes.
const GALLERY: &[(&str, &[i64])] = &[
    ("D.1", &[4]),
    ("D.2", &[4]),
    ("E.1", &[3]),
    ("E.2", &[3]),
    ("fir", &[2, 5]),
];

fn test_config() -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        queue_cap: 128,
        ..ServiceConfig::default()
    }
}

/// Expected stores for `(design, sizes, seed)` from the sequential
/// reference semantics — computed entirely outside the service.
fn oracle_for(design: &str, sizes: &[i64], seed: u64) -> HashMap<String, Vec<i64>> {
    let resolved = compile_design(design).expect("gallery design compiles");
    let mut env = Env::new();
    for (&v, &val) in resolved.plan.source.sizes.iter().zip(sizes) {
        env.bind(v, val);
    }
    let inputs: Vec<&str> = resolved.default_inputs.iter().map(|s| s.as_str()).collect();
    let store = seq::run_random(&resolved.plan.source, &env, &inputs, seed);
    store
        .names()
        .map(|n| (n.to_string(), store.get(n).raw().to_vec()))
        .collect()
}

/// Assert a 200 stores response matches the oracle bit for bit.
fn assert_stores_match(body: &str, expected: &HashMap<String, Vec<i64>>, ctx: &str) {
    let doc = json::parse(body).unwrap_or_else(|e| panic!("{ctx}: unparseable body: {e}"));
    let stores = doc.get("stores").unwrap_or_else(|| panic!("{ctx}: no stores"));
    for (name, want) in expected {
        let got: Vec<i64> = stores
            .get(name)
            .and_then(|s| s.get("values"))
            .and_then(|v| v.as_arr())
            .unwrap_or_else(|| panic!("{ctx}: missing store '{name}'"))
            .iter()
            .filter_map(|v| v.as_i64())
            .collect();
        assert_eq!(&got, want, "{ctx}: store '{name}' diverges from the oracle");
    }
}

fn run_body(design: &str, sizes: &[i64], seed: u64, extra: &[(&str, Json)]) -> String {
    let mut fields = vec![
        ("design".to_string(), Json::Str(design.into())),
        (
            "sizes".to_string(),
            Json::Arr(sizes.iter().map(|&s| Json::Num(s)).collect()),
        ),
        ("seed".to_string(), Json::Num(seed as i64)),
    ];
    for (k, v) in extra {
        fields.push((k.to_string(), v.clone()));
    }
    Json::Obj(fields).to_string()
}

/// The soak workload: gallery × (batch, wavefront) modes × executors,
/// each body issued twice so cache hits actually occur.
fn soak_workload() -> Vec<(String, HashMap<String, Vec<i64>>)> {
    let modes = [("auto", "auto"), ("off", "off"), ("auto", "off"), ("off", "auto")];
    let executors = ["coop", "threaded"];
    let mut work = Vec::new();
    for (design, sizes) in GALLERY {
        let expected = oracle_for(design, sizes, 42);
        for (batch, wavefront) in modes {
            for executor in executors {
                let body = run_body(
                    design,
                    sizes,
                    42,
                    &[
                        ("batch", Json::Str(batch.into())),
                        ("wavefront", Json::Str(wavefront.into())),
                        ("executor", Json::Str(executor.into())),
                    ],
                );
                work.push((body.clone(), expected.clone()));
                work.push((body, expected.clone()));
            }
        }
    }
    work
}

fn run_workload_on(
    svc: &Arc<Service>,
    work: &[(String, HashMap<String, Vec<i64>>)],
    threads: usize,
) {
    if threads <= 1 {
        for (i, (body, expected)) in work.iter().enumerate() {
            let (status, resp) = svc.handle_run(body);
            assert_eq!(status, 200, "request {i}: {resp}");
            assert_stores_match(&resp, expected, &format!("request {i}"));
        }
        return;
    }
    std::thread::scope(|scope| {
        for t in 0..threads {
            let svc = Arc::clone(svc);
            scope.spawn(move || {
                // Interleaved slices: every thread touches every design.
                for (i, (body, expected)) in
                    work.iter().enumerate().skip(t).step_by(threads)
                {
                    let (status, resp) = svc.handle_run(body);
                    assert_eq!(status, 200, "thread {t} request {i}: {resp}");
                    assert_stores_match(&resp, expected, &format!("thread {t} request {i}"));
                }
            });
        }
    });
}

// ---------------------------------------------------------------------
// 1. Concurrency soak.

#[test]
fn soak_shared_caches_are_oracle_exact_and_counter_exact_under_contention() {
    let work = soak_workload();

    // Sequential reference pass on a fresh service.
    let seq_svc = Service::new(test_config());
    run_workload_on(&seq_svc, &work, 1);
    let seq_stats = seq_svc.modules.stats();
    let (seq_ph, seq_pm, seq_pe, seq_plen) = seq_svc.plans.stats();
    assert!(seq_stats.module_hits > 0, "workload must produce cache hits");
    assert_eq!(seq_stats.module_evictions, 0, "caps must hold the soak");

    // The same workload, 8 threads, one shared service. Stores stay
    // bit-identical and — because `ModuleStore` and `PlanCache` hold
    // their mutex across lookup-or-build — every counter lands on
    // exactly the sequential value: no double-builds, no lost updates.
    let conc_svc = Service::new(test_config());
    run_workload_on(&conc_svc, &work, 8);
    let conc = conc_svc.modules.stats();
    assert_eq!(
        (conc.skeleton_hits, conc.skeleton_misses, conc.skeleton_evictions),
        (seq_stats.skeleton_hits, seq_stats.skeleton_misses, seq_stats.skeleton_evictions),
        "skeleton counters drifted under contention"
    );
    assert_eq!(
        (conc.module_hits, conc.module_misses, conc.module_evictions),
        (seq_stats.module_hits, seq_stats.module_misses, seq_stats.module_evictions),
        "module counters drifted under contention"
    );
    assert_eq!(
        conc_svc.plans.stats(),
        (seq_ph, seq_pm, seq_pe, seq_plen),
        "plan-cache counters drifted under contention"
    );

    // Pool accounting agrees with the workload it actually served.
    use std::sync::atomic::Ordering;
    let pool = &conc_svc.pool.stats;
    assert_eq!(pool.submitted.load(Ordering::SeqCst), work.len() as u64);
    assert_eq!(pool.completed.load(Ordering::SeqCst), work.len() as u64);
    assert_eq!(pool.rejected.load(Ordering::SeqCst), 0);
    assert_eq!(pool.panics.load(Ordering::SeqCst), 0);
}

#[test]
fn soak_eviction_counters_stay_exact_when_the_store_thrashes() {
    // Tiny module capacity: the soak workload (many distinct module
    // keys) now evicts constantly while 8 threads race lookups against
    // evictions — the PR 8 eviction-race regression at service scale.
    // FIFO interleavings differ run to run, but the eviction identity
    // (every miss past capacity evicts exactly one) is order-free.
    let cfg = ServiceConfig {
        module_caps: (2, 2),
        ..test_config()
    };
    let svc = Service::new(cfg);
    let work = soak_workload();
    run_workload_on(&svc, &work, 8);
    let s = svc.modules.stats();
    assert!(s.module_misses > 2, "thrash workload must miss repeatedly");
    assert_eq!(
        s.module_evictions,
        s.module_misses - 2,
        "eviction counter lost or double-counted an eviction under contention: {s:?}"
    );
    assert_eq!(
        s.skeleton_evictions,
        s.skeleton_misses.saturating_sub(2),
        "skeleton eviction counter drifted under contention: {s:?}"
    );
}

// ---------------------------------------------------------------------
// 2. Error paths over real HTTP.

fn http_request(addr: std::net::SocketAddr, raw: &str) -> (u16, String) {
    let mut s = std::net::TcpStream::connect(addr).expect("connect");
    s.write_all(raw.as_bytes()).expect("write");
    let mut text = String::new();
    s.read_to_string(&mut text).expect("read");
    let (head, body) = text.split_once("\r\n\r\n").expect("header break");
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .expect("status");
    (status, body.to_string())
}

fn post(addr: std::net::SocketAddr, path: &str, body: &str) -> (u16, String) {
    http_request(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn error_kind(body: &str) -> (String, Vec<String>) {
    let doc = json::parse(body).unwrap_or_else(|e| panic!("unparseable error body: {e}\n{body}"));
    let err = doc.get("error").unwrap_or_else(|| panic!("no error object: {body}"));
    let kind = err.get("kind").and_then(|k| k.as_str()).expect("kind").to_string();
    let offenders = err
        .get("offenders")
        .and_then(|o| o.as_arr())
        .expect("offenders")
        .iter()
        .filter_map(|o| o.as_str().map(str::to_string))
        .collect();
    (kind, offenders)
}

#[test]
fn every_failure_mode_is_a_distinct_structured_error_with_the_right_status() {
    let svc = Service::new(ServiceConfig {
        max_size: 16,
        debug_panic_route: true,
        ..test_config()
    });
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let server = http::serve(Arc::clone(&svc), listener).expect("serve");
    let addr = server.addr;

    // Malformed request JSON.
    let (status, body) = post(addr, "/v1/run", "{this is not json");
    assert_eq!(status, 400, "{body}");
    assert_eq!(error_kind(&body).0, "bad-request");

    // Malformed .sys source: the parser's message reaches the client as
    // a structured 400, kind "parse".
    let (status, body) = post(
        addr,
        "/v1/run",
        &Json::Obj(vec![
            ("source".into(), Json::Str("program broken; siz".into())),
            ("sizes".into(), Json::Arr(vec![Json::Num(4)])),
        ])
        .to_string(),
    );
    assert_eq!(status, 400, "{body}");
    assert_eq!(error_kind(&body).0, "parse");

    // Unknown gallery design.
    let (status, body) = post(addr, "/v1/run", r#"{"design":"Z.9","sizes":[4]}"#);
    assert_eq!(status, 404, "{body}");
    assert_eq!(error_kind(&body).0, "unknown-design");

    // Oversized problem.
    let (status, body) = post(addr, "/v1/run", r#"{"design":"E.1","sizes":[99]}"#);
    assert_eq!(status, 413, "{body}");
    assert_eq!(error_kind(&body).0, "size-limit");

    // Wrong size arity and unknown input variable are plain 400s.
    let (status, body) = post(addr, "/v1/run", r#"{"design":"E.1","sizes":[3,3]}"#);
    assert_eq!(status, 400, "{body}");
    let (status, body) = post(
        addr,
        "/v1/run",
        r#"{"design":"E.1","sizes":[3],"inputs":["nonsense"]}"#,
    );
    assert_eq!(status, 400, "{body}");
    assert_eq!(error_kind(&body).0, "bad-request");

    // Expired deadline: structured 504, kind "timeout", with the
    // offender label (either the request-level deadline or the engine
    // scope that timed out — both are RunError::Timeout territory).
    let (status, body) = post(
        addr,
        "/v1/run",
        r#"{"design":"E.1","sizes":[16],"deadline_ms":1}"#,
    );
    assert_eq!(status, 504, "{body}");
    let (kind, offenders) = error_kind(&body);
    assert_eq!(kind, "timeout");
    assert!(!offenders.is_empty(), "timeout must name an offender: {body}");

    // Worker panic: structured 500 and the panic text stays server-side.
    let (status, body) = post(addr, "/debug/panic", "");
    assert_eq!(status, 500, "{body}");
    let (kind, offenders) = error_kind(&body);
    assert_eq!(kind, "panic");
    assert!(offenders.iter().any(|o| o.contains("sim-worker")), "{body}");
    assert!(
        !body.contains("deliberate debug panic"),
        "raw panic text crossed the wire: {body}"
    );
    // And the pool keeps serving afterwards.
    let (status, _) = post(addr, "/v1/run", r#"{"design":"E.1","sizes":[3]}"#);
    assert_eq!(status, 200);

    // Unknown route.
    let (status, body) = post(addr, "/no/such/route", "{}");
    assert_eq!(status, 404, "{body}");
    assert_eq!(error_kind(&body).0, "not-found");

    // Declared body larger than the transport cap: rejected before the
    // body is read.
    let (status, body) = http_request(
        addr,
        "POST /v1/run HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\
         Content-Length: 2000000\r\n\r\n",
    );
    assert_eq!(status, 413, "{body}");
    assert_eq!(error_kind(&body).0, "body-too-large");

    // Malformed replay file.
    let (status, body) = post(addr, "/v1/replay", "{\"schema\":\"wrong\"}");
    assert_eq!(status, 400, "{body}");

    server.shutdown();
}

#[test]
fn inline_source_requests_run_verified_end_to_end() {
    let svc = Service::new(test_config());
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let server = http::serve(Arc::clone(&svc), listener).expect("serve");
    let src = std::fs::read_to_string("programs/matmul.sys").expect("read matmul.sys");
    let body = Json::Obj(vec![
        ("source".into(), Json::Str(src)),
        ("sizes".into(), Json::Arr(vec![Json::Num(4)])),
        (
            "inputs".into(),
            Json::Arr(vec![Json::Str("a".into()), Json::Str("b".into())]),
        ),
        ("verify".into(), Json::Bool(true)),
    ])
    .to_string();
    let (status, resp) = post(server.addr, "/v1/run", &body);
    assert_eq!(status, 200, "{resp}");
    let doc = json::parse(&resp).unwrap();
    assert_eq!(
        doc.get("verified").and_then(|v| v.as_bool()),
        Some(true),
        "{resp}"
    );
    assert_eq!(
        doc.get("design").and_then(|v| v.as_str()),
        Some("source"),
        "{resp}"
    );
    // A second identical request hits the source-hash plan cache.
    let (status, _) = post(server.addr, "/v1/run", &body);
    assert_eq!(status, 200);
    let (hits, misses, _, _) = svc.plans.stats();
    assert_eq!((hits, misses), (1, 1));
    server.shutdown();
}

// ---------------------------------------------------------------------
// 3. DST integration: adversaries and fault plans under the pool.

#[test]
fn adversarial_schedules_change_no_stores_behind_the_service() {
    // Every policy × seed runs through `handle_run` (in-process — same
    // code path as the wire, no sockets) in differential mode; the
    // response stores must still match the client-side oracle.
    let svc = Service::new(test_config());
    for (design, sizes) in &GALLERY[..3] {
        let expected = oracle_for(design, sizes, 42);
        for policy in ["random", "lifo", "prio-inv"] {
            for seed in 0..2i64 {
                let body = run_body(
                    design,
                    sizes,
                    42,
                    &[
                        (
                            "schedule",
                            Json::Obj(vec![
                                ("policy".into(), Json::Str(policy.into())),
                                ("seed".into(), Json::Num(seed)),
                            ]),
                        ),
                        ("verify", Json::Bool(true)),
                    ],
                );
                let (status, resp) = svc.handle_run(&body);
                assert_eq!(status, 200, "{design} under {policy}:{seed}: {resp}");
                assert_stores_match(&resp, &expected, &format!("{design}/{policy}:{seed}"));
            }
        }
    }
}

#[test]
fn fault_plans_keep_stores_and_error_classification_under_the_pool() {
    // The DST fault contracts, executed as service worker-pool jobs.
    let svc = Service::new(test_config());
    let deadline = Duration::from_secs(60);

    // Bounded delay fault: outputs, messages, and steps are invariant
    // (rounds may grow — asynchronous semantics tolerates finite
    // slowdown).
    let (status, verdict) = svc.pool.run(
        deadline,
        60_000,
        Box::new(|| {
            let subject = subject_for("D.1", &[4], 17).expect("subject");
            let baseline = subject.run(None).expect("baseline");
            let delayed = subject
                .run(Some(Box::new(FaultPlan::delay(0, 3).delay_policy())))
                .expect("delayed run");
            if baseline.outputs != delayed.outputs {
                return (500, "outputs changed under bounded delay".into());
            }
            if baseline.stats.messages != delayed.stats.messages
                || baseline.stats.steps != delayed.stats.steps
            {
                return (500, "logical counts changed under bounded delay".into());
            }
            (200, "invariant".into())
        }),
    );
    assert_eq!((status, verdict.as_str()), (200, "invariant"));

    // Abort fault: classification is stable — the deadlock report names
    // the aborted victim, with and without an adversarial scheduler, and
    // maps to the same structured 422.
    for adversarial in [false, true] {
        let (status, body) = svc.pool.run(
            deadline,
            60_000,
            Box::new(move || {
                use systolic_runtime::{ChannelPolicy, Network, ProcIrBuilder};
                let mut b = ProcIrBuilder::new();
                b.source(0, &[10, 20, 30, 40], "src");
                b.relay(0, 1, 4, "relay");
                b.sink(1, 4, "snk");
                let module = b.build(None);
                let inst = module.instantiate();
                let procs = FaultPlan::abort(1).apply(inst.procs, module.n_chans);
                let mut net = Network::new(ChannelPolicy::Rendezvous);
                if adversarial {
                    net.set_schedule_policy(policy_by_name("lifo", 7).unwrap());
                }
                for p in procs {
                    net.add(p);
                }
                match net.run() {
                    Ok(_) => (500, "abort fault failed to fail".into()),
                    Err(e) => {
                        let api = ApiError::from_run_error(&e);
                        (api.status, api.to_json())
                    }
                }
            }),
        );
        assert_eq!(status, 422, "adversarial={adversarial}: {body}");
        let (kind, offenders) = error_kind(&body);
        assert_eq!(kind, "deadlock", "adversarial={adversarial}");
        assert!(
            offenders.iter().any(|o| o.contains("relay") && o.contains("aborted")),
            "deadlock report must name the aborted victim: {body}"
        );
    }
}

#[test]
fn a_shrunk_race_sink_counterexample_replays_through_the_service() {
    // The harness's own canary: catch the seeded interleaving bug,
    // shrink it, then hand the counterexample file to the service's
    // replay endpoint — which must reproduce the divergence under its
    // worker pool.
    let subject = RaceSubject { k: 8 };
    let report = explore(&subject, &ExploreConfig::matrix(4)).expect("explore");
    let ce = report.counterexample.expect("race-sink must be caught");
    assert!(
        !ce.schedule.log.rounds.is_empty(),
        "shrunk log must keep at least one round"
    );
    // Direct replay reproduces (sanity) …
    assert!(replay(&subject, &ce.schedule).expect("replay").reproduced);

    // … and so does the service endpoint, structurally.
    let svc = Service::new(test_config());
    let (status, resp) = svc.handle_replay(&ce.schedule.to_json());
    assert_eq!(status, 200, "{resp}");
    let doc = json::parse(&resp).unwrap();
    assert_eq!(doc.get("reproduced").and_then(|v| v.as_bool()), Some(true), "{resp}");
    assert_eq!(
        doc.get("design").and_then(|v| v.as_str()),
        Some("race-sink"),
        "{resp}"
    );
    assert!(
        doc.get("reason").and_then(|v| v.as_str()).is_some(),
        "a reproduced divergence carries its reason: {resp}"
    );

    // A gallery design's empty-log stub must NOT reproduce: schedule
    // independence holds behind the same endpoint.
    let stub = subject_for("E.1", &[3], 19).unwrap().schedule_stub();
    let (status, resp) = svc.handle_replay(&stub.to_json());
    assert_eq!(status, 200, "{resp}");
    let doc = json::parse(&resp).unwrap();
    assert_eq!(doc.get("reproduced").and_then(|v| v.as_bool()), Some(false), "{resp}");
}
