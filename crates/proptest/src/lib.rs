//! Offline shim for the `proptest` API subset used by this workspace.
//!
//! The build environment has no network access to crates.io, so the
//! workspace patches `proptest` to this crate (see `[patch.crates-io]` in
//! the root `Cargo.toml`). It provides deterministic random generation
//! with the same trait/macro surface the tests use — `Strategy` with
//! `prop_map`/`prop_flat_map`/`prop_filter`, integer range strategies,
//! tuples, `Just`, `prop_oneof!`, `collection::vec`, `proptest!`,
//! `prop_assert*!`, `prop_assume!`, and `ProptestConfig` — but does NOT
//! implement shrinking: a failing case reports its case index and inputs
//! are reproducible from the deterministic per-case RNG seed.
//!
//! `ProptestConfig::default()` honours the `PROPTEST_CASES` environment
//! variable exactly like the real crate's CI override.

pub mod strategy;

pub mod test_runner {
    /// Deterministic per-case RNG (SplitMix64). Case `i` of every test
    /// uses the same stream on every run, so failures reproduce exactly.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn deterministic(case: u64) -> Self {
            TestRng {
                state: case
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(0x5851_F42D_4C95_7F2D),
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform-ish value in `[0, span)`. Modulo bias is acceptable in
        /// a test-input generator.
        pub fn below(&mut self, span: u128) -> u128 {
            debug_assert!(span > 0);
            let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
            wide % span
        }
    }

    /// Why a test case did not pass: a genuine failure, or a rejected
    /// input (`prop_assume!`) that should simply be skipped.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        Fail(String),
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
                TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
            }
        }
    }

    pub type TestCaseResult = Result<(), TestCaseError>;

    /// The subset of proptest's runner configuration the tests construct.
    /// Extra knobs exist only so `..ProptestConfig::default()` struct
    /// literals keep working; they are ignored.
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(256);
            Config {
                cases,
                max_shrink_iters: 0,
            }
        }
    }
}

pub use test_runner::Config as ProptestConfig;

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on the length of a generated collection.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        pub lo: usize,
        pub hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u128;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// One strategy chosen uniformly per case from several alternatives
/// producing the same value type (the `prop_oneof!` desugaring).
pub struct Union<T> {
    options: Vec<Box<dyn strategy::Strategy<Value = T>>>,
}

impl<T> Union<T> {
    pub fn empty() -> Self {
        Union {
            options: Vec::new(),
        }
    }

    pub fn push<S: strategy::Strategy<Value = T> + 'static>(&mut self, s: S) {
        self.options.push(Box::new(s));
    }
}

impl<T> strategy::Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut test_runner::TestRng) -> T {
        assert!(!self.options.is_empty(), "prop_oneof! of zero strategies");
        let i = rng.below(self.options.len() as u128) as usize;
        self.options[i].generate(rng)
    }
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let mut union = $crate::Union::empty();
        $(union.push($strat);)+
        union
    }};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)).into(),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::reject(stringify!($cond)).into(),
            );
        }
    };
}

/// The property-test entry macro: expands each `fn name(pat in strategy,
/// ...)` into a plain test function that generates `cases` inputs and
/// runs the body against each. Rejected cases (`prop_assume!`) are
/// skipped; failures panic with the case index so the deterministic RNG
/// reproduces them.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            config = <$crate::test_runner::Config as ::core::default::Default>::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                for case in 0..config.cases.max(1) as u64 {
                    let mut rng = $crate::test_runner::TestRng::deterministic(case);
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let result: $crate::test_runner::TestCaseResult = (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match result {
                        ::core::result::Result::Ok(()) => {}
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => panic!("proptest case {case}/{} failed: {msg}", config.cases),
                    }
                }
            }
        )*
    };
}
