//! The `Strategy` trait and combinators. A strategy is just a
//! deterministic-RNG-to-value generator here; no value trees, no
//! shrinking.

use crate::test_runner::TestRng;

pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    fn prop_filter<R, F>(self, whence: R, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        R: Into<String>,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            whence: whence.into(),
            pred,
        }
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

pub struct Filter<S, F> {
    source: S,
    whence: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        // Resample until the predicate accepts; a generator whose filter
        // rejects 1000 draws in a row is a bug in the strategy.
        for _ in 0..1000 {
            let v = self.source.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted 1000 draws: {}", self.whence);
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for ::core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let lo = self.start as i128;
                let span = (self.end as i128 - lo) as u128;
                (lo + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for ::core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u128 + 1;
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for ::core::ops::Range<char> {
    type Value = char;
    fn generate(&self, rng: &mut TestRng) -> char {
        assert!(self.start < self.end, "empty range strategy");
        let lo = self.start as u32;
        let span = (self.end as u32 - lo) as u128;
        char::from_u32(lo + rng.below(span) as u32).unwrap_or(self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (S0 0)
    (S0 0, S1 1)
    (S0 0, S1 1, S2 2)
    (S0 0, S1 1, S2 2, S3 3)
    (S0 0, S1 1, S2 2, S3 3, S4 4)
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic(7);
        for _ in 0..200 {
            let v = (-3i64..=3).generate(&mut rng);
            assert!((-3..=3).contains(&v));
            let u = (0u8..3).generate(&mut rng);
            assert!(u < 3);
        }
    }

    #[test]
    fn map_filter_flat_map_compose() {
        let mut rng = TestRng::deterministic(1);
        let s = (1usize..4)
            .prop_flat_map(|n| crate::collection::vec(0i64..10, n))
            .prop_map(|v| v.len())
            .prop_filter("nonempty", |n| *n > 0);
        for _ in 0..50 {
            let n = s.generate(&mut rng);
            assert!((1..4).contains(&n));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let a: Vec<u64> = {
            let mut rng = TestRng::deterministic(3);
            (0..10).map(|_| rng.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = TestRng::deterministic(3);
            (0..10).map(|_| rng.next_u64()).collect()
        };
        assert_eq!(a, b);
    }
}
