//! Property-based tests for the math substrate. These check the algebraic
//! laws the compilation scheme silently relies on (Sec. 2 and Theorem 7 of
//! the paper).

use proptest::prelude::*;
use systolic_math::affine::{matrix_apply, point_exact_div, point_sub};
use systolic_math::point;
use systolic_math::rational::{gcd, Rational};
use systolic_math::{Affine, Env, Matrix, VarTable};

fn small_rational() -> impl Strategy<Value = Rational> {
    (-20i64..=20, 1i64..=6).prop_map(|(n, d)| Rational::new(n, d))
}

proptest! {
    #[test]
    fn rational_field_laws(a in small_rational(), b in small_rational(), c in small_rational()) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!(a * (b + c), a * b + a * c);
        prop_assert_eq!(a - a, Rational::ZERO);
        if !b.is_zero() {
            prop_assert_eq!(a / b * b, a);
        }
    }

    #[test]
    fn gcd_divides_both(a in -1000i64..1000, b in -1000i64..1000) {
        let g = gcd(a, b);
        if g != 0 {
            prop_assert_eq!(a % g, 0);
            prop_assert_eq!(b % g, 0);
        } else {
            prop_assert_eq!((a, b), (0, 0));
        }
    }

    /// Theorem 7 corollary: the unit along a vector is primitive, parallel,
    /// and the original is an integral multiple of it.
    #[test]
    fn unit_along_is_primitive(v in proptest::collection::vec(-9i64..=9, 1..4)) {
        prop_assume!(!point::is_zero(&v));
        let u = point::unit_along(&v);
        prop_assert_eq!(point::content(&u), 1);
        let k = point::content(&v);
        prop_assert_eq!(point::scale(k, &u), v);
    }

    /// `x // y` inverts scalar multiplication.
    #[test]
    fn exact_div_inverts_scale(
        y in proptest::collection::vec(-5i64..=5, 1..4),
        m in -7i64..=7,
    ) {
        prop_assume!(!point::is_zero(&y));
        let x = point::scale(m, &y);
        prop_assert_eq!(point::exact_div(&x, &y), Some(m));
    }

    /// Points on a chord have every coordinate between 0 and the endpoint.
    #[test]
    fn chord_points_are_bounded(
        x in proptest::collection::vec(-9i64..=9, 1..4),
        num in 0i64..=4, den in 1i64..=4,
    ) {
        prop_assume!(num <= den);
        // w = (num/den) * x when integral.
        let w: Option<Vec<i64>> = x
            .iter()
            .map(|&xi| {
                let v = xi * num;
                (v % den == 0).then_some(v / den)
            })
            .collect();
        if let Some(w) = w {
            prop_assert!(point::on_chord(&w, &x));
        }
    }

    /// Matrix application is linear over affine points.
    #[test]
    fn matrix_apply_is_linear(
        rows in proptest::collection::vec(proptest::collection::vec(-4i64..=4, 3), 2),
        p in proptest::collection::vec(-10i64..=10, 3),
        q in proptest::collection::vec(-10i64..=10, 3),
    ) {
        let m = Matrix::from_rows(&rows);
        let pa: Vec<Affine> = p.iter().map(|&v| Affine::int(v)).collect();
        let qa: Vec<Affine> = q.iter().map(|&v| Affine::int(v)).collect();
        let lhs = matrix_apply(&m, &point_sub(&pa, &qa));
        let rhs = point_sub(&matrix_apply(&m, &pa), &matrix_apply(&m, &qa));
        prop_assert_eq!(lhs, rhs);
    }

    /// Null-space basis vectors are annihilated and primitive.
    #[test]
    fn null_space_is_sound(
        rows in proptest::collection::vec(proptest::collection::vec(-3i64..=3, 4), 1..4),
    ) {
        let m = Matrix::from_rows(&rows);
        let ns = m.null_space();
        prop_assert_eq!(ns.len() + m.rank(), 4, "rank-nullity");
        for v in ns {
            prop_assert!(m.apply(&v).iter().all(|r| r.is_zero()));
            prop_assert_eq!(point::content(&v), 1);
        }
    }

    /// Symbolic solve agrees with numeric evaluation: if solve(A, b) = x,
    /// then for any binding, A * eval(x) == eval(b).
    #[test]
    fn solve_then_eval_consistent(
        rows in proptest::collection::vec(proptest::collection::vec(-3i64..=3, 2), 2),
        b0 in -5i64..=5, b1 in -5i64..=5, nval in 0i64..=10,
    ) {
        let a = Matrix::from_rows(&rows);
        prop_assume!(a.rank() == 2);
        let mut t = VarTable::new();
        let n = t.size("n");
        let b = vec![
            Affine::var(n) + Affine::int(b0),
            Affine::var(n).scale(Rational::int(2)) + Affine::int(b1),
        ];
        let x = systolic_math::linsolve::solve(&a, &b).unwrap();
        let mut env = Env::new();
        env.bind(n, nval);
        let xv: Vec<Rational> = x.iter().map(|e| e.eval_rat(&env)).collect();
        let bv: Vec<Rational> = b.iter().map(|e| e.eval_rat(&env)).collect();
        prop_assert_eq!(a.apply_rat(&xv), bv);
    }

    /// Affine substitution then evaluation == evaluation with substituted
    /// binding.
    #[test]
    fn substitution_commutes_with_eval(
        c0 in -10i64..=10, c1 in -5i64..=5, c2 in -5i64..=5,
        v in -10i64..=10,
    ) {
        let mut t = VarTable::new();
        let n = t.size("n");
        let col = t.coord(0);
        let e = Affine::int(c0)
            + Affine::var(n).scale(Rational::int(c1))
            + Affine::var(col).scale(Rational::int(c2));
        // Substitute col := n + 1.
        let sub = e.substitute(col, &(Affine::var(n) + Affine::int(1)));
        let mut env = Env::new();
        env.bind(n, v).bind(col, v + 1);
        prop_assert_eq!(sub.eval_rat(&env), e.eval_rat(&env));
    }

    /// point_exact_div is the symbolic counterpart of `//`.
    #[test]
    fn symbolic_div_matches_concrete(
        inc in proptest::collection::vec(-2i64..=2, 1..4),
        m in -6i64..=6, nval in 0i64..=8,
    ) {
        prop_assume!(!point::is_zero(&inc));
        let mut t = VarTable::new();
        let n = t.size("n");
        // x = (m + n) * inc symbolically.
        let factor = Affine::var(n) + Affine::int(m);
        let x: Vec<Affine> = inc.iter().map(|&i| factor.clone().scale(Rational::int(i))).collect();
        let d = point_exact_div(&x, &inc).unwrap();
        let mut env = Env::new();
        env.bind(n, nval);
        prop_assert_eq!(d.eval_int(&env), m + nval);
    }
}
