//! Exact rational arithmetic.
//!
//! The compilation scheme works over `Q` (Sec. 2 of the paper): `flow`
//! functions are rational vectors, null-space generators are normalized by a
//! gcd, and the symbolic linear solving of Sec. 7.2.2 runs Gaussian
//! elimination over the rationals. All quantities appearing in real systolic
//! designs are tiny, so a 64-bit numerator/denominator pair with 128-bit
//! intermediates is exact for every input we accept; overflow panics rather
//! than silently wrapping.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Greatest common divisor of two integers (non-negative result;
/// `gcd(0, 0) == 0`).
pub fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.unsigned_abs(), b.unsigned_abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a as i64
}

/// Least common multiple (non-negative; `lcm(0, x) == 0`).
pub fn lcm(a: i64, b: i64) -> i64 {
    if a == 0 || b == 0 {
        return 0;
    }
    (a / gcd(a, b)).checked_mul(b).expect("lcm overflow").abs()
}

/// The sign function of Sec. 2: `-1`, `0`, or `+1`.
pub fn sgn(x: i64) -> i64 {
    x.signum()
}

/// An exact rational number, always stored in lowest terms with a positive
/// denominator.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i64,
    den: i64,
}

impl Rational {
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Create `num / den`, normalizing. Panics if `den == 0`.
    pub fn new(num: i64, den: i64) -> Rational {
        assert!(den != 0, "rational with zero denominator");
        let g = gcd(num, den);
        let (mut num, mut den) = if g == 0 { (0, 1) } else { (num / g, den / g) };
        if den < 0 {
            num = -num;
            den = -den;
        }
        Rational { num, den }
    }

    /// An integer as a rational.
    pub const fn int(n: i64) -> Rational {
        Rational { num: n, den: 1 }
    }

    pub fn num(&self) -> i64 {
        self.num
    }

    pub fn den(&self) -> i64 {
        self.den
    }

    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// The integer value, if this rational is an integer.
    pub fn to_integer(&self) -> Option<i64> {
        (self.den == 1).then_some(self.num)
    }

    /// Sign of the rational: -1, 0, or +1.
    pub fn signum(&self) -> i64 {
        self.num.signum()
    }

    pub fn abs(&self) -> Rational {
        Rational {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Multiplicative inverse. Panics on zero.
    pub fn recip(&self) -> Rational {
        assert!(self.num != 0, "reciprocal of zero");
        Rational::new(self.den, self.num)
    }

    fn from_i128(num: i128, den: i128) -> Rational {
        assert!(den != 0);
        let g = gcd128(num, den);
        let (mut num, mut den) = (num / g, den / g);
        if den < 0 {
            num = -num;
            den = -den;
        }
        Rational {
            num: i64::try_from(num).expect("rational overflow"),
            den: i64::try_from(den).expect("rational overflow"),
        }
    }
}

fn gcd128(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    if a == 0 {
        1
    } else {
        a
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        Rational::from_i128(
            self.num as i128 * rhs.den as i128 + rhs.num as i128 * self.den as i128,
            self.den as i128 * rhs.den as i128,
        )
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        self + (-rhs)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        Rational::from_i128(
            self.num as i128 * rhs.num as i128,
            self.den as i128 * rhs.den as i128,
        )
    }
}

impl Div for Rational {
    type Output = Rational;
    fn div(self, rhs: Rational) -> Rational {
        assert!(!rhs.is_zero(), "division by zero rational");
        Rational::from_i128(
            self.num as i128 * rhs.den as i128,
            self.den as i128 * rhs.num as i128,
        )
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self = *self + rhs;
    }
}

impl SubAssign for Rational {
    fn sub_assign(&mut self, rhs: Rational) {
        *self = *self - rhs;
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Rational) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Rational) -> Ordering {
        (self.num as i128 * other.den as i128).cmp(&(other.num as i128 * self.den as i128))
    }
}

impl Default for Rational {
    fn default() -> Rational {
        Rational::ZERO
    }
}

impl From<i64> for Rational {
    fn from(n: i64) -> Rational {
        Rational::int(n)
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(-12, 18), 6);
        assert_eq!(gcd(0, 7), 7);
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(1, 1), 1);
    }

    #[test]
    fn lcm_basics() {
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(-4, 6), 12);
        assert_eq!(lcm(0, 5), 0);
    }

    #[test]
    fn normalization() {
        let r = Rational::new(4, -6);
        assert_eq!(r.num(), -2);
        assert_eq!(r.den(), 3);
        assert_eq!(Rational::new(0, -5), Rational::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Rational::new(1, 2);
        let b = Rational::new(1, 3);
        assert_eq!(a + b, Rational::new(5, 6));
        assert_eq!(a - b, Rational::new(1, 6));
        assert_eq!(a * b, Rational::new(1, 6));
        assert_eq!(a / b, Rational::new(3, 2));
        assert_eq!(-a, Rational::new(-1, 2));
    }

    #[test]
    fn ordering() {
        assert!(Rational::new(1, 3) < Rational::new(1, 2));
        assert!(Rational::new(-1, 2) < Rational::ZERO);
        assert_eq!(Rational::new(2, 4), Rational::new(1, 2));
    }

    #[test]
    fn integer_checks() {
        assert_eq!(Rational::new(6, 3).to_integer(), Some(2));
        assert_eq!(Rational::new(1, 2).to_integer(), None);
        assert!(Rational::int(5).is_integer());
    }

    #[test]
    fn display() {
        assert_eq!(Rational::new(3, 6).to_string(), "1/2");
        assert_eq!(Rational::int(-4).to_string(), "-4");
    }

    #[test]
    fn normalization_round_trips() {
        // Both-negative input lands on the canonical positive-denominator
        // form, and num/den reconstruct the same value.
        let r = Rational::new(-2, -4);
        assert_eq!((r.num(), r.den()), (1, 2));
        assert_eq!(Rational::new(r.num(), r.den()), r);
        // Scaling numerator and denominator by any k is an identity.
        for k in [-7i64, -1, 1, 3, 12] {
            assert_eq!(Rational::new(5 * k, 9 * k), Rational::new(5, 9));
        }
        // Display round-trips through the canonical form.
        assert_eq!(Rational::new(-3, -6).to_string(), "1/2");
        assert_eq!(Rational::new(3, -6).to_string(), "-1/2");
    }

    #[test]
    fn large_values_stay_exact_through_i128_intermediates() {
        // num * den products exceed i64 but the reduced result fits:
        // (2^40 / 3) * (3 / 2^40) == 1 must not wrap.
        let big = 1i64 << 40;
        let a = Rational::new(big, 3);
        let b = Rational::new(3, big);
        assert_eq!(a * b, Rational::ONE);
        assert_eq!(a + (-a), Rational::ZERO);
    }

    #[test]
    #[should_panic(expected = "rational overflow")]
    fn addition_overflow_panics_rather_than_wrapping() {
        let _ = Rational::int(i64::MAX) + Rational::ONE;
    }

    #[test]
    #[should_panic(expected = "rational overflow")]
    fn multiplication_overflow_panics_rather_than_wrapping() {
        let _ = Rational::int(i64::MAX) * Rational::int(2);
    }

    #[test]
    #[should_panic]
    fn zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }

    #[test]
    #[should_panic]
    fn zero_reciprocal_panics() {
        let _ = Rational::ZERO.recip();
    }
}
