//! Symbolic variables for the compilation scheme.
//!
//! Derived quantities (`first`, `last`, `count`, soak/drain amounts, guards)
//! are expressions in two kinds of variables (Sec. 4.1: "first and last are
//! parameterized over the process space, i.e. they are expressions in the
//! coordinates of the process space", plus the problem-size parameters of
//! Sec. 3.1):
//!
//! - **problem-size** symbols (`n`, `m`, ...) — fixed once per run of the
//!   generated program,
//! - **coordinate** symbols (`col`, `row`, ...) — one per dimension of the
//!   process space; each process instantiates them with its own position.

use std::fmt;

/// An interned symbolic variable.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Var(pub u32);

/// What a variable ranges over.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VarKind {
    /// A problem-size parameter of the source program (Sec. 3.1).
    Size,
    /// A coordinate of the process space (Sec. 5), with its dimension index.
    Coord(usize),
}

/// The registry of variables for one compilation. `Var` ids index into it.
#[derive(Clone, Debug, Default)]
pub struct VarTable {
    names: Vec<String>,
    kinds: Vec<VarKind>,
}

/// Default coordinate names, matching the paper's examples: the 1-D process
/// space uses `col`; 2-D uses `(col, row)`; beyond that, `z2`, `z3`, ...
pub fn coord_name(dim: usize) -> String {
    match dim {
        0 => "col".to_string(),
        1 => "row".to_string(),
        d => format!("z{d}"),
    }
}

impl VarTable {
    pub fn new() -> VarTable {
        VarTable::default()
    }

    /// Intern a variable. Re-interning the same name with the same kind
    /// returns the existing id; a kind clash panics (it is a compiler bug).
    pub fn intern(&mut self, name: &str, kind: VarKind) -> Var {
        if let Some(i) = self.names.iter().position(|n| n == name) {
            assert_eq!(
                self.kinds[i], kind,
                "variable {name} re-interned with a different kind"
            );
            return Var(i as u32);
        }
        self.names.push(name.to_string());
        self.kinds.push(kind);
        Var((self.names.len() - 1) as u32)
    }

    /// Intern a problem-size symbol.
    pub fn size(&mut self, name: &str) -> Var {
        self.intern(name, VarKind::Size)
    }

    /// Intern the coordinate symbol for process-space dimension `dim`.
    pub fn coord(&mut self, dim: usize) -> Var {
        self.intern(&coord_name(dim), VarKind::Coord(dim))
    }

    pub fn name(&self, v: Var) -> &str {
        &self.names[v.0 as usize]
    }

    pub fn kind(&self, v: Var) -> VarKind {
        self.kinds[v.0 as usize]
    }

    pub fn len(&self) -> usize {
        self.names.len()
    }

    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Look up an existing variable by name.
    pub fn lookup(&self, name: &str) -> Option<Var> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| Var(i as u32))
    }

    /// All coordinate variables, ordered by dimension.
    pub fn coords(&self) -> Vec<Var> {
        let mut cs: Vec<(usize, Var)> = (0..self.len())
            .filter_map(|i| match self.kinds[i] {
                VarKind::Coord(d) => Some((d, Var(i as u32))),
                VarKind::Size => None,
            })
            .collect();
        cs.sort_by_key(|&(d, _)| d);
        cs.into_iter().map(|(_, v)| v).collect()
    }
}

/// A binding of variables to integer values, used to evaluate symbolic
/// expressions once a problem size and a process position are fixed.
#[derive(Clone, Debug, Default)]
pub struct Env {
    vals: Vec<Option<i64>>,
}

impl Env {
    pub fn new() -> Env {
        Env::default()
    }

    pub fn bind(&mut self, v: Var, value: i64) -> &mut Self {
        let idx = v.0 as usize;
        if self.vals.len() <= idx {
            self.vals.resize(idx + 1, None);
        }
        self.vals[idx] = Some(value);
        self
    }

    pub fn get(&self, v: Var) -> Option<i64> {
        self.vals.get(v.0 as usize).copied().flatten()
    }

    /// Value of `v`, panicking with the variable id if unbound.
    pub fn expect(&self, v: Var) -> i64 {
        self.get(v)
            .unwrap_or_else(|| panic!("unbound symbolic variable {v:?} during evaluation"))
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut t = VarTable::new();
        let n1 = t.size("n");
        let n2 = t.size("n");
        assert_eq!(n1, n2);
        assert_eq!(t.len(), 1);
        assert_eq!(t.name(n1), "n");
    }

    #[test]
    fn coordinate_names_follow_the_paper() {
        let mut t = VarTable::new();
        let c = t.coord(0);
        let r = t.coord(1);
        assert_eq!(t.name(c), "col");
        assert_eq!(t.name(r), "row");
        assert_eq!(t.coords(), vec![c, r]);
    }

    #[test]
    #[should_panic]
    fn kind_clash_panics() {
        let mut t = VarTable::new();
        t.size("col");
        t.coord(0); // also named "col"
    }

    #[test]
    fn env_bindings() {
        let mut t = VarTable::new();
        let n = t.size("n");
        let col = t.coord(0);
        let mut env = Env::new();
        env.bind(n, 10).bind(col, 3);
        assert_eq!(env.get(n), Some(10));
        assert_eq!(env.expect(col), 3);
        assert_eq!(env.get(Var(99)), None);
    }
}
