//! Integer and rational points in `n`-space (Sec. 2 of the paper).
//!
//! Points double as vectors (directions): a flow is a rational point, an
//! `increment` is an integer point, and a chord is the segment between the
//! origin and a point. The helpers here implement the paper's notation:
//! inner product `x • y`, component-wise scaling, the exact division `x // y`
//! (the integer `m` with `m * y == x`), the gcd-normalized "unit distance"
//! along a vector (Theorem 7's corollary), and the neighbourhood predicate
//! `nb` of Sec. 3.2.

use crate::rational::{gcd, Rational};
use std::fmt;

/// A point with integer coordinates (an element of `Z^n`).
pub type Point = Vec<i64>;

/// A point with rational coordinates (an element of `Q^n`), e.g. a `flow`.
pub type RatPoint = Vec<Rational>;

/// The origin of `Z^n`.
pub fn origin(n: usize) -> Point {
    vec![0; n]
}

/// Component-wise sum.
pub fn add(x: &[i64], y: &[i64]) -> Point {
    assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| a + b).collect()
}

/// Component-wise difference.
pub fn sub(x: &[i64], y: &[i64]) -> Point {
    assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| a - b).collect()
}

/// Multiplication of a point by a scalar (`m * x` in the paper).
pub fn scale(m: i64, x: &[i64]) -> Point {
    x.iter().map(|a| m * a).collect()
}

/// Inner product `x • y = (sum i : 0 <= i < n : x.i * y.i)`.
pub fn dot(x: &[i64], y: &[i64]) -> i64 {
    assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Is this the zero vector?
pub fn is_zero(x: &[i64]) -> bool {
    x.iter().all(|&a| a == 0)
}

/// The gcd of all components (`k` in Theorem 7). Zero for the zero vector.
pub fn content(x: &[i64]) -> i64 {
    x.iter().fold(0, |g, &a| gcd(g, a))
}

/// The "unit distance" along vector `x` (Theorem 7 corollary):
/// `(1/k) * x` where `k` is the gcd of the components. Panics on the zero
/// vector.
pub fn unit_along(x: &[i64]) -> Point {
    let k = content(x);
    assert!(k > 0, "unit_along of the zero vector");
    x.iter().map(|&a| a / k).collect()
}

/// The exact division `x // y`: the integer `m` such that `m * y == x`,
/// if it exists (the paper: "only well-defined if x is a multiple of y").
pub fn exact_div(x: &[i64], y: &[i64]) -> Option<i64> {
    assert_eq!(x.len(), y.len());
    let mut m: Option<i64> = None;
    for (&a, &b) in x.iter().zip(y) {
        if b == 0 {
            if a != 0 {
                return None;
            }
        } else {
            if a % b != 0 {
                return None;
            }
            let q = a / b;
            match m {
                None => m = Some(q),
                Some(prev) if prev != q => return None,
                _ => {}
            }
        }
    }
    // x and y both zero in every telling component: x == 0 * y.
    Some(m.unwrap_or(0))
}

/// The neighbourhood predicate of Sec. 3.2:
/// `nb.x  =  (A i : 0 <= i < n : |x.i| <= 1)`.
pub fn nb(x: &[i64]) -> bool {
    x.iter().all(|&a| a.abs() <= 1)
}

/// Does point `w` lie on the chord defined by `x`, i.e. is there a
/// `t` in `[0, 1]` with `w == t * x`? (`w on x` in Sec. 2.)
pub fn on_chord(w: &[i64], x: &[i64]) -> bool {
    assert_eq!(w.len(), x.len());
    if is_zero(w) {
        return true;
    }
    if is_zero(x) {
        return false;
    }
    // w = t * x with rational t; find t from any non-zero component of x.
    let mut t: Option<Rational> = None;
    for (&wi, &xi) in w.iter().zip(x) {
        if xi == 0 {
            if wi != 0 {
                return false;
            }
        } else {
            let ti = Rational::new(wi, xi);
            match t {
                None => t = Some(ti),
                Some(prev) if prev != ti => return false,
                _ => {}
            }
        }
    }
    match t {
        Some(t) => t >= Rational::ZERO && t <= Rational::ONE,
        None => false,
    }
}

/// The rational scaling `x / m` (component-wise) of an integer point.
pub fn div_scalar(x: &[i64], m: i64) -> RatPoint {
    x.iter().map(|&a| Rational::new(a, m)).collect()
}

/// Component-wise sum of rational points.
pub fn rat_add(x: &[Rational], y: &[Rational]) -> RatPoint {
    assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(&a, &b)| a + b).collect()
}

/// Scale a rational point by a rational.
pub fn rat_scale(m: Rational, x: &[Rational]) -> RatPoint {
    x.iter().map(|&a| m * a).collect()
}

/// Is the rational point zero?
pub fn rat_is_zero(x: &[Rational]) -> bool {
    x.iter().all(|a| a.is_zero())
}

/// Convert an integer point to a rational point.
pub fn to_rational(x: &[i64]) -> RatPoint {
    x.iter().map(|&a| Rational::int(a)).collect()
}

/// Convert a rational point to integers if every component is integral.
pub fn to_integer(x: &[Rational]) -> Option<Point> {
    x.iter().map(|a| a.to_integer()).collect()
}

/// The least common multiple of the denominators of a rational point: the
/// smallest `d > 0` such that `d * x` is an integer point. For a stream
/// flow, `d - 1` is the number of internal buffers required (Sec. 7.6).
pub fn denominator(x: &[Rational]) -> i64 {
    x.iter()
        .fold(1, |d, a| crate::rational::lcm(d, a.den()).max(1))
}

/// Smallest `m > 0` such that `m * flow` is an integer *neighbour* vector
/// (satisfies `nb`), if one exists: the requirement on `flow` of Sec. 3.2.
pub fn neighbour_multiple(flow: &[Rational]) -> Option<i64> {
    if rat_is_zero(flow) {
        // A zero flow (stationary stream) trivially satisfies nb with m = 1.
        return Some(1);
    }
    let d = denominator(flow);
    let scaled: Vec<i64> = flow.iter().map(|a| a.num() * (d / a.den())).collect();
    nb(&scaled).then_some(d)
}

/// Render a point in the paper's tuple notation `(x0, x1, ...)`.
pub fn fmt_point(x: &[i64]) -> String {
    fmt_tuple(x.iter())
}

/// Render a rational point in tuple notation.
pub fn fmt_rat_point(x: &[Rational]) -> String {
    fmt_tuple(x.iter())
}

fn fmt_tuple<T: fmt::Display>(items: impl ExactSizeIterator<Item = T>) -> String {
    let n = items.len();
    let inner: Vec<String> = items.map(|v| v.to_string()).collect();
    if n == 1 {
        inner.into_iter().next().unwrap()
    } else {
        format!("({})", inner.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        assert_eq!(add(&[1, 2], &[3, 4]), vec![4, 6]);
        assert_eq!(sub(&[1, 2], &[3, 4]), vec![-2, -2]);
        assert_eq!(scale(3, &[1, -2]), vec![3, -6]);
        assert_eq!(dot(&[1, 2, 3], &[4, 5, 6]), 32);
    }

    #[test]
    fn content_and_unit() {
        assert_eq!(content(&[0, -8]), 8);
        assert_eq!(unit_along(&[0, -8]), vec![0, -1]);
        assert_eq!(unit_along(&[2, -2]), vec![1, -1]);
        assert_eq!(unit_along(&[3, 3, 3]), vec![1, 1, 1]);
        assert_eq!(unit_along(&[0, 0, -6]), vec![0, 0, -1]);
    }

    #[test]
    fn exact_division() {
        // ((last - first) // increment) + 1 examples from the paper.
        assert_eq!(exact_div(&[0, 0, 5], &[0, 0, 1]), Some(5));
        assert_eq!(exact_div(&[4, -4], &[1, -1]), Some(4));
        assert_eq!(exact_div(&[3, 4], &[1, 1]), None);
        assert_eq!(exact_div(&[2, 0], &[1, 1]), None);
        assert_eq!(exact_div(&[0, 0], &[1, 1]), Some(0));
        assert_eq!(exact_div(&[3, 3], &[2, 2]), None, "non-integral multiple");
    }

    #[test]
    fn neighbourhood() {
        assert!(nb(&[1, -1, 0]));
        assert!(!nb(&[2, 0]));
        assert!(nb(&[]));
    }

    #[test]
    fn chord_membership() {
        assert!(on_chord(&[1, 1], &[2, 2]));
        assert!(on_chord(&[0, 0], &[5, -3]));
        assert!(on_chord(&[5, -3], &[5, -3]));
        assert!(!on_chord(&[3, 3], &[2, 2]));
        assert!(!on_chord(&[1, 2], &[2, 2]));
        assert!(!on_chord(&[-1, -1], &[2, 2]));
    }

    #[test]
    fn flow_denominators() {
        // flow.b = 1/2 in Appendix D.1 -> denominator 2, one internal buffer.
        let half = vec![Rational::new(1, 2)];
        assert_eq!(denominator(&half), 2);
        assert_eq!(neighbour_multiple(&half), Some(2));
        // flow.c = 2 for place (i - j) violates the neighbour restriction.
        let two = vec![Rational::int(2)];
        assert_eq!(neighbour_multiple(&two), None);
        // Stationary stream.
        assert_eq!(
            neighbour_multiple(&[Rational::ZERO, Rational::ZERO]),
            Some(1)
        );
        // Kung-Leiserson flow.c = (-1, -1).
        let kl = vec![Rational::int(-1), Rational::int(-1)];
        assert_eq!(neighbour_multiple(&kl), Some(1));
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_point(&[1, -2]), "(1,-2)");
        assert_eq!(fmt_point(&[7]), "7");
        assert_eq!(
            fmt_rat_point(&[Rational::new(1, 2), Rational::ZERO]),
            "(1/2,0)"
        );
    }
}
