//! Linear functions as matrices (Sec. 2: "a linear function is uniquely
//! represented by a matrix; we attribute the properties of the matrix to the
//! function").
//!
//! `step`, `place`, and stream index maps are all small integer matrices.
//! The derivations need their rank, a generator of their null space
//! (Theorem 1: `dim(null.place) = 1`), and matrix–vector application over
//! both integer and rational points.

use crate::point::{Point, RatPoint};
use crate::rational::Rational;
use std::fmt;

/// A dense matrix over `Q`, row major. Rows are the components of the
/// linear function's range; columns correspond to its arguments.
#[derive(Clone, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<Rational>,
}

impl Matrix {
    /// Build from integer rows. Panics on ragged input.
    pub fn from_rows(rows: &[Vec<i64>]) -> Matrix {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged matrix rows");
            data.extend(r.iter().map(|&x| Rational::int(x)));
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Build from rational rows.
    pub fn from_rat_rows(rows: &[Vec<Rational>]) -> Matrix {
        assert!(!rows.is_empty());
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged matrix rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// A single-row matrix (a linear functional such as `step`).
    pub fn row_vector(row: &[i64]) -> Matrix {
        Matrix::from_rows(&[row.to_vec()])
    }

    /// The `n x n` identity.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix {
            rows: n,
            cols: n,
            data: vec![Rational::ZERO; n * n],
        };
        for i in 0..n {
            *m.at_mut(i, i) = Rational::ONE;
        }
        m
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn at(&self, r: usize, c: usize) -> Rational {
        self.data[r * self.cols + c]
    }

    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut Rational {
        &mut self.data[r * self.cols + c]
    }

    /// Row `r` as a slice.
    pub fn row(&self, r: usize) -> &[Rational] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Apply to an integer point: `M.x`. Result is rational in general.
    pub fn apply(&self, x: &[i64]) -> RatPoint {
        assert_eq!(x.len(), self.cols, "dimension mismatch in apply");
        (0..self.rows)
            .map(|r| {
                x.iter().enumerate().fold(Rational::ZERO, |acc, (c, &xi)| {
                    acc + self.at(r, c) * Rational::int(xi)
                })
            })
            .collect()
    }

    /// Apply to an integer point when the matrix is integral; panics if any
    /// result component is non-integral.
    pub fn apply_int(&self, x: &[i64]) -> Point {
        self.apply(x)
            .iter()
            .map(|v| v.to_integer().expect("non-integral matrix application"))
            .collect()
    }

    /// Apply to a rational point.
    pub fn apply_rat(&self, x: &[Rational]) -> RatPoint {
        assert_eq!(x.len(), self.cols);
        (0..self.rows)
            .map(|r| {
                x.iter()
                    .enumerate()
                    .fold(Rational::ZERO, |acc, (c, &xi)| acc + self.at(r, c) * xi)
            })
            .collect()
    }

    /// Is every entry an integer?
    pub fn is_integral(&self) -> bool {
        self.data.iter().all(|v| v.is_integer())
    }

    /// Reduced row echelon form; returns (rref, pivot column per pivot row).
    fn rref(&self) -> (Matrix, Vec<usize>) {
        let mut m = self.clone();
        let mut pivots = Vec::new();
        let mut pr = 0; // pivot row
        for pc in 0..m.cols {
            // Find a non-zero entry in column pc at or below row pr.
            let Some(sel) = (pr..m.rows).find(|&r| !m.at(r, pc).is_zero()) else {
                continue;
            };
            // Swap into place.
            if sel != pr {
                for c in 0..m.cols {
                    let tmp = m.at(pr, c);
                    *m.at_mut(pr, c) = m.at(sel, c);
                    *m.at_mut(sel, c) = tmp;
                }
            }
            // Normalize pivot row.
            let inv = m.at(pr, pc).recip();
            for c in 0..m.cols {
                *m.at_mut(pr, c) = m.at(pr, c) * inv;
            }
            // Eliminate the column everywhere else.
            for r in 0..m.rows {
                if r != pr && !m.at(r, pc).is_zero() {
                    let f = m.at(r, pc);
                    for c in 0..m.cols {
                        let v = m.at(r, c) - f * m.at(pr, c);
                        *m.at_mut(r, c) = v;
                    }
                }
            }
            pivots.push(pc);
            pr += 1;
            if pr == m.rows {
                break;
            }
        }
        (m, pivots)
    }

    /// The rank of the matrix.
    pub fn rank(&self) -> usize {
        self.rref().1.len()
    }

    /// A basis of the null space, each vector scaled to primitive integer
    /// coordinates (gcd of components = 1). The paper's derivations always
    /// need integer null-space elements (Sec. 7.2.1).
    pub fn null_space(&self) -> Vec<Point> {
        let (r, pivots) = self.rref();
        let free: Vec<usize> = (0..self.cols).filter(|c| !pivots.contains(c)).collect();
        let mut basis = Vec::with_capacity(free.len());
        for &fc in &free {
            // One basis vector per free column: free var = 1, others = 0.
            let mut v = vec![Rational::ZERO; self.cols];
            v[fc] = Rational::ONE;
            for (prow, &pc) in pivots.iter().enumerate() {
                v[pc] = -r.at(prow, fc);
            }
            // Clear denominators and normalize to primitive form.
            let d = v
                .iter()
                .fold(1i64, |d, q| crate::rational::lcm(d, q.den()).max(1));
            let ints: Vec<i64> = v.iter().map(|q| q.num() * (d / q.den())).collect();
            let g = crate::point::content(&ints).max(1);
            basis.push(ints.iter().map(|&x| x / g).collect());
        }
        basis
    }

    /// The single primitive generator of a rank-deficiency-1 null space
    /// (`null_p` of Theorem 2). `None` if the nullity is not exactly 1.
    pub fn null_generator(&self) -> Option<Point> {
        let ns = self.null_space();
        (ns.len() == 1).then(|| ns.into_iter().next().unwrap())
    }

    /// Matrix product `self * other`.
    pub fn mul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows);
        let mut out = Matrix {
            rows: self.rows,
            cols: other.cols,
            data: vec![Rational::ZERO; self.rows * other.cols],
        };
        for r in 0..self.rows {
            for c in 0..other.cols {
                let mut acc = Rational::ZERO;
                for k in 0..self.cols {
                    acc += self.at(r, k) * other.at(k, c);
                }
                *out.at_mut(r, c) = acc;
            }
        }
        out
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            let row: Vec<String> = (0..self.cols).map(|c| self.at(r, c).to_string()).collect();
            writeln!(f, "  [{}]", row.join(", "))?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_place_functions() {
        // place.(i,j,k) = (i, j): the simple place of Appendix E.1.
        let place = Matrix::from_rows(&[vec![1, 0, 0], vec![0, 1, 0]]);
        assert_eq!(place.apply_int(&[3, 4, 5]), vec![3, 4]);
        // place.(i,j,k) = (i-k, j-k): Kung-Leiserson, Appendix E.2.
        let kl = Matrix::from_rows(&[vec![1, 0, -1], vec![0, 1, -1]]);
        assert_eq!(kl.apply_int(&[3, 4, 5]), vec![-2, -1]);
    }

    #[test]
    fn rank_of_paper_maps() {
        // Index maps of Appendix E all have rank 2 (= r - 1).
        let ma = Matrix::from_rows(&[vec![1, 0, 0], vec![0, 0, 1]]); // (i, k)
        let mb = Matrix::from_rows(&[vec![0, 0, 1], vec![0, 1, 0]]); // (k, j)
        let mc = Matrix::from_rows(&[vec![1, 0, 0], vec![0, 1, 0]]); // (i, j)
        assert_eq!(ma.rank(), 2);
        assert_eq!(mb.rank(), 2);
        assert_eq!(mc.rank(), 2);
        let singular = Matrix::from_rows(&[vec![1, 1], vec![2, 2]]);
        assert_eq!(singular.rank(), 1);
    }

    #[test]
    fn null_space_generators_match_paper() {
        // Appendix E: null generators (0,1,0), (1,0,0), (0,0,1).
        let ma = Matrix::from_rows(&[vec![1, 0, 0], vec![0, 0, 1]]);
        assert_eq!(ma.null_generator().unwrap(), vec![0, 1, 0]);
        let mc = Matrix::from_rows(&[vec![1, 0, 0], vec![0, 1, 0]]);
        assert_eq!(mc.null_generator().unwrap(), vec![0, 0, 1]);
        // Appendix D: M.c = (i + j) has null generator +-(1, -1).
        let dc = Matrix::from_rows(&[vec![1, 1]]);
        let g = dc.null_generator().unwrap();
        assert!(g == vec![1, -1] || g == vec![-1, 1]);
    }

    #[test]
    fn null_space_of_kung_leiserson_place() {
        let kl = Matrix::from_rows(&[vec![1, 0, -1], vec![0, 1, -1]]);
        let g = kl.null_generator().unwrap();
        assert!(g == vec![1, 1, 1] || g == vec![-1, -1, -1]);
    }

    #[test]
    fn null_space_members_are_annihilated() {
        let m = Matrix::from_rows(&[vec![2, 4, -2], vec![1, 1, 1]]);
        for v in m.null_space() {
            assert!(m.apply(&v).iter().all(|q| q.is_zero()));
        }
    }

    #[test]
    fn full_rank_matrix_has_empty_null_space() {
        let m = Matrix::identity(3);
        assert!(m.null_space().is_empty());
        assert_eq!(m.null_generator(), None);
    }

    #[test]
    fn matrix_product() {
        let a = Matrix::from_rows(&[vec![1, 2], vec![3, 4]]);
        let b = Matrix::from_rows(&[vec![0, 1], vec![1, 0]]);
        let ab = a.mul(&b);
        assert_eq!(ab.apply_int(&[1, 0]), vec![2, 4]);
        assert_eq!(ab.apply_int(&[0, 1]), vec![1, 3]);
    }
}
