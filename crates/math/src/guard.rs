//! Guards: conjunctions of chained linear inequalities.
//!
//! The alternatives of `first`/`last` (Sec. 7.2.2) are guarded by closed
//! forms like `0 <= row - col <= n  /\  0 <= -col <= n` — each conjunct a
//! chain `e0 <= e1 <= ... <= ek` of affine expressions. We keep the chain
//! structure so that generated code reads like the paper's.

use crate::affine::Affine;
use crate::rational::Rational;
use crate::symbols::{Env, VarTable};

/// A chain `exprs[0] <= exprs[1] <= ... <= exprs[k]` (k >= 1).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Chain {
    exprs: Vec<Affine>,
}

impl Chain {
    /// Build a chain; panics if fewer than two expressions.
    pub fn new(exprs: Vec<Affine>) -> Chain {
        assert!(exprs.len() >= 2, "a chain needs at least two expressions");
        Chain { exprs }
    }

    /// The common paper form `lb <= e <= rb`.
    pub fn between(lb: Affine, e: Affine, rb: Affine) -> Chain {
        Chain::new(vec![lb, e, rb])
    }

    /// A single inequality `a <= b`.
    pub fn le(a: Affine, b: Affine) -> Chain {
        Chain::new(vec![a, b])
    }

    pub fn exprs(&self) -> &[Affine] {
        &self.exprs
    }

    /// Evaluate under the bindings.
    pub fn eval(&self, env: &Env) -> bool {
        self.exprs
            .windows(2)
            .all(|w| w[0].eval_rat(env) <= w[1].eval_rat(env))
    }

    /// `Some(b)` if the chain is constant with truth value `b`.
    pub fn const_value(&self) -> Option<bool> {
        let consts: Option<Vec<Rational>> = self.exprs.iter().map(|e| e.as_const()).collect();
        consts.map(|cs| cs.windows(2).all(|w| w[0] <= w[1]))
    }

    pub fn display(&self, table: &VarTable) -> String {
        self.exprs
            .iter()
            .map(|e| e.display(table))
            .collect::<Vec<_>>()
            .join(" <= ")
    }

    /// Substitute a variable throughout the chain (used when specializing
    /// an expression to a process-space boundary, Sec. E.2.7: "simplified
    /// after substituting the appropriate values for row and col").
    pub fn substitute(&self, v: crate::symbols::Var, repl: &Affine) -> Chain {
        Chain {
            exprs: self.exprs.iter().map(|e| e.substitute(v, repl)).collect(),
        }
    }
}

/// A conjunction of chains. The empty guard is `true`.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Guard {
    chains: Vec<Chain>,
}

impl Guard {
    /// The always-true guard.
    pub fn always() -> Guard {
        Guard::default()
    }

    pub fn new(chains: Vec<Chain>) -> Guard {
        Guard { chains }
    }

    pub fn chains(&self) -> &[Chain] {
        &self.chains
    }

    pub fn is_always(&self) -> bool {
        self.chains.is_empty()
    }

    /// Conjoin another chain.
    pub fn and_chain(mut self, c: Chain) -> Guard {
        self.chains.push(c);
        self
    }

    /// Conjoin two guards.
    pub fn and(mut self, other: &Guard) -> Guard {
        self.chains.extend(other.chains.iter().cloned());
        self
    }

    /// Evaluate under the bindings.
    pub fn eval(&self, env: &Env) -> bool {
        self.chains.iter().all(|c| c.eval(env))
    }

    /// Drop conjuncts that are constant-true; return `None` if any conjunct
    /// is constant-false (the whole guard is infeasible). This is the
    /// pruning the paper performs by hand ("only one of the sub-alternatives
    /// has a guard that is consistent", App. E.2.5).
    pub fn simplify(&self) -> Option<Guard> {
        let mut kept = Vec::new();
        for c in &self.chains {
            match c.const_value() {
                Some(true) => {}
                Some(false) => return None,
                None => kept.push(c.clone()),
            }
        }
        Some(Guard { chains: kept })
    }

    pub fn display(&self, table: &VarTable) -> String {
        if self.chains.is_empty() {
            "true".to_string()
        } else {
            self.chains
                .iter()
                .map(|c| c.display(table))
                .collect::<Vec<_>>()
                .join("  /\\  ")
        }
    }

    /// Substitute a variable throughout the guard.
    pub fn substitute(&self, v: crate::symbols::Var, repl: &Affine) -> Guard {
        Guard {
            chains: self.chains.iter().map(|c| c.substitute(v, repl)).collect(),
        }
    }
}

/// A guarded case analysis with an implicit `else -> null` (Sec. 7.2.2's
/// `if .. [] .. fi`; App. E.2.7 adds "an extra alternative that assigns the
/// null value" for points outside the computation space).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Piecewise<T> {
    clauses: Vec<(Guard, T)>,
}

impl<T> Piecewise<T> {
    pub fn new(clauses: Vec<(Guard, T)>) -> Piecewise<T> {
        Piecewise { clauses }
    }

    /// One unguarded clause (the simple-place case, Sec. 7.2.3).
    pub fn total(value: T) -> Piecewise<T> {
        Piecewise {
            clauses: vec![(Guard::always(), value)],
        }
    }

    pub fn clauses(&self) -> &[(Guard, T)] {
        &self.clauses
    }

    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// First clause whose guard holds; `None` means the null alternative.
    /// Overlapping guards are fine: the paper proves the overlapping
    /// expressions agree ("the two guards overlap at col = n, but the two
    /// expressions are equal", App. D.2.2).
    pub fn select(&self, env: &Env) -> Option<&T> {
        self.clauses
            .iter()
            .find(|(g, _)| g.eval(env))
            .map(|(_, v)| v)
    }

    pub fn map<U>(&self, mut f: impl FnMut(&T) -> U) -> Piecewise<U> {
        Piecewise {
            clauses: self
                .clauses
                .iter()
                .map(|(g, v)| (g.clone(), f(v)))
                .collect(),
        }
    }

    /// Cross two piecewise values: clause guards are conjoined and values
    /// combined; infeasible (constant-false) combinations are pruned.
    /// This is how the paper forms the six-way soak/drain expressions of
    /// App. E.2.5 (3 clauses of `first` x 2 clauses of `first_s`).
    pub fn cross<'a, U, V>(
        &'a self,
        other: &'a Piecewise<U>,
        mut f: impl FnMut(&T, &U) -> V,
    ) -> Piecewise<V> {
        let mut clauses = Vec::new();
        for (g1, v1) in &self.clauses {
            for (g2, v2) in &other.clauses {
                if let Some(g) = g1.clone().and(g2).simplify() {
                    clauses.push((g, f(v1, v2)));
                }
            }
        }
        Piecewise { clauses }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::VarTable;

    fn setup() -> (VarTable, Env, Affine, Affine, Affine) {
        let mut t = VarTable::new();
        let n = t.size("n");
        let col = t.coord(0);
        let row = t.coord(1);
        let mut env = Env::new();
        env.bind(n, 4).bind(col, 2).bind(row, 3);
        (t, env, Affine::var(n), Affine::var(col), Affine::var(row))
    }

    #[test]
    fn chain_evaluation() {
        let (_, env, n, col, _) = setup();
        // 0 <= col <= n with col=2, n=4: true.
        let c = Chain::between(Affine::zero(), col.clone(), n.clone());
        assert!(c.eval(&env));
        // n <= col: false.
        assert!(!Chain::le(n, col).eval(&env));
    }

    #[test]
    fn chain_display() {
        let (t, _, n, col, _) = setup();
        let c = Chain::between(Affine::zero(), col - n.clone(), n);
        assert_eq!(c.display(&t), "0 <= col - n <= n");
    }

    #[test]
    fn guard_conjunction_and_simplify() {
        let (t, env, n, col, row) = setup();
        let g = Guard::always()
            .and_chain(Chain::between(Affine::zero(), row - col.clone(), n.clone()))
            .and_chain(Chain::between(Affine::zero(), col, n));
        assert!(g.eval(&env));
        assert_eq!(g.display(&t), "0 <= row - col <= n  /\\  0 <= col <= n");
        // Constant-true chains vanish, constant-false kills the guard.
        let ok = Guard::always().and_chain(Chain::le(Affine::int(0), Affine::int(3)));
        assert!(ok.simplify().unwrap().is_always());
        let bad = Guard::always().and_chain(Chain::le(Affine::int(3), Affine::int(0)));
        assert!(bad.simplify().is_none());
    }

    #[test]
    fn simplify_is_idempotent() {
        let (_, _, n, col, row) = setup();
        // A mix of constant-true, symbolic, and another symbolic chain:
        // one pass removes exactly the constant conjuncts, so a second
        // pass must be the identity.
        let g = Guard::always()
            .and_chain(Chain::le(Affine::int(0), Affine::int(3)))
            .and_chain(Chain::between(Affine::zero(), row - col.clone(), n.clone()))
            .and_chain(Chain::between(Affine::zero(), col, n));
        let once = g.simplify().unwrap();
        assert_eq!(once.chains().len(), 2, "constant-true conjunct dropped");
        let twice = once.simplify().unwrap();
        assert_eq!(once, twice, "simplify must be idempotent");
        // The fixed points: the always guard and an infeasible guard.
        assert!(Guard::always().simplify().unwrap().is_always());
        let dead = Guard::always().and_chain(Chain::le(Affine::int(1), Affine::int(0)));
        assert!(dead.simplify().is_none());
        // Simplification never changes the guard's meaning.
        let (_, env, ..) = setup();
        assert_eq!(g.eval(&env), once.eval(&env));
    }

    #[test]
    fn piecewise_select_first_match() {
        let (_, env, n, col, _) = setup();
        // if 0 <= col <= n -> 1 [] n <= col <= 2n -> 2 fi (col=2, n=4 -> 1).
        let pw = Piecewise::new(vec![
            (
                Guard::always().and_chain(Chain::between(Affine::zero(), col.clone(), n.clone())),
                1,
            ),
            (
                Guard::always().and_chain(Chain::between(
                    n.clone(),
                    col,
                    n.scale(crate::rational::Rational::int(2)),
                )),
                2,
            ),
        ]);
        assert_eq!(pw.select(&env), Some(&1));
        // col=9 out of range -> null.
        let mut t2 = VarTable::new();
        let nn = t2.size("n");
        let cc = t2.coord(0);
        let mut env2 = Env::new();
        env2.bind(nn, 4).bind(cc, 9);
        assert_eq!(pw.select(&env2), None);
    }

    #[test]
    fn cross_prunes_infeasible() {
        let (_, _, n, col, _) = setup();
        let a = Piecewise::new(vec![(Guard::always(), 1)]);
        let b = Piecewise::new(vec![
            (
                Guard::always().and_chain(Chain::le(Affine::int(1), Affine::int(0))),
                10,
            ),
            (
                Guard::always().and_chain(Chain::between(Affine::zero(), col, n)),
                20,
            ),
        ]);
        let crossed = a.cross(&b, |x, y| x + y);
        assert_eq!(crossed.len(), 1);
        assert_eq!(crossed.clauses()[0].1, 21);
    }
}
