//! # systolic-math
//!
//! The exact-arithmetic and symbolic-algebra substrate for the systolizing
//! compilation scheme of Barnett & Lengauer (1991).
//!
//! The paper's derivations (Secs. 6–7) manipulate four kinds of objects,
//! each with a module here:
//!
//! - [`rational`] — exact rationals (`flow` values, null-space scaling);
//! - [`point`] — integer/rational points in `n`-space with the paper's
//!   operators (`•`, `//`, `nb`, chords, gcd units);
//! - [`matrix`] — linear functions as matrices: rank, null spaces
//!   (Theorems 1–2), application;
//! - [`symbols`], [`affine`], [`guard`] — symbolic affine expressions over
//!   problem-size and process-coordinate variables, chained-inequality
//!   guards, and guarded piecewise values (`if .. [] .. fi`);
//! - [`linsolve`] — Gaussian elimination with symbolic right-hand sides
//!   (the face equations of Sec. 7.2.2);
//! - [`speceval`] — size-specialized integer evaluators for the piecewise
//!   forms, the fast path of elaboration's per-point sweep.

pub mod affine;
pub mod guard;
pub mod linsolve;
pub mod matrix;
pub mod point;
pub mod rational;
pub mod speceval;
pub mod symbols;

pub use affine::{Affine, AffinePoint};
pub use guard::{Chain, Guard, Piecewise};
pub use matrix::Matrix;
pub use point::{Point, RatPoint};
pub use rational::Rational;
pub use speceval::{SpecAffine, SpecCount, SpecPiecewise};
pub use symbols::{Env, Var, VarKind, VarTable};
