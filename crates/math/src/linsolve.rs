//! Symbolic linear solving: Gaussian elimination with affine right-hand
//! sides.
//!
//! Sec. 7.2.2: "for the boundary points in IS, one component is known,
//! leaving r-1 unknowns, and the system of equations may be solved for the
//! unique point which is the value of first. Each set of equations is solved
//! symbolically." The coefficient matrix (`place` restricted to a face) is
//! numeric; the right-hand side contains the symbolic process coordinates
//! and loop bounds, so the solutions are affine expressions.

use crate::affine::{Affine, AffinePoint};
use crate::matrix::Matrix;
use crate::rational::Rational;

/// Solve the square system `A * x = b` where `A` is a rational matrix and
/// `b` a vector of affine expressions. Returns `None` if `A` is singular.
#[allow(clippy::needless_range_loop)] // index symmetry with the math is clearer
pub fn solve(a: &Matrix, b: &[Affine]) -> Option<AffinePoint> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "solve requires a square system");
    assert_eq!(b.len(), n, "right-hand side length mismatch");

    // Augmented elimination: numeric part `m`, symbolic part `rhs`.
    let mut m: Vec<Vec<Rational>> = (0..n).map(|r| a.row(r).to_vec()).collect();
    let mut rhs: Vec<Affine> = b.to_vec();

    for col in 0..n {
        // Partial pivot: any non-zero entry suffices over Q.
        let pivot = (col..n).find(|&r| !m[r][col].is_zero())?;
        m.swap(col, pivot);
        rhs.swap(col, pivot);
        let inv = m[col][col].recip();
        for c in col..n {
            m[col][c] = m[col][c] * inv;
        }
        rhs[col] = rhs[col].scale(inv);
        for r in 0..n {
            if r != col && !m[r][col].is_zero() {
                let f = m[r][col];
                for c in col..n {
                    m[r][c] = m[r][c] - f * m[col][c];
                }
                rhs[r] = rhs[r].clone() - rhs[col].scale(f);
            }
        }
    }
    Some(rhs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::{Env, VarTable};

    #[test]
    fn numeric_system() {
        // x + y = 3, x - y = 1  =>  x = 2, y = 1.
        let a = Matrix::from_rows(&[vec![1, 1], vec![1, -1]]);
        let b = vec![Affine::int(3), Affine::int(1)];
        let x = solve(&a, &b).unwrap();
        assert_eq!(x, vec![Affine::int(2), Affine::int(1)]);
    }

    #[test]
    fn singular_system() {
        let a = Matrix::from_rows(&[vec![1, 1], vec![2, 2]]);
        let b = vec![Affine::int(0), Affine::int(0)];
        assert!(solve(&a, &b).is_none());
    }

    #[test]
    fn symbolic_rhs_polyprod_face() {
        // Appendix D.2, first face: place.(0, j) = col with place = i + j.
        // Fixing i = 0 leaves the 1x1 system  1 * j = col  =>  j = col.
        let mut t = VarTable::new();
        let col = t.coord(0);
        let a = Matrix::from_rows(&[vec![1]]);
        let b = vec![Affine::var(col)];
        let x = solve(&a, &b).unwrap();
        assert_eq!(x, vec![Affine::var(col)]);
    }

    #[test]
    fn symbolic_rhs_kung_leiserson_face() {
        // Appendix E.2, face 0 (i = 0): place.(0, j, k) = (col, row) with
        // place = (i - k, j - k). System over unknowns (j, k):
        //   -k = col,  j - k = row   =>   k = -col, j = row - col.
        let mut t = VarTable::new();
        let col = t.coord(0);
        let row = t.coord(1);
        // Columns: j, k. Row 1: 0*j - 1*k = col. Row 2: 1*j - 1*k = row.
        let a = Matrix::from_rows(&[vec![0, -1], vec![1, -1]]);
        let b = vec![Affine::var(col), Affine::var(row)];
        let x = solve(&a, &b).unwrap();
        assert_eq!(x[0], Affine::var(row) - Affine::var(col), "j = row - col");
        assert_eq!(x[1], -Affine::var(col), "k = -col");
    }

    #[test]
    fn rank_deficient_three_by_three_is_rejected() {
        // Rank 2: row2 = row0 + row1. A symbolic right-hand side must not
        // mask the deficiency — elimination has to bail on the pivot
        // search, never invent a solution.
        let mut t = VarTable::new();
        let col = t.coord(0);
        let a = Matrix::from_rows(&[vec![1, 2, 3], vec![2, 0, 1], vec![3, 2, 4]]);
        let b = vec![Affine::var(col), Affine::int(1), Affine::int(0)];
        assert!(solve(&a, &b).is_none());
    }

    #[test]
    fn zero_matrix_is_rejected() {
        let a = Matrix::from_rows(&[vec![0, 0], vec![0, 0]]);
        let b = vec![Affine::int(1), Affine::int(2)];
        assert!(solve(&a, &b).is_none());
    }

    #[test]
    fn pivoting_handles_a_zero_leading_entry() {
        // 0x + y = 5, x + 0y = 2 forces a row swap before elimination.
        let a = Matrix::from_rows(&[vec![0, 1], vec![1, 0]]);
        let b = vec![Affine::int(5), Affine::int(2)];
        let x = solve(&a, &b).unwrap();
        assert_eq!(x, vec![Affine::int(2), Affine::int(5)]);
    }

    #[test]
    fn rational_coefficients() {
        // (1/2) x = n  =>  x = 2n.
        let mut t = VarTable::new();
        let n = t.size("n");
        let a = Matrix::from_rat_rows(&[vec![Rational::new(1, 2)]]);
        let b = vec![Affine::var(n)];
        let x = solve(&a, &b).unwrap();
        let mut env = Env::new();
        env.bind(n, 7);
        assert_eq!(x[0].eval_int(&env), 14);
    }
}
