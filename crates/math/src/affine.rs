//! Affine expressions: `c + sum(q_i * v_i)` with rational coefficients over
//! symbolic variables.
//!
//! These are the currency of the derivation (Sec. 7): loop bounds are
//! "linear expressions in the problem size" (Sec. 3.1), the solutions of
//! `place.x = y` are affine in the process coordinates, and all soak/drain
//! counts simplify to affine expressions. Simplification is automatic:
//! expressions are kept in a canonical sorted sparse form, so equality of
//! derived results with the paper's hand-simplified forms is structural.

use crate::rational::Rational;
use crate::symbols::{Env, Var, VarTable};
use std::fmt::Write as _;
use std::ops::{Add, Mul, Neg, Sub};

/// An affine (degree <= 1) expression over symbolic variables.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Affine {
    constant: Rational,
    /// Sorted by `Var`, coefficients non-zero.
    terms: Vec<(Var, Rational)>,
}

/// A point whose coordinates are affine expressions, e.g. the paper's
/// `first = (col, row, 0)` or `first_s = (0, row - col)`.
pub type AffinePoint = Vec<Affine>;

impl Affine {
    /// The zero expression.
    pub fn zero() -> Affine {
        Affine::default()
    }

    /// An integer constant.
    pub fn int(n: i64) -> Affine {
        Affine {
            constant: Rational::int(n),
            terms: Vec::new(),
        }
    }

    /// A rational constant.
    pub fn rat(q: Rational) -> Affine {
        Affine {
            constant: q,
            terms: Vec::new(),
        }
    }

    /// A bare variable.
    pub fn var(v: Var) -> Affine {
        Affine {
            constant: Rational::ZERO,
            terms: vec![(v, Rational::ONE)],
        }
    }

    /// `q * v`.
    pub fn term(v: Var, q: Rational) -> Affine {
        if q.is_zero() {
            Affine::zero()
        } else {
            Affine {
                constant: Rational::ZERO,
                terms: vec![(v, q)],
            }
        }
    }

    pub fn constant_part(&self) -> Rational {
        self.constant
    }

    /// The non-zero terms, sorted by variable.
    pub fn terms(&self) -> &[(Var, Rational)] {
        &self.terms
    }

    /// The coefficient of `v` (zero if absent).
    pub fn coeff(&self, v: Var) -> Rational {
        self.terms
            .iter()
            .find(|(t, _)| *t == v)
            .map(|&(_, q)| q)
            .unwrap_or(Rational::ZERO)
    }

    /// Is this a constant expression?
    pub fn is_const(&self) -> bool {
        self.terms.is_empty()
    }

    /// The constant value, if constant.
    pub fn as_const(&self) -> Option<Rational> {
        self.is_const().then_some(self.constant)
    }

    pub fn is_zero(&self) -> bool {
        self.terms.is_empty() && self.constant.is_zero()
    }

    /// The variables occurring with non-zero coefficient.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.terms.iter().map(|&(v, _)| v)
    }

    /// Multiply by a rational scalar.
    pub fn scale(&self, q: Rational) -> Affine {
        if q.is_zero() {
            return Affine::zero();
        }
        Affine {
            constant: self.constant * q,
            terms: self.terms.iter().map(|&(v, c)| (v, c * q)).collect(),
        }
    }

    /// Substitute `v := repl` (used when fixing one component of a point to
    /// a loop bound, Sec. 7.2.2, and when specializing coordinates).
    pub fn substitute(&self, v: Var, repl: &Affine) -> Affine {
        let c = self.coeff(v);
        if c.is_zero() {
            return self.clone();
        }
        let mut without = self.clone();
        without.terms.retain(|&(t, _)| t != v);
        without + repl.scale(c)
    }

    /// Evaluate to an exact rational under the bindings.
    pub fn eval_rat(&self, env: &Env) -> Rational {
        self.terms.iter().fold(self.constant, |acc, &(v, q)| {
            acc + q * Rational::int(env.expect(v))
        })
    }

    /// Evaluate to an integer; `None` if the value is not integral (the
    /// paper's restriction A.2 rules this out for accepted programs, but we
    /// surface it rather than truncating).
    pub fn eval(&self, env: &Env) -> Option<i64> {
        self.eval_rat(env).to_integer()
    }

    /// Evaluate, panicking with a description on a non-integral result.
    pub fn eval_int(&self, env: &Env) -> i64 {
        let q = self.eval_rat(env);
        q.to_integer()
            .unwrap_or_else(|| panic!("expression evaluated to non-integer {q}"))
    }

    /// Render using the variable names in `table`, in the paper's style,
    /// e.g. `2*n - col + 1`, `-row`, `0`.
    pub fn display(&self, table: &VarTable) -> String {
        let mut out = String::new();
        let mut first = true;
        // Paper style: positive terms before negative ones ("col - n",
        // "row - col"), stable by variable id within each sign.
        let mut ordered: Vec<(Var, Rational)> = self.terms.clone();
        ordered.sort_by_key(|&(v, q)| (q.signum() < 0, v));
        for &(v, q) in &ordered {
            let name = table.name(v);
            if first {
                if q == Rational::ONE {
                    let _ = write!(out, "{name}");
                } else if q == -Rational::ONE {
                    let _ = write!(out, "-{name}");
                } else {
                    let _ = write!(out, "{q}*{name}");
                }
                first = false;
            } else if q.signum() >= 0 {
                if q == Rational::ONE {
                    let _ = write!(out, " + {name}");
                } else {
                    let _ = write!(out, " + {q}*{name}");
                }
            } else if q == -Rational::ONE {
                let _ = write!(out, " - {name}");
            } else {
                let _ = write!(out, " - {}*{name}", -q);
            }
        }
        if first {
            let _ = write!(out, "{}", self.constant);
        } else if self.constant.signum() > 0 {
            let _ = write!(out, " + {}", self.constant);
        } else if self.constant.signum() < 0 {
            let _ = write!(out, " - {}", -self.constant);
        }
        out
    }

    fn merge(mut self, other: &Affine, sign: Rational) -> Affine {
        self.constant += other.constant * sign;
        for &(v, q) in &other.terms {
            let q = q * sign;
            match self.terms.binary_search_by_key(&v, |&(t, _)| t) {
                Ok(i) => {
                    let nq = self.terms[i].1 + q;
                    if nq.is_zero() {
                        self.terms.remove(i);
                    } else {
                        self.terms[i].1 = nq;
                    }
                }
                Err(i) => self.terms.insert(i, (v, q)),
            }
        }
        self
    }
}

impl Add for Affine {
    type Output = Affine;
    fn add(self, rhs: Affine) -> Affine {
        self.merge(&rhs, Rational::ONE)
    }
}

impl Add<&Affine> for Affine {
    type Output = Affine;
    fn add(self, rhs: &Affine) -> Affine {
        self.merge(rhs, Rational::ONE)
    }
}

impl Sub for Affine {
    type Output = Affine;
    fn sub(self, rhs: Affine) -> Affine {
        self.merge(&rhs, -Rational::ONE)
    }
}

impl Sub<&Affine> for Affine {
    type Output = Affine;
    fn sub(self, rhs: &Affine) -> Affine {
        self.merge(rhs, -Rational::ONE)
    }
}

impl Neg for Affine {
    type Output = Affine;
    fn neg(self) -> Affine {
        self.scale(-Rational::ONE)
    }
}

impl Mul<Rational> for Affine {
    type Output = Affine;
    fn mul(self, q: Rational) -> Affine {
        self.scale(q)
    }
}

/// Component-wise difference of affine points.
pub fn point_sub(x: &[Affine], y: &[Affine]) -> AffinePoint {
    assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| a.clone() - b).collect()
}

/// Component-wise sum of affine points.
pub fn point_add(x: &[Affine], y: &[Affine]) -> AffinePoint {
    assert_eq!(x.len(), y.len());
    x.iter()
        .zip(y)
        .map(|(a, b)| a.clone() + b.clone())
        .collect()
}

/// Scale an affine point by a rational.
pub fn point_scale(x: &[Affine], q: Rational) -> AffinePoint {
    x.iter().map(|a| a.scale(q)).collect()
}

/// An integer point lifted to a constant affine point.
pub fn const_point(x: &[i64]) -> AffinePoint {
    x.iter().map(|&a| Affine::int(a)).collect()
}

/// Evaluate an affine point to integers.
pub fn eval_point(x: &[Affine], env: &Env) -> Vec<i64> {
    x.iter().map(|a| a.eval_int(env)).collect()
}

/// Apply an integer/rational matrix to an affine point (`M.x` where `x` has
/// symbolic coordinates — Sec. 7.4 applies index maps to `first`).
pub fn matrix_apply(m: &crate::matrix::Matrix, x: &[Affine]) -> AffinePoint {
    assert_eq!(x.len(), m.cols());
    (0..m.rows())
        .map(|r| {
            x.iter()
                .enumerate()
                .fold(Affine::zero(), |acc, (c, xi)| acc + xi.scale(m.at(r, c)))
        })
        .collect()
}

/// Symbolic exact division `x // v` of an affine point by a constant integer
/// vector: the affine scalar `e` such that `e * v == x`, if the components
/// agree (eqs. 8-10 divide point differences by `increment_s`).
pub fn point_exact_div(x: &[Affine], v: &[i64]) -> Option<Affine> {
    assert_eq!(x.len(), v.len());
    let mut q: Option<Affine> = None;
    for (xi, &vi) in x.iter().zip(v) {
        if vi == 0 {
            if !xi.is_zero() {
                return None;
            }
        } else {
            let cand = xi.scale(Rational::new(1, vi));
            match &q {
                None => q = Some(cand),
                Some(prev) if *prev != cand => return None,
                _ => {}
            }
        }
    }
    Some(q.unwrap_or_else(Affine::zero))
}

/// Render an affine point in tuple notation, e.g. `(col - n, n)`.
pub fn display_point(x: &[Affine], table: &VarTable) -> String {
    let inner: Vec<String> = x.iter().map(|a| a.display(table)).collect();
    if inner.len() == 1 {
        inner.into_iter().next().unwrap()
    } else {
        format!("({})", inner.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    fn setup() -> (VarTable, Var, Var, Var) {
        let mut t = VarTable::new();
        let n = t.size("n");
        let col = t.coord(0);
        let row = t.coord(1);
        (t, n, col, row)
    }

    #[test]
    fn canonical_arithmetic() {
        let (_, n, col, _) = setup();
        let e = Affine::var(n) + Affine::var(col) - Affine::var(n);
        assert_eq!(e, Affine::var(col));
        let z = Affine::var(col) - Affine::var(col);
        assert!(z.is_zero());
    }

    #[test]
    fn display_matches_paper_style() {
        let (t, n, col, row) = setup();
        let e = Affine::int(2).scale(Rational::int(1)) * Rational::int(1);
        assert_eq!(e.display(&t), "2");
        let e = Affine::var(n).scale(Rational::int(2)) - Affine::var(col) + Affine::int(1);
        assert_eq!(e.display(&t), "2*n - col + 1");
        let e = -Affine::var(row);
        assert_eq!(e.display(&t), "-row");
        assert_eq!(Affine::zero().display(&t), "0");
    }

    #[test]
    fn substitution() {
        let (_, n, col, _) = setup();
        // (n - col) with col := n  ==>  0
        let e = Affine::var(n) - Affine::var(col);
        let r = e.substitute(col, &Affine::var(n));
        assert!(r.is_zero());
    }

    #[test]
    fn evaluation() {
        let (_, n, col, _) = setup();
        let e = Affine::var(n).scale(Rational::int(2)) - Affine::var(col);
        let mut env = Env::new();
        env.bind(n, 5).bind(col, 3);
        assert_eq!(e.eval(&env), Some(7));
        let half = Affine::var(n).scale(Rational::new(1, 2));
        assert_eq!(half.eval(&env), None, "5/2 is not an integer");
    }

    #[test]
    fn matrix_on_affine_points() {
        let (t, n, col, row) = setup();
        // M.c = (i, j) applied to first = (col, row, 0): Appendix E.1.4.
        let mc = Matrix::from_rows(&[vec![1, 0, 0], vec![0, 1, 0]]);
        let first = vec![Affine::var(col), Affine::var(row), Affine::zero()];
        let img = matrix_apply(&mc, &first);
        assert_eq!(display_point(&img, &t), "(col, row)");
        // M.a = (i, k): image (col, 0).
        let ma = Matrix::from_rows(&[vec![1, 0, 0], vec![0, 0, 1]]);
        let img = matrix_apply(&ma, &first);
        assert_eq!(display_point(&img, &t), "(col, 0)");
        let _ = n;
    }

    #[test]
    fn symbolic_exact_division() {
        let (_, n, col, _) = setup();
        // ((n - col, n - col) // (1, 1)) = n - col (Appendix E.2 buffers).
        let e = Affine::var(n) - Affine::var(col);
        let p = vec![e.clone(), e.clone()];
        assert_eq!(point_exact_div(&p, &[1, 1]), Some(e.clone()));
        // Components disagree -> None.
        let p = vec![e.clone(), Affine::var(n)];
        assert_eq!(point_exact_div(&p, &[1, 1]), None);
        // Zero increment component demands zero difference.
        let p = vec![Affine::zero(), e.clone()];
        assert_eq!(point_exact_div(&p, &[0, 1]), Some(e));
        let p = vec![Affine::var(n), Affine::zero()];
        assert_eq!(point_exact_div(&p, &[0, 1]), None);
    }

    #[test]
    fn division_by_negative_component() {
        let (_, n, col, _) = setup();
        // (col - n) // -1 = n - col (soak_b in Appendix D.2).
        let p = vec![Affine::var(col) - Affine::var(n)];
        let r = point_exact_div(&p, &[-1]).unwrap();
        assert_eq!(r, Affine::var(n) - Affine::var(col));
    }
}
