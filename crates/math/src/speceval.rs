//! Size-specialized integer evaluation of piecewise affine forms.
//!
//! Elaboration sweeps every process-space point and asks the same handful
//! of symbolic questions at each one: which `first`/`count` clause holds,
//! and what the soak/drain counts are. Answering through [`Piecewise`]
//! directly means exact-rational arithmetic (a gcd normalization per add
//! and multiply) for every guard of every clause at every point — the
//! dominant cost of elaborating large arrays.
//!
//! The problem sizes are fixed before the sweep begins, so each affine
//! expression can be partially evaluated once: size terms fold into an
//! integer bias, coordinate terms become integer coefficients over the
//! point vector, and the one shared denominator is cleared by scaling.
//! What remains per point is a dot product in `i64` and, for guards, a
//! cross-multiplied comparison in `i128` — no rationals, no gcds.
//!
//! Specialized forms answer exactly as their symbolic originals: guard
//! selection order is preserved, and a non-integral value panics with the
//! same diagnostic as [`Affine::eval_int`].

use crate::affine::{Affine, AffinePoint};
use crate::guard::{Guard, Piecewise};
use crate::rational::{lcm, Rational};
use crate::symbols::{Env, Var};

/// An affine expression specialized at fixed problem sizes: the value at a
/// coordinate vector `y` is `(bias + sum(coeffs[i] * y[dim_i])) / den`.
#[derive(Clone, Debug)]
pub struct SpecAffine {
    bias: i64,
    /// `(dimension index, integer coefficient)`, the surviving coordinate
    /// terms.
    coeffs: Vec<(usize, i64)>,
    /// Always positive; `1` for the common all-integer case.
    den: i64,
}

impl SpecAffine {
    /// Partially evaluate `a`: variables in `dims` stay symbolic (indexed
    /// by their position, i.e. the process-space dimension), every other
    /// variable must be bound in `env` and folds into the bias. Panics on
    /// an unbound non-coordinate variable, like [`Affine::eval_int`] would.
    pub fn compile(a: &Affine, dims: &[Var], env: &Env) -> SpecAffine {
        // One denominator clears every term: scale by the lcm.
        let mut den = a.constant_part().den();
        for &(_, q) in a.terms() {
            den = lcm(den, q.den());
        }
        let scale = |q: Rational| -> i64 {
            let v = q.num() as i128 * (den / q.den()) as i128;
            i64::try_from(v).expect("specialized coefficient overflow")
        };
        let mut bias = scale(a.constant_part());
        let mut coeffs = Vec::new();
        for &(v, q) in a.terms() {
            if let Some(d) = dims.iter().position(|&c| c == v) {
                coeffs.push((d, scale(q)));
            } else {
                let val = env
                    .get(v)
                    .unwrap_or_else(|| panic!("unbound symbolic variable {v:?} during evaluation"));
                bias = scale(q)
                    .checked_mul(val)
                    .and_then(|t| bias.checked_add(t))
                    .expect("specialized bias overflow");
            }
        }
        SpecAffine { bias, coeffs, den }
    }

    /// The scaled numerator at `y` (the value times `self.den`).
    #[inline]
    fn num_at(&self, y: &[i64]) -> i64 {
        let mut acc = self.bias;
        for &(d, c) in &self.coeffs {
            acc += c * y[d];
        }
        acc
    }

    /// Evaluate to an integer; panics on a non-integral value with the
    /// same message as [`Affine::eval_int`].
    #[inline]
    pub fn eval_int(&self, y: &[i64]) -> i64 {
        let n = self.num_at(y);
        if n % self.den != 0 {
            panic!(
                "expression evaluated to non-integer {}",
                Rational::new(n, self.den)
            );
        }
        n / self.den
    }
}

/// One inequality chain `e_0 <= e_1 <= ... <= e_k`, specialized.
#[derive(Clone, Debug)]
struct SpecChain {
    exprs: Vec<SpecAffine>,
}

impl SpecChain {
    #[inline]
    fn eval(&self, y: &[i64]) -> bool {
        // `a/p <= b/q  <=>  a*q <= b*p` for positive denominators; the
        // products stay within `i128` comfortably.
        self.exprs.windows(2).all(|w| {
            let (a, b) = (&w[0], &w[1]);
            a.num_at(y) as i128 * b.den as i128 <= b.num_at(y) as i128 * a.den as i128
        })
    }
}

/// A guard (conjunction of chains), specialized.
#[derive(Clone, Debug)]
pub struct SpecGuard {
    chains: Vec<SpecChain>,
}

impl SpecGuard {
    pub fn compile(g: &Guard, dims: &[Var], env: &Env) -> SpecGuard {
        SpecGuard {
            chains: g
                .chains()
                .iter()
                .map(|c| SpecChain {
                    exprs: c
                        .exprs()
                        .iter()
                        .map(|e| SpecAffine::compile(e, dims, env))
                        .collect(),
                })
                .collect(),
        }
    }

    #[inline]
    pub fn eval(&self, y: &[i64]) -> bool {
        self.chains.iter().all(|c| c.eval(y))
    }
}

/// A piecewise value with specialized guards. Clause order — and therefore
/// overlapping-guard resolution — matches the symbolic original.
#[derive(Clone, Debug)]
pub struct SpecPiecewise<T> {
    clauses: Vec<(SpecGuard, T)>,
}

impl<T> SpecPiecewise<T> {
    /// Specialize `pw`'s guards and map each clause value through `f`.
    pub fn compile<S>(
        pw: &Piecewise<S>,
        dims: &[Var],
        env: &Env,
        mut f: impl FnMut(&S) -> T,
    ) -> SpecPiecewise<T> {
        SpecPiecewise {
            clauses: pw
                .clauses()
                .iter()
                .map(|(g, v)| (SpecGuard::compile(g, dims, env), f(v)))
                .collect(),
        }
    }

    /// First clause whose guard holds at `y`; `None` is the null
    /// alternative.
    #[inline]
    pub fn select(&self, y: &[i64]) -> Option<&T> {
        self.clauses.iter().find(|(g, _)| g.eval(y)).map(|(_, v)| v)
    }
}

/// [`Piecewise<Affine>`] specialized to an integer-valued function of the
/// coordinate vector, with the null alternative evaluating to 0 (the
/// convention of `count_bound` and `stream_count_bound`).
pub type SpecCount = SpecPiecewise<SpecAffine>;

impl SpecCount {
    pub fn of(pw: &Piecewise<Affine>, dims: &[Var], env: &Env) -> SpecCount {
        SpecPiecewise::compile(pw, dims, env, |a| SpecAffine::compile(a, dims, env))
    }

    /// The selected clause's value at `y`, or 0.
    #[inline]
    pub fn at(&self, y: &[i64]) -> i64 {
        self.select(y).map_or(0, |a| a.eval_int(y))
    }
}

/// [`Piecewise<AffinePoint>`] specialized to a point-valued function of
/// the coordinate vector, with the null alternative evaluating to `None`
/// (the convention of `first_bound` and `stream_point_bound`).
pub type SpecPoint = SpecPiecewise<Vec<SpecAffine>>;

impl SpecPoint {
    pub fn of_points(pw: &Piecewise<AffinePoint>, dims: &[Var], env: &Env) -> SpecPoint {
        SpecPiecewise::compile(pw, dims, env, |p| {
            p.iter()
                .map(|a| SpecAffine::compile(a, dims, env))
                .collect()
        })
    }

    /// The selected clause's point at `y`, or `None` (a null process /
    /// empty pipe).
    #[inline]
    pub fn point_at(&self, y: &[i64]) -> Option<Vec<i64>> {
        self.select(y)
            .map(|p| p.iter().map(|a| a.eval_int(y)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guard::Chain;
    use crate::symbols::VarTable;

    #[test]
    fn specialized_forms_agree_with_symbolic_evaluation() {
        let mut t = VarTable::new();
        let n = t.size("n");
        let col = t.coord(0);
        let row = t.coord(1);
        let dims = [col, row];
        // count = if 1 <= col <= n  /\  row <= (col + n)/2 then n - row
        //         [] col = 0 then col/2 + 1 fi
        let half = (Affine::var(col) + Affine::var(n)).scale(Rational::new(1, 2));
        let pw = Piecewise::new(vec![
            (
                Guard::new(vec![
                    Chain::between(Affine::int(1), Affine::var(col), Affine::var(n)),
                    Chain::le(Affine::var(row), half),
                ]),
                Affine::var(n) - Affine::var(row),
            ),
            (
                Guard::new(vec![Chain::between(
                    Affine::int(0),
                    Affine::var(col),
                    Affine::int(0),
                )]),
                Affine::var(col).scale(Rational::new(1, 2)) + Affine::int(1),
            ),
        ]);
        let mut env = Env::new();
        env.bind(n, 5);
        let spec = SpecCount::of(&pw, &dims, &env);
        let mut env_y = env.clone();
        for c in -1..=6 {
            for r in -1..=6 {
                env_y.bind(col, c);
                env_y.bind(row, r);
                let want = pw.select(&env_y).map_or(0, |a| a.eval_int(&env_y));
                assert_eq!(spec.at(&[c, r]), want, "col={c} row={r}");
            }
        }
    }

    #[test]
    fn size_parametric_compilation_agrees_with_size_bound_compilation() {
        // The two-phase elaborator compiles over the *extended* dimension
        // vector (coordinates ++ sizes, empty environment); the per-size
        // specializer folds the sizes into the bias. Both must answer
        // identically at every point — same clause, same integer.
        let mut t = VarTable::new();
        let n = t.size("n");
        let col = t.coord(0);
        let dims_coord = [col];
        let dims_ext = [col, n];
        let half = (Affine::var(col) + Affine::var(n)).scale(Rational::new(1, 2));
        let pw = Piecewise::new(vec![
            (
                Guard::new(vec![Chain::between(
                    Affine::int(0),
                    Affine::var(col),
                    Affine::var(n),
                )]),
                half,
            ),
            (Guard::always(), Affine::var(n) - Affine::var(col)),
        ]);
        let sym = SpecCount::of(&pw, &dims_ext, &Env::new());
        for nv in 0..=7i64 {
            let mut env = Env::new();
            env.bind(n, nv);
            let bound = SpecCount::of(&pw, &dims_coord, &env);
            for c in -2..=9i64 {
                if (c + nv) % 2 != 0 && c >= 0 && c <= nv {
                    continue; // non-integral halves panic identically; skip
                }
                assert_eq!(sym.at(&[c, nv]), bound.at(&[c]), "col={c} n={nv}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-integer")]
    fn non_integral_values_still_panic() {
        let mut t = VarTable::new();
        let col = t.coord(0);
        let pw = Piecewise::total(Affine::var(col).scale(Rational::new(1, 2)));
        let spec = SpecCount::of(&pw, &[col], &Env::new());
        spec.at(&[3]);
    }
}
