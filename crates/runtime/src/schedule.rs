//! Schedule policies: pluggable interleaving decisions for the
//! cooperative engine, and seeded yield-point injection for the OS-thread
//! executors.
//!
//! Generated systolic programs must compute the same result under *any*
//! asynchronous interleaving that honours channel rendezvous (the Sec. 4
//! schedule-independence argument). The cooperative scheduler normally
//! picks one canonical interleaving — ascending channel order within a
//! round, ascending process order at the round boundary (see
//! `docs/scheduler.md`). A [`SchedulePolicy`] lets a test harness pick
//! *other* legal interleavings deterministically: the engine hands the
//! policy each round's candidate lists and fires in whatever order the
//! policy returns. The `systolic-sim` crate builds its adversarial
//! schedule exploration on this hook; see `docs/testing.md`.
//!
//! Two invariants keep the hook zero-cost and safe:
//!
//! - **No policy, no cost.** `Network` holds an `Option<Box<dyn
//!   SchedulePolicy>>` that is `None` by default; the round path tests
//!   one discriminant and otherwise runs the historical code unchanged.
//!   [`FifoPolicy`] (the explicit identity policy) is pinned bit-identical
//!   to the unhooked engine by `tests/determinism.rs`.
//! - **Permutations only, deferral bounded.** A policy may reorder a
//!   round's candidates and may *defer* some of them to the next round
//!   (modelling bounded rendezvous delays), but it must not invent or
//!   drop channels, and it must not defer forever — the engine converts
//!   unbounded starvation into a deadlock report after
//!   [`STARVATION_LIMIT`] consecutive zero-transfer rounds.

use crate::process::ChanId;

/// How many consecutive rounds a policy may defer *every* enabled
/// rendezvous before the engine gives up and reports the deadlock it is
/// being starved into. Generous: real delay faults defer single channels
/// for a handful of rounds.
pub const STARVATION_LIMIT: u64 = 4096;

/// A schedule decision procedure for the cooperative engine. Attached
/// with `Network::set_schedule_policy`; called once per round at the two
/// points where the engine's canonical order is otherwise arbitrary.
///
/// Both hooks receive their list sorted ascending (the canonical FIFO
/// order), so a policy is a pure function of its inputs and the round
/// number — replaying the same policy against the same network is
/// deterministic by construction.
pub trait SchedulePolicy: Send {
    /// Decide this round's firing order. `fire` holds the channels whose
    /// rendezvous are enabled at the start of the round, sorted
    /// ascending; every channel left in `fire` completes this round, in
    /// the order given. Channels moved into `defer` stay parked and
    /// re-enter the candidate list next round (a bounded rendezvous
    /// delay). The policy must neither add nor drop channels — the union
    /// of `fire` and `defer` must be a permutation of the input.
    fn schedule_round(&mut self, round: u64, fire: &mut Vec<ChanId>, defer: &mut Vec<ChanId>);

    /// Decide the order in which processes whose communication sets
    /// completed this round are re-stepped. `ready` arrives sorted
    /// ascending; the policy may permute it freely (it must remain a
    /// permutation).
    fn order_ready(&mut self, round: u64, ready: &mut Vec<usize>) {
        let _ = (round, ready);
    }

    /// A short human-readable name for reports and schedule files.
    fn label(&self) -> String {
        "policy".into()
    }

    /// Whether this policy is observationally the canonical FIFO order
    /// (fires everything, defers nothing, never permutes). The batching
    /// fast path (`crate::batch`) only engages when this returns `true` —
    /// macro-stepping collapses the round structure the policy would
    /// otherwise get to reorder, so any policy that actually exercises its
    /// hooks must keep the unbatched engine. Defaults to `false`; only
    /// identity policies should override it.
    fn is_fifo(&self) -> bool {
        false
    }
}

/// The explicit identity policy: fires channels in ascending order,
/// re-steps processes in ascending order, defers nothing — bit-identical
/// to running with no policy attached (pinned by `tests/determinism.rs`).
#[derive(Clone, Copy, Debug, Default)]
pub struct FifoPolicy;

impl SchedulePolicy for FifoPolicy {
    fn schedule_round(&mut self, _round: u64, _fire: &mut Vec<ChanId>, _defer: &mut Vec<ChanId>) {}

    fn label(&self) -> String {
        "fifo".into()
    }

    fn is_fifo(&self) -> bool {
        true
    }
}

/// A small permuted-congruential generator (PCG-XSH-RR 64/32,
/// O'Neill 2014). The schedule harness must be reproducible from a bare
/// seed with no `std`/external RNG dependency, and this is the standard
/// tiny generator for that job: 128 bits of state, excellent equidistribution
/// for test-input purposes, and a two-line advance.
#[derive(Clone, Debug)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

impl Pcg32 {
    /// Seed the generator; `stream` selects one of 2^63 independent
    /// sequences (used to decorrelate per-process/per-worker streams
    /// derived from one run seed).
    pub fn new(seed: u64, stream: u64) -> Pcg32 {
        let mut rng = Pcg32 {
            state: 0,
            inc: (stream << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Uniform-ish value in `[0, n)`. Modulo bias is irrelevant at
    /// schedule-exploration scales.
    pub fn below(&mut self, n: u32) -> u32 {
        debug_assert!(n > 0);
        self.next_u32() % n
    }

    /// Fisher–Yates shuffle driven by this generator.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u32 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

/// Seeded yield-point injection for the OS-thread executors
/// ([`crate::threaded`], [`crate::partition`]): each worker surrenders
/// its timeslice (`std::thread::yield_now`) before a step with
/// probability `yield_per_1024 / 1024`, driven by a per-worker [`Pcg32`]
/// stream derived from `seed`. The point is to perturb the OS schedule
/// reproducibly-in-distribution and check that results are interleaving
/// independent; it never changes rendezvous semantics.
#[derive(Clone, Copy, Debug)]
pub struct YieldPlan {
    pub seed: u64,
    /// Yield probability in 1024ths (0 = never, 1024 = before every step).
    pub yield_per_1024: u32,
}

impl YieldPlan {
    /// The decision stream for one worker (`scope` = process id for the
    /// threaded executor, group id for the partitioned one).
    pub fn injector(&self, scope: u64) -> YieldInjector {
        YieldInjector {
            rng: Pcg32::new(self.seed, scope),
            yield_per_1024: self.yield_per_1024.min(1024),
        }
    }
}

/// One worker's yield-decision stream (see [`YieldPlan`]).
pub struct YieldInjector {
    rng: Pcg32,
    yield_per_1024: u32,
}

impl YieldInjector {
    /// Roll the dice; on a hit, surrender the timeslice.
    pub fn maybe_yield(&mut self) {
        if self.rng.below(1024) < self.yield_per_1024 {
            std::thread::yield_now();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcg_is_deterministic_and_stream_separated() {
        let a: Vec<u32> = {
            let mut r = Pcg32::new(42, 1);
            (0..8).map(|_| r.next_u32()).collect()
        };
        let b: Vec<u32> = {
            let mut r = Pcg32::new(42, 1);
            (0..8).map(|_| r.next_u32()).collect()
        };
        assert_eq!(a, b, "same seed+stream, same sequence");
        let c: Vec<u32> = {
            let mut r = Pcg32::new(42, 2);
            (0..8).map(|_| r.next_u32()).collect()
        };
        assert_ne!(a, c, "different streams differ");
    }

    #[test]
    fn pcg_matches_reference_vector() {
        // PCG-XSH-RR 64/32 with seed=42, stream=54: the reference
        // `pcg32_srandom_r(42, 54)` sequence from the PCG paper's demo.
        let mut r = Pcg32::new(42, 54);
        let got: Vec<u32> = (0..6).map(|_| r.next_u32()).collect();
        assert_eq!(
            got,
            vec![
                0xa15c_02b7,
                0x7b47_f409,
                0xba1d_3330,
                0x83d2_f293,
                0xbfa4_784b,
                0xcbed_606e
            ]
        );
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Pcg32::new(7, 0);
        let mut xs: Vec<u32> = (0..40).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..40).collect::<Vec<_>>());
        assert_ne!(xs, sorted, "40 elements almost surely move");
    }

    #[test]
    fn fifo_policy_is_the_identity() {
        let mut p = FifoPolicy;
        let mut fire = vec![0usize, 3, 5];
        let mut defer = Vec::new();
        p.schedule_round(9, &mut fire, &mut defer);
        assert_eq!(fire, vec![0, 3, 5]);
        assert!(defer.is_empty());
        let mut ready = vec![1usize, 2];
        p.order_ready(9, &mut ready);
        assert_eq!(ready, vec![1, 2]);
        assert_eq!(p.label(), "fifo");
        assert!(p.is_fifo(), "FIFO identity must admit batching");
    }

    #[test]
    fn yield_injector_is_safe_at_both_extremes() {
        let mut never = YieldPlan {
            seed: 1,
            yield_per_1024: 0,
        }
        .injector(0);
        let mut always = YieldPlan {
            seed: 1,
            yield_per_1024: 1024,
        }
        .injector(0);
        for _ in 0..64 {
            never.maybe_yield();
            always.maybe_yield();
        }
    }
}
