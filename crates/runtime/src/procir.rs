//! ProcIR: the flat process bytecode — the single post-elaboration
//! representation of every virtual process.
//!
//! The paper's key structural fact is that generated systolic programs
//! have no data-dependent control flow: every process is a statically
//! determined trace of communications and computations (DESIGN.md §3).
//! ProcIR encodes that trace directly as a compact op list per process,
//! stored in one arena ([`ProcIrModule`]) indexed by [`ProcId`], with
//! channel endpoints already resolved to dense [`ChanId`]s at lowering
//! time. One generic virtual machine ([`ProcVm`]) interprets the ops as
//! a [`Process`] coroutine, so the cooperative, threaded, and
//! partitioned executors all drive the same semantics — there is no
//! per-executor (or per-role) process behaviour anywhere else.
//!
//! The op set covers the canonical program shape of Appendix C–E
//! (`load` / soak / repeater / drain / `recover`) plus the host fringe:
//!
//! - [`ProcOp::Emit`] — host injection: send the next scripted value;
//! - [`ProcOp::Collect`] — host extraction: receive into the output
//!   buffer;
//! - [`ProcOp::Keep`] — the keep of `load`: receive into a local;
//! - [`ProcOp::Pass`] — a bounded repetition (`Rep`) of one
//!   receive-forward cycle: `pass s, n`;
//! - [`ProcOp::Eject`] — the eject of `recover`: send a local;
//! - [`ProcOp::Compute`] — the repeater: `count` iterations of
//!   par-receive (`ParComm`), basic-statement execution, par-send.
//!
//! A module is immutable after lowering and carries no per-run state, so
//! an elaborated network is a cacheable, shareable artifact
//! (`Arc<ProcIrModule>`): [`ProcIrModule::instantiate`] builds fresh VMs
//! and output buffers for each run. See `docs/process-ir.md` for the
//! lowering rules and the VM's invariants.

use crate::batch::Ring;
use crate::coop::RunStats;
use crate::process::{sink_buffer, ChanId, CommReq, Process, SinkBuffer, Value};
use crate::record::{OpKind, Phase, SharedRecorder};
use std::sync::Arc;

/// Index of a process in its module's arena.
pub type ProcId = usize;

/// Executes the basic statement at one index point. The compiler side
/// supplies the implementation (the runtime crate knows nothing about
/// expression trees); closures work for tests.
pub trait ComputeBody: Send + Sync {
    fn execute(&self, locals: &mut [Value], x: &[i64]);
}

impl<F> ComputeBody for F
where
    F: Fn(&mut [Value], &[i64]) + Send + Sync,
{
    fn execute(&self, locals: &mut [Value], x: &[i64]) {
        self(locals, x)
    }
}

/// One op of the flat process bytecode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProcOp {
    /// Send the next value of the process's data segment on `chan`
    /// (host-side injection of a stream partition, Sec. 4.2).
    Emit { chan: ChanId },
    /// Receive one value from `chan` into the process's output buffer
    /// (host-side extraction, Sec. 4.2).
    Collect { chan: ChanId },
    /// Receive one value from `chan` into local `slot` (the keep of
    /// `load`).
    Keep { chan: ChanId, slot: u32 },
    /// `n` receive(`inp`) → forward(`out`) cycles: `pass s, n`. This is
    /// the bounded `Rep` counter of the op set — it covers soak, drain,
    /// the load/recover passes, internal (fractional-flow) buffers, and
    /// external buffers alike. The count is `u64`: per-channel traffic
    /// sums feed the batch-width analysis (`crate::batch`), which must
    /// not overflow at large problem sizes.
    Pass { inp: ChanId, out: ChanId, n: u64 },
    /// Send local `slot` on `chan` (the eject of `recover`).
    Eject { chan: ChanId, slot: u32 },
    /// The repeater: `count` iterations of par-receive over the moving
    /// links, basic-statement execution at the current index point, and
    /// par-send (the `ParComm` pair of the paper's `par` construct).
    /// Moving links, first point, and increment come from the process
    /// record. `u64` for the same traffic-arithmetic reason as
    /// [`ProcOp::Pass`].
    Compute { count: u64 },
}

/// One moving stream's channel pair at a computation process, with the
/// local slot its values flow through.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MovingLink {
    pub slot: u32,
    pub inp: ChanId,
    pub out: ChanId,
}

/// One process's record in the arena: ranges into the module-wide op,
/// data, moving-link, and point tables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProcRecord {
    /// Diagnostic label (deadlock reports, codegen comments).
    pub label: String,
    /// Op range in [`ProcIrModule::ops`].
    pub ops: (u32, u32),
    /// Data range in [`ProcIrModule::data`] ([`ProcOp::Emit`] scripts).
    pub data: (u32, u32),
    /// Moving-link range in [`ProcIrModule::moving`].
    pub moving: (u32, u32),
    /// Range in [`ProcIrModule::points`] holding `first` then
    /// `increment` (each `r` values) for [`ProcOp::Compute`].
    pub repeater: (u32, u32),
    /// Number of stream locals.
    pub n_locals: u32,
    /// Output-buffer index for [`ProcOp::Collect`], if this process
    /// extracts values.
    pub output: Option<u32>,
}

/// The arena of lowered processes: the single post-elaboration artifact
/// every executor and code generator consumes. Immutable and free of
/// per-run state — share it with `Arc` and [`ProcIrModule::instantiate`]
/// per run.
pub struct ProcIrModule {
    pub ops: Vec<ProcOp>,
    pub data: Vec<Value>,
    pub moving: Vec<MovingLink>,
    pub points: Vec<i64>,
    pub procs: Vec<ProcRecord>,
    /// Channel ids are dense: every `ChanId` in `ops`/`moving` is
    /// `< n_chans`.
    pub n_chans: usize,
    /// Number of output buffers [`ProcIrModule::instantiate`] creates.
    pub n_outputs: usize,
    /// The basic statement (identical at every computation process);
    /// `None` for pure transport networks.
    pub body: Option<Arc<dyn ComputeBody>>,
    /// The basic statement compiled to the typed kernel tape
    /// (`crate::kernel`), when the compiler side managed the lowering;
    /// behaviourally identical to `body`, shared like it.
    pub kernel: Option<Arc<crate::kernel::Kernel>>,
    /// Why no kernel was compiled (kernel reports surface it as the
    /// scalar-fallback reason); `None` when `kernel` is present or the
    /// builder recorded nothing.
    pub kernel_reject: Option<String>,
}

impl ProcIrModule {
    /// Structural equality over every arena table — everything except the
    /// opaque [`ComputeBody`] and the derived kernel (a trait object and
    /// its compiled form; two modules elaborated from the same plan share
    /// their behaviour by construction). This is the
    /// bit-identity relation the two-phase elaboration differential suite
    /// pins: same ops, data scripts, moving links, repeater points,
    /// process records, channel density, and output count.
    pub fn same_structure(&self, other: &ProcIrModule) -> bool {
        self.ops == other.ops
            && self.data == other.data
            && self.moving == other.moving
            && self.points == other.points
            && self.procs == other.procs
            && self.n_chans == other.n_chans
            && self.n_outputs == other.n_outputs
    }

    pub fn ops_of(&self, pid: ProcId) -> &[ProcOp] {
        let (a, b) = self.procs[pid].ops;
        &self.ops[a as usize..b as usize]
    }

    pub fn data_of(&self, pid: ProcId) -> &[Value] {
        let (a, b) = self.procs[pid].data;
        &self.data[a as usize..b as usize]
    }

    pub fn moving_of(&self, pid: ProcId) -> &[MovingLink] {
        let (a, b) = self.procs[pid].moving;
        &self.moving[a as usize..b as usize]
    }

    /// The repeater's first index point (empty when the process has no
    /// [`ProcOp::Compute`]).
    pub fn first_of(&self, pid: ProcId) -> &[i64] {
        let (a, b) = self.procs[pid].repeater;
        let half = (b - a) / 2;
        &self.points[a as usize..(a + half) as usize]
    }

    /// The repeater's per-iteration index increment.
    pub fn increment_of(&self, pid: ProcId) -> &[i64] {
        let (a, b) = self.procs[pid].repeater;
        let half = (b - a) / 2;
        &self.points[(a + half) as usize..b as usize]
    }

    pub fn label_of(&self, pid: ProcId) -> &str {
        &self.procs[pid].label
    }

    /// Build fresh VMs and output buffers for one run.
    pub fn instantiate(self: &Arc<Self>) -> Instance {
        self.instantiate_recorded(&[])
    }

    /// Build bare VMs (not boxed [`Process`] trait objects) plus output
    /// buffers for one run. The batched executors drive
    /// [`ProcVm::macro_step`] directly and therefore need the concrete
    /// type; recorders are never attached on that path (the batching
    /// gate falls back to the rendezvous engines when any are).
    pub fn instantiate_vms(self: &Arc<Self>) -> (Vec<ProcVm>, Vec<SinkBuffer>) {
        let outputs: Vec<SinkBuffer> = (0..self.n_outputs).map(|_| sink_buffer()).collect();
        let vms = (0..self.procs.len())
            .map(|pid| {
                let out = self.procs[pid].output.map(|o| outputs[o as usize].clone());
                ProcVm::new(self.clone(), pid, out)
            })
            .collect();
        (vms, outputs)
    }

    /// [`ProcIrModule::instantiate`], with every VM reporting its retired
    /// op effects to the given recorders (see `crate::record`). With an
    /// empty slice this is exactly `instantiate` — the VMs carry no
    /// recording state and pay no per-step cost.
    pub fn instantiate_recorded(self: &Arc<Self>, recorders: &[SharedRecorder]) -> Instance {
        let outputs: Vec<SinkBuffer> = (0..self.n_outputs).map(|_| sink_buffer()).collect();
        let procs = (0..self.procs.len())
            .map(|pid| {
                let out = self.procs[pid].output.map(|o| outputs[o as usize].clone());
                Box::new(ProcVm::with_recorders(
                    self.clone(),
                    pid,
                    out,
                    recorders.to_vec(),
                )) as Box<dyn Process>
            })
            .collect();
        Instance { procs, outputs }
    }
}

/// One run's worth of VMs plus the output buffers their
/// [`ProcOp::Collect`] ops fill (indexed by the output ids the builder
/// assigned).
pub struct Instance {
    pub procs: Vec<Box<dyn Process>>,
    pub outputs: Vec<SinkBuffer>,
}

/// Builds a [`ProcIrModule`]: open a process with [`ProcIrBuilder::begin`],
/// push ops, close it with [`ProcIrBuilder::finish`]. Convenience
/// constructors cover the host fringe and relay shapes.
#[derive(Default)]
pub struct ProcIrBuilder {
    ops: Vec<ProcOp>,
    data: Vec<Value>,
    moving: Vec<MovingLink>,
    points: Vec<i64>,
    procs: Vec<ProcRecord>,
    n_outputs: u32,
    open: Option<ProcRecord>,
    kernel: Option<Arc<crate::kernel::Kernel>>,
    kernel_reject: Option<String>,
}

impl ProcIrBuilder {
    pub fn new() -> ProcIrBuilder {
        ProcIrBuilder::default()
    }

    /// Open a new process. Ops pushed until [`ProcIrBuilder::finish`]
    /// belong to it.
    pub fn begin(&mut self, label: impl Into<String>) {
        assert!(self.open.is_none(), "finish the previous process first");
        let at = self.ops.len() as u32;
        self.open = Some(ProcRecord {
            label: label.into(),
            ops: (at, at),
            data: (self.data.len() as u32, self.data.len() as u32),
            moving: (self.moving.len() as u32, self.moving.len() as u32),
            repeater: (self.points.len() as u32, self.points.len() as u32),
            n_locals: 0,
            output: None,
        });
    }

    /// Append an op to the open process.
    pub fn op(&mut self, op: ProcOp) {
        assert!(self.open.is_some(), "no open process");
        if let ProcOp::Keep { slot, .. } | ProcOp::Eject { slot, .. } = op {
            let rec = self.open.as_mut().unwrap();
            rec.n_locals = rec.n_locals.max(slot + 1);
        }
        self.ops.push(op);
    }

    /// Append an [`ProcOp::Emit`] with its scripted value.
    pub fn emit(&mut self, chan: ChanId, value: Value) {
        self.op(ProcOp::Emit { chan });
        self.data.push(value);
    }

    /// Append a [`ProcOp::Collect`], allocating the process's output
    /// buffer on first use. Returns the output index.
    pub fn collect(&mut self, chan: ChanId) -> u32 {
        self.op(ProcOp::Collect { chan });
        let rec = self.open.as_mut().unwrap();
        let id = *rec.output.get_or_insert_with(|| {
            let id = self.n_outputs;
            self.n_outputs += 1;
            id
        });
        id
    }

    /// Set the open process's repeater metadata: moving links, first
    /// index point, per-iteration increment, and local count (streams of
    /// the source program).
    pub fn repeater(
        &mut self,
        moving: &[MovingLink],
        first: &[i64],
        increment: &[i64],
        n_locals: u32,
    ) {
        assert_eq!(first.len(), increment.len(), "point ranks differ");
        let rec = self.open.as_mut().expect("no open process");
        rec.moving = (
            self.moving.len() as u32,
            (self.moving.len() + moving.len()) as u32,
        );
        self.moving.extend_from_slice(moving);
        rec.repeater = (
            self.points.len() as u32,
            (self.points.len() + 2 * first.len()) as u32,
        );
        self.points.extend_from_slice(first);
        self.points.extend_from_slice(increment);
        rec.n_locals = rec.n_locals.max(n_locals);
        for mc in moving {
            rec.n_locals = rec.n_locals.max(mc.slot + 1);
        }
    }

    /// Close the open process and return its id.
    pub fn finish(&mut self) -> ProcId {
        let mut rec = self.open.take().expect("no open process");
        rec.ops.1 = self.ops.len() as u32;
        rec.data.1 = self.data.len() as u32;
        self.procs.push(rec);
        self.procs.len() - 1
    }

    /// An input process: sends `values` on one channel, in order.
    pub fn source(&mut self, chan: ChanId, values: &[Value], label: impl Into<String>) -> ProcId {
        self.begin(label);
        for &v in values {
            self.emit(chan, v);
        }
        self.finish()
    }

    /// The merged host input: a script of (channel, value) sends
    /// (Sec. 4.2's "merged into fewer processes").
    pub fn scripted_source(
        &mut self,
        sends: &[(ChanId, Value)],
        label: impl Into<String>,
    ) -> ProcId {
        self.begin(label);
        for &(chan, v) in sends {
            self.emit(chan, v);
        }
        self.finish()
    }

    /// An output process: receives `count` values from one channel into
    /// a fresh output buffer. Returns (process, output index).
    pub fn sink(&mut self, chan: ChanId, count: usize, label: impl Into<String>) -> (ProcId, u32) {
        self.begin(label);
        let mut out = 0;
        for _ in 0..count {
            out = self.collect(chan);
        }
        if count == 0 {
            // Zero-length pipes still bind an (empty) output buffer.
            let rec = self.open.as_mut().unwrap();
            out = self.n_outputs;
            rec.output = Some(out);
            self.n_outputs += 1;
        }
        (self.finish(), out)
    }

    /// The merged host output: receives from `chans` in order into one
    /// buffer.
    pub fn scripted_sink(&mut self, chans: &[ChanId], label: impl Into<String>) -> (ProcId, u32) {
        self.begin(label);
        let mut out = 0;
        for &chan in chans {
            out = self.collect(chan);
        }
        if chans.is_empty() {
            let rec = self.open.as_mut().unwrap();
            out = self.n_outputs;
            rec.output = Some(out);
            self.n_outputs += 1;
        }
        (self.finish(), out)
    }

    /// A buffer process: `n` receive-forward cycles (`pass s, n` — the
    /// internal buffers of Sec. 7.6 and the external buffers of
    /// `PS \ CS`).
    pub fn relay(
        &mut self,
        inp: ChanId,
        out: ChanId,
        n: usize,
        label: impl Into<String>,
    ) -> ProcId {
        self.begin(label);
        self.op(ProcOp::Pass {
            inp,
            out,
            n: n as u64,
        });
        self.finish()
    }

    /// A relay forwarding consecutive *segments*, each with its own
    /// channel pair and count (the split-propagation escorts). Folds the
    /// former `RelayProc`/`SegmentRelay` pair into one lowering: a
    /// single-segment call is exactly [`ProcIrBuilder::relay`].
    pub fn segment_relay(
        &mut self,
        segments: &[(ChanId, ChanId, usize)],
        label: impl Into<String>,
    ) -> ProcId {
        self.begin(label);
        for &(inp, out, n) in segments {
            if n == 0 {
                continue;
            }
            self.op(ProcOp::Pass {
                inp,
                out,
                n: n as u64,
            });
        }
        self.finish()
    }

    /// Attach the compiled kernel form of the basic statement (or the
    /// reason the lowering declined) before sealing. Optional: modules
    /// built without one simply never take the kernel path.
    pub fn set_kernel(
        &mut self,
        kernel: Option<Arc<crate::kernel::Kernel>>,
        reject: Option<String>,
    ) {
        self.kernel = kernel;
        self.kernel_reject = reject;
    }

    /// Seal the module. Channel density (`n_chans`) is derived from the
    /// ops and moving links.
    pub fn build(self, body: Option<Arc<dyn ComputeBody>>) -> Arc<ProcIrModule> {
        assert!(self.open.is_none(), "unfinished process at build");
        let mut n_chans = 0usize;
        let mut see = |c: ChanId| n_chans = n_chans.max(c + 1);
        for op in &self.ops {
            match *op {
                ProcOp::Emit { chan }
                | ProcOp::Collect { chan }
                | ProcOp::Keep { chan, .. }
                | ProcOp::Eject { chan, .. } => see(chan),
                ProcOp::Pass { inp, out, .. } => {
                    see(inp);
                    see(out);
                }
                ProcOp::Compute { .. } => {}
            }
        }
        for mc in &self.moving {
            see(mc.inp);
            see(mc.out);
        }
        Arc::new(ProcIrModule {
            ops: self.ops,
            data: self.data,
            moving: self.moving,
            points: self.points,
            procs: self.procs,
            n_chans,
            n_outputs: self.n_outputs as usize,
            body,
            kernel: self.kernel,
            kernel_reject: self.kernel_reject,
        })
    }
}

/// What the previously issued communication set was, so the next step
/// can absorb its results.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Pending {
    None,
    /// A send completed ([`ProcOp::Emit`] / [`ProcOp::Eject`]).
    Sent,
    /// A [`ProcOp::Keep`] receive; the value lands in the local.
    Keep {
        slot: u32,
    },
    /// A [`ProcOp::Collect`] receive; the value lands in the output
    /// buffer.
    CollectRecv,
    /// A [`ProcOp::Pass`] cycle's receive; the value must be forwarded
    /// next.
    PassRecv {
        out: ChanId,
    },
    /// A pass cycle's forward completed.
    PassSent,
    /// The repeater's par-receive; values land in moving-link order.
    ComputeRecv,
    /// The repeater's par-send completed.
    ComputeSent,
}

/// Where a macro-stepped VM ([`ProcVm::macro_step`]) is parked when a
/// ring is empty/full mid-op. Par-sets complete *piecewise*: the VM pops
/// or pushes whichever moving links have room and remembers the rest in
/// a bitmask, mirroring how the rendezvous engine matches each channel
/// of a `par` set independently — completing them atomically instead
/// would deadlock bidirectional-stream designs (e.g. matmul E.2, where
/// neighbouring cells exchange `a` rightward and `b` leftward).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MacroState {
    /// At an op boundary (or mid-`Pass` before its next pop).
    Ready,
    /// A `Pass` cycle popped its value but found the output ring full.
    PassHeld(Value),
    /// Mid par-receive; bit `i` set ⇔ moving link `i` already received.
    ComputeRecv { mask: u64 },
    /// Mid par-send; bit `i` set ⇔ moving link `i` already sent.
    ComputeSend { mask: u64 },
}

/// The generic process VM: interprets one process's ops as a [`Process`]
/// coroutine. All state is a handful of scalars plus the `locals`/`x`
/// vectors sized at construction, so steady-state stepping performs no
/// heap allocation (the scheduler's reuse invariant, `docs/scheduler.md`).
pub struct ProcVm {
    module: Arc<ProcIrModule>,
    pid: ProcId,
    /// Program counter, absolute into `module.ops`.
    pc: u32,
    /// Data cursor, absolute into `module.data`.
    cursor: u32,
    /// Remaining cycles of the current [`ProcOp::Pass`]; `-1` when not
    /// inside one.
    pass_left: i64,
    pending: Pending,
    /// One local per stream of the source program.
    locals: Vec<Value>,
    /// Current index point of the repeater.
    x: Vec<i64>,
    /// Current repeater iteration.
    t: i64,
    /// Output buffer for [`ProcOp::Collect`].
    out: Option<SinkBuffer>,
    /// Observability sinks for retired op effects (empty when off — the
    /// only per-step cost is then one `is_empty` branch per effect).
    recorders: Vec<SharedRecorder>,
    /// Absolute pc of this process's [`ProcOp::Compute`], for the
    /// soak-side / drain-side phase classification of `Pass` cycles.
    /// Only resolved when recorders are attached.
    compute_pc: Option<u32>,
    /// Parked position of [`ProcVm::macro_step`] (unused by `step_into`).
    macro_state: MacroState,
    /// The terminal empty step has been accounted (macro path only).
    macro_done: bool,
}

impl ProcVm {
    pub fn new(module: Arc<ProcIrModule>, pid: ProcId, out: Option<SinkBuffer>) -> ProcVm {
        ProcVm::with_recorders(module, pid, out, Vec::new())
    }

    /// A VM reporting retired op effects ([`crate::record::Recorder::vm_op`])
    /// to the given recorders.
    pub fn with_recorders(
        module: Arc<ProcIrModule>,
        pid: ProcId,
        out: Option<SinkBuffer>,
        recorders: Vec<SharedRecorder>,
    ) -> ProcVm {
        let rec = &module.procs[pid];
        let (pc, cursor) = (rec.ops.0, rec.data.0);
        let locals = vec![0; rec.n_locals as usize];
        let x = module.first_of(pid).to_vec();
        let compute_pc = if recorders.is_empty() {
            None
        } else {
            (rec.ops.0..rec.ops.1)
                .find(|&p| matches!(module.ops[p as usize], ProcOp::Compute { .. }))
        };
        ProcVm {
            module,
            pid,
            pc,
            cursor,
            pass_left: -1,
            pending: Pending::None,
            locals,
            x,
            t: 0,
            out,
            recorders,
            compute_pc,
            macro_state: MacroState::Ready,
            macro_done: false,
        }
    }

    /// Report one retired op effect to every attached recorder.
    #[inline]
    fn record_op(&self, kind: OpKind, phase: Phase) {
        if self.recorders.is_empty() {
            return;
        }
        for r in &self.recorders {
            r.lock().vm_op(self.pid, kind, phase);
        }
    }

    /// Which canonical-program phase the current `Pass` cycle belongs
    /// to: soak side before the repeater, drain side after it, pure
    /// transport when the process has no repeater at all.
    fn pass_phase(&self) -> Phase {
        match self.compute_pc {
            None => Phase::Transport,
            Some(cpc) if self.pc < cpc => Phase::Soak,
            Some(_) => Phase::Drain,
        }
    }

    /// The batched executors' superinstruction path: retire as many ops
    /// as the per-channel [`Ring`]s allow without returning to the
    /// engine (see `crate::batch` and `docs/scheduler.md`). Fused paths
    /// drain whole `Pass` repetitions and whole `Compute`
    /// receive/body/send cycles in a tight loop; values move through the
    /// rings instead of rendezvous sets.
    ///
    /// `stats.steps` and `stats.messages` account the *logical*
    /// communication sets and transfers exactly as the rendezvous
    /// engines would (steps on each completed set plus one terminal
    /// empty step; one message per value transferred, counted at the
    /// push), so batched runs stay stat-comparable. Every successful
    /// ring push/pop also bumps `*moved` — the engines' progress signal
    /// for deadlock detection.
    ///
    /// Returns `true` once the process has retired its terminal step;
    /// further calls are no-ops that return `true` again. Must not be
    /// mixed with `step_into` on the same VM, and assumes no recorders
    /// are attached — the batching gate guarantees both.
    /// Ring storage is generic so the same superinstruction path serves
    /// both the lock-protected `Vec<Ring>` of the batched executors and
    /// the shared channel slab of the wavefront executor
    /// (`crate::wavefront`), whose chunks hold provably disjoint ring
    /// sets. Only plain `rings[chan]` indexing is used.
    pub fn macro_step<R>(&mut self, rings: &mut R, stats: &mut RunStats, moved: &mut u64) -> bool
    where
        R: ?Sized + std::ops::IndexMut<usize, Output = Ring>,
    {
        self.macro_step_impl(rings, stats, moved, false)
    }

    /// [`ProcVm::macro_step`], stopping at the kernel hand-off point:
    /// the moment the VM reaches a [`ProcOp::Compute`] with moving links
    /// at a fresh iteration boundary ([`MacroState::Ready`]), it returns
    /// `false` *without* entering the compute loop, leaving the batch
    /// executor (`crate::kernel`) to retire the iterations. Everything
    /// before and after the repeater — and any piecewise-parked par-set
    /// — retires with ordinary accounting. [`ProcVm::kernel_point`]
    /// distinguishes "parked for the kernel" from "blocked on a ring".
    pub(crate) fn macro_step_to_compute<R>(
        &mut self,
        rings: &mut R,
        stats: &mut RunStats,
        moved: &mut u64,
    ) -> bool
    where
        R: ?Sized + std::ops::IndexMut<usize, Output = Ring>,
    {
        self.macro_step_impl(rings, stats, moved, true)
    }

    fn macro_step_impl<R>(
        &mut self,
        rings: &mut R,
        stats: &mut RunStats,
        moved: &mut u64,
        stop_at_compute: bool,
    ) -> bool
    where
        R: ?Sized + std::ops::IndexMut<usize, Output = Ring>,
    {
        if self.macro_done {
            return true;
        }
        let end = self.module.procs[self.pid].ops.1;
        loop {
            if self.pc >= end {
                // The terminal empty step, like the rendezvous engines'.
                stats.steps += 1;
                self.macro_done = true;
                return true;
            }
            match self.module.ops[self.pc as usize] {
                ProcOp::Emit { chan } => {
                    if rings[chan].is_full() {
                        return false;
                    }
                    let value = self.module.data[self.cursor as usize];
                    rings[chan].push(value);
                    self.cursor += 1;
                    self.pc += 1;
                    stats.steps += 1;
                    stats.messages += 1;
                    *moved += 1;
                }
                ProcOp::Collect { chan } => {
                    let Some(v) = rings[chan].pop() else {
                        return false;
                    };
                    if let Some(buf) = &self.out {
                        buf.lock().push(v);
                    }
                    self.pc += 1;
                    stats.steps += 1;
                    *moved += 1;
                }
                ProcOp::Keep { chan, slot } => {
                    let Some(v) = rings[chan].pop() else {
                        return false;
                    };
                    self.locals[slot as usize] = v;
                    self.pc += 1;
                    stats.steps += 1;
                    *moved += 1;
                }
                ProcOp::Pass { inp, out, n } => {
                    if self.pass_left < 0 {
                        self.pass_left = n as i64;
                    }
                    // Resume a cycle whose forward found the ring full.
                    if let MacroState::PassHeld(v) = self.macro_state {
                        if rings[out].is_full() {
                            return false;
                        }
                        rings[out].push(v);
                        self.macro_state = MacroState::Ready;
                        stats.steps += 1;
                        stats.messages += 1;
                        *moved += 1;
                    }
                    // The fused pass loop: k receive-forward cycles per
                    // visit, bounded only by ring occupancy.
                    while self.pass_left > 0 {
                        let Some(v) = rings[inp].pop() else {
                            return false;
                        };
                        stats.steps += 1;
                        *moved += 1;
                        self.pass_left -= 1;
                        if rings[out].is_full() {
                            self.macro_state = MacroState::PassHeld(v);
                            return false;
                        }
                        rings[out].push(v);
                        stats.steps += 1;
                        stats.messages += 1;
                        *moved += 1;
                    }
                    self.pass_left = -1;
                    self.pc += 1;
                }
                ProcOp::Eject { chan, slot } => {
                    if rings[chan].is_full() {
                        return false;
                    }
                    rings[chan].push(self.locals[slot as usize]);
                    self.pc += 1;
                    stats.steps += 1;
                    stats.messages += 1;
                    *moved += 1;
                }
                ProcOp::Compute { count } => {
                    if self.t >= count as i64 {
                        // Reset for a hypothetical later Compute.
                        self.pc += 1;
                        self.t = 0;
                        let (a, b) = self.module.procs[self.pid].repeater;
                        let half = ((b - a) / 2) as usize;
                        self.x
                            .copy_from_slice(&self.module.points[a as usize..a as usize + half]);
                        continue;
                    }
                    let links = self.module.moving_of(self.pid);
                    if links.is_empty() {
                        // No communications: run the whole repeater
                        // locally (zero sets, matching `step_into`).
                        while self.t < count as i64 {
                            if let Some(body) = &self.module.body {
                                body.execute(&mut self.locals, &self.x);
                            }
                            self.t += 1;
                            let incr = self.module.increment_of(self.pid);
                            for (xi, &inc) in self.x.iter_mut().zip(incr) {
                                *xi += inc;
                            }
                        }
                        continue;
                    }
                    debug_assert!(links.len() <= 64, "batch gate admits at most 64 links");
                    let full: u64 = if links.len() == 64 {
                        u64::MAX
                    } else {
                        (1u64 << links.len()) - 1
                    };
                    // One state transition per dispatch; the par-sets
                    // complete piecewise (see [`MacroState`]).
                    match self.macro_state {
                        MacroState::Ready => {
                            if stop_at_compute {
                                // Parked at the kernel hand-off point:
                                // a fresh iteration boundary of a
                                // linked repeater. The caller batches
                                // the iterations from here.
                                return false;
                            }
                            // Steady-state loop summarization (see
                            // `crate::opt`): when every moving link can
                            // pop *and* push right now, retire whole
                            // receive/body/send iterations in a tight
                            // loop, skipping the piecewise masks. Stats
                            // are identical to the mask path: one step
                            // per completed par-set, one message per
                            // pushed value. Requires pairwise-distinct
                            // rings per direction — the availability
                            // check is per-ring, not per-slot.
                            let distinct = links.iter().enumerate().all(|(i, a)| {
                                links[..i].iter().all(|b| a.inp != b.inp && a.out != b.out)
                            });
                            while distinct && self.t < count as i64 {
                                let ready = links.iter().all(|mc| {
                                    !rings[mc.inp].is_empty() && !rings[mc.out].is_full()
                                });
                                if !ready {
                                    break;
                                }
                                for mc in links {
                                    self.locals[mc.slot as usize] =
                                        rings[mc.inp].pop().expect("availability checked above");
                                }
                                *moved += links.len() as u64;
                                stats.steps += 1; // the par-receive set
                                if let Some(body) = &self.module.body {
                                    body.execute(&mut self.locals, &self.x);
                                }
                                for mc in links {
                                    rings[mc.out].push(self.locals[mc.slot as usize]);
                                }
                                stats.messages += links.len() as u64;
                                *moved += links.len() as u64;
                                stats.steps += 1; // the par-send set
                                self.t += 1;
                                let incr = self.module.increment_of(self.pid);
                                for (xi, &inc) in self.x.iter_mut().zip(incr) {
                                    *xi += inc;
                                }
                            }
                            if self.t >= count as i64 {
                                continue; // the top of the loop advances pc
                            }
                            self.macro_state = MacroState::ComputeRecv { mask: 0 };
                        }
                        MacroState::ComputeRecv { mut mask } => {
                            for (i, mc) in links.iter().enumerate() {
                                if mask & (1 << i) != 0 {
                                    continue;
                                }
                                if let Some(v) = rings[mc.inp].pop() {
                                    self.locals[mc.slot as usize] = v;
                                    mask |= 1 << i;
                                    *moved += 1;
                                }
                            }
                            if mask != full {
                                self.macro_state = MacroState::ComputeRecv { mask };
                                return false;
                            }
                            stats.steps += 1; // the par-receive set
                            if let Some(body) = &self.module.body {
                                body.execute(&mut self.locals, &self.x);
                            }
                            self.macro_state = MacroState::ComputeSend { mask: 0 };
                        }
                        MacroState::ComputeSend { mut mask } => {
                            for (i, mc) in links.iter().enumerate() {
                                if mask & (1 << i) != 0 {
                                    continue;
                                }
                                if !rings[mc.out].is_full() {
                                    rings[mc.out].push(self.locals[mc.slot as usize]);
                                    mask |= 1 << i;
                                    stats.messages += 1;
                                    *moved += 1;
                                }
                            }
                            if mask != full {
                                self.macro_state = MacroState::ComputeSend { mask };
                                return false;
                            }
                            stats.steps += 1; // the par-send set
                            self.t += 1;
                            let incr = self.module.increment_of(self.pid);
                            for (xi, &inc) in self.x.iter_mut().zip(incr) {
                                *xi += inc;
                            }
                            self.macro_state = MacroState::Ready;
                        }
                        MacroState::PassHeld(_) => {
                            unreachable!("PassHeld at a Compute op")
                        }
                    }
                }
            }
        }
    }

    /// How this macro-stepped VM is currently blocked, as the same
    /// `send@c` / `recv@c` wait description the cooperative engine's
    /// deadlock reports use; `None` once the process has finished.
    pub fn macro_wait(&self) -> Option<String> {
        let end = self.module.procs[self.pid].ops.1;
        if self.macro_done || self.pc >= end {
            return None;
        }
        Some(match self.module.ops[self.pc as usize] {
            ProcOp::Emit { chan } => format!("send@{chan}"),
            ProcOp::Collect { chan } | ProcOp::Keep { chan, .. } => format!("recv@{chan}"),
            ProcOp::Eject { chan, .. } => format!("send@{chan}"),
            ProcOp::Pass { inp, out, .. } => match self.macro_state {
                MacroState::PassHeld(_) => format!("send@{out}"),
                _ => format!("recv@{inp}"),
            },
            ProcOp::Compute { .. } => {
                let links = self.module.moving_of(self.pid);
                let missing = |mask: u64| (0..links.len()).find(|i| mask & (1 << i) == 0);
                match self.macro_state {
                    MacroState::ComputeSend { mask } => {
                        format!("send@{}", links[missing(mask).unwrap_or(0)].out)
                    }
                    MacroState::ComputeRecv { mask } => {
                        format!("recv@{}", links[missing(mask).unwrap_or(0)].inp)
                    }
                    _ => match links.first() {
                        Some(mc) => format!("recv@{}", mc.inp),
                        None => "idle".into(),
                    },
                }
            }
        })
    }

    /// Remaining repeater iterations when this VM is parked at the
    /// kernel hand-off point (a linked [`ProcOp::Compute`] at a fresh
    /// iteration boundary); `None` when it is finished, blocked inside
    /// a piecewise par-set, or at any other op.
    pub(crate) fn kernel_point(&self) -> Option<u64> {
        if self.macro_done || self.macro_state != MacroState::Ready {
            return None;
        }
        let end = self.module.procs[self.pid].ops.1;
        if self.pc >= end {
            return None;
        }
        match self.module.ops[self.pc as usize] {
            ProcOp::Compute { count }
                if self.t < count as i64 && !self.module.moving_of(self.pid).is_empty() =>
            {
                Some((count as i64 - self.t) as u64)
            }
            _ => None,
        }
    }

    /// This process's moving links (kernel gather/scatter order).
    pub(crate) fn links(&self) -> &[MovingLink] {
        self.module.moving_of(self.pid)
    }

    /// This process's per-iteration index increment.
    pub(crate) fn increments(&self) -> &[i64] {
        self.module.increment_of(self.pid)
    }

    pub(crate) fn n_locals(&self) -> usize {
        self.locals.len()
    }

    /// Rank of the repeater's index space.
    pub(crate) fn dims(&self) -> usize {
        self.x.len()
    }

    /// Mutable access to the kernel-batched state: locals, index point,
    /// and iteration counter. The batch executor writes these back
    /// after retiring a batch of iterations.
    pub(crate) fn lane_state(&mut self) -> (&mut [Value], &mut [i64], &mut i64) {
        (&mut self.locals, &mut self.x, &mut self.t)
    }
}

impl Process for ProcVm {
    // `step_into` (not `step`) so every elaborated process upholds the
    // scheduler's zero-allocation round invariant.
    fn step_into(&mut self, received: &[Value], out: &mut Vec<CommReq>) {
        // Phase 1: absorb the previous set; pass-forwards and the
        // repeater's par-send complete within this step.
        match self.pending {
            Pending::None | Pending::Sent | Pending::PassSent => {}
            Pending::Keep { slot } => {
                self.locals[slot as usize] = received[0];
            }
            Pending::CollectRecv => {
                if let Some(buf) = &self.out {
                    buf.lock().push(received[0]);
                }
            }
            Pending::PassRecv { out: oc } => {
                self.pending = Pending::PassSent;
                out.push(CommReq::Send {
                    chan: oc,
                    value: received[0],
                });
                return;
            }
            Pending::ComputeRecv => {
                let links = self.module.moving_of(self.pid);
                for (mc, &v) in links.iter().zip(received) {
                    self.locals[mc.slot as usize] = v;
                }
                // Execute the basic statement at the current index point.
                if let Some(body) = &self.module.body {
                    body.execute(&mut self.locals, &self.x);
                }
                self.record_op(OpKind::Compute, Phase::Compute);
                // Par-send the moving locals.
                self.pending = Pending::ComputeSent;
                out.extend(links.iter().map(|mc| CommReq::Send {
                    chan: mc.out,
                    value: self.locals[mc.slot as usize],
                }));
                return;
            }
            Pending::ComputeSent => {
                // Iteration finished: advance the repeater.
                self.t += 1;
                let incr = self.module.increment_of(self.pid);
                for (xi, &inc) in self.x.iter_mut().zip(incr) {
                    *xi += inc;
                }
            }
        }

        // Phase 2: issue the next communication.
        let end = self.module.procs[self.pid].ops.1;
        loop {
            if self.pc >= end {
                self.pending = Pending::None;
                return;
            }
            match self.module.ops[self.pc as usize] {
                ProcOp::Emit { chan } => {
                    let value = self.module.data[self.cursor as usize];
                    self.cursor += 1;
                    self.pc += 1;
                    self.pending = Pending::Sent;
                    self.record_op(OpKind::Emit, Phase::Host);
                    out.push(CommReq::Send { chan, value });
                    return;
                }
                ProcOp::Collect { chan } => {
                    self.pc += 1;
                    self.pending = Pending::CollectRecv;
                    self.record_op(OpKind::Collect, Phase::Host);
                    out.push(CommReq::Recv { chan });
                    return;
                }
                ProcOp::Keep { chan, slot } => {
                    self.pc += 1;
                    self.pending = Pending::Keep { slot };
                    self.record_op(OpKind::Keep, Phase::Load);
                    out.push(CommReq::Recv { chan });
                    return;
                }
                ProcOp::Pass { inp, out: oc, n } => {
                    if self.pass_left < 0 {
                        self.pass_left = n as i64;
                    }
                    if self.pass_left == 0 {
                        self.pass_left = -1;
                        self.pc += 1;
                        continue;
                    }
                    self.pass_left -= 1;
                    self.pending = Pending::PassRecv { out: oc };
                    self.record_op(OpKind::Pass, self.pass_phase());
                    out.push(CommReq::Recv { chan: inp });
                    return;
                }
                ProcOp::Eject { chan, slot } => {
                    let req = CommReq::Send {
                        chan,
                        value: self.locals[slot as usize],
                    };
                    self.pc += 1;
                    self.pending = Pending::Sent;
                    self.record_op(OpKind::Eject, Phase::Recover);
                    out.push(req);
                    return;
                }
                ProcOp::Compute { count } => {
                    if self.t >= count as i64 {
                        // Reset for a hypothetical later Compute.
                        self.pc += 1;
                        self.t = 0;
                        let (a, b) = self.module.procs[self.pid].repeater;
                        let half = ((b - a) / 2) as usize;
                        self.x
                            .copy_from_slice(&self.module.points[a as usize..a as usize + half]);
                        continue;
                    }
                    let links = self.module.moving_of(self.pid);
                    if links.is_empty() {
                        // No communications: execute the whole repeater
                        // locally in one go.
                        while self.t < count as i64 {
                            if let Some(body) = &self.module.body {
                                body.execute(&mut self.locals, &self.x);
                            }
                            self.record_op(OpKind::Compute, Phase::Compute);
                            self.t += 1;
                            let incr = self.module.increment_of(self.pid);
                            for (xi, &inc) in self.x.iter_mut().zip(incr) {
                                *xi += inc;
                            }
                        }
                        continue;
                    }
                    self.pending = Pending::ComputeRecv;
                    out.extend(links.iter().map(|mc| CommReq::Recv { chan: mc.inp }));
                    return;
                }
            }
        }
    }

    fn label(&self) -> String {
        self.module.procs[self.pid].label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vm_of(build: impl FnOnce(&mut ProcIrBuilder)) -> (ProcVm, Vec<SinkBuffer>) {
        let mut b = ProcIrBuilder::new();
        build(&mut b);
        let module = b.build(None);
        let inst = module.instantiate();
        assert_eq!(inst.procs.len(), 1);
        let out = module.procs[0]
            .output
            .map(|o| inst.outputs[o as usize].clone());
        (ProcVm::new(module, 0, out), inst.outputs)
    }

    #[test]
    fn source_emits_in_order() {
        let (mut s, _) = vm_of(|b| {
            b.source(0, &[1, 2], "src");
        });
        assert_eq!(s.step(&[]), vec![CommReq::Send { chan: 0, value: 1 }]);
        assert_eq!(s.step(&[]), vec![CommReq::Send { chan: 0, value: 2 }]);
        assert!(s.step(&[]).is_empty());
    }

    #[test]
    fn sink_collects() {
        let (mut s, outs) = vm_of(|b| {
            b.sink(3, 2, "sink");
        });
        assert_eq!(s.step(&[]), vec![CommReq::Recv { chan: 3 }]);
        assert_eq!(s.step(&[10]), vec![CommReq::Recv { chan: 3 }]);
        assert!(s.step(&[20]).is_empty());
        assert_eq!(*outs[0].lock(), vec![10, 20]);
    }

    #[test]
    fn relay_alternates_recv_send() {
        let (mut r, _) = vm_of(|b| {
            b.relay(0, 1, 2, "relay");
        });
        assert_eq!(r.step(&[]), vec![CommReq::Recv { chan: 0 }]);
        assert_eq!(r.step(&[7]), vec![CommReq::Send { chan: 1, value: 7 }]);
        assert_eq!(r.step(&[]), vec![CommReq::Recv { chan: 0 }]);
        assert_eq!(r.step(&[8]), vec![CommReq::Send { chan: 1, value: 8 }]);
        assert!(r.step(&[]).is_empty());
    }

    #[test]
    fn segment_relay_switches_channels() {
        // Segments: 2 from chan 0 -> 10, 1 from chan 1 -> 11, skip a
        // zero segment, 1 from chan 0 -> 10.
        let (mut r, _) = vm_of(|b| {
            b.segment_relay(&[(0, 10, 2), (1, 11, 1), (2, 12, 0), (0, 10, 1)], "seg");
        });
        assert_eq!(r.step(&[]), vec![CommReq::Recv { chan: 0 }]);
        assert_eq!(r.step(&[5]), vec![CommReq::Send { chan: 10, value: 5 }]);
        assert_eq!(r.step(&[]), vec![CommReq::Recv { chan: 0 }]);
        assert_eq!(r.step(&[6]), vec![CommReq::Send { chan: 10, value: 6 }]);
        assert_eq!(r.step(&[]), vec![CommReq::Recv { chan: 1 }]);
        assert_eq!(r.step(&[7]), vec![CommReq::Send { chan: 11, value: 7 }]);
        assert_eq!(
            r.step(&[]),
            vec![CommReq::Recv { chan: 0 }],
            "zero segment skipped"
        );
        assert_eq!(r.step(&[8]), vec![CommReq::Send { chan: 10, value: 8 }]);
        assert!(r.step(&[]).is_empty());
    }

    #[test]
    fn scripted_source_and_sink_round_robin() {
        let (mut src, _) = vm_of(|b| {
            b.scripted_source(&[(0, 10), (1, 20), (0, 11)], "host-in");
        });
        assert_eq!(src.step(&[]), vec![CommReq::Send { chan: 0, value: 10 }]);
        assert_eq!(src.step(&[]), vec![CommReq::Send { chan: 1, value: 20 }]);
        assert_eq!(src.step(&[]), vec![CommReq::Send { chan: 0, value: 11 }]);
        assert!(src.step(&[]).is_empty());

        let (mut sink, outs) = vm_of(|b| {
            b.scripted_sink(&[2, 3, 2], "host-out");
        });
        assert_eq!(sink.step(&[]), vec![CommReq::Recv { chan: 2 }]);
        assert_eq!(sink.step(&[5]), vec![CommReq::Recv { chan: 3 }]);
        assert_eq!(sink.step(&[6]), vec![CommReq::Recv { chan: 2 }]);
        assert!(sink.step(&[7]).is_empty());
        assert_eq!(*outs[0].lock(), vec![5, 6, 7]);
    }

    #[test]
    fn module_is_reinstantiable() {
        // Two instantiations of one module run independently.
        let mut b = ProcIrBuilder::new();
        b.source(0, &[4, 5], "src");
        b.sink(0, 2, "sink");
        let module = b.build(None);
        for _ in 0..2 {
            let inst = module.instantiate();
            let mut net = crate::Network::new(crate::ChannelPolicy::Rendezvous);
            for p in inst.procs {
                net.add(p);
            }
            net.run().unwrap();
            assert_eq!(*inst.outputs[0].lock(), vec![4, 5]);
        }
    }

    #[test]
    fn compute_repeater_runs_body() {
        // One computation process: c := c + a (a moving on 0 -> 1,
        // c kept then ejected on 2 -> 3), over 3 iterations.
        let mut b = ProcIrBuilder::new();
        b.begin("comp");
        b.op(ProcOp::Keep { chan: 2, slot: 1 });
        b.op(ProcOp::Compute { count: 3 });
        b.op(ProcOp::Eject { chan: 3, slot: 1 });
        b.repeater(
            &[MovingLink {
                slot: 0,
                inp: 0,
                out: 1,
            }],
            &[0],
            &[1],
            2,
        );
        b.finish();
        b.source(0, &[2, 3, 4], "a-in");
        b.source(2, &[10], "c-in");
        b.sink(1, 3, "a-out");
        b.sink(3, 1, "c-out");
        let module = b.build(Some(Arc::new(|locals: &mut [Value], _x: &[i64]| {
            locals[1] += locals[0];
        })));
        let inst = module.instantiate();
        let mut net = crate::Network::new(crate::ChannelPolicy::Rendezvous);
        for p in inst.procs {
            net.add(p);
        }
        net.run().unwrap();
        assert_eq!(*inst.outputs[0].lock(), vec![2, 3, 4], "a passes through");
        assert_eq!(*inst.outputs[1].lock(), vec![10 + 2 + 3 + 4]);
    }

    #[test]
    fn soak_compute_drain_uses_only_the_count_window() {
        // A pipe of 4 values on a moving stream; the cell soaks 1,
        // computes over 2, drains 1 — only the middle two reach the
        // basic statement, and the index point advances per iteration.
        let mut b = ProcIrBuilder::new();
        b.begin("comp");
        b.op(ProcOp::Keep { chan: 2, slot: 1 });
        b.op(ProcOp::Pass {
            inp: 0,
            out: 1,
            n: 1,
        }); // soak
        b.op(ProcOp::Compute { count: 2 });
        b.op(ProcOp::Pass {
            inp: 0,
            out: 1,
            n: 1,
        }); // drain
        b.op(ProcOp::Eject { chan: 3, slot: 1 });
        b.repeater(
            &[MovingLink {
                slot: 0,
                inp: 0,
                out: 1,
            }],
            &[5],
            &[1],
            2,
        );
        b.finish();
        b.source(0, &[100, 2, 3, 100], "a-in");
        b.source(2, &[0], "c-in");
        b.sink(1, 4, "a-out");
        b.sink(3, 1, "c-out");
        let module = b.build(Some(Arc::new(|locals: &mut [Value], x: &[i64]| {
            locals[1] += locals[0] * x[0];
        })));
        let inst = module.instantiate();
        let mut net = crate::Network::new(crate::ChannelPolicy::Rendezvous);
        for p in inst.procs {
            net.add(p);
        }
        net.run().unwrap();
        assert_eq!(*inst.outputs[0].lock(), vec![100, 2, 3, 100], "FIFO order");
        // Iterations see x = 5 then 6: 2*5 + 3*6 = 28.
        assert_eq!(*inst.outputs[1].lock(), vec![28]);
    }
}
