//! The virtual-process abstraction.
//!
//! Sec. 4: "systolic programs specify a set of asynchronously composed
//! processes, each one an ordinary sequential process", communicating over
//! synchronous channels, where "multiple communications may be performed
//! concurrently" (`par` of sends/receives, Appendix C).
//!
//! A [`Process`] is a coroutine driven by the scheduler: each call to
//! [`Process::step`] runs local computation and returns the next set of
//! communication requests; the set completes when every request has
//! matched, in any order; the values received (in request order) are
//! passed to the next `step`. An empty set terminates the process.

use std::sync::Arc;

/// The scalar carried on channels.
pub type Value = i64;

/// Identifies a point-to-point channel. Each channel must have exactly one
/// sending and one receiving process over the run ("the channels are
/// mutually independent", Sec. 4).
pub type ChanId = usize;

/// One communication request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommReq {
    /// Offer `value` on the channel; completes when the receiver takes it.
    Send { chan: ChanId, value: Value },
    /// Take a value from the channel; completes when a sender offers one.
    Recv { chan: ChanId },
}

impl CommReq {
    pub fn chan(&self) -> ChanId {
        match self {
            CommReq::Send { chan, .. } | CommReq::Recv { chan } => *chan,
        }
    }

    pub fn is_send(&self) -> bool {
        matches!(self, CommReq::Send { .. })
    }
}

/// A cooperative sequential process.
///
/// `step` and `step_into` are the same operation; implement **at least
/// one** (each has a default in terms of the other). Hot-path processes
/// implement `step_into` so the scheduler's steady-state rounds stay
/// allocation-free; `step` remains the convenient form for tests and
/// one-off processes.
pub trait Process: Send {
    /// Advance the process. `received` holds the values of the previous
    /// set's `Recv` requests, in request order (empty on the first call).
    /// Return the next communication set; an empty set means the process
    /// has terminated.
    fn step(&mut self, received: &[Value]) -> Vec<CommReq> {
        let mut out = Vec::new();
        self.step_into(received, &mut out);
        out
    }

    /// Allocation-free form of [`Process::step`]: append the next
    /// communication set to `out` (handed in empty, with its previous
    /// capacity intact). Leaving `out` empty terminates the process.
    fn step_into(&mut self, received: &[Value], out: &mut Vec<CommReq>) {
        out.extend(self.step(received));
    }

    /// A short label for diagnostics (deadlock reports).
    fn label(&self) -> String {
        "process".into()
    }
}

/// An input process: sends a fixed sequence of values on one channel
/// (the host-side injection of a stream partition, Sec. 4.2).
pub struct SourceProc {
    chan: ChanId,
    values: std::vec::IntoIter<Value>,
    label: String,
}

impl SourceProc {
    pub fn new(chan: ChanId, values: Vec<Value>, label: impl Into<String>) -> SourceProc {
        SourceProc {
            chan,
            values: values.into_iter(),
            label: label.into(),
        }
    }
}

impl Process for SourceProc {
    fn step_into(&mut self, _received: &[Value], out: &mut Vec<CommReq>) {
        if let Some(v) = self.values.next() {
            out.push(CommReq::Send {
                chan: self.chan,
                value: v,
            });
        }
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

/// Shared collection buffer for [`SinkProc`] results.
pub type SinkBuffer = Arc<parking_lot::Mutex<Vec<Value>>>;

/// An output process: receives `count` values from one channel into a
/// shared buffer (the host-side extraction, Sec. 4.2).
pub struct SinkProc {
    chan: ChanId,
    remaining: usize,
    out: SinkBuffer,
    label: String,
}

impl SinkProc {
    pub fn new(chan: ChanId, count: usize, out: SinkBuffer, label: impl Into<String>) -> SinkProc {
        SinkProc {
            chan,
            remaining: count,
            out,
            label: label.into(),
        }
    }
}

impl Process for SinkProc {
    fn step_into(&mut self, received: &[Value], out: &mut Vec<CommReq>) {
        if let Some(&v) = received.first() {
            self.out.lock().push(v);
        }
        if self.remaining == 0 {
            return;
        }
        self.remaining -= 1;
        out.push(CommReq::Recv { chan: self.chan });
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

/// A buffer process: receives `count` values on one channel and forwards
/// each on another (`pass s, n` — the internal buffers of Sec. 7.6 and
/// the external buffers of `PS \ CS`).
pub struct RelayProc {
    in_chan: ChanId,
    out_chan: ChanId,
    remaining: usize,
    label: String,
}

impl RelayProc {
    pub fn new(
        in_chan: ChanId,
        out_chan: ChanId,
        count: usize,
        label: impl Into<String>,
    ) -> RelayProc {
        RelayProc {
            in_chan,
            out_chan,
            remaining: count,
            label: label.into(),
        }
    }
}

impl Process for RelayProc {
    fn step_into(&mut self, received: &[Value], out: &mut Vec<CommReq>) {
        if let Some(&v) = received.first() {
            out.push(CommReq::Send {
                chan: self.out_chan,
                value: v,
            });
            return;
        }
        if self.remaining == 0 {
            return;
        }
        self.remaining -= 1;
        out.push(CommReq::Recv { chan: self.in_chan });
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

/// A relay that forwards values in consecutive *segments*, each with its
/// own input channel, output channel, and count. Used to split a
/// computation cell's data propagation into independent per-stream escort
/// processes (splitter/merger pairs) — the alternative propagation
/// protocol of `ElabOptions::split_propagation` (the paper: its protocol
/// "is only one of many possible choices", Sec. 4.2).
pub struct SegmentRelay {
    segments: std::vec::IntoIter<(ChanId, ChanId, usize)>,
    current: Option<(ChanId, ChanId, usize)>,
    label: String,
}

impl SegmentRelay {
    /// `segments`: `(in_chan, out_chan, count)` triples processed in
    /// order; zero-count segments are skipped.
    pub fn new(segments: Vec<(ChanId, ChanId, usize)>, label: impl Into<String>) -> SegmentRelay {
        SegmentRelay {
            segments: segments.into_iter(),
            current: None,
            label: label.into(),
        }
    }

    fn next_segment(&mut self) -> Option<(ChanId, ChanId, usize)> {
        loop {
            match self.segments.next() {
                Some((_, _, 0)) => continue,
                other => return other,
            }
        }
    }
}

impl Process for SegmentRelay {
    fn step_into(&mut self, received: &[Value], out: &mut Vec<CommReq>) {
        if let Some(&v) = received.first() {
            let (_, out_chan, _) = self.current.expect("received without a segment");
            out.push(CommReq::Send {
                chan: out_chan,
                value: v,
            });
            return;
        }
        // Advance within / across segments.
        match &mut self.current {
            Some((_, _, n)) if *n > 1 => {
                *n -= 1;
            }
            _ => {
                self.current = self.next_segment();
            }
        }
        if let Some((inp, _, _)) = self.current {
            out.push(CommReq::Recv { chan: inp });
        }
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

/// A host-side input process driving *many* channels from one script:
/// the merged form of per-pipe input processes (Sec. 4.2: "at a later
/// stage, these may be merged into fewer processes").
pub struct ScriptedSource {
    sends: std::vec::IntoIter<(ChanId, Value)>,
    label: String,
}

impl ScriptedSource {
    pub fn new(sends: Vec<(ChanId, Value)>, label: impl Into<String>) -> ScriptedSource {
        ScriptedSource {
            sends: sends.into_iter(),
            label: label.into(),
        }
    }
}

impl Process for ScriptedSource {
    fn step_into(&mut self, _received: &[Value], out: &mut Vec<CommReq>) {
        if let Some((chan, value)) = self.sends.next() {
            out.push(CommReq::Send { chan, value });
        }
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

/// The merged output counterpart: receives from many channels in a fixed
/// order into one shared buffer.
pub struct ScriptedSink {
    recvs: std::vec::IntoIter<ChanId>,
    out: SinkBuffer,
    label: String,
}

impl ScriptedSink {
    pub fn new(recvs: Vec<ChanId>, out: SinkBuffer, label: impl Into<String>) -> ScriptedSink {
        ScriptedSink {
            recvs: recvs.into_iter(),
            out,
            label: label.into(),
        }
    }
}

impl Process for ScriptedSink {
    fn step_into(&mut self, received: &[Value], out: &mut Vec<CommReq>) {
        if let Some(&v) = received.first() {
            self.out.lock().push(v);
        }
        if let Some(chan) = self.recvs.next() {
            out.push(CommReq::Recv { chan });
        }
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

/// Build a fresh sink buffer.
pub fn sink_buffer() -> SinkBuffer {
    Arc::new(parking_lot::Mutex::new(Vec::new()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_emits_in_order() {
        let mut s = SourceProc::new(0, vec![1, 2], "src");
        assert_eq!(s.step(&[]), vec![CommReq::Send { chan: 0, value: 1 }]);
        assert_eq!(s.step(&[]), vec![CommReq::Send { chan: 0, value: 2 }]);
        assert!(s.step(&[]).is_empty());
    }

    #[test]
    fn sink_collects() {
        let buf = sink_buffer();
        let mut s = SinkProc::new(3, 2, buf.clone(), "sink");
        assert_eq!(s.step(&[]), vec![CommReq::Recv { chan: 3 }]);
        assert_eq!(s.step(&[10]), vec![CommReq::Recv { chan: 3 }]);
        assert!(s.step(&[20]).is_empty());
        assert_eq!(*buf.lock(), vec![10, 20]);
    }

    #[test]
    fn segment_relay_switches_channels() {
        // Segments: 2 from chan 0 -> 10, 1 from chan 1 -> 11, skip a
        // zero segment, 1 from chan 0 -> 10.
        let mut r = SegmentRelay::new(vec![(0, 10, 2), (1, 11, 1), (2, 12, 0), (0, 10, 1)], "seg");
        assert_eq!(r.step(&[]), vec![CommReq::Recv { chan: 0 }]);
        assert_eq!(r.step(&[5]), vec![CommReq::Send { chan: 10, value: 5 }]);
        assert_eq!(r.step(&[]), vec![CommReq::Recv { chan: 0 }]);
        assert_eq!(r.step(&[6]), vec![CommReq::Send { chan: 10, value: 6 }]);
        assert_eq!(r.step(&[]), vec![CommReq::Recv { chan: 1 }]);
        assert_eq!(r.step(&[7]), vec![CommReq::Send { chan: 11, value: 7 }]);
        assert_eq!(
            r.step(&[]),
            vec![CommReq::Recv { chan: 0 }],
            "zero segment skipped"
        );
        assert_eq!(r.step(&[8]), vec![CommReq::Send { chan: 10, value: 8 }]);
        assert!(r.step(&[]).is_empty());
    }

    #[test]
    fn scripted_source_and_sink_round_robin() {
        let mut src = ScriptedSource::new(vec![(0, 10), (1, 20), (0, 11)], "host-in");
        assert_eq!(
            src.step(&[]),
            vec![CommReq::Send { chan: 0, value: 10 }]
        );
        assert_eq!(
            src.step(&[]),
            vec![CommReq::Send { chan: 1, value: 20 }]
        );
        assert_eq!(
            src.step(&[]),
            vec![CommReq::Send { chan: 0, value: 11 }]
        );
        assert!(src.step(&[]).is_empty());

        let buf = sink_buffer();
        let mut sink = ScriptedSink::new(vec![2, 3, 2], buf.clone(), "host-out");
        assert_eq!(sink.step(&[]), vec![CommReq::Recv { chan: 2 }]);
        assert_eq!(sink.step(&[5]), vec![CommReq::Recv { chan: 3 }]);
        assert_eq!(sink.step(&[6]), vec![CommReq::Recv { chan: 2 }]);
        assert!(sink.step(&[7]).is_empty());
        assert_eq!(*buf.lock(), vec![5, 6, 7]);
    }

    #[test]
    fn comm_req_accessors() {
        let s = CommReq::Send { chan: 4, value: 9 };
        let r = CommReq::Recv { chan: 7 };
        assert_eq!(s.chan(), 4);
        assert_eq!(r.chan(), 7);
        assert!(s.is_send());
        assert!(!r.is_send());
    }

    #[test]
    fn relay_alternates_recv_send() {
        let mut r = RelayProc::new(0, 1, 2, "relay");
        assert_eq!(r.step(&[]), vec![CommReq::Recv { chan: 0 }]);
        assert_eq!(r.step(&[7]), vec![CommReq::Send { chan: 1, value: 7 }]);
        assert_eq!(r.step(&[]), vec![CommReq::Recv { chan: 0 }]);
        assert_eq!(r.step(&[8]), vec![CommReq::Send { chan: 1, value: 8 }]);
        assert!(r.step(&[]).is_empty());
    }
}
