//! The virtual-process abstraction.
//!
//! Sec. 4: "systolic programs specify a set of asynchronously composed
//! processes, each one an ordinary sequential process", communicating over
//! synchronous channels, where "multiple communications may be performed
//! concurrently" (`par` of sends/receives, Appendix C).
//!
//! A [`Process`] is a coroutine driven by the scheduler: each call to
//! [`Process::step`] runs local computation and returns the next set of
//! communication requests; the set completes when every request has
//! matched, in any order; the values received (in request order) are
//! passed to the next `step`. An empty set terminates the process.
//!
//! Every elaborated process is a [`crate::ProcVm`] interpreting the flat
//! [`crate::ProcIrModule`] bytecode; the trait exists so executors stay
//! decoupled from the bytecode and tests can script ad-hoc processes.

use std::sync::Arc;

/// The scalar carried on channels.
pub type Value = i64;

/// Identifies a point-to-point channel. Each channel must have exactly one
/// sending and one receiving process over the run ("the channels are
/// mutually independent", Sec. 4).
pub type ChanId = usize;

/// One communication request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommReq {
    /// Offer `value` on the channel; completes when the receiver takes it.
    Send { chan: ChanId, value: Value },
    /// Take a value from the channel; completes when a sender offers one.
    Recv { chan: ChanId },
}

impl CommReq {
    pub fn chan(&self) -> ChanId {
        match self {
            CommReq::Send { chan, .. } | CommReq::Recv { chan } => *chan,
        }
    }

    pub fn is_send(&self) -> bool {
        matches!(self, CommReq::Send { .. })
    }
}

/// A cooperative sequential process.
///
/// `step` and `step_into` are the same operation; implement **at least
/// one** (each has a default in terms of the other). Hot-path processes
/// implement `step_into` so the scheduler's steady-state rounds stay
/// allocation-free; `step` remains the convenient form for tests and
/// one-off processes.
pub trait Process: Send {
    /// Advance the process. `received` holds the values of the previous
    /// set's `Recv` requests, in request order (empty on the first call).
    /// Return the next communication set; an empty set means the process
    /// has terminated.
    fn step(&mut self, received: &[Value]) -> Vec<CommReq> {
        let mut out = Vec::new();
        self.step_into(received, &mut out);
        out
    }

    /// Allocation-free form of [`Process::step`]: append the next
    /// communication set to `out` (handed in empty, with its previous
    /// capacity intact). Leaving `out` empty terminates the process.
    fn step_into(&mut self, received: &[Value], out: &mut Vec<CommReq>) {
        out.extend(self.step(received));
    }

    /// A short label for diagnostics (deadlock reports).
    fn label(&self) -> String {
        "process".into()
    }
}

/// Shared collection buffer for host-side extraction results.
pub type SinkBuffer = Arc<parking_lot::Mutex<Vec<Value>>>;

/// Build a fresh sink buffer.
pub fn sink_buffer() -> SinkBuffer {
    Arc::new(parking_lot::Mutex::new(Vec::new()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comm_req_accessors() {
        let s = CommReq::Send { chan: 4, value: 9 };
        let r = CommReq::Recv { chan: 7 };
        assert_eq!(s.chan(), 4);
        assert_eq!(r.chan(), 7);
        assert!(s.is_send());
        assert!(!r.is_send());
    }

    #[test]
    fn step_defaults_delegate_both_ways() {
        struct ViaStep(usize);
        impl Process for ViaStep {
            fn step(&mut self, _received: &[Value]) -> Vec<CommReq> {
                if self.0 == 0 {
                    return vec![];
                }
                self.0 -= 1;
                vec![CommReq::Recv { chan: 1 }]
            }
        }
        let mut p = ViaStep(1);
        let mut out = Vec::new();
        p.step_into(&[], &mut out);
        assert_eq!(out, vec![CommReq::Recv { chan: 1 }]);
        out.clear();
        p.step_into(&[5], &mut out);
        assert!(out.is_empty(), "empty set terminates");
        assert_eq!(p.label(), "process");
    }
}
