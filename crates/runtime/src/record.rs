//! The observability layer: a [`Recorder`] sink for execution events,
//! threaded through the [`crate::procir::ProcVm`] and all three
//! executors.
//!
//! PR 2's single-VM design means every process on every executor runs
//! through one instrumentation point, so one event vocabulary covers the
//! whole runtime:
//!
//! - **transfers** — one event per completed channel rendezvous (or per
//!   buffered enqueue/dequeue half), carrying the virtual time, channel,
//!   value, both endpoint processes, and how long each endpoint waited
//!   parked on the channel (in rounds; the threaded executors have no
//!   round clock and report 0 waits);
//! - **steps** — one event per [`crate::Process::step_into`] invocation,
//!   mirroring `RunStats.steps`;
//! - **vm ops** — one event per retired ProcIR op effect, classified by
//!   [`OpKind`] and by the canonical-program [`Phase`] it belongs to
//!   (load / soak / compute / drain / recover, plus host fringe and pure
//!   transport), which is what the soak-vs-compute makespan attribution
//!   is built from;
//! - **lifecycle** — `start` (with every process label), per-process
//!   `finished`, and `end` (the final virtual time: rounds for the
//!   cooperative scheduler, microseconds for the threaded executors).
//!
//! Recorders are shared as [`SharedRecorder`] (`Arc<Mutex<dyn Recorder>>`)
//! so one recorder can observe a VM *and* its scheduler, or many OS
//! threads at once. Every hook in the runtime is behind an "any recorder
//! attached?" branch: with no recorder the hot paths gain one predictable
//! branch and allocate nothing (the zero-cost-when-off contract, guarded
//! by the `BENCH_simulate.json` trajectory).
//!
//! Three recorders are provided:
//!
//! - [`EventLogRecorder`] — a plain transfer log; `crates/interp`'s
//!   space–time diagrams are sourced from it;
//! - [`MetricsRecorder`] — aggregates everything into a [`MetricsReport`]
//!   with a stable hand-rolled JSON rendering (`systolic-metrics-v1`);
//! - [`PerfettoRecorder`] — Chrome `trace_event` JSON for
//!   <https://ui.perfetto.dev>: one track per process, one per channel.
//!
//! See `docs/observability.md` for the schema and a how-to.

use crate::process::{ChanId, Value};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Endpoint pseudo-id used by [`ChannelPolicy::Buffered`] transfers: an
/// enqueue has no receiving process yet (the value parks in the queue)
/// and a dequeue has no sending process anymore.
///
/// [`ChannelPolicy::Buffered`]: crate::ChannelPolicy::Buffered
pub const QUEUE_ENDPOINT: usize = usize::MAX;

/// Which ProcIR op an event came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    Emit,
    Collect,
    Keep,
    Pass,
    Eject,
    Compute,
}

impl OpKind {
    pub const ALL: [OpKind; 6] = [
        OpKind::Emit,
        OpKind::Collect,
        OpKind::Keep,
        OpKind::Pass,
        OpKind::Eject,
        OpKind::Compute,
    ];

    pub fn name(self) -> &'static str {
        match self {
            OpKind::Emit => "emit",
            OpKind::Collect => "collect",
            OpKind::Keep => "keep",
            OpKind::Pass => "pass",
            OpKind::Eject => "eject",
            OpKind::Compute => "compute",
        }
    }
}

/// Which phase of the canonical program shape (App. C) an op effect
/// belongs to. The VM classifies `Pass` cycles positionally: before the
/// process's `Compute` op they are on the soak side (soak proper plus the
/// load drain-passes), after it on the drain side (drain proper plus the
/// recover soak-passes). Processes with no `Compute` op are pure
/// transport (relays, buffers, escorts); `Emit`/`Collect` are the host
/// fringe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    Host,
    Load,
    Soak,
    Compute,
    Drain,
    Recover,
    Transport,
}

impl Phase {
    pub const ALL: [Phase; 7] = [
        Phase::Host,
        Phase::Load,
        Phase::Soak,
        Phase::Compute,
        Phase::Drain,
        Phase::Recover,
        Phase::Transport,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Phase::Host => "host",
            Phase::Load => "load",
            Phase::Soak => "soak",
            Phase::Compute => "compute",
            Phase::Drain => "drain",
            Phase::Recover => "recover",
            Phase::Transport => "transport",
        }
    }
}

/// One completed channel transfer, as observed by the executor.
///
/// `time` is the executor's virtual clock: the rendezvous round for the
/// cooperative scheduler, microseconds since run start for the threaded
/// executors. The waits are in the same unit and are only populated by
/// the cooperative scheduler (whose round clock makes "parked since
/// round r" well defined).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Transfer {
    pub time: u64,
    pub chan: ChanId,
    pub value: Value,
    /// Sending process id ([`QUEUE_ENDPOINT`] for a buffered dequeue).
    pub sender: usize,
    /// Receiving process id ([`QUEUE_ENDPOINT`] for a buffered enqueue).
    pub receiver: usize,
    /// Rounds the sender was parked before the transfer fired.
    pub sender_wait: u64,
    /// Rounds the receiver was parked before the transfer fired.
    pub receiver_wait: u64,
}

/// An execution-event sink. Every method has a no-op default, so a
/// recorder implements only what it cares about. Implementations must be
/// `Send`: the threaded executors invoke them from worker threads (under
/// the shared mutex of [`SharedRecorder`]).
pub trait Recorder: Send {
    /// The run is starting; `labels[pid]` names each process.
    fn start(&mut self, labels: &[String]) {
        let _ = labels;
    }
    /// A channel transfer completed.
    fn transfer(&mut self, ev: &Transfer) {
        let _ = ev;
    }
    /// Process `pid` retired one ProcIR op effect. For `Pass` and
    /// `Compute` this fires once per cycle/iteration, not once per op.
    fn vm_op(&mut self, pid: usize, kind: OpKind, phase: Phase) {
        let _ = (pid, kind, phase);
    }
    /// Process `pid` was stepped at virtual time `time`.
    fn step(&mut self, time: u64, pid: usize) {
        let _ = (time, pid);
    }
    /// Process `pid` issued its empty communication set (terminated).
    fn finished(&mut self, time: u64, pid: usize) {
        let _ = (time, pid);
    }
    /// The run completed at virtual time `time`.
    fn end(&mut self, time: u64) {
        let _ = time;
    }
}

/// How recorders are shared with executors and VMs. Constructed by
/// [`shared`] (unsize-coercing a concrete recorder); keep the typed
/// `Arc` to read results back after the run.
pub type SharedRecorder = Arc<Mutex<dyn Recorder>>;

/// Wrap a concrete recorder for attachment, returning both the typed
/// handle (for reading results after the run) and the erased
/// [`SharedRecorder`] (for the executor).
pub fn shared<R: Recorder + 'static>(rec: R) -> (Arc<Mutex<R>>, SharedRecorder) {
    let typed = Arc::new(Mutex::new(rec));
    let erased: SharedRecorder = typed.clone();
    (typed, erased)
}

/// The minimal recorder: an append-only log of transfers. The interp
/// layer's space–time diagrams (`crates/interp/src/trace.rs`) and the
/// cooperative scheduler's legacy `run_traced` API are both sourced from
/// it.
#[derive(Default)]
pub struct EventLogRecorder {
    transfers: Vec<Transfer>,
}

impl EventLogRecorder {
    pub fn new() -> EventLogRecorder {
        EventLogRecorder::default()
    }

    pub fn transfers(&self) -> &[Transfer] {
        &self.transfers
    }

    pub fn take_transfers(&mut self) -> Vec<Transfer> {
        std::mem::take(&mut self.transfers)
    }
}

impl Recorder for EventLogRecorder {
    fn transfer(&mut self, ev: &Transfer) {
        self.transfers.push(*ev);
    }
}

/// Sort a transfer log into the canonical `(time, chan)` order. Within a
/// cooperative round every enabled rendezvous fires regardless of the
/// firing order a schedule policy picked, so two runs of a
/// schedule-independent network compare equal after canonicalization —
/// and the first difference that *survives* it is a genuine divergence,
/// not a harmless reordering.
pub fn canonicalize_transfers(log: &mut [Transfer]) {
    log.sort_by_key(|t| (t.time, t.chan, t.value));
}

/// The index of the first transfer at which two canonicalized logs
/// diverge in substance — round, channel, or value (endpoint waits are
/// schedule-dependent attribution, not substance). `None` when one log
/// is substance-identical to the other; a length mismatch diverges at
/// the shorter log's end. The schedule-exploration harness uses this to
/// attribute a store mismatch to the earliest offending transfer.
pub fn first_divergence(a: &[Transfer], b: &[Transfer]) -> Option<usize> {
    let substance = |t: &Transfer| (t.time, t.chan, t.value);
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        if substance(x) != substance(y) {
            return Some(i);
        }
    }
    if a.len() != b.len() {
        return Some(a.len().min(b.len()));
    }
    None
}

/// Per-process aggregates of a [`MetricsReport`].
#[derive(Clone, Debug, Default)]
pub struct ProcMetrics {
    pub label: String,
    /// `step_into` invocations (sums to `RunStats.steps`).
    pub steps: u64,
    /// Transfers this process sent / received.
    pub sent: u64,
    pub received: u64,
    /// Virtual time at which the process terminated.
    pub finished_at: Option<u64>,
    /// Retired op effects by [`OpKind`] (indexed by `OpKind::ALL` order).
    pub ops: [u64; 6],
    /// Retired op effects by [`Phase`] (indexed by `Phase::ALL` order).
    pub phases: [u64; 7],
}

/// Per-channel aggregates of a [`MetricsReport`].
#[derive(Clone, Debug, Default)]
pub struct ChanMetrics {
    pub transfers: u64,
    pub sender_wait: u64,
    pub receiver_wait: u64,
    pub max_receiver_wait: u64,
    pub first_time: u64,
    pub last_time: u64,
}

/// Everything [`MetricsRecorder`] aggregated over one run.
#[derive(Clone, Debug, Default)]
pub struct MetricsReport {
    pub processes: Vec<ProcMetrics>,
    pub channels: Vec<ChanMetrics>,
    /// Total transfers (equals `RunStats.messages`).
    pub transfers: u64,
    /// Final virtual time (`RunStats.rounds` under the cooperative
    /// scheduler).
    pub end_time: u64,
    /// Virtual times of the first and last basic-statement execution.
    pub first_compute: Option<u64>,
    pub last_compute: Option<u64>,
    /// Histogram of receiver wait durations: (wait, transfer count).
    pub wait_hist: Vec<(u64, u64)>,
    /// Histogram of per-time-tick message counts: (messages in one tick,
    /// number of ticks). Under the cooperative scheduler this is the
    /// distribution of rendezvous per round — the array's occupancy
    /// profile.
    pub msgs_per_time_hist: Vec<(u64, u64)>,
}

impl MetricsReport {
    /// Rounds before the first basic-statement execution (the soak
    /// lead-in of the makespan).
    pub fn soak_lead_in(&self) -> u64 {
        self.first_compute.unwrap_or(0)
    }

    /// Width of the window in which basic statements execute (the
    /// compute plateau of the makespan).
    pub fn compute_window(&self) -> u64 {
        match (self.first_compute, self.last_compute) {
            (Some(a), Some(b)) => b - a + 1,
            _ => 0,
        }
    }

    /// Rounds after the last basic-statement execution (the drain tail
    /// of the makespan).
    pub fn drain_tail(&self) -> u64 {
        self.end_time
            .saturating_sub(self.last_compute.map_or(0, |t| t + 1))
    }

    /// The makespan critical path's endpoint: the last process to
    /// terminate, as (pid, finish time).
    pub fn last_finisher(&self) -> Option<(usize, u64)> {
        self.processes
            .iter()
            .enumerate()
            .filter_map(|(pid, p)| p.finished_at.map(|t| (pid, t)))
            .max_by_key(|&(pid, t)| (t, pid))
    }

    /// The channel with the largest single receiver wait, as
    /// (chan, wait) — where makespan is being lost to rendezvous skew.
    pub fn max_wait_chan(&self) -> Option<(ChanId, u64)> {
        self.channels
            .iter()
            .enumerate()
            .max_by_key(|&(c, m)| (m.max_receiver_wait, c))
            .map(|(c, m)| (c, m.max_receiver_wait))
    }

    /// Total retired op effects per [`Phase`], summed over processes.
    pub fn phase_totals(&self) -> [u64; 7] {
        let mut totals = [0u64; 7];
        for p in &self.processes {
            for (t, v) in totals.iter_mut().zip(p.phases) {
                *t += v;
            }
        }
        totals
    }

    /// Total retired op effects per [`OpKind`], summed over processes.
    pub fn op_totals(&self) -> [u64; 6] {
        let mut totals = [0u64; 6];
        for p in &self.processes {
            for (t, v) in totals.iter_mut().zip(p.ops) {
                *t += v;
            }
        }
        totals
    }

    /// The stable `systolic-metrics-v1` JSON rendering. Hand-rolled: the
    /// workspace deliberately avoids a serde_json dependency.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"schema\": \"systolic-metrics-v1\",\n");
        s.push_str(&format!(
            "  \"processes\": {},\n  \"transfers\": {},\n  \"end_time\": {},\n",
            self.processes.len(),
            self.transfers,
            self.end_time
        ));
        s.push_str(&format!(
            "  \"makespan\": {{\"soak_lead_in\": {}, \"compute_window\": {}, \"drain_tail\": {}}},\n",
            self.soak_lead_in(),
            self.compute_window(),
            self.drain_tail()
        ));
        match self.last_finisher() {
            Some((pid, t)) => s.push_str(&format!(
                "  \"critical_path\": {{\"process\": {pid}, \"label\": \"{}\", \"finished_at\": {t}{}}},\n",
                json_escape(&self.processes[pid].label),
                match self.max_wait_chan() {
                    Some((c, w)) => format!(", \"max_wait_chan\": {c}, \"max_wait\": {w}"),
                    None => String::new(),
                }
            )),
            None => s.push_str("  \"critical_path\": null,\n"),
        }
        let phases = self.phase_totals();
        s.push_str("  \"phase_ops\": {");
        for (i, ph) in Phase::ALL.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{}\": {}", ph.name(), phases[i]));
        }
        s.push_str("},\n  \"op_counts\": {");
        let ops = self.op_totals();
        for (i, k) in OpKind::ALL.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{}\": {}", k.name(), ops[i]));
        }
        s.push_str("},\n");
        s.push_str(&format!(
            "  \"wait_hist\": {},\n  \"msgs_per_time_hist\": {},\n",
            pairs_json(&self.wait_hist),
            pairs_json(&self.msgs_per_time_hist)
        ));
        s.push_str("  \"per_process\": [\n");
        for (i, p) in self.processes.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"label\": \"{}\", \"steps\": {}, \"sent\": {}, \"received\": {}, \
                 \"finished_at\": {}, \"phases\": {{",
                json_escape(&p.label),
                p.steps,
                p.sent,
                p.received,
                p.finished_at.map_or("null".into(), |t| t.to_string()),
            ));
            let mut first = true;
            for (pi, ph) in Phase::ALL.iter().enumerate() {
                if p.phases[pi] == 0 {
                    continue;
                }
                if !first {
                    s.push_str(", ");
                }
                first = false;
                s.push_str(&format!("\"{}\": {}", ph.name(), p.phases[pi]));
            }
            s.push_str(if i + 1 < self.processes.len() {
                "}},\n"
            } else {
                "}}\n"
            });
        }
        s.push_str("  ],\n  \"per_channel\": [\n");
        for (i, c) in self.channels.iter().enumerate() {
            s.push_str(&format!(
                "    [{}, {}, {}, {}, {}]{}\n",
                i,
                c.transfers,
                c.sender_wait,
                c.receiver_wait,
                c.max_receiver_wait,
                if i + 1 < self.channels.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

fn pairs_json(pairs: &[(u64, u64)]) -> String {
    let body: Vec<String> = pairs.iter().map(|(a, b)| format!("[{a}, {b}]")).collect();
    format!("[{}]", body.join(", "))
}

/// Escape a string for embedding in JSON.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Aggregates the whole event stream into a [`MetricsReport`]: per-process
/// op/step/message counts, per-channel transfer and wait statistics,
/// phase breakdown, and the makespan attribution windows.
#[derive(Default)]
pub struct MetricsRecorder {
    /// Latest virtual time seen on any timed event; `vm_op` events (which
    /// carry no time) are attributed to it.
    now: u64,
    procs: Vec<ProcMetrics>,
    chans: Vec<ChanMetrics>,
    transfers: u64,
    end_time: u64,
    first_compute: Option<u64>,
    last_compute: Option<u64>,
    wait_hist: BTreeMap<u64, u64>,
    /// Messages per virtual-time tick.
    time_msgs: BTreeMap<u64, u64>,
}

impl MetricsRecorder {
    pub fn new() -> MetricsRecorder {
        MetricsRecorder::default()
    }

    fn proc_mut(&mut self, pid: usize) -> Option<&mut ProcMetrics> {
        if pid == QUEUE_ENDPOINT {
            return None;
        }
        if pid >= self.procs.len() {
            self.procs.resize_with(pid + 1, ProcMetrics::default);
        }
        Some(&mut self.procs[pid])
    }

    /// Snapshot the aggregates (call after the run).
    pub fn report(&self) -> MetricsReport {
        let mut hist: Vec<(u64, u64)> = self.wait_hist.iter().map(|(&k, &v)| (k, v)).collect();
        hist.sort_unstable();
        let mut per_tick: BTreeMap<u64, u64> = BTreeMap::new();
        for &msgs in self.time_msgs.values() {
            *per_tick.entry(msgs).or_default() += 1;
        }
        MetricsReport {
            processes: self.procs.clone(),
            channels: self.chans.clone(),
            transfers: self.transfers,
            end_time: self.end_time,
            first_compute: self.first_compute,
            last_compute: self.last_compute,
            wait_hist: hist,
            msgs_per_time_hist: per_tick.into_iter().collect(),
        }
    }
}

impl Recorder for MetricsRecorder {
    fn start(&mut self, labels: &[String]) {
        if self.procs.len() < labels.len() {
            self.procs.resize_with(labels.len(), ProcMetrics::default);
        }
        for (p, l) in self.procs.iter_mut().zip(labels) {
            p.label = l.clone();
        }
    }

    fn transfer(&mut self, ev: &Transfer) {
        self.now = self.now.max(ev.time);
        self.transfers += 1;
        if ev.chan >= self.chans.len() {
            self.chans.resize_with(ev.chan + 1, ChanMetrics::default);
        }
        let c = &mut self.chans[ev.chan];
        if c.transfers == 0 {
            c.first_time = ev.time;
        }
        c.transfers += 1;
        c.last_time = ev.time;
        c.sender_wait += ev.sender_wait;
        c.receiver_wait += ev.receiver_wait;
        c.max_receiver_wait = c.max_receiver_wait.max(ev.receiver_wait);
        *self.wait_hist.entry(ev.receiver_wait).or_default() += 1;
        *self.time_msgs.entry(ev.time).or_default() += 1;
        if let Some(p) = self.proc_mut(ev.sender) {
            p.sent += 1;
        }
        if let Some(p) = self.proc_mut(ev.receiver) {
            p.received += 1;
        }
    }

    fn vm_op(&mut self, pid: usize, kind: OpKind, phase: Phase) {
        if phase == Phase::Compute {
            let t = self.now;
            self.first_compute.get_or_insert(t);
            self.last_compute = Some(t);
        }
        if let Some(p) = self.proc_mut(pid) {
            p.ops[kind as usize] += 1;
            p.phases[phase as usize] += 1;
        }
    }

    fn step(&mut self, time: u64, pid: usize) {
        self.now = self.now.max(time);
        if let Some(p) = self.proc_mut(pid) {
            p.steps += 1;
        }
    }

    fn finished(&mut self, time: u64, pid: usize) {
        self.now = self.now.max(time);
        if let Some(p) = self.proc_mut(pid) {
            p.finished_at = Some(time);
        }
    }

    fn end(&mut self, time: u64) {
        self.end_time = time;
    }
}

/// One event of a Perfetto trace, pre-rendering. Tracks are Chrome
/// (pid, tid) pairs: pid [`PerfettoRecorder::PROCESS_TRACKS`] hosts one
/// tid per process, pid [`PerfettoRecorder::CHANNEL_TRACKS`] one tid per
/// channel.
#[derive(Clone, Debug)]
pub struct PerfettoEvent {
    /// Chrome phase: `'X'` complete, `'i'` instant.
    pub ph: char,
    pub name: &'static str,
    pub pid: u32,
    pub tid: u64,
    /// Timestamp in trace microseconds (virtual time × time scale).
    pub ts: u64,
    /// Duration for `'X'` events.
    pub dur: u64,
    /// Numeric args rendered into the event's `args` object.
    pub args: Vec<(&'static str, i64)>,
}

/// Records the event stream as Chrome `trace_event` JSON, loadable in
/// <https://ui.perfetto.dev> (or `chrome://tracing`): one track per
/// process (its scheduler steps and termination) and one per channel
/// (its transfers, with value, endpoints, and waits as args).
pub struct PerfettoRecorder {
    labels: Vec<String>,
    /// Channel display names (`chan N` when unset) — the interp layer
    /// installs stream-and-coordinate names.
    chan_names: Vec<String>,
    events: Vec<PerfettoEvent>,
    n_chans: usize,
    /// Trace microseconds per unit of virtual time. The default (10)
    /// stretches cooperative rounds so slices are visible; for the
    /// threaded executors (already in µs) use 1.
    time_scale: u64,
    end_ts: u64,
}

impl Default for PerfettoRecorder {
    fn default() -> Self {
        PerfettoRecorder::new()
    }
}

impl PerfettoRecorder {
    /// Chrome pid hosting the per-process tracks.
    pub const PROCESS_TRACKS: u32 = 1;
    /// Chrome pid hosting the per-channel tracks.
    pub const CHANNEL_TRACKS: u32 = 2;

    pub fn new() -> PerfettoRecorder {
        PerfettoRecorder {
            labels: Vec::new(),
            chan_names: Vec::new(),
            events: Vec::new(),
            n_chans: 0,
            time_scale: 10,
            end_ts: 0,
        }
    }

    /// Install display names for channel tracks (index = [`ChanId`]).
    pub fn with_channel_names(mut self, names: Vec<String>) -> PerfettoRecorder {
        self.chan_names = names;
        self
    }

    /// Set the trace-µs-per-virtual-time-unit factor.
    pub fn with_time_scale(mut self, scale: u64) -> PerfettoRecorder {
        self.time_scale = scale.max(1);
        self
    }

    /// The recorded events (metadata excluded), for tests and tooling.
    pub fn events(&self) -> &[PerfettoEvent] {
        &self.events
    }

    /// Render the Chrome `trace_event` JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"traceEvents\": [\n");
        let mut first = true;
        let mut push = |line: String, s: &mut String| {
            if !first {
                s.push_str(",\n");
            }
            first = false;
            s.push_str("  ");
            s.push_str(&line);
        };
        push(
            format!(
                "{{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": {}, \"args\": {{\"name\": \"processes\"}}}}",
                Self::PROCESS_TRACKS
            ),
            &mut s,
        );
        push(
            format!(
                "{{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": {}, \"args\": {{\"name\": \"channels\"}}}}",
                Self::CHANNEL_TRACKS
            ),
            &mut s,
        );
        for (pid, label) in self.labels.iter().enumerate() {
            push(
                format!(
                    "{{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": {}, \"tid\": {}, \
                     \"args\": {{\"name\": \"{}\"}}}}",
                    Self::PROCESS_TRACKS,
                    pid,
                    json_escape(label)
                ),
                &mut s,
            );
        }
        for chan in 0..self.n_chans {
            let name = self
                .chan_names
                .get(chan)
                .cloned()
                .unwrap_or_else(|| format!("chan {chan}"));
            push(
                format!(
                    "{{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": {}, \"tid\": {}, \
                     \"args\": {{\"name\": \"{}\"}}}}",
                    Self::CHANNEL_TRACKS,
                    chan,
                    json_escape(&name)
                ),
                &mut s,
            );
        }
        for e in &self.events {
            let mut args = String::new();
            for (i, (k, v)) in e.args.iter().enumerate() {
                if i > 0 {
                    args.push_str(", ");
                }
                args.push_str(&format!("\"{k}\": {v}"));
            }
            let dur = if e.ph == 'X' {
                format!(", \"dur\": {}", e.dur)
            } else {
                // Instant events want a scope instead of a duration.
                ", \"s\": \"t\"".to_string()
            };
            push(
                format!(
                    "{{\"ph\": \"{}\", \"name\": \"{}\", \"cat\": \"systolic\", \"pid\": {}, \
                     \"tid\": {}, \"ts\": {}{}, \"args\": {{{}}}}}",
                    e.ph, e.name, e.pid, e.tid, e.ts, dur, args
                ),
                &mut s,
            );
        }
        s.push_str("\n], \"displayTimeUnit\": \"ms\"}\n");
        s
    }
}

impl Recorder for PerfettoRecorder {
    fn start(&mut self, labels: &[String]) {
        self.labels = labels.to_vec();
    }

    fn transfer(&mut self, ev: &Transfer) {
        self.n_chans = self.n_chans.max(ev.chan + 1);
        let mut args = vec![("value", ev.value)];
        if ev.sender != QUEUE_ENDPOINT {
            args.push(("sender", ev.sender as i64));
        }
        if ev.receiver != QUEUE_ENDPOINT {
            args.push(("receiver", ev.receiver as i64));
        }
        args.push(("sender_wait", ev.sender_wait as i64));
        args.push(("receiver_wait", ev.receiver_wait as i64));
        self.events.push(PerfettoEvent {
            ph: 'X',
            name: "xfer",
            pid: Self::CHANNEL_TRACKS,
            tid: ev.chan as u64,
            ts: ev.time * self.time_scale,
            dur: self.time_scale.max(2) * 4 / 5,
            args,
        });
    }

    fn step(&mut self, time: u64, pid: usize) {
        self.events.push(PerfettoEvent {
            ph: 'X',
            name: "step",
            pid: Self::PROCESS_TRACKS,
            tid: pid as u64,
            ts: time * self.time_scale,
            dur: self.time_scale.max(2) / 2,
            args: Vec::new(),
        });
    }

    fn finished(&mut self, time: u64, pid: usize) {
        self.events.push(PerfettoEvent {
            ph: 'i',
            name: "finished",
            pid: Self::PROCESS_TRACKS,
            tid: pid as u64,
            ts: time * self.time_scale,
            dur: 0,
            args: Vec::new(),
        });
    }

    fn end(&mut self, time: u64) {
        self.end_ts = time * self.time_scale;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coop::{ChannelPolicy, Network};
    use crate::procir::ProcIrBuilder;

    /// Run a builder's module under the given recorders.
    fn run_recorded(b: ProcIrBuilder, recorders: &[SharedRecorder]) -> crate::RunStats {
        let module = b.build(None);
        let inst = module.instantiate_recorded(recorders);
        let mut net = Network::new(ChannelPolicy::Rendezvous);
        for r in recorders {
            net.add_recorder(r.clone());
        }
        for p in inst.procs {
            net.add(p);
        }
        net.run().unwrap()
    }

    #[test]
    fn divergence_attribution_ignores_order_and_waits_but_not_substance() {
        let t = |time, chan, value, sender_wait| Transfer {
            time,
            chan,
            value,
            sender: 0,
            receiver: 1,
            sender_wait,
            receiver_wait: 0,
        };
        // Same substance, different within-round order and different
        // wait attribution: canonically identical.
        let mut a = vec![t(0, 1, 10, 0), t(0, 0, 20, 0), t(1, 0, 30, 2)];
        let mut b = vec![t(0, 0, 20, 5), t(0, 1, 10, 1), t(1, 0, 30, 0)];
        canonicalize_transfers(&mut a);
        canonicalize_transfers(&mut b);
        assert_eq!(first_divergence(&a, &b), None);
        // A changed value is substance: attributed at its canonical index.
        let mut c = vec![t(0, 0, 20, 0), t(0, 1, 99, 0), t(1, 0, 30, 0)];
        canonicalize_transfers(&mut c);
        assert_eq!(first_divergence(&a, &c), Some(1));
        // A missing tail transfer diverges at the shorter log's end.
        assert_eq!(first_divergence(&a, &a[..2]), Some(2));
    }

    /// Metrics totals reconcile with the VM step-count contract of
    /// docs/process-ir.md: source n+1, relay 2n+1, sink count+1.
    #[test]
    fn metrics_reconcile_with_step_count_contract() {
        let n = 5usize;
        let mut b = ProcIrBuilder::new();
        let values: Vec<Value> = (1..=n as i64).collect();
        b.source(0, &values, "src");
        b.relay(0, 1, n, "relay");
        b.sink(1, n, "sink");
        let (metrics, erased) = shared(MetricsRecorder::new());
        let stats = run_recorded(b, &[erased]);
        let report = metrics.lock().report();

        let steps: Vec<u64> = report.processes.iter().map(|p| p.steps).collect();
        assert_eq!(steps, vec![n as u64 + 1, 2 * n as u64 + 1, n as u64 + 1]);
        assert_eq!(steps.iter().sum::<u64>(), stats.steps);
        assert_eq!(report.transfers, stats.messages);
        assert_eq!(report.end_time, stats.rounds);
        let sent: u64 = report.processes.iter().map(|p| p.sent).sum();
        let received: u64 = report.processes.iter().map(|p| p.received).sum();
        assert_eq!(sent, stats.messages);
        assert_eq!(received, stats.messages);
        // Op counts: n emits, n pass cycles, n collects.
        assert_eq!(report.processes[0].ops[OpKind::Emit as usize], n as u64);
        assert_eq!(report.processes[1].ops[OpKind::Pass as usize], n as u64);
        assert_eq!(report.processes[2].ops[OpKind::Collect as usize], n as u64);
        // A relay is pure transport; the host fringe is host phase.
        assert_eq!(
            report.processes[1].phases[Phase::Transport as usize],
            n as u64
        );
        assert_eq!(report.processes[0].phases[Phase::Host as usize], n as u64);
        // Per-channel totals cover every message.
        let chan_total: u64 = report.channels.iter().map(|c| c.transfers).sum();
        assert_eq!(chan_total, stats.messages);
        // Labels came through `start`.
        assert_eq!(report.processes[0].label, "src");
        // Every process finished no later than the final round.
        for p in &report.processes {
            assert!(p.finished_at.unwrap() <= stats.rounds);
        }
    }

    /// Phase attribution on the canonical computation shape: keep = load,
    /// pre-compute passes = soak side, post-compute = drain side,
    /// eject = recover, and the makespan windows nest correctly.
    #[test]
    fn metrics_phase_breakdown_on_computation_process() {
        use crate::procir::{MovingLink, ProcOp};
        use std::sync::Arc as StdArc;
        let mut b = ProcIrBuilder::new();
        b.begin("comp");
        b.op(ProcOp::Keep { chan: 2, slot: 1 });
        b.op(ProcOp::Pass {
            inp: 0,
            out: 1,
            n: 1,
        });
        b.op(ProcOp::Compute { count: 2 });
        b.op(ProcOp::Pass {
            inp: 0,
            out: 1,
            n: 1,
        });
        b.op(ProcOp::Eject { chan: 3, slot: 1 });
        b.repeater(
            &[MovingLink {
                slot: 0,
                inp: 0,
                out: 1,
            }],
            &[5],
            &[1],
            2,
        );
        b.finish();
        b.source(0, &[100, 2, 3, 100], "a-in");
        b.source(2, &[0], "c-in");
        b.sink(1, 4, "a-out");
        b.sink(3, 1, "c-out");
        let module = b.build(Some(StdArc::new(|locals: &mut [Value], x: &[i64]| {
            locals[1] += locals[0] * x[0];
        })));
        let (metrics, erased) = shared(MetricsRecorder::new());
        let inst = module.instantiate_recorded(std::slice::from_ref(&erased));
        let mut net = Network::new(ChannelPolicy::Rendezvous);
        net.add_recorder(erased);
        for p in inst.procs {
            net.add(p);
        }
        let stats = net.run().unwrap();
        let report = metrics.lock().report();
        let comp = &report.processes[0];
        assert_eq!(comp.phases[Phase::Load as usize], 1, "one keep");
        assert_eq!(comp.phases[Phase::Soak as usize], 1, "one soak pass");
        assert_eq!(comp.phases[Phase::Compute as usize], 2, "two iterations");
        assert_eq!(comp.phases[Phase::Drain as usize], 1, "one drain pass");
        assert_eq!(comp.phases[Phase::Recover as usize], 1, "one eject");
        assert_eq!(comp.ops[OpKind::Compute as usize], 2);
        // Makespan windows: soak + compute + drain partitions the run.
        assert!(report.first_compute.is_some());
        assert!(report.compute_window() >= 1);
        assert!(
            report.soak_lead_in() + report.compute_window() + report.drain_tail()
                == report.end_time
        );
        assert_eq!(report.transfers, stats.messages);
    }

    /// Waits: a value crossing a 2-relay chain makes the sink's first
    /// receive wait for the pipeline to fill.
    #[test]
    fn receiver_waits_are_measured_in_rounds() {
        let mut b = ProcIrBuilder::new();
        b.source(0, &[1, 2, 3], "src");
        b.relay(0, 1, 3, "r0");
        b.relay(1, 2, 3, "r1");
        b.sink(2, 3, "sink");
        let (metrics, erased) = shared(MetricsRecorder::new());
        let stats = run_recorded(b, &[erased]);
        let report = metrics.lock().report();
        // The sink parks on channel 2 in round 0 but the first value
        // arrives only after crossing both relays.
        assert!(report.channels[2].max_receiver_wait >= 1);
        // Histogram covers every transfer.
        let hist_total: u64 = report.wait_hist.iter().map(|&(_, c)| c).sum();
        assert_eq!(hist_total, stats.messages);
        let tick_total: u64 = report.msgs_per_time_hist.iter().map(|&(k, c)| k * c).sum();
        assert_eq!(tick_total, stats.messages);
    }

    #[test]
    fn metrics_json_is_valid_and_stable_schema() {
        let mut b = ProcIrBuilder::new();
        b.source(0, &[1, 2], "src");
        b.sink(0, 2, "sink \"quoted\"");
        let (metrics, erased) = shared(MetricsRecorder::new());
        run_recorded(b, &[erased]);
        let json = metrics.lock().report().to_json();
        assert!(json.contains("\"schema\": \"systolic-metrics-v1\""));
        assert!(json.contains("\\\"quoted\\\""), "labels are escaped");
        validate_json(&json);
    }

    #[test]
    fn perfetto_trace_is_valid_json_with_monotone_tracks() {
        let mut b = ProcIrBuilder::new();
        b.source(0, &[1, 2, 3, 4], "src");
        b.relay(0, 1, 4, "relay");
        b.sink(1, 4, "sink");
        let (perfetto, erased) = shared(PerfettoRecorder::new());
        run_recorded(b, &[erased]);
        let rec = perfetto.lock();
        // Per-track timestamps are monotone non-decreasing.
        let mut last: std::collections::BTreeMap<(u32, u64), u64> = Default::default();
        assert!(!rec.events().is_empty());
        for e in rec.events() {
            let prev = last.entry((e.pid, e.tid)).or_insert(0);
            assert!(e.ts >= *prev, "track ({}, {}) went backwards", e.pid, e.tid);
            *prev = e.ts;
        }
        // Both track families are present, and transfers carry values.
        assert!(rec
            .events()
            .iter()
            .any(|e| e.pid == PerfettoRecorder::PROCESS_TRACKS));
        assert!(rec
            .events()
            .iter()
            .any(|e| e.pid == PerfettoRecorder::CHANNEL_TRACKS && e.name == "xfer"));
        let json = rec.to_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("thread_name"));
        validate_json(&json);
    }

    #[test]
    fn event_log_matches_run_traced() {
        let mk = || {
            let mut b = ProcIrBuilder::new();
            b.source(0, &[7, 8], "src");
            b.relay(0, 1, 2, "relay");
            b.sink(1, 2, "sink");
            b
        };
        let (log, erased) = shared(EventLogRecorder::new());
        run_recorded(mk(), &[erased]);
        let module = mk().build(None);
        let inst = module.instantiate();
        let mut net = Network::new(ChannelPolicy::Rendezvous);
        for p in inst.procs {
            net.add(p);
        }
        let (_, trace) = net.run_traced().unwrap();
        let log = log.lock();
        assert_eq!(log.transfers().len(), trace.len());
        for (t, ev) in log.transfers().iter().zip(&trace) {
            assert_eq!((t.time, t.chan, t.value), (ev.round, ev.chan, ev.value));
        }
    }

    /// A minimal JSON validator: structure only, enough to catch
    /// unbalanced braces, bad escapes, or trailing commas in the
    /// hand-rolled renderings.
    fn validate_json(s: &str) {
        let mut chars = s.chars().peekable();
        skip_ws(&mut chars);
        parse_value(&mut chars);
        skip_ws(&mut chars);
        assert!(chars.peek().is_none(), "trailing garbage after JSON value");
    }

    type Peek<'a> = std::iter::Peekable<std::str::Chars<'a>>;

    fn skip_ws(c: &mut Peek) {
        while matches!(c.peek(), Some(' ' | '\n' | '\t' | '\r')) {
            c.next();
        }
    }

    fn parse_value(c: &mut Peek) {
        skip_ws(c);
        match c.peek().expect("value expected") {
            '{' => {
                c.next();
                skip_ws(c);
                if c.peek() == Some(&'}') {
                    c.next();
                    return;
                }
                loop {
                    skip_ws(c);
                    parse_string(c);
                    skip_ws(c);
                    assert_eq!(c.next(), Some(':'), "expected ':'");
                    parse_value(c);
                    skip_ws(c);
                    match c.next() {
                        Some(',') => continue,
                        Some('}') => return,
                        other => panic!("expected ',' or '}}', got {other:?}"),
                    }
                }
            }
            '[' => {
                c.next();
                skip_ws(c);
                if c.peek() == Some(&']') {
                    c.next();
                    return;
                }
                loop {
                    parse_value(c);
                    skip_ws(c);
                    match c.next() {
                        Some(',') => continue,
                        Some(']') => return,
                        other => panic!("expected ',' or ']', got {other:?}"),
                    }
                }
            }
            '"' => parse_string(c),
            't' => expect_word(c, "true"),
            'f' => expect_word(c, "false"),
            'n' => expect_word(c, "null"),
            _ => parse_number(c),
        }
    }

    fn parse_string(c: &mut Peek) {
        assert_eq!(c.next(), Some('"'), "expected string");
        while let Some(ch) = c.next() {
            match ch {
                '"' => return,
                '\\' => {
                    let esc = c.next().expect("escape");
                    match esc {
                        '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' => {}
                        'u' => {
                            for _ in 0..4 {
                                assert!(c.next().is_some_and(|h| h.is_ascii_hexdigit()));
                            }
                        }
                        other => panic!("bad escape \\{other}"),
                    }
                }
                _ => {}
            }
        }
        panic!("unterminated string");
    }

    fn parse_number(c: &mut Peek) {
        let mut got = false;
        if c.peek() == Some(&'-') {
            c.next();
        }
        while matches!(c.peek(), Some('0'..='9' | '.' | 'e' | 'E' | '+' | '-')) {
            c.next();
            got = true;
        }
        assert!(got, "expected number");
    }

    fn expect_word(c: &mut Peek, word: &str) {
        for expected in word.chars() {
            assert_eq!(c.next(), Some(expected));
        }
    }
}
