//! The wavefront executor: a fourth execution engine that turns a
//! batch-eligible module into a topologically staged sweep.
//!
//! The paper's step function assigns every elaborated operation a global
//! time step, so in the steady state the whole array advances as a
//! sequence of *wavefronts*: all sources fire, then every process one
//! hop downstream, and so on. The batched executors already exploit the
//! per-channel half of this (ring buffers let a producer run a whole
//! batch ahead — see `crate::batch`), but they still visit processes in
//! ascending pid order, which interleaves producers and consumers
//! arbitrarily and costs many macro-sweeps before a value reaches the
//! far edge of the array. This module derives the wave structure once
//! per module — a [`WavefrontPlan`] — and executes it directly:
//!
//! 1. **Graph**: the batch analysis' unique producer/consumer maps give
//!    a process dependence graph (one edge per channel between distinct
//!    endpoints).
//! 2. **Condensation**: strongly connected components are collapsed
//!    (Tarjan, iterative); each SCC becomes one *chunk* that must be
//!    fixpointed as a unit (its members feed each other).
//! 3. **Leveling**: longest-path levels on the acyclic condensation
//!    assign every chunk a *wave*. Any edge strictly increases the
//!    level, so two chunks in the same wave share **no** channel — the
//!    producer and consumer of every channel either sit in one chunk or
//!    in different waves. That disjointness is what makes the parallel
//!    mode race-free: within a wave, each ring is touched by at most one
//!    running chunk, and chunks partition the processes outright.
//! 4. **Capacities**: every channel gets a ring sized to its whole
//!    traffic (clamped to [`WAVEFRONT_RING_CAP`]) instead of the batch
//!    width — including `Keep`/`Eject` channels, whose width-1 pin the
//!    plan overrides exactly as `analyze_with_caps` does for the
//!    optimizer's delay rings — so one topological pass usually drains
//!    the entire module.
//!
//! Execution then macro-steps each chunk to a local fixpoint, wave by
//! wave ([`ProcVm::macro_step`] is the same superinstruction engine the
//! batched executors use), repeating the pass until every process
//! retires; after the first pass only chunks a moving neighbour
//! re-dirtied are revisited, so the steady state sweeps the active
//! frontier, not the module. Kernel-eligible chunks of a wave may first
//! batch their Compute iterations through the compiled tape
//! (`crate::kernel`) before the sweep certifies the fixpoint. Under
//! [`WavefrontMode::Par`] the dirty chunks of a wave run on the
//! persistent worker pool (`crate::wavepool`) over a shared ring slab;
//! the plan's disjointness proof is the aliasing argument.
//!
//! Correctness is the Kahn-network story one more time (see
//! `docs/scheduler.md` and `docs/wavefront.md`): scheduling order and
//! buffer slack change neither the value streams nor the per-op logical
//! accounting, so stores stay bit-identical to the sequential oracle and
//! `messages`/`steps` invariant; only `rounds` (grand sweeps here)
//! differs, exactly as between the rendezvous and batched engines.

use crate::batch::{BatchPlan, Ring};
use crate::coop::{Deadlock, RunError, RunStats};
use crate::kernel::{kernel_wave, put_scratch, take_scratch, KernelPlan, KernelReport};
use crate::process::SinkBuffer;
use crate::procir::{ProcId, ProcIrModule, ProcVm};
use crate::wavepool::WavePool;
use std::cell::UnsafeCell;
use std::sync::Arc;

/// The widest ring the wavefront plan will grant a channel. Sized so a
/// whole steady phase of the gallery designs fits in one wave pass while
/// bounding memory on adversarial traffic; channels busier than this
/// simply take more grand sweeps.
pub const WAVEFRONT_RING_CAP: u64 = 4096;

/// Whether a run may take the wavefront path. `Auto` engages it whenever
/// the plan proves out under the same gate as batching (rendezvous
/// policy, no recorders, FIFO schedule hook); `Par` additionally runs
/// each wave's chunks on scoped threads; `Off` forces the batched or
/// rendezvous fallbacks (`--wavefront off`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WavefrontMode {
    #[default]
    Auto,
    Off,
    Par,
}

/// The derived wave structure of one module: which processes advance
/// together, in which order, over how much ring slack.
pub struct WavefrontPlan {
    /// `waves[w]` is the list of chunks of wave `w`; each chunk is one
    /// strongly connected component of the process graph, as a pid list.
    /// Chunks partition the processes; every channel's endpoints are in
    /// one chunk or in strictly increasing waves.
    pub waves: Vec<Vec<Vec<ProcId>>>,
    /// Ring capacity per channel (≥ the batch width).
    pub capacities: Vec<u64>,
    /// Per chunk (wave-major order, the executor's iteration order): the
    /// chunks sharing a channel with it — the set a move must re-dirty,
    /// since only a touch of a shared ring can unblock a blocked chunk.
    pub neighbors: Vec<Vec<u32>>,
    reject: Option<String>,
}

impl WavefrontPlan {
    /// Whether the module may be wavefront-executed at all.
    pub fn eligible(&self) -> bool {
        self.reject.is_none()
    }

    /// Why not, when [`WavefrontPlan::eligible`] is false.
    pub fn reject_reason(&self) -> Option<&str> {
        self.reject.as_deref()
    }

    pub fn n_waves(&self) -> usize {
        self.waves.len()
    }

    pub fn n_chunks(&self) -> usize {
        self.waves.iter().map(|w| w.len()).sum()
    }

    /// The widest ring the plan grants — how far the staged sweep can
    /// run ahead of a strict per-step schedule.
    pub fn max_capacity(&self) -> u64 {
        self.capacities.iter().copied().max().unwrap_or(0)
    }

    /// Fresh rings for one run, capacities from the plan.
    pub fn rings(&self) -> Vec<Ring> {
        self.capacities
            .iter()
            .map(|&k| Ring::new(k as usize))
            .collect()
    }
}

/// Derive the wave structure from a module and its batch analysis. A
/// module the batch proof rejects is ineligible with the same reason —
/// the wavefront executor inherits every safety obligation of the
/// batched ones and adds the staging on top.
pub fn analyze_wavefront(module: &ProcIrModule, plan: &BatchPlan) -> WavefrontPlan {
    if let Some(r) = plan.reject_reason() {
        return WavefrontPlan {
            waves: Vec::new(),
            capacities: Vec::new(),
            neighbors: Vec::new(),
            reject: Some(r.to_string()),
        };
    }
    let n = module.procs.len();

    // Process dependence graph from the proven unique endpoints.
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for c in 0..module.n_chans {
        if let (Some(p), Some(q)) = (plan.producer_of[c], plan.consumer_of[c]) {
            if p != q {
                succs[p].push(q);
            }
        }
    }
    for s in &mut succs {
        s.sort_unstable();
        s.dedup();
    }

    let comp = tarjan_sccs(&succs);
    let n_comps = comp.count;

    // Longest-path level per SCC on the condensation (Kahn order).
    let mut cedges: Vec<Vec<usize>> = vec![Vec::new(); n_comps];
    let mut indeg = vec![0usize; n_comps];
    for (u, ss) in succs.iter().enumerate() {
        for &v in ss {
            let (cu, cv) = (comp.of[u], comp.of[v]);
            if cu != cv {
                cedges[cu].push(cv);
            }
        }
    }
    for es in &mut cedges {
        es.sort_unstable();
        es.dedup();
        for &v in es.iter() {
            indeg[v] += 1;
        }
    }
    let mut level = vec![0usize; n_comps];
    let mut queue: Vec<usize> = (0..n_comps).filter(|&c| indeg[c] == 0).collect();
    let mut seen = 0;
    while let Some(u) = queue.pop() {
        seen += 1;
        for &v in &cedges[u] {
            level[v] = level[v].max(level[u] + 1);
            indeg[v] -= 1;
            if indeg[v] == 0 {
                queue.push(v);
            }
        }
    }
    debug_assert_eq!(seen, n_comps, "condensation must be acyclic");

    // Wave -> chunks, members in ascending pid order for determinism.
    let n_waves = level.iter().map(|&l| l + 1).max().unwrap_or(0);
    let mut chunk_of_comp: Vec<Vec<ProcId>> = vec![Vec::new(); n_comps];
    for pid in 0..n {
        chunk_of_comp[comp.of[pid]].push(pid);
    }
    let mut waves: Vec<Vec<Vec<ProcId>>> = vec![Vec::new(); n_waves];
    // Visit components in ascending first-pid order so the wave layout
    // (and thus the deterministic execution order) is reproducible.
    let mut order: Vec<usize> = (0..n_comps).collect();
    order.sort_unstable_by_key(|&c| chunk_of_comp[c].first().copied().unwrap_or(usize::MAX));
    for c in order {
        if !chunk_of_comp[c].is_empty() {
            waves[level[c]].push(std::mem::take(&mut chunk_of_comp[c]));
        }
    }

    // Ring capacities: every channel widens to its whole proven traffic
    // (so one topological pass can drain a steady phase outright),
    // clamped for memory, never below the batch width the optimizer's
    // delay rings may require. This deliberately overrides the batch
    // analysis' `Keep`/`Eject` width-1 pin — the same override
    // `analyze_with_caps` grants the optimizer's delay rings, and safe
    // for the same reason: extra ring slack never changes a Kahn
    // network's streams or its per-op logical accounting, only its
    // timing. Keeping the pin would throttle every pass to one value per
    // load/recover channel, forcing O(n) passes on designs with
    // stationary values.
    let capacities: Vec<u64> = (0..module.n_chans)
        .map(|c| plan.widths[c].max(plan.traffic[c].clamp(1, WAVEFRONT_RING_CAP)))
        .collect();

    // Chunk adjacency in the executor's wave-major order: for every
    // channel between distinct chunks, each endpoint must re-dirty the
    // other when it moves (new data downstream, freed space upstream).
    let mut chunk_of_pid = vec![usize::MAX; n];
    let mut next = 0usize;
    for wave in &waves {
        for chunk in wave {
            for &pid in chunk {
                chunk_of_pid[pid] = next;
            }
            next += 1;
        }
    }
    let mut neighbors: Vec<Vec<u32>> = vec![Vec::new(); next];
    for c in 0..module.n_chans {
        if let (Some(p), Some(q)) = (plan.producer_of[c], plan.consumer_of[c]) {
            let (cp, cq) = (chunk_of_pid[p], chunk_of_pid[q]);
            if cp != cq {
                neighbors[cp].push(cq as u32);
                neighbors[cq].push(cp as u32);
            }
        }
    }
    for ns in &mut neighbors {
        ns.sort_unstable();
        ns.dedup();
    }

    WavefrontPlan {
        waves,
        capacities,
        neighbors,
        reject: None,
    }
}

/// The SCC partition of a directed graph: `of[v]` is the component index
/// of vertex `v`, `count` the number of components.
struct Components {
    of: Vec<usize>,
    count: usize,
}

/// Iterative Tarjan (explicit stack — elaborated modules reach thousands
/// of processes, and relay pipes make long paths).
fn tarjan_sccs(succs: &[Vec<usize>]) -> Components {
    let n = succs.len();
    const UNSEEN: usize = usize::MAX;
    let mut index = vec![UNSEEN; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![UNSEEN; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut count = 0usize;
    // (vertex, next child position) call frames.
    let mut frames: Vec<(usize, usize)> = Vec::new();

    for root in 0..n {
        if index[root] != UNSEEN {
            continue;
        }
        frames.push((root, 0));
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;
        while let Some(&mut (v, ref mut child)) = frames.last_mut() {
            if *child < succs[v].len() {
                let w = succs[v][*child];
                *child += 1;
                if index[w] == UNSEEN {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp[w] = count;
                        if w == v {
                            break;
                        }
                    }
                    count += 1;
                }
            }
        }
    }
    Components { of: comp, count }
}

/// The shared channel slab the wave chunks step over. Interior
/// mutability with a manual `Sync`: the [`WavefrontPlan`] guarantees
/// that within one wave each ring index is accessed by at most one
/// chunk, and waves are separated by the `thread::scope` join barrier,
/// so no two threads ever alias a cell.
pub(crate) struct RingSlab {
    cells: Vec<UnsafeCell<Ring>>,
}

unsafe impl Sync for RingSlab {}

/// One chunk's private indexing view over the shared slab; satisfies the
/// `IndexMut` bound of [`ProcVm::macro_step`].
pub(crate) struct SlabView<'a>(pub(crate) &'a RingSlab);

impl std::ops::Index<usize> for SlabView<'_> {
    type Output = Ring;
    fn index(&self, i: usize) -> &Ring {
        unsafe { &*self.0.cells[i].get() }
    }
}

impl std::ops::IndexMut<usize> for SlabView<'_> {
    fn index_mut(&mut self, i: usize) -> &mut Ring {
        unsafe { &mut *self.0.cells[i].get() }
    }
}

/// One chunk's execution state: its member VMs (owned — chunks partition
/// the processes), per-member completion, and a private stats
/// accumulator merged after the run (the logical counts are per-op sums,
/// so the merge order is immaterial).
pub(crate) struct ChunkRunner {
    pub(crate) pids: Vec<ProcId>,
    pub(crate) vms: Vec<ProcVm>,
    pub(crate) finished: Vec<bool>,
    pub(crate) left: usize,
    pub(crate) stats: RunStats,
    /// Ring pushes/pops this chunk made in the latest wave visit
    /// (reset when the wave loop claims the chunk).
    pub(crate) moved: u64,
}

impl ChunkRunner {
    /// Macro-step the chunk to a local fixpoint against the slab. A
    /// single-member chunk needs exactly one call (`macro_step` is
    /// already greedy to blockage); a cyclic chunk iterates until a pass
    /// moves nothing.
    fn sweep(&mut self, slab: &RingSlab) {
        let mut view = SlabView(slab);
        loop {
            let mut pass_moved = 0u64;
            for i in 0..self.vms.len() {
                if self.finished[i] {
                    continue;
                }
                if self.vms[i].macro_step(&mut view, &mut self.stats, &mut pass_moved) {
                    self.finished[i] = true;
                    self.left -= 1;
                }
            }
            self.moved += pass_moved;
            if pass_moved == 0 || self.pids.len() == 1 {
                break;
            }
        }
    }
}

/// Minimum live processes in a wave's worklist before [`WavefrontMode::Par`]
/// spawns threads for it — below this the scope setup costs more than the
/// chunk sweeps it distributes.
const PAR_MEMBER_THRESHOLD: usize = 64;

/// Run a module through its wavefront plan: passes of topologically
/// staged chunk fixpoints until every process retires. Chunks are
/// *dirty-tracked*: after the first pass a chunk is re-swept only when a
/// neighbour moved values through a shared ring (new data downstream,
/// freed space upstream) — a blocked chunk cannot otherwise have become
/// runnable, so the steady state sweeps the active frontier instead of
/// the whole module. `parallel` runs a wave's dirty chunks on scoped
/// threads when there is enough live work ([`WavefrontMode::Par`]); the
/// sequential mode visits them in wave-major order — both produce
/// identical stores and identical `messages`/`steps` (chunk-local
/// accounting of a deterministic per-chunk execution). `stats.rounds`
/// counts passes. A pass that moves nothing with unfinished processes
/// left is a deadlock, reported in the engines' usual `label [wait,...]`
/// shape.
///
/// `kernels` (from [`crate::kernel::analyze_kernels`], memoized
/// upstream) switches eligible chunks onto the struct-of-arrays kernel
/// path before each wave's ordinary sweep; `None` (`--kernel off`, or a
/// module without a compiled kernel) runs everything scalar. Either way
/// the stores and the logical `messages`/`steps` are identical — the
/// returned [`KernelReport`] is the only observable difference.
pub fn run_wavefront(
    module: &Arc<ProcIrModule>,
    plan: &WavefrontPlan,
    kernels: Option<&KernelPlan>,
    parallel: bool,
) -> Result<(RunStats, Vec<SinkBuffer>, KernelReport), RunError> {
    debug_assert!(plan.eligible(), "caller checks WavefrontPlan::eligible");
    let (vms, outputs) = module.instantiate_vms();
    let n_procs = vms.len();
    let slab = RingSlab {
        cells: plan.rings().into_iter().map(UnsafeCell::new).collect(),
    };

    // Flatten the chunks wave-major — the same order `plan.neighbors` is
    // indexed in — remembering each wave's chunk range for the parallel
    // mode's barrier structure.
    let mut pool: Vec<Option<ProcVm>> = vms.into_iter().map(Some).collect();
    let mut runners: Vec<ChunkRunner> = Vec::with_capacity(plan.n_chunks());
    let mut wave_ranges: Vec<std::ops::Range<usize>> = Vec::with_capacity(plan.waves.len());
    for wave in &plan.waves {
        let start = runners.len();
        for chunk in wave {
            runners.push(ChunkRunner {
                pids: chunk.clone(),
                vms: chunk
                    .iter()
                    .map(|&pid| pool[pid].take().expect("chunks partition the processes"))
                    .collect(),
                finished: vec![false; chunk.len()],
                left: chunk.len(),
                stats: RunStats::default(),
                moved: 0,
            });
        }
        wave_ranges.push(start..runners.len());
    }
    let n_chunks = runners.len();

    // Kernel eligibility, aligned with the runners' wave-major order.
    let kernel = kernels
        .filter(|kp| kp.any_eligible())
        .and_then(|_| module.kernel.as_deref());
    let mut kreport = match kernels {
        Some(kp) => kp.report(true),
        None => KernelReport::default(),
    };
    let kern_ok: &[bool] = match kernels {
        Some(kp) if kernel.is_some() => {
            debug_assert_eq!(kp.chunk_ok.len(), n_chunks, "plan/chunk order mismatch");
            &kp.chunk_ok
        }
        _ => &[],
    };
    let mut scratch = take_scratch();
    let mut kern_work: Vec<usize> = Vec::new();

    let pool = if parallel { Some(WavePool::global()) } else { None };
    let workers = pool.map(|p| p.workers()).unwrap_or(1);

    let mut dirty = vec![true; n_chunks];
    let mut work: Vec<usize> = Vec::with_capacity(n_chunks);
    let mut unfinished = n_procs;
    let mut rounds = 0u64;
    while unfinished > 0 {
        let mut moved = 0u64;
        for range in &wave_ranges {
            // This wave's worklist: dirty, unfinished chunks. Claiming
            // clears the flag (and the move counter); a neighbour's
            // move below re-sets it.
            work.clear();
            for k in range.clone() {
                if dirty[k] && runners[k].left > 0 {
                    dirty[k] = false;
                    runners[k].moved = 0;
                    work.push(k);
                }
            }
            if work.is_empty() {
                continue;
            }
            // Kernel phase: batch the wave's eligible chunks through
            // the compiled tape; their trailing sweep below only drains
            // post-compute ops and certifies the fixpoint.
            if let Some(kern) = kernel {
                kern_work.clear();
                kern_work.extend(work.iter().copied().filter(|&k| kern_ok[k]));
                if !kern_work.is_empty()
                    && kernel_wave(
                        kern,
                        &kern_work,
                        &mut runners,
                        &slab,
                        &mut scratch,
                        &mut kreport,
                    )
                {
                    kreport.waves_fused += 1;
                }
            }
            let live: usize = work.iter().map(|&k| runners[k].left).sum();
            if parallel && work.len() > 1 && live >= PAR_MEMBER_THRESHOLD {
                // Same-wave chunks share no rings (the plan's leveling
                // invariant), so slices of the worklist may sweep the
                // shared slab concurrently; the pool scope's latch is
                // the wave barrier (the same join semantics the old
                // per-run `thread::scope` provided, minus the per-run
                // thread spawn — see `crate::wavepool`).
                let per = work.len().div_ceil(workers);
                let mut parts: Vec<Vec<&mut ChunkRunner>> = Vec::new();
                {
                    let mut rest = &mut runners[..];
                    let mut base = 0usize;
                    for ids in work.chunks(per) {
                        let mut part = Vec::with_capacity(ids.len());
                        for &k in ids {
                            let (skip, tail) = rest.split_at_mut(k - base);
                            let (head, tail) = tail.split_first_mut().unwrap();
                            let _ = skip;
                            part.push(head);
                            rest = tail;
                            base = k + 1;
                        }
                        parts.push(part);
                    }
                }
                let slab_ref = &slab;
                let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = parts
                    .into_iter()
                    .map(|part| {
                        Box::new(move || {
                            for chunk in part {
                                chunk.sweep(slab_ref);
                            }
                        }) as Box<dyn FnOnce() + Send + '_>
                    })
                    .collect();
                pool.expect("parallel implies pool").scope(tasks);
            } else {
                for &k in &work {
                    runners[k].sweep(&slab);
                }
            }
            for &k in &work {
                let c = &runners[k];
                moved += c.moved;
                if c.moved > 0 {
                    for &nb in &plan.neighbors[k] {
                        dirty[nb as usize] = true;
                    }
                }
            }
        }
        rounds += 1;
        unfinished = runners.iter().map(|c| c.left).sum();
        if moved == 0 && unfinished > 0 {
            let blocked = runners
                .iter()
                .flat_map(|c| {
                    c.pids
                        .iter()
                        .zip(&c.finished)
                        .zip(&c.vms)
                        .filter(|((_, &f), _)| !f)
                        .map(|((&pid, _), vm)| {
                            let wait = vm.macro_wait().unwrap_or_default();
                            format!("{} [{}]", module.label_of(pid), wait)
                        })
                })
                .collect();
            put_scratch(scratch);
            return Err(RunError::Deadlock(Deadlock { blocked }));
        }
    }
    put_scratch(scratch);

    let mut stats = RunStats {
        rounds,
        messages: 0,
        processes: n_procs,
        steps: 0,
    };
    for chunk in &runners {
        stats.messages += chunk.stats.messages;
        stats.steps += chunk.stats.steps;
    }
    Ok((stats, outputs, kreport))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::analyze;
    use crate::coop::run_coop_batched;
    use crate::procir::ProcIrBuilder;

    fn pipeline_module() -> Arc<ProcIrModule> {
        let mut b = ProcIrBuilder::new();
        let vals: Vec<i64> = (0..200).collect();
        b.source(0, &vals, "src");
        b.relay(0, 1, 200, "relay-a");
        b.relay(1, 2, 200, "relay-b");
        b.sink(2, 200, "sink");
        b.build(None)
    }

    #[test]
    fn plan_stages_a_pipeline_into_one_wave_chain() {
        let m = pipeline_module();
        let plan = analyze(&m);
        let wf = analyze_wavefront(&m, &plan);
        assert!(wf.eligible(), "{:?}", wf.reject_reason());
        assert_eq!(wf.n_waves(), 4, "src -> relay -> relay -> sink");
        assert_eq!(wf.n_chunks(), 4);
        // Traffic-wide rings: the whole stream fits in one pass.
        assert_eq!(wf.max_capacity(), 200);
    }

    #[test]
    fn wavefront_matches_the_batched_run_bit_for_bit() {
        let m = pipeline_module();
        let plan = analyze(&m);
        let wf = analyze_wavefront(&m, &plan);
        let (bs, bout) = run_coop_batched(&m, &plan).unwrap();
        for parallel in [false, true] {
            let (ws, wout, _) = run_wavefront(&m, &wf, None, parallel).unwrap();
            assert_eq!(ws.messages, bs.messages, "parallel={parallel}");
            assert_eq!(ws.steps, bs.steps, "parallel={parallel}");
            assert_eq!(ws.processes, bs.processes);
            for (a, b) in bout.iter().zip(&wout) {
                assert_eq!(*a.lock(), *b.lock(), "parallel={parallel}");
            }
        }
    }

    #[test]
    fn a_pipeline_drains_in_a_constant_number_of_grand_sweeps() {
        let m = pipeline_module();
        let plan = analyze(&m);
        let wf = analyze_wavefront(&m, &plan);
        let (ws, _, _) = run_wavefront(&m, &wf, None, false).unwrap();
        // Topological order + traffic-wide rings: the whole 200-value
        // stream flows source->sink in the first grand sweep.
        assert_eq!(ws.rounds, 1, "one grand sweep drains the pipeline");
        let (bs, _) = run_coop_batched(&m, &plan).unwrap();
        assert!(
            bs.rounds >= ws.rounds,
            "pid-order sweeps ({}) cannot beat staged ones ({})",
            bs.rounds,
            ws.rounds
        );
    }

    #[test]
    fn cyclic_chunks_fixpoint_instead_of_deadlocking() {
        // a <-> b exchange: one SCC, one chunk, one wave.
        let mut b = ProcIrBuilder::new();
        b.begin("ping");
        b.emit(0, 7);
        b.op(crate::procir::ProcOp::Pass {
            inp: 1,
            out: 0,
            n: 9,
        });
        b.op(crate::procir::ProcOp::Collect { chan: 1 });
        b.finish();
        b.relay(0, 1, 10, "pong");
        let m = b.build(None);
        let plan = analyze(&m);
        assert!(plan.batchable(), "{:?}", plan.reject_reason());
        let wf = analyze_wavefront(&m, &plan);
        assert!(wf.eligible());
        assert_eq!(wf.n_waves(), 1);
        assert_eq!(wf.n_chunks(), 1, "the cycle is one chunk");
        let (ws, _, _) = run_wavefront(&m, &wf, None, false).unwrap();
        let (bs, _) = run_coop_batched(&m, &plan).unwrap();
        assert_eq!((ws.messages, ws.steps), (bs.messages, bs.steps));
    }

    #[test]
    fn ineligible_modules_carry_the_batch_reason() {
        let mut b = ProcIrBuilder::new();
        b.source(0, &[1], "src-a");
        b.source(0, &[2], "src-b");
        b.sink(0, 2, "sink");
        let m = b.build(None);
        let plan = analyze(&m);
        let wf = analyze_wavefront(&m, &plan);
        assert!(!wf.eligible());
        assert!(wf.reject_reason().unwrap().contains("two producers"));
    }

    /// A one-cell compute module (`c := c + a` over 3 iterations, `a`
    /// moving) with both the closure body and its compiled kernel tape
    /// attached — the smallest module that exercises the full
    /// gather/tape/scatter cycle.
    fn compute_module() -> Arc<ProcIrModule> {
        use crate::kernel::{Kernel, KernelOp};
        use crate::procir::{MovingLink, ProcOp};
        let mut b = ProcIrBuilder::new();
        b.begin("comp");
        b.op(ProcOp::Keep { chan: 2, slot: 1 });
        b.op(ProcOp::Compute { count: 3 });
        b.op(ProcOp::Eject { chan: 3, slot: 1 });
        b.repeater(
            &[MovingLink {
                slot: 0,
                inp: 0,
                out: 1,
            }],
            &[0],
            &[1],
            2,
        );
        b.finish();
        b.source(0, &[2, 3, 4], "a-in");
        b.source(2, &[10], "c-in");
        b.sink(1, 3, "a-out");
        b.sink(3, 1, "c-out");
        b.set_kernel(
            Some(Arc::new(Kernel {
                ops: vec![KernelOp::Slot(1), KernelOp::Slot(0), KernelOp::Add(0, 1)],
                writes: vec![(1, 2)],
                n_slots: 2,
                n_dims: 0,
            })),
            None,
        );
        b.build(Some(Arc::new(
            |locals: &mut [crate::process::Value], _x: &[i64]| {
                locals[1] += locals[0];
            },
        )))
    }

    #[test]
    fn kernel_path_matches_the_scalar_run_bit_for_bit() {
        use crate::kernel::analyze_kernels;
        let m = compute_module();
        let plan = analyze(&m);
        assert!(plan.batchable(), "{:?}", plan.reject_reason());
        let wf = analyze_wavefront(&m, &plan);
        let kp = analyze_kernels(&m, &wf);
        assert!(kp.compiled, "{:?}", kp.reject);
        assert_eq!(kp.eligible_chunks, 1, "{:?}", kp.chunk_reject);
        let (ss, souts, soff) = run_wavefront(&m, &wf, None, false).unwrap();
        assert!(!soff.enabled);
        assert_eq!(soff.iterations, 0);
        let (ks, kouts, kon) = run_wavefront(&m, &wf, Some(&kp), false).unwrap();
        assert!(kon.enabled && kon.compiled);
        assert_eq!(kon.iterations, 3, "all repeater iterations fused");
        assert!(kon.waves_fused >= 1);
        assert_eq!(ks, ss, "logical stats invariant across kernel gate");
        for (a, b) in souts.iter().zip(&kouts) {
            assert_eq!(*a.lock(), *b.lock());
        }
        assert_eq!(*kouts[1].lock(), vec![10 + 2 + 3 + 4]);
    }

    #[test]
    fn transport_chunks_fall_back_with_a_reason() {
        use crate::kernel::analyze_kernels;
        let m = compute_module();
        let plan = analyze(&m);
        let wf = analyze_wavefront(&m, &plan);
        let kp = analyze_kernels(&m, &wf);
        let fallbacks = kp.fallbacks();
        assert!(
            fallbacks
                .iter()
                .any(|(r, n)| r.contains("transport process") && *n == 4),
            "sources and sinks stay scalar: {fallbacks:?}"
        );
    }

    #[test]
    fn ring_cap_clamp_survives_u64_max_traffic() {
        // Adversarial traffic sums must clamp to WAVEFRONT_RING_CAP
        // without overflowing the capacity arithmetic — the same
        // boundary the PR 5 `Pass::n` width regression pins, one layer
        // up. Named alongside `batch_width_math_survives_u32_overflow`.
        let m = pipeline_module();
        let mut plan = analyze(&m);
        for t in &mut plan.traffic {
            *t = u64::MAX;
        }
        let wf = analyze_wavefront(&m, &plan);
        assert!(wf.eligible());
        for (c, &cap) in wf.capacities.iter().enumerate() {
            assert_eq!(cap, plan.widths[c].max(WAVEFRONT_RING_CAP), "channel {c}");
        }
        // One below the clamp stays exact; the rings then allocate.
        for t in &mut plan.traffic {
            *t = WAVEFRONT_RING_CAP - 1;
        }
        let wf = analyze_wavefront(&m, &plan);
        for (c, &cap) in wf.capacities.iter().enumerate() {
            assert_eq!(cap, plan.widths[c].max(WAVEFRONT_RING_CAP - 1), "channel {c}");
        }
        assert_eq!(wf.rings().len(), plan.widths.len());
    }

    #[test]
    fn warm_parallel_runs_reuse_the_pool_with_identical_stats() {
        // A module wide enough to clear PAR_MEMBER_THRESHOLD so the
        // parallel path actually engages the pool.
        let mut b = ProcIrBuilder::new();
        let vals: Vec<i64> = (0..8).collect();
        for i in 0..80usize {
            let (cin, cout) = (2 * i, 2 * i + 1);
            b.source(cin, &vals, format!("src-{i}"));
            b.relay(cin, cout, vals.len(), format!("relay-{i}"));
            b.sink(cout, vals.len(), format!("sink-{i}"));
        }
        let m = b.build(None);
        let plan = analyze(&m);
        let wf = analyze_wavefront(&m, &plan);
        let (first, fouts, _) = run_wavefront(&m, &wf, None, true).unwrap();
        let spawned = crate::wavepool::WavePool::global().threads_spawned();
        let executed = crate::wavepool::WavePool::global().tasks_executed();
        for _ in 0..3 {
            let (s, outs, _) = run_wavefront(&m, &wf, None, true).unwrap();
            assert_eq!(s, first, "warm stats identical across repeated runs");
            for (a, b) in fouts.iter().zip(&outs) {
                assert_eq!(*a.lock(), *b.lock());
            }
        }
        assert_eq!(
            crate::wavepool::WavePool::global().threads_spawned(),
            spawned,
            "warm runs must not spawn threads"
        );
        assert!(
            crate::wavepool::WavePool::global().tasks_executed() > executed,
            "warm runs route their sweeps through the pool"
        );
    }

    #[test]
    fn deadlock_reports_the_blocked_wait() {
        // A sink expecting more than the source sends: the run wedges
        // with the sink waiting on a recv.
        let mut b = ProcIrBuilder::new();
        b.source(0, &[1, 2], "src");
        b.sink(0, 3, "sink");
        let m = b.build(None);
        // Force the plan past the (unbalanced-traffic) batch proof so
        // the executor's own deadlock reporting is exercised.
        let plan = analyze(&m);
        assert!(!plan.batchable());
        let plan = plan.assume_proven();
        let wf = analyze_wavefront(&m, &plan);
        let err = run_wavefront(&m, &wf, None, false).unwrap_err();
        let RunError::Deadlock(d) = err else {
            panic!("expected a deadlock, got {err:?}");
        };
        assert!(d.blocked.iter().any(|b| b.contains("recv@0")), "{d:?}");
    }
}
