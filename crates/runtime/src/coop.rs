//! The cooperative, deterministic scheduler.
//!
//! Generated systolic programs have no data-dependent control flow, so a
//! single-threaded round-based simulation is faithful to the asynchronous
//! semantics (any interleaving yields the same results — the Sec. 4
//! correctness argument) while also *measuring* the lock-step lower bound:
//! one **round** completes every rendezvous that is enabled at its start,
//! mirroring the global clock tick of the hardware array.
//!
//! Deadlock is detected exactly: unfinished processes with no enabled
//! rendezvous.

use crate::process::{ChanId, CommReq, Process, Value};
use std::collections::HashMap;

/// Channel behaviour for the ablation experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChannelPolicy {
    /// Pure synchronous rendezvous (the paper's model, Sec. 4).
    Rendezvous,
    /// Buffered with the given positive capacity: a send completes
    /// immediately while fewer than `cap` values are in flight.
    Buffered(usize),
}

/// Execution statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Rendezvous rounds — the virtual systolic clock.
    pub rounds: u64,
    /// Total values transferred over channels.
    pub messages: u64,
    /// Number of processes that ran.
    pub processes: usize,
    /// Total `step` invocations across processes.
    pub steps: u64,
}

/// A deadlock: the blocked processes and what they wait on.
#[derive(Clone, Debug)]
pub struct Deadlock {
    pub blocked: Vec<String>,
}

impl std::fmt::Display for Deadlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deadlock: {} process(es) blocked: ", self.blocked.len())?;
        for (i, b) in self.blocked.iter().take(8).enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{b}")?;
        }
        if self.blocked.len() > 8 {
            write!(f, "; ...")?;
        }
        Ok(())
    }
}

impl std::error::Error for Deadlock {}

struct ProcState {
    proc: Box<dyn Process>,
    /// Pending requests with completion marks.
    pending: Vec<(CommReq, bool)>,
    /// Values received for pending `Recv`s, by request index.
    inbox: Vec<Option<Value>>,
    finished: bool,
}

impl ProcState {
    fn all_complete(&self) -> bool {
        self.pending.iter().all(|&(_, done)| done)
    }

    fn collect_received(&mut self) -> Vec<Value> {
        let mut vals = Vec::new();
        for (i, (req, _)) in self.pending.iter().enumerate() {
            if !req.is_send() {
                vals.push(self.inbox[i].take().expect("recv completed without value"));
            }
        }
        vals
    }
}

/// One recorded channel transfer (for space-time diagrams and debugging).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// The rendezvous round in which the transfer fired.
    pub round: u64,
    pub chan: ChanId,
    pub value: Value,
}

/// A network of processes plus channel state, run to completion by
/// [`Network::run`].
pub struct Network {
    procs: Vec<ProcState>,
    policy: ChannelPolicy,
    /// In-flight buffered values per channel.
    queues: HashMap<ChanId, std::collections::VecDeque<Value>>,
    stats: RunStats,
    trace: Option<Vec<TraceEvent>>,
}

impl Network {
    pub fn new(policy: ChannelPolicy) -> Network {
        Network {
            procs: Vec::new(),
            policy,
            queues: HashMap::new(),
            stats: RunStats::default(),
            trace: None,
        }
    }

    /// Record every channel transfer; retrieve with [`Network::run_traced`].
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// Run to completion, returning the statistics and the recorded
    /// trace of every channel transfer.
    pub fn run_traced(mut self) -> Result<(RunStats, Vec<TraceEvent>), Deadlock> {
        self.enable_trace();
        let stats = self.run_inner()?;
        let trace = self.trace.take().unwrap_or_default();
        Ok((stats, trace))
    }

    /// Add a process; returns its index.
    pub fn add(&mut self, proc: Box<dyn Process>) -> usize {
        self.procs.push(ProcState {
            proc,
            pending: Vec::new(),
            inbox: Vec::new(),
            finished: false,
        });
        self.procs.len() - 1
    }

    /// Run all processes to completion. Returns statistics, or the
    /// deadlock if progress stops.
    pub fn run(mut self) -> Result<RunStats, Deadlock> {
        self.run_inner()
    }

    fn run_inner(&mut self) -> Result<RunStats, Deadlock> {
        self.stats.processes = self.procs.len();
        // Prime every process.
        for i in 0..self.procs.len() {
            self.advance(i, Vec::new());
        }
        loop {
            if self.procs.iter().all(|p| p.finished) {
                return Ok(self.stats.clone());
            }
            let fired = self.round();
            if fired == 0 {
                let blocked = self
                    .procs
                    .iter()
                    .filter(|p| !p.finished)
                    .map(|p| {
                        let waits: Vec<String> = p
                            .pending
                            .iter()
                            .filter(|&&(_, done)| !done)
                            .map(|(r, _)| match r {
                                CommReq::Send { chan, .. } => format!("send@{chan}"),
                                CommReq::Recv { chan } => format!("recv@{chan}"),
                            })
                            .collect();
                        format!("{} [{}]", p.proc.label(), waits.join(","))
                    })
                    .collect();
                return Err(Deadlock { blocked });
            }
            self.stats.rounds += 1;
        }
    }

    /// Feed `received` into process `i` and register its next comm set.
    fn advance(&mut self, i: usize, received: Vec<Value>) {
        let reqs = self.procs[i].proc.step(&received);
        self.stats.steps += 1;
        if reqs.is_empty() {
            self.procs[i].finished = true;
            self.procs[i].pending.clear();
            self.procs[i].inbox.clear();
            return;
        }
        let n = reqs.len();
        self.procs[i].pending = reqs.into_iter().map(|r| (r, false)).collect();
        self.procs[i].inbox = vec![None; n];
    }

    /// One round: complete every rendezvous enabled at the start of the
    /// round, then re-step processes whose sets completed. Returns the
    /// number of transfers performed.
    fn round(&mut self) -> u64 {
        // Snapshot matches: channel -> (sender proc/req, receiver proc/req).
        let mut senders: HashMap<ChanId, (usize, usize, Value)> = HashMap::new();
        let mut receivers: HashMap<ChanId, (usize, usize)> = HashMap::new();
        for (pi, p) in self.procs.iter().enumerate() {
            for (ri, &(req, done)) in p.pending.iter().enumerate() {
                if done {
                    continue;
                }
                match req {
                    CommReq::Send { chan, value } => {
                        let prev = senders.insert(chan, (pi, ri, value));
                        assert!(prev.is_none(), "two senders pending on channel {chan}");
                    }
                    CommReq::Recv { chan } => {
                        let prev = receivers.insert(chan, (pi, ri));
                        assert!(prev.is_none(), "two receivers pending on channel {chan}");
                    }
                }
            }
        }

        let mut fired = 0u64;
        let mut touched: Vec<usize> = Vec::new();
        // Buffered policy: drain queue heads into receivers, admit sends.
        if let ChannelPolicy::Buffered(cap) = self.policy {
            let mut chans: Vec<ChanId> = receivers.keys().copied().collect();
            chans.sort_unstable();
            for chan in chans {
                if let Some(q) = self.queues.get_mut(&chan) {
                    if let Some(v) = q.pop_front() {
                        let (pi, ri) = receivers.remove(&chan).unwrap();
                        self.procs[pi].pending[ri].1 = true;
                        self.procs[pi].inbox[ri] = Some(v);
                        touched.push(pi);
                        fired += 1;
                    }
                }
            }
            let mut chans: Vec<ChanId> = senders.keys().copied().collect();
            chans.sort_unstable();
            for chan in chans {
                let q = self.queues.entry(chan).or_default();
                if q.len() < cap {
                    let (pi, ri, v) = senders.remove(&chan).unwrap();
                    q.push_back(v);
                    self.procs[pi].pending[ri].1 = true;
                    touched.push(pi);
                    fired += 1;
                }
            }
        } else {
            // Rendezvous: match sender/receiver pairs.
            let mut chans: Vec<ChanId> = senders
                .keys()
                .filter(|c| receivers.contains_key(c))
                .copied()
                .collect();
            chans.sort_unstable();
            for chan in chans {
                let (spi, sri, v) = senders[&chan];
                let (rpi, rri) = receivers[&chan];
                self.procs[spi].pending[sri].1 = true;
                self.procs[rpi].pending[rri].1 = true;
                self.procs[rpi].inbox[rri] = Some(v);
                if let Some(trace) = &mut self.trace {
                    trace.push(TraceEvent {
                        round: self.stats.rounds,
                        chan,
                        value: v,
                    });
                }
                touched.push(spi);
                touched.push(rpi);
                fired += 1;
            }
        }
        self.stats.messages += fired;

        touched.sort_unstable();
        touched.dedup();
        for pi in touched {
            if !self.procs[pi].finished && self.procs[pi].all_complete() {
                let received = self.procs[pi].collect_received();
                self.advance(pi, received);
            }
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::{sink_buffer, RelayProc, SinkProc, SourceProc};

    #[test]
    fn pipeline_delivers_in_order() {
        let mut net = Network::new(ChannelPolicy::Rendezvous);
        let buf = sink_buffer();
        net.add(Box::new(SourceProc::new(0, vec![1, 2, 3], "src")));
        net.add(Box::new(RelayProc::new(0, 1, 3, "relay")));
        net.add(Box::new(SinkProc::new(1, 3, buf.clone(), "sink")));
        let stats = net.run().unwrap();
        assert_eq!(*buf.lock(), vec![1, 2, 3]);
        assert_eq!(stats.messages, 6, "3 values over 2 hops");
        assert_eq!(stats.processes, 3);
    }

    #[test]
    fn deadlock_detected() {
        // A sink waiting on a channel nobody sends on.
        let mut net = Network::new(ChannelPolicy::Rendezvous);
        let buf = sink_buffer();
        net.add(Box::new(SinkProc::new(9, 1, buf, "lonely-sink")));
        let err = net.run().unwrap_err();
        assert_eq!(err.blocked.len(), 1);
        assert!(err.blocked[0].contains("recv@9"));
        assert!(err.to_string().contains("deadlock"));
    }

    #[test]
    fn mismatched_counts_deadlock() {
        // Source sends 3, sink expects 4.
        let mut net = Network::new(ChannelPolicy::Rendezvous);
        let buf = sink_buffer();
        net.add(Box::new(SourceProc::new(0, vec![1, 2, 3], "src")));
        net.add(Box::new(SinkProc::new(0, 4, buf, "sink")));
        assert!(net.run().is_err());
    }

    #[test]
    fn rendezvous_rounds_reflect_pipelining() {
        // A chain of k relays: first value needs k+1 rounds to cross, and
        // subsequent values pipeline behind it.
        let k = 4usize;
        let n = 10usize;
        let mut net = Network::new(ChannelPolicy::Rendezvous);
        let buf = sink_buffer();
        net.add(Box::new(SourceProc::new(0, (0..n as i64).collect(), "src")));
        for i in 0..k {
            net.add(Box::new(RelayProc::new(i, i + 1, n, format!("relay{i}"))));
        }
        net.add(Box::new(SinkProc::new(k, n, buf.clone(), "sink")));
        let stats = net.run().unwrap();
        assert_eq!(buf.lock().len(), n);
        // Pipelined: rounds ~ n + k, not n * k.
        assert!(
            stats.rounds <= (2 * (n + k)) as u64,
            "rounds = {}",
            stats.rounds
        );
        assert_eq!(stats.messages, ((k + 1) * n) as u64);
    }

    #[test]
    fn buffered_policy_decouples_sender() {
        let mut net = Network::new(ChannelPolicy::Buffered(8));
        let buf = sink_buffer();
        net.add(Box::new(SourceProc::new(0, vec![5, 6], "src")));
        net.add(Box::new(SinkProc::new(0, 2, buf.clone(), "sink")));
        let stats = net.run().unwrap();
        assert_eq!(*buf.lock(), vec![5, 6]);
        // Each value counts twice: enqueue + dequeue.
        assert_eq!(stats.messages, 4);
    }

    #[test]
    fn two_parallel_pipelines_fire_in_one_round_each() {
        let mut net = Network::new(ChannelPolicy::Rendezvous);
        let b1 = sink_buffer();
        let b2 = sink_buffer();
        net.add(Box::new(SourceProc::new(0, vec![1], "s1")));
        net.add(Box::new(SourceProc::new(1, vec![2], "s2")));
        net.add(Box::new(SinkProc::new(0, 1, b1.clone(), "k1")));
        net.add(Box::new(SinkProc::new(1, 1, b2.clone(), "k2")));
        let stats = net.run().unwrap();
        assert_eq!(stats.rounds, 1, "independent channels fire simultaneously");
        assert_eq!(*b1.lock(), vec![1]);
        assert_eq!(*b2.lock(), vec![2]);
    }

    /// A process exercising par-sets: receives from two channels at once.
    struct Join {
        a: ChanId,
        b: ChanId,
        out: crate::process::SinkBuffer,
        rounds: usize,
    }

    impl crate::process::Process for Join {
        fn step(&mut self, received: &[Value]) -> Vec<CommReq> {
            if received.len() == 2 {
                self.out.lock().push(received[0] + received[1]);
            }
            if self.rounds == 0 {
                return vec![];
            }
            self.rounds -= 1;
            vec![
                CommReq::Recv { chan: self.a },
                CommReq::Recv { chan: self.b },
            ]
        }

        fn label(&self) -> String {
            "join".into()
        }
    }

    #[test]
    fn par_set_completes_in_any_order() {
        let mut net = Network::new(ChannelPolicy::Rendezvous);
        let buf = sink_buffer();
        net.add(Box::new(SourceProc::new(0, vec![1, 10], "sa")));
        net.add(Box::new(SourceProc::new(1, vec![2, 20], "sb")));
        net.add(Box::new(Join {
            a: 0,
            b: 1,
            out: buf.clone(),
            rounds: 2,
        }));
        net.run().unwrap();
        assert_eq!(*buf.lock(), vec![3, 30]);
    }
}
