//! The cooperative, deterministic scheduler.
//!
//! Generated systolic programs have no data-dependent control flow, so a
//! single-threaded round-based simulation is faithful to the asynchronous
//! semantics (any interleaving yields the same results — the Sec. 4
//! correctness argument) while also *measuring* the lock-step lower bound:
//! one **round** completes every rendezvous that is enabled at its start,
//! mirroring the global clock tick of the hardware array.
//!
//! The engine is event-driven: channel endpoints live in a persistent
//! dense table (`Vec<ChanSlot>` indexed by [`ChanId`]) updated
//! incrementally as processes register and complete comm sets, and each
//! round visits only a worklist of channels that may be enabled instead
//! of re-scanning every process. See `docs/scheduler.md` for the design
//! and its invariants.
//!
//! ## Reuse invariant (zero steady-state allocation)
//!
//! After warm-up, a round performs **no heap allocation**: the worklists
//! (`worklist`/`work_scratch`), the ready queue, the receive/request
//! scratch buffers, and each process's `pending`/`inbox` vectors are
//! cleared and refilled in place, never dropped; the channel table and
//! buffered queues grow to a high-water mark and stay there. The only
//! exception is the optional trace log, which grows by design. Process
//! `step_into` implementations uphold the same rule (see
//! [`Process::step_into`]).
//!
//! Deadlock is detected exactly: unfinished processes with no enabled
//! rendezvous.

use crate::process::{ChanId, CommReq, Process, Value};
use crate::record::{EventLogRecorder, SharedRecorder, Transfer, QUEUE_ENDPOINT};
use crate::schedule::{SchedulePolicy, STARVATION_LIMIT};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

/// Channel behaviour for the ablation experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChannelPolicy {
    /// Pure synchronous rendezvous (the paper's model, Sec. 4).
    Rendezvous,
    /// Buffered with the given positive capacity: a send completes
    /// immediately while fewer than `cap` values are in flight.
    Buffered(usize),
}

/// Execution statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Rendezvous rounds — the virtual systolic clock.
    pub rounds: u64,
    /// Total values transferred over channels.
    pub messages: u64,
    /// Number of processes that ran.
    pub processes: usize,
    /// Total `step` invocations across processes.
    pub steps: u64,
}

/// A deadlock: the blocked processes and what they wait on.
#[derive(Clone, Debug)]
pub struct Deadlock {
    pub blocked: Vec<String>,
}

impl std::fmt::Display for Deadlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deadlock: {} process(es) blocked: ", self.blocked.len())?;
        for (i, b) in self.blocked.iter().take(8).enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{b}")?;
        }
        if self.blocked.len() > 8 {
            write!(f, "; ...")?;
        }
        Ok(())
    }
}

impl std::error::Error for Deadlock {}

/// A malformed network: two processes simultaneously pending on the same
/// channel endpoint. Channels are point-to-point wires in the systolic
/// model, so this is a plan bug — diagnosed, not a panic.
#[derive(Clone, Debug)]
pub struct ProtocolViolation {
    pub chan: ChanId,
    /// Which endpoint was claimed twice: `"sender"` or `"receiver"`.
    pub endpoint: &'static str,
    /// Label of the process already registered on the endpoint.
    pub first: String,
    /// Label of the process that tried to claim it as well.
    pub second: String,
}

impl std::fmt::Display for ProtocolViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "protocol violation: two {}s pending on channel {} ({} and {})",
            self.endpoint, self.chan, self.first, self.second
        )
    }
}

impl std::error::Error for ProtocolViolation {}

/// Why a network run stopped without completing. Shared by all three
/// executors: the cooperative scheduler reports [`RunError::Deadlock`]
/// exactly; the threaded executors bound rendezvous waits by a timeout
/// instead ([`RunError::Timeout`]) and propagate peer failures as
/// [`RunError::Aborted`].
#[derive(Clone, Debug)]
pub enum RunError {
    Deadlock(Deadlock),
    Protocol(ProtocolViolation),
    /// A rendezvous wait outlived the executor's timeout budget; `scope`
    /// names the blocked thread ("process 3", "group 1").
    Timeout {
        scope: String,
    },
    /// A worker stopped because another thread failed first — a
    /// secondary error, reported only when the primary diagnosis is lost.
    Aborted,
    /// A worker thread panicked.
    Panicked {
        scope: String,
    },
    /// The requested partition is not a partition of the process set.
    Partition {
        reason: String,
    },
}

impl RunError {
    /// The deadlock, if that is what stopped the run.
    pub fn as_deadlock(&self) -> Option<&Deadlock> {
        match self {
            RunError::Deadlock(d) => Some(d),
            _ => None,
        }
    }

    /// A stable machine-readable label for the error class. Service
    /// boundaries key their structured responses on this so that the
    /// classification survives any change to the `Display` prose.
    pub fn kind(&self) -> &'static str {
        match self {
            RunError::Deadlock(_) => "deadlock",
            RunError::Protocol(_) => "protocol",
            RunError::Timeout { .. } => "timeout",
            RunError::Aborted => "aborted",
            RunError::Panicked { .. } => "panic",
            RunError::Partition { .. } => "partition",
        }
    }

    /// The offender labels the diagnosis carries: the blocked processes
    /// of a deadlock, the two claimants of a protocol violation, the
    /// scope that timed out or panicked. Empty for errors with no
    /// attributable party.
    pub fn offenders(&self) -> Vec<String> {
        match self {
            RunError::Deadlock(d) => d.blocked.clone(),
            RunError::Protocol(p) => vec![p.first.clone(), p.second.clone()],
            RunError::Timeout { scope } | RunError::Panicked { scope } => vec![scope.clone()],
            RunError::Aborted => Vec::new(),
            RunError::Partition { .. } => Vec::new(),
        }
    }
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Deadlock(d) => d.fmt(f),
            RunError::Protocol(p) => p.fmt(f),
            RunError::Timeout { scope } => {
                write!(f, "{scope} timed out waiting for rendezvous")
            }
            RunError::Aborted => write!(f, "aborted after a failure in another thread"),
            RunError::Panicked { scope } => write!(f, "{scope} panicked"),
            RunError::Partition { reason } => write!(f, "invalid partition: {reason}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<Deadlock> for RunError {
    fn from(d: Deadlock) -> Self {
        RunError::Deadlock(d)
    }
}

impl From<ProtocolViolation> for RunError {
    fn from(p: ProtocolViolation) -> Self {
        RunError::Protocol(p)
    }
}

struct ProcState {
    proc: Box<dyn Process>,
    /// Pending requests with completion marks.
    pending: Vec<(CommReq, bool)>,
    /// Values received for pending `Recv`s, by request index.
    inbox: Vec<Option<Value>>,
    /// Count of not-yet-completed requests in `pending`.
    remaining: usize,
    finished: bool,
}

/// One channel's persistent endpoint state. `ChanId`s are dense, so the
/// whole channel table is a flat `Vec<ChanSlot>` — registration,
/// matching, and completion are all O(1) indexed accesses with no
/// hashing anywhere on the round path.
#[derive(Default)]
struct ChanSlot {
    /// The at-most-one pending sender: (process, request index, value).
    sender: Option<(usize, usize, Value)>,
    /// The at-most-one pending receiver: (process, request index).
    receiver: Option<(usize, usize)>,
    /// In-flight values under [`ChannelPolicy::Buffered`].
    queue: VecDeque<Value>,
    /// Whether the channel is already queued in the round worklist.
    in_worklist: bool,
}

/// Can this channel transfer a value next round, given its current
/// endpoints and queue?
fn enabled(slot: &ChanSlot, policy: ChannelPolicy) -> bool {
    match policy {
        ChannelPolicy::Rendezvous => slot.sender.is_some() && slot.receiver.is_some(),
        ChannelPolicy::Buffered(cap) => {
            let can_recv = slot.receiver.is_some() && !slot.queue.is_empty();
            // A pop frees one slot before the send is considered.
            can_recv || (slot.sender.is_some() && slot.queue.len() - usize::from(can_recv) < cap)
        }
    }
}

/// One recorded channel transfer (for space-time diagrams and debugging).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// The rendezvous round in which the transfer fired.
    pub round: u64,
    pub chan: ChanId,
    pub value: Value,
}

/// A network of processes plus channel state, run to completion by
/// [`Network::run`].
pub struct Network {
    procs: Vec<ProcState>,
    policy: ChannelPolicy,
    /// Dense persistent channel table, indexed by `ChanId`.
    chans: Vec<ChanSlot>,
    /// Channels that may fire next round (deduplicated via
    /// `ChanSlot::in_worklist`).
    worklist: Vec<ChanId>,
    /// Previous round's worklist, kept to reuse its allocation.
    work_scratch: Vec<ChanId>,
    /// Processes whose comm set completed this round.
    ready: Vec<usize>,
    /// Reused buffer of received values handed to `step_into`.
    recv_scratch: Vec<Value>,
    /// Reused buffer of requests produced by `step_into`.
    req_scratch: Vec<CommReq>,
    /// Processes not yet finished, so the run loop never re-scans
    /// `procs` for termination.
    unfinished: usize,
    stats: RunStats,
    /// Attached observability sinks (see `crate::record`). Empty in the
    /// common case: every recording hook is behind one `is_empty` branch,
    /// so an unobserved run allocates and locks nothing extra.
    recorders: Vec<SharedRecorder>,
    /// Rounds at which each channel's current (sender, receiver)
    /// registered, indexed like `chans`. Kept out of `ChanSlot` — and
    /// empty unless recorders are attached — so observability adds no
    /// bytes to the hot channel table of an unobserved run.
    since: Vec<(u64, u64)>,
    /// The recorder behind [`Network::enable_trace`] /
    /// [`Network::run_traced`], kept typed so the transfer log can be
    /// extracted after the run.
    trace_log: Option<Arc<Mutex<EventLogRecorder>>>,
    /// Optional schedule decision procedure (see `crate::schedule`).
    /// `None` in the common case: the round path tests one discriminant
    /// and otherwise runs the historical canonical order unchanged.
    sched: Option<Box<dyn SchedulePolicy>>,
    /// Scratch list handed to the policy for deferrals; reused per round.
    defer_scratch: Vec<ChanId>,
    /// How many channels the policy deferred in the last round (always 0
    /// without a policy), so `run_inner` can tell a starved round from a
    /// genuine deadlock.
    deferred: u64,
    /// Consecutive rounds in which the policy deferred every enabled
    /// rendezvous; capped by [`STARVATION_LIMIT`].
    starved: u64,
}

impl Network {
    pub fn new(policy: ChannelPolicy) -> Network {
        Network {
            procs: Vec::new(),
            policy,
            chans: Vec::new(),
            worklist: Vec::new(),
            work_scratch: Vec::new(),
            ready: Vec::new(),
            recv_scratch: Vec::new(),
            req_scratch: Vec::new(),
            unfinished: 0,
            stats: RunStats::default(),
            recorders: Vec::new(),
            since: Vec::new(),
            trace_log: None,
            sched: None,
            defer_scratch: Vec::new(),
            deferred: 0,
            starved: 0,
        }
    }

    /// Attach a schedule policy (see `crate::schedule`); the engine hands
    /// it each round's candidate channels and ready processes instead of
    /// using the canonical ascending order. Attach before [`Network::run`].
    /// With [`crate::schedule::FifoPolicy`] (or no policy) the run is
    /// bit-identical to the unhooked engine.
    pub fn set_schedule_policy(&mut self, policy: Box<dyn SchedulePolicy>) {
        self.sched = Some(policy);
    }

    /// Attach an observability sink; every recorder receives the full
    /// event stream (transfers with wait attribution, steps, process
    /// terminations, run start/end). Attach before [`Network::run`].
    pub fn add_recorder(&mut self, recorder: SharedRecorder) {
        self.recorders.push(recorder);
    }

    /// Record every channel transfer; retrieve with [`Network::run_traced`].
    /// Implemented as an internal [`EventLogRecorder`] on the same event
    /// stream the public recorders consume.
    pub fn enable_trace(&mut self) {
        if self.trace_log.is_none() {
            let log = Arc::new(Mutex::new(EventLogRecorder::new()));
            self.recorders.push(log.clone());
            self.trace_log = Some(log);
        }
    }

    /// Run to completion, returning the statistics and the recorded
    /// trace of every channel transfer.
    pub fn run_traced(mut self) -> Result<(RunStats, Vec<TraceEvent>), RunError> {
        self.enable_trace();
        let stats = self.run_inner()?;
        let trace = self
            .trace_log
            .take()
            .map(|log| {
                log.lock()
                    .take_transfers()
                    .into_iter()
                    .map(|t| TraceEvent {
                        round: t.time,
                        chan: t.chan,
                        value: t.value,
                    })
                    .collect()
            })
            .unwrap_or_default();
        Ok((stats, trace))
    }

    /// Add a process; returns its index.
    pub fn add(&mut self, proc: Box<dyn Process>) -> usize {
        self.procs.push(ProcState {
            proc,
            pending: Vec::new(),
            inbox: Vec::new(),
            remaining: 0,
            finished: false,
        });
        self.procs.len() - 1
    }

    /// Run all processes to completion. Returns statistics, or the
    /// deadlock / protocol violation if progress stops.
    pub fn run(mut self) -> Result<RunStats, RunError> {
        self.run_inner()
    }

    fn run_inner(&mut self) -> Result<RunStats, RunError> {
        self.stats.processes = self.procs.len();
        self.unfinished = self.procs.len();
        if !self.recorders.is_empty() {
            let labels: Vec<String> = self.procs.iter().map(|p| p.proc.label()).collect();
            for r in &self.recorders {
                r.lock().start(&labels);
            }
        }
        // Prime every process.
        for i in 0..self.procs.len() {
            self.advance(i)?;
        }
        loop {
            if self.unfinished == 0 {
                for r in &self.recorders {
                    r.lock().end(self.stats.rounds);
                }
                return Ok(self.stats.clone());
            }
            let fired = self.round()?;
            if fired == 0 {
                // A round that moved nothing is a deadlock — unless an
                // attached policy deferred enabled rendezvous, in which
                // case progress is still possible. Starvation is bounded:
                // a policy deferring everything forever is converted into
                // the deadlock it is hiding.
                self.starved += 1;
                if self.deferred == 0 || self.starved > STARVATION_LIMIT {
                    return Err(self.deadlock_report().into());
                }
            } else {
                self.starved = 0;
            }
            self.stats.rounds += 1;
        }
    }

    fn deadlock_report(&self) -> Deadlock {
        let blocked = self
            .procs
            .iter()
            .filter(|p| !p.finished)
            .map(|p| {
                let waits: Vec<String> = p
                    .pending
                    .iter()
                    .filter(|&&(_, done)| !done)
                    .map(|(r, _)| match r {
                        CommReq::Send { chan, .. } => format!("send@{chan}"),
                        CommReq::Recv { chan } => format!("recv@{chan}"),
                    })
                    .collect();
                format!("{} [{}]", p.proc.label(), waits.join(","))
            })
            .collect();
        Deadlock { blocked }
    }

    /// Collect received values for process `i`'s completed set, step it,
    /// and register its next comm set in the channel table. All buffers
    /// involved are reused (see the module-level reuse invariant).
    fn advance(&mut self, pi: usize) -> Result<(), ProtocolViolation> {
        self.recv_scratch.clear();
        self.req_scratch.clear();
        {
            let p = &mut self.procs[pi];
            for i in 0..p.pending.len() {
                if !p.pending[i].0.is_send() {
                    self.recv_scratch
                        .push(p.inbox[i].take().expect("recv completed without value"));
                }
            }
            p.proc.step_into(&self.recv_scratch, &mut self.req_scratch);
        }
        self.stats.steps += 1;
        let recording = !self.recorders.is_empty();
        if recording {
            for r in &self.recorders {
                r.lock().step(self.stats.rounds, pi);
            }
        }

        let p = &mut self.procs[pi];
        p.pending.clear();
        p.inbox.clear();
        if self.req_scratch.is_empty() {
            p.finished = true;
            p.remaining = 0;
            self.unfinished -= 1;
            if recording {
                for r in &self.recorders {
                    r.lock().finished(self.stats.rounds, pi);
                }
            }
            return Ok(());
        }
        p.pending
            .extend(self.req_scratch.drain(..).map(|r| (r, false)));
        p.inbox.resize(p.pending.len(), None);
        p.remaining = p.pending.len();

        // Register each endpoint; a channel that became transfer-ready
        // joins the worklist for the next round.
        for ri in 0..self.procs[pi].pending.len() {
            let (req, _) = self.procs[pi].pending[ri];
            let (chan, conflict) = match req {
                CommReq::Send { chan, value } => {
                    let slot = slot_mut(&mut self.chans, chan);
                    match slot.sender {
                        Some((prev, _, _)) => (chan, Some(("sender", prev))),
                        None => {
                            slot.sender = Some((pi, ri, value));
                            if recording {
                                since_mut(&mut self.since, chan).0 = self.stats.rounds;
                            }
                            (chan, None)
                        }
                    }
                }
                CommReq::Recv { chan } => {
                    let slot = slot_mut(&mut self.chans, chan);
                    match slot.receiver {
                        Some((prev, _)) => (chan, Some(("receiver", prev))),
                        None => {
                            slot.receiver = Some((pi, ri));
                            if recording {
                                since_mut(&mut self.since, chan).1 = self.stats.rounds;
                            }
                            (chan, None)
                        }
                    }
                }
            };
            if let Some((endpoint, prev)) = conflict {
                return Err(ProtocolViolation {
                    chan,
                    endpoint,
                    first: self.procs[prev].proc.label(),
                    second: self.procs[pi].proc.label(),
                });
            }
            let slot = &mut self.chans[chan];
            if !slot.in_worklist && enabled(slot, self.policy) {
                slot.in_worklist = true;
                self.worklist.push(chan);
            }
        }
        Ok(())
    }

    /// Mark request `ri` of process `pi` complete (optionally delivering
    /// a received value); queues the process when its whole set is done.
    fn complete(&mut self, pi: usize, ri: usize, value: Option<Value>) {
        let p = &mut self.procs[pi];
        debug_assert!(!p.pending[ri].1, "request completed twice");
        p.pending[ri].1 = true;
        if let Some(v) = value {
            p.inbox[ri] = Some(v);
        }
        p.remaining -= 1;
        if p.remaining == 0 {
            self.ready.push(pi);
        }
    }

    /// One round: complete every rendezvous enabled at the start of the
    /// round, then re-step processes whose sets completed. Returns the
    /// number of transfers performed.
    ///
    /// Only channels on the worklist are visited; the sort makes firing
    /// order (and thus the trace) identical to the historical
    /// scan-all-channels scheduler. Registrations performed by the
    /// end-of-round `advance` calls land in the *next* round's worklist,
    /// preserving the snapshot-at-round-start semantics.
    fn round(&mut self) -> Result<u64, ProtocolViolation> {
        std::mem::swap(&mut self.worklist, &mut self.work_scratch);
        self.work_scratch.sort_unstable();
        if self.sched.is_some() {
            self.schedule_worklist();
        }
        let mut fired = 0u64;

        for wi in 0..self.work_scratch.len() {
            let chan = self.work_scratch[wi];
            match self.policy {
                ChannelPolicy::Rendezvous => {
                    let slot = &mut self.chans[chan];
                    slot.in_worklist = false;
                    // Both endpoints were present when the channel was
                    // enqueued and can only be consumed by firing, so
                    // they are still present; `take` keeps this robust.
                    let (Some((spi, sri, v)), Some((rpi, rri))) =
                        (slot.sender.take(), slot.receiver.take())
                    else {
                        continue;
                    };
                    if !self.recorders.is_empty() {
                        let (s_since, r_since) = *since_mut(&mut self.since, chan);
                        let now = self.stats.rounds;
                        let ev = Transfer {
                            time: now,
                            chan,
                            value: v,
                            sender: spi,
                            receiver: rpi,
                            sender_wait: now - s_since,
                            receiver_wait: now - r_since,
                        };
                        for r in &self.recorders {
                            r.lock().transfer(&ev);
                        }
                    }
                    self.complete(spi, sri, None);
                    self.complete(rpi, rri, Some(v));
                    fired += 1;
                }
                ChannelPolicy::Buffered(cap) => {
                    let slot = &mut self.chans[chan];
                    slot.in_worklist = false;
                    // Queue head drains into the receiver first, then the
                    // sender is admitted if the queue (after the pop) has
                    // room — the same order the historical scheduler
                    // applied across its receiver and sender passes.
                    let mut recv_done = None;
                    let mut send_done = None;
                    if slot.receiver.is_some() && !slot.queue.is_empty() {
                        let v = slot.queue.pop_front().expect("checked non-empty");
                        recv_done = slot.receiver.take().map(|(pi, ri)| (pi, ri, v));
                    }
                    if slot.queue.len() < cap {
                        if let Some((pi, ri, v)) = slot.sender.take() {
                            slot.queue.push_back(v);
                            send_done = Some((pi, ri, v));
                        }
                    }
                    // A send that landed while the receiver still waits
                    // re-enables the channel for the next round.
                    if !slot.in_worklist && enabled(slot, self.policy) {
                        slot.in_worklist = true;
                        self.worklist.push(chan);
                    }
                    let now = self.stats.rounds;
                    if let Some((pi, ri, v)) = recv_done {
                        // A dequeue: the sending side already completed
                        // when the value entered the queue.
                        if !self.recorders.is_empty() {
                            let r_since = since_mut(&mut self.since, chan).1;
                            let ev = Transfer {
                                time: now,
                                chan,
                                value: v,
                                sender: QUEUE_ENDPOINT,
                                receiver: pi,
                                sender_wait: 0,
                                receiver_wait: now - r_since,
                            };
                            for r in &self.recorders {
                                r.lock().transfer(&ev);
                            }
                        }
                        self.complete(pi, ri, Some(v));
                        fired += 1;
                    }
                    if let Some((pi, ri, v)) = send_done {
                        // An enqueue: no receiving process yet.
                        if !self.recorders.is_empty() {
                            let s_since = since_mut(&mut self.since, chan).0;
                            let ev = Transfer {
                                time: now,
                                chan,
                                value: v,
                                sender: pi,
                                receiver: QUEUE_ENDPOINT,
                                sender_wait: now - s_since,
                                receiver_wait: 0,
                            };
                            for r in &self.recorders {
                                r.lock().transfer(&ev);
                            }
                        }
                        self.complete(pi, ri, None);
                        fired += 1;
                    }
                }
            }
        }
        self.work_scratch.clear();
        self.stats.messages += fired;

        // Advance completed processes in index order (their registrations
        // target the next round via `self.worklist`), unless an attached
        // policy picks a different permutation.
        let mut ready = std::mem::take(&mut self.ready);
        ready.sort_unstable();
        if let Some(sched) = self.sched.as_mut() {
            sched.order_ready(self.stats.rounds, &mut ready);
        }
        for &pi in &ready {
            debug_assert!(!self.procs[pi].finished && self.procs[pi].remaining == 0);
            self.advance(pi)?;
        }
        ready.clear();
        self.ready = ready;
        Ok(fired)
    }

    /// Cold path of [`Network::round`], entered only with a policy
    /// attached: hand the sorted candidate list to the policy and carry
    /// any deferred channels over to the next round's worklist (their
    /// `in_worklist` claim stays set, so the dedup invariant holds).
    fn schedule_worklist(&mut self) {
        let sched = self.sched.as_mut().expect("checked by caller");
        self.defer_scratch.clear();
        sched.schedule_round(
            self.stats.rounds,
            &mut self.work_scratch,
            &mut self.defer_scratch,
        );
        self.deferred = self.defer_scratch.len() as u64;
        self.worklist.append(&mut self.defer_scratch);
    }
}

/// Index into the dense channel table, growing it on first touch.
fn slot_mut(chans: &mut Vec<ChanSlot>, chan: ChanId) -> &mut ChanSlot {
    if chan >= chans.len() {
        chans.resize_with(chan + 1, ChanSlot::default);
    }
    &mut chans[chan]
}

/// The recording-only companion of [`slot_mut`]: grows the side table of
/// endpoint registration rounds on demand. Never called on an unobserved
/// run, so `Network::since` stays empty there.
fn since_mut(since: &mut Vec<(u64, u64)>, chan: ChanId) -> &mut (u64, u64) {
    if chan >= since.len() {
        since.resize(chan + 1, (0, 0));
    }
    &mut since[chan]
}

/// The batched cooperative engine: macro-step every VM over the
/// per-channel rings of a proven [`BatchPlan`], retiring up to a full
/// batch of transfers per visit instead of one rendezvous handshake per
/// round (see `crate::batch` and `docs/scheduler.md`).
///
/// Sweeps processes in ascending pid order until all finish; a sweep
/// that moves nothing with unfinished processes left is a deadlock,
/// reported in the same `label [wait,...]` shape as
/// [`Network::run`]'s. `stats.rounds` counts macro-sweeps — the round
/// structure is collapsed by design — while `messages` and `steps` are
/// the same logical counts the rendezvous engine reports, and the
/// recovered stores are bit-identical (pinned by `tests/batching.rs`).
pub fn run_coop_batched(
    module: &Arc<crate::procir::ProcIrModule>,
    plan: &crate::batch::BatchPlan,
) -> Result<(RunStats, Vec<crate::process::SinkBuffer>), RunError> {
    debug_assert!(plan.batchable(), "caller checks BatchPlan::batchable");
    let (mut vms, outputs) = module.instantiate_vms();
    let mut rings = plan.rings();
    let mut stats = RunStats {
        rounds: 0,
        messages: 0,
        processes: vms.len(),
        steps: 0,
    };
    let mut finished = vec![false; vms.len()];
    let mut unfinished = vms.len();
    while unfinished > 0 {
        let mut moved = 0u64;
        for (pid, vm) in vms.iter_mut().enumerate() {
            if finished[pid] {
                continue;
            }
            if vm.macro_step(&mut rings, &mut stats, &mut moved) {
                finished[pid] = true;
                unfinished -= 1;
            }
        }
        stats.rounds += 1;
        if moved == 0 && unfinished > 0 {
            let blocked = vms
                .iter()
                .enumerate()
                .filter(|(pid, _)| !finished[*pid])
                .map(|(pid, vm)| {
                    let wait = vm.macro_wait().unwrap_or_default();
                    format!("{} [{}]", module.label_of(pid), wait)
                })
                .collect();
            return Err(RunError::Deadlock(Deadlock { blocked }));
        }
    }
    Ok((stats, outputs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::{sink_buffer, SinkBuffer};
    use crate::procir::ProcIrBuilder;

    /// Instantiate a builder's module into a fresh network, returning the
    /// output buffers in sink-declaration order.
    fn net_of(b: ProcIrBuilder, policy: ChannelPolicy) -> (Network, Vec<SinkBuffer>) {
        let module = b.build(None);
        let inst = module.instantiate();
        let mut net = Network::new(policy);
        for p in inst.procs {
            net.add(p);
        }
        (net, inst.outputs)
    }

    #[test]
    fn pipeline_delivers_in_order() {
        let mut b = ProcIrBuilder::new();
        b.source(0, &[1, 2, 3], "src");
        b.relay(0, 1, 3, "relay");
        b.sink(1, 3, "sink");
        let (net, outs) = net_of(b, ChannelPolicy::Rendezvous);
        let stats = net.run().unwrap();
        assert_eq!(*outs[0].lock(), vec![1, 2, 3]);
        assert_eq!(stats.messages, 6, "3 values over 2 hops");
        assert_eq!(stats.processes, 3);
    }

    #[test]
    fn deadlock_detected() {
        // A sink waiting on a channel nobody sends on.
        let mut b = ProcIrBuilder::new();
        b.sink(9, 1, "lonely-sink");
        let (net, _) = net_of(b, ChannelPolicy::Rendezvous);
        let err = net.run().unwrap_err();
        let deadlock = err.as_deadlock().expect("deadlock, not protocol error");
        assert_eq!(deadlock.blocked.len(), 1);
        assert!(deadlock.blocked[0].contains("recv@9"));
        assert!(err.to_string().contains("deadlock"));
    }

    #[test]
    fn mismatched_counts_deadlock() {
        // Source sends 3, sink expects 4.
        let mut b = ProcIrBuilder::new();
        b.source(0, &[1, 2, 3], "src");
        b.sink(0, 4, "sink");
        let (net, _) = net_of(b, ChannelPolicy::Rendezvous);
        assert!(net.run().is_err());
    }

    #[test]
    fn two_senders_is_a_protocol_violation() {
        let mut b = ProcIrBuilder::new();
        b.source(0, &[1], "src-a");
        b.source(0, &[2], "src-b");
        b.sink(0, 2, "sink");
        let (net, _) = net_of(b, ChannelPolicy::Rendezvous);
        let err = net.run().unwrap_err();
        let RunError::Protocol(v) = err else {
            panic!("expected protocol violation, got {err}");
        };
        assert_eq!(v.chan, 0);
        assert_eq!(v.endpoint, "sender");
        assert_eq!(v.first, "src-a");
        assert_eq!(v.second, "src-b");
        assert!(v.to_string().contains("two senders"));
    }

    #[test]
    fn two_receivers_is_a_protocol_violation() {
        let mut b = ProcIrBuilder::new();
        b.source(0, &[1, 2], "src");
        b.sink(0, 1, "sink-a");
        b.sink(0, 1, "sink-b");
        let (net, _) = net_of(b, ChannelPolicy::Rendezvous);
        let err = net.run().unwrap_err();
        let RunError::Protocol(v) = err else {
            panic!("expected protocol violation, got {err}");
        };
        assert_eq!(v.endpoint, "receiver");
        assert_eq!((v.first.as_str(), v.second.as_str()), ("sink-a", "sink-b"));
    }

    #[test]
    fn violation_mid_run_is_diagnosed() {
        // The conflict only materializes after the first value moves:
        // a relay starts forwarding onto a channel that already has a
        // long-lived sender.
        let mut b = ProcIrBuilder::new();
        b.source(0, &[7, 9], "src-direct");
        b.source(1, &[8], "src-upstream");
        b.relay(1, 0, 1, "relay");
        b.sink(0, 3, "sink");
        let (net, _) = net_of(b, ChannelPolicy::Rendezvous);
        let err = net.run().unwrap_err();
        let RunError::Protocol(v) = err else {
            panic!("expected protocol violation, got {err}");
        };
        assert_eq!(
            (v.first.as_str(), v.second.as_str()),
            ("src-direct", "relay")
        );
    }

    #[test]
    fn rendezvous_rounds_reflect_pipelining() {
        // A chain of k relays: first value needs k+1 rounds to cross, and
        // subsequent values pipeline behind it.
        let k = 4usize;
        let n = 10usize;
        let mut b = ProcIrBuilder::new();
        let values: Vec<Value> = (0..n as i64).collect();
        b.source(0, &values, "src");
        for i in 0..k {
            b.relay(i, i + 1, n, format!("relay{i}"));
        }
        b.sink(k, n, "sink");
        let (net, outs) = net_of(b, ChannelPolicy::Rendezvous);
        let stats = net.run().unwrap();
        assert_eq!(outs[0].lock().len(), n);
        // Pipelined: rounds ~ n + k, not n * k.
        assert!(
            stats.rounds <= (2 * (n + k)) as u64,
            "rounds = {}",
            stats.rounds
        );
        assert_eq!(stats.messages, ((k + 1) * n) as u64);
    }

    #[test]
    fn buffered_policy_decouples_sender() {
        let mut b = ProcIrBuilder::new();
        b.source(0, &[5, 6], "src");
        b.sink(0, 2, "sink");
        let (net, outs) = net_of(b, ChannelPolicy::Buffered(8));
        let stats = net.run().unwrap();
        assert_eq!(*outs[0].lock(), vec![5, 6]);
        // Each value counts twice: enqueue + dequeue.
        assert_eq!(stats.messages, 4);
    }

    #[test]
    fn buffered_capacity_one_backpressures() {
        // cap=1: the queue holds one value; the second send must wait
        // for the pop, but the run still completes.
        let mut b = ProcIrBuilder::new();
        b.source(0, &[1, 2, 3], "src");
        b.sink(0, 3, "sink");
        let (net, outs) = net_of(b, ChannelPolicy::Buffered(1));
        let stats = net.run().unwrap();
        assert_eq!(*outs[0].lock(), vec![1, 2, 3]);
        assert_eq!(stats.messages, 6);
    }

    #[test]
    fn two_parallel_pipelines_fire_in_one_round_each() {
        let mut b = ProcIrBuilder::new();
        b.source(0, &[1], "s1");
        b.source(1, &[2], "s2");
        b.sink(0, 1, "k1");
        b.sink(1, 1, "k2");
        let (net, outs) = net_of(b, ChannelPolicy::Rendezvous);
        let stats = net.run().unwrap();
        assert_eq!(stats.rounds, 1, "independent channels fire simultaneously");
        assert_eq!(*outs[0].lock(), vec![1]);
        assert_eq!(*outs[1].lock(), vec![2]);
    }

    /// An ad-hoc process exercising par-sets: receives from two channels
    /// at once (also checks that hand-written [`Process`] impls compose
    /// with module-instantiated VMs in one network).
    struct Join {
        a: ChanId,
        b: ChanId,
        out: SinkBuffer,
        rounds: usize,
    }

    impl crate::process::Process for Join {
        fn step(&mut self, received: &[Value]) -> Vec<CommReq> {
            if received.len() == 2 {
                self.out.lock().push(received[0] + received[1]);
            }
            if self.rounds == 0 {
                return vec![];
            }
            self.rounds -= 1;
            vec![
                CommReq::Recv { chan: self.a },
                CommReq::Recv { chan: self.b },
            ]
        }

        fn label(&self) -> String {
            "join".into()
        }
    }

    #[test]
    fn par_set_completes_in_any_order() {
        let mut b = ProcIrBuilder::new();
        b.source(0, &[1, 10], "sa");
        b.source(1, &[2, 20], "sb");
        let (mut net, _) = net_of(b, ChannelPolicy::Rendezvous);
        let buf = sink_buffer();
        net.add(Box::new(Join {
            a: 0,
            b: 1,
            out: buf.clone(),
            rounds: 2,
        }));
        net.run().unwrap();
        assert_eq!(*buf.lock(), vec![3, 30]);
    }

    /// Reverses the firing order and the ready order every round — the
    /// simplest non-identity permutation policy.
    struct ReversePolicy;

    impl SchedulePolicy for ReversePolicy {
        fn schedule_round(&mut self, _r: u64, fire: &mut Vec<ChanId>, _defer: &mut Vec<ChanId>) {
            fire.reverse();
        }

        fn order_ready(&mut self, _r: u64, ready: &mut Vec<usize>) {
            ready.reverse();
        }
    }

    /// Defers the lowest-numbered candidate for the first `budget` rounds.
    struct DeferLowest {
        budget: u64,
    }

    impl SchedulePolicy for DeferLowest {
        fn schedule_round(&mut self, _r: u64, fire: &mut Vec<ChanId>, defer: &mut Vec<ChanId>) {
            if self.budget > 0 && !fire.is_empty() {
                self.budget -= 1;
                defer.push(fire.remove(0));
            }
        }
    }

    /// Adversarial worst case: defers everything, forever.
    struct StarveEverything;

    impl SchedulePolicy for StarveEverything {
        fn schedule_round(&mut self, _r: u64, fire: &mut Vec<ChanId>, defer: &mut Vec<ChanId>) {
            defer.append(fire);
        }
    }

    fn policied_pipeline(policy: Option<Box<dyn SchedulePolicy>>) -> (RunStats, Vec<Value>) {
        let mut b = ProcIrBuilder::new();
        b.source(0, &[1, 2, 3, 4], "src");
        b.relay(0, 1, 4, "relay");
        b.sink(1, 4, "sink");
        let (mut net, outs) = net_of(b, ChannelPolicy::Rendezvous);
        if let Some(p) = policy {
            net.set_schedule_policy(p);
        }
        let stats = net.run().unwrap();
        let out = outs[0].lock().clone();
        (stats, out)
    }

    #[test]
    fn reversing_policy_preserves_results_and_stats() {
        let (base_stats, base_out) = policied_pipeline(None);
        let (stats, out) = policied_pipeline(Some(Box::new(ReversePolicy)));
        assert_eq!(out, base_out, "permutation policies cannot change values");
        assert_eq!(stats, base_stats, "pure permutations keep stats invariant");
    }

    #[test]
    fn explicit_fifo_policy_is_bit_identical_to_no_policy() {
        let (base_stats, base_out) = policied_pipeline(None);
        let (stats, out) = policied_pipeline(Some(Box::new(crate::schedule::FifoPolicy)));
        assert_eq!((stats, out), (base_stats, base_out));
    }

    #[test]
    fn bounded_deferral_delays_rounds_but_not_values() {
        let (base_stats, base_out) = policied_pipeline(None);
        let (stats, out) = policied_pipeline(Some(Box::new(DeferLowest { budget: 3 })));
        assert_eq!(out, base_out, "delays cannot change values");
        assert_eq!(stats.messages, base_stats.messages);
        assert_eq!(stats.steps, base_stats.steps);
        assert!(
            stats.rounds > base_stats.rounds,
            "deferral must cost rounds: {} vs {}",
            stats.rounds,
            base_stats.rounds
        );
    }

    #[test]
    fn starving_policy_is_reported_as_deadlock_not_a_hang() {
        let mut b = ProcIrBuilder::new();
        b.source(0, &[1], "src");
        b.sink(0, 1, "sink");
        let (mut net, _) = net_of(b, ChannelPolicy::Rendezvous);
        net.set_schedule_policy(Box::new(StarveEverything));
        let err = net.run().unwrap_err();
        assert!(err.as_deadlock().is_some(), "{err}");
    }

    #[test]
    fn batched_pipeline_matches_unbatched_logical_stats() {
        let build = || {
            let mut b = ProcIrBuilder::new();
            b.source(0, &(0..50).collect::<Vec<_>>(), "src");
            b.relay(0, 1, 50, "relay");
            b.sink(1, 50, "sink");
            b
        };
        let (net, outs) = net_of(build(), ChannelPolicy::Rendezvous);
        let base = net.run().unwrap();
        let base_out = outs[0].lock().clone();

        let module = build().build(None);
        let plan = crate::batch::analyze(&module);
        assert!(plan.batchable(), "{:?}", plan.reject_reason());
        let (stats, outs) = run_coop_batched(&module, &plan).unwrap();
        assert_eq!(*outs[0].lock(), base_out, "stores bit-identical");
        assert_eq!(stats.messages, base.messages, "logical messages invariant");
        assert_eq!(stats.steps, base.steps, "logical steps invariant");
        assert!(
            stats.rounds < base.rounds,
            "batching must collapse the sweep count: {} vs {}",
            stats.rounds,
            base.rounds
        );
    }

    #[test]
    fn batched_cycle_deadlock_is_reported_with_waits() {
        // Two passes in a cycle with nothing in flight: balanced traffic
        // (so the analysis accepts), but both start with a pop from an
        // empty ring — the batched engine must diagnose, not spin.
        let mut b = ProcIrBuilder::new();
        b.begin("fwd");
        b.op(crate::procir::ProcOp::Pass {
            inp: 0,
            out: 1,
            n: 2,
        });
        b.finish();
        b.begin("bwd");
        b.op(crate::procir::ProcOp::Pass {
            inp: 1,
            out: 0,
            n: 2,
        });
        b.finish();
        let module = b.build(None);
        let plan = crate::batch::analyze(&module);
        assert!(plan.batchable(), "{:?}", plan.reject_reason());
        let err = run_coop_batched(&module, &plan).unwrap_err();
        let d = err.as_deadlock().expect("deadlock, not another error");
        assert_eq!(d.blocked.len(), 2);
        assert!(d.blocked[0].contains("fwd [recv@0]"), "{:?}", d.blocked);
        assert!(d.blocked[1].contains("bwd [recv@1]"), "{:?}", d.blocked);
    }

    #[test]
    fn trace_orders_events_by_channel_within_a_round() {
        // Register the higher channel first; the trace must still list
        // channel 0 before channel 1 within the round.
        let mut b = ProcIrBuilder::new();
        b.source(1, &[20], "s-hi");
        b.source(0, &[10], "s-lo");
        b.sink(1, 1, "k-hi");
        b.sink(0, 1, "k-lo");
        let (net, _) = net_of(b, ChannelPolicy::Rendezvous);
        let (stats, trace) = net.run_traced().unwrap();
        assert_eq!(stats.rounds, 1);
        assert_eq!(
            trace,
            vec![
                TraceEvent {
                    round: 0,
                    chan: 0,
                    value: 10
                },
                TraceEvent {
                    round: 0,
                    chan: 1,
                    value: 20
                },
            ]
        );
    }
}
