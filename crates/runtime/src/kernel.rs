//! Wave kernels: struct-of-arrays execution of homogeneous Compute ops.
//!
//! The wavefront executor (`crate::wavefront`) already sweeps the array
//! one topological level at a time, but each Compute op in a wave still
//! retires as an individual [`ProcVm`] superinstruction calling the
//! opaque `Arc<dyn ComputeBody>` — so the hot loop is dynamic dispatch
//! and per-value ring bookkeeping, not arithmetic. This module removes
//! both costs for the common case the paper's scheme actually produces:
//! every computation process runs the *same* basic statement, and that
//! statement has no data-dependent control flow.
//!
//! - [`Kernel`] is the typed straight-line form of one basic statement:
//!   an SSA op tape over registers ([`KernelOp`]) plus a final list of
//!   local-slot writebacks. The compiler side (`systolic_interp`)
//!   lowers a `BasicStatement` into it once per skeleton; modules whose
//!   bodies resist the lowering (guards, unknown ops) carry the reject
//!   reason instead and simply stay on the scalar path.
//! - [`analyze_kernels`] classifies every chunk of a [`WavefrontPlan`]
//!   once per module: a chunk is *kernel-eligible* when it is a single
//!   process whose Compute op moves values over pairwise-distinct rings
//!   — exactly the precondition of `macro_step`'s loop-summarized fast
//!   path, which the kernel path mirrors batch-wise. Everything else
//!   (transport relays, cyclic chunks, aliased rings) falls back to
//!   [`ProcVm::macro_step`] with a recorded reason, extending the
//!   wavefront/batch reject-reason ladder one rung down.
//! - [`kernel_wave`] executes one wave's eligible chunks as a batch:
//!   ring heads are gathered into struct-of-arrays scratch buffers
//!   (lane = process, one bounds decision per wave instead of one per
//!   op), the op tape runs as lane-inner tight loops the compiler can
//!   auto-vectorize, and results scatter back in FIFO order. The
//!   per-lane logical accounting (`steps`, `messages`, ring `moved`)
//!   is identical to the loop-summarized macro path, so stores stay
//!   bit-identical and stats invariant — the same contract every other
//!   engine upholds.
//!
//! Safety of the gather/scatter: within one wave, chunks share no
//! channels (the plan's leveling invariant), and a lane only touches its
//! own process's rings. Batch-popping all `m` iterations before any
//! push is stream-equivalent to the interleaved pop/push of the macro
//! path because `m` never exceeds the input occupancy or output slack
//! observed at the start of the batch — even a self-looped ring serves
//! only values that were already queued. See `docs/kernels.md`.

use crate::procir::{ProcIrModule, ProcOp};
use crate::process::Value;
use crate::wavefront::{ChunkRunner, RingSlab, SlabView, WavefrontPlan};

/// Whether a wavefront run may execute eligible waves through compiled
/// kernels. `Auto` engages them whenever the module compiled one and the
/// chunk qualifies; `Off` forces every chunk onto the scalar
/// `macro_step` path (`--kernel off`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum KernelMode {
    #[default]
    Auto,
    Off,
}

/// One op of the kernel tape. Ops form an SSA register file: op `i`
/// defines register `i`, and operand indices always point at earlier
/// ops, so the vector interpreter can split the register file at the
/// destination without aliasing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelOp {
    /// Read local slot `s` (current value — later reads see earlier
    /// writebacks within one statement, like `BasicStatement::execute`).
    Slot(u32),
    /// Read coordinate `d` of the repeater's current index point.
    Index(u32),
    Const(Value),
    Add(u32, u32),
    Sub(u32, u32),
    Mul(u32, u32),
    Min(u32, u32),
    Max(u32, u32),
    Neg(u32),
}

/// The compiled basic statement: straight-line ops over named local
/// slots. Produced once per skeleton by the compiler side and shared via
/// the module (`ProcIrModule::kernel`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Kernel {
    pub ops: Vec<KernelOp>,
    /// Slot writebacks applied in order after the tape: `(slot, reg)`.
    pub writes: Vec<(u32, u32)>,
    /// One past the highest local slot the tape or writes touch.
    pub n_slots: u32,
    /// One past the highest index coordinate the tape reads.
    pub n_dims: u32,
}

impl Kernel {
    /// Scalar reference interpreter — the single-lane semantics the
    /// vectorized path must match; used by the differential tests.
    pub fn execute_scalar(&self, locals: &mut [Value], x: &[i64]) {
        let mut regs = vec![0i64; self.ops.len()];
        for (i, op) in self.ops.iter().enumerate() {
            regs[i] = match *op {
                KernelOp::Slot(s) => locals[s as usize],
                KernelOp::Index(d) => x[d as usize],
                KernelOp::Const(c) => c,
                KernelOp::Add(a, b) => regs[a as usize] + regs[b as usize],
                KernelOp::Sub(a, b) => regs[a as usize] - regs[b as usize],
                KernelOp::Mul(a, b) => regs[a as usize] * regs[b as usize],
                KernelOp::Min(a, b) => regs[a as usize].min(regs[b as usize]),
                KernelOp::Max(a, b) => regs[a as usize].max(regs[b as usize]),
                KernelOp::Neg(a) => -regs[a as usize],
            };
        }
        for &(slot, reg) in &self.writes {
            locals[slot as usize] = regs[reg as usize];
        }
    }
}

/// The per-module kernel classification: which wavefront chunks may run
/// through the compiled kernel, and why the rest cannot. Derived once
/// per (module, wavefront plan) and memoized on `CachedModule` beside
/// the batch and wavefront analyses.
pub struct KernelPlan {
    /// Whether the module carries a compiled kernel at all.
    pub compiled: bool,
    /// Module-wide reject when it does not (body missing or resisting
    /// the lowering).
    pub reject: Option<String>,
    /// Per chunk, wave-major (the executor's order): `None` =
    /// kernel-eligible, `Some(reason)` = scalar fallback.
    pub chunk_reject: Vec<Option<String>>,
    /// Dense eligibility mask (`chunk_reject[k].is_none()`), the form the
    /// executor's per-wave filter reads — precomputed so the hot loop
    /// never chases the reject strings.
    pub chunk_ok: Vec<bool>,
    /// Chunks with `chunk_reject[k] == None`.
    pub eligible_chunks: usize,
    /// Waves containing at least one eligible chunk.
    pub waves_fusable: usize,
    /// [`Self::fallbacks`], aggregated once at analysis time.
    fallback_counts: Vec<(String, u64)>,
}

impl KernelPlan {
    pub fn any_eligible(&self) -> bool {
        self.eligible_chunks > 0
    }

    /// Scalar-fallback reasons aggregated over the chunks, sorted by
    /// descending count then reason (deterministic for reports).
    pub fn fallbacks(&self) -> Vec<(String, u64)> {
        self.fallback_counts.clone()
    }

    fn aggregate_fallbacks(chunk_reject: &[Option<String>]) -> Vec<(String, u64)> {
        let mut counts: Vec<(String, u64)> = Vec::new();
        for r in chunk_reject.iter().flatten() {
            match counts.iter_mut().find(|(s, _)| s == r) {
                Some((_, n)) => *n += 1,
                None => counts.push((r.clone(), 1)),
            }
        }
        counts.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        counts
    }

    /// A report seeded with the static analysis; the executor fills in
    /// the runtime counters.
    pub fn report(&self, enabled: bool) -> KernelReport {
        KernelReport {
            enabled,
            compiled: self.compiled,
            reject: self.reject.clone(),
            eligible_chunks: self.eligible_chunks as u64,
            scalar_chunks: (self.chunk_reject.len() - self.eligible_chunks) as u64,
            fallbacks: self.fallbacks(),
            ..KernelReport::default()
        }
    }
}

/// What the kernel layer did for one run: the static eligibility split
/// plus runtime fusion counters. Kept separate from `RunStats` — the
/// logical stats are equality-pinned across engines, while this report
/// legitimately differs between `--kernel auto` and `off`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KernelReport {
    /// The mode asked for kernels (`--kernel auto` on a wavefront run).
    pub enabled: bool,
    /// The module carries a compiled kernel.
    pub compiled: bool,
    /// Why not, when it does not.
    pub reject: Option<String>,
    pub eligible_chunks: u64,
    pub scalar_chunks: u64,
    /// Wave visits that retired at least one kernel batch.
    pub waves_fused: u64,
    /// Kernel batches executed (one gather/tape/scatter cycle).
    pub batches: u64,
    /// Lane-visits across those batches.
    pub lanes: u64,
    /// Compute iterations retired on the kernel path.
    pub iterations: u64,
    /// Scalar-fallback reasons with chunk counts.
    pub fallbacks: Vec<(String, u64)>,
}

/// Classify every chunk of a wavefront plan against the module's
/// compiled kernel. Pure structural analysis, O(processes); runs once
/// per module and is memoized upstream.
pub fn analyze_kernels(module: &ProcIrModule, plan: &WavefrontPlan) -> KernelPlan {
    let module_reject: Option<String> = if module.kernel.is_some() {
        None
    } else {
        Some(module.kernel_reject.clone().unwrap_or_else(|| {
            if module.body.is_some() {
                "opaque compute body (no kernel compiled)".into()
            } else {
                "transport-only module (no compute body)".into()
            }
        }))
    };
    let mut chunk_reject = Vec::with_capacity(plan.n_chunks());
    let mut eligible = 0usize;
    let mut waves_fusable = 0usize;
    for wave in &plan.waves {
        let mut any = false;
        for chunk in wave {
            let r = chunk_eligibility(module, chunk, &module_reject);
            if r.is_none() {
                eligible += 1;
                any = true;
            }
            chunk_reject.push(r);
        }
        if any {
            waves_fusable += 1;
        }
    }
    KernelPlan {
        compiled: module.kernel.is_some(),
        reject: module_reject,
        chunk_ok: chunk_reject.iter().map(|r| r.is_none()).collect(),
        fallback_counts: KernelPlan::aggregate_fallbacks(&chunk_reject),
        chunk_reject,
        eligible_chunks: eligible,
        waves_fusable,
    }
}

fn chunk_eligibility(
    module: &ProcIrModule,
    chunk: &[usize],
    module_reject: &Option<String>,
) -> Option<String> {
    if let Some(r) = module_reject {
        return Some(r.clone());
    }
    let kernel = module.kernel.as_deref().expect("checked above");
    if chunk.len() != 1 {
        return Some(format!("cyclic chunk ({} processes)", chunk.len()));
    }
    let pid = chunk[0];
    let has_compute = module
        .ops_of(pid)
        .iter()
        .any(|op| matches!(op, ProcOp::Compute { count } if *count > 0));
    if !has_compute {
        return Some("transport process (no compute op)".into());
    }
    let links = module.moving_of(pid);
    if links.is_empty() {
        return Some("repeater without moving links".into());
    }
    let distinct = links
        .iter()
        .enumerate()
        .all(|(i, a)| links[..i].iter().all(|b| a.inp != b.inp && a.out != b.out));
    if !distinct {
        return Some("aliased moving rings".into());
    }
    let rec = &module.procs[pid];
    if kernel.n_slots > rec.n_locals {
        return Some("kernel slots exceed process locals".into());
    }
    if kernel.n_dims as usize > module.first_of(pid).len() {
        return Some("kernel index rank exceeds repeater rank".into());
    }
    None
}

/// Reusable struct-of-arrays scratch for one run: every buffer is laid
/// out lane-contiguous (`[field][lane]`, or `[link][lane][iter]` for
/// the ring payloads) so the tape's inner loops run over dense arrays.
#[derive(Default)]
pub(crate) struct KernelScratch {
    locals: Vec<Value>,
    x: Vec<i64>,
    incr: Vec<i64>,
    regs: Vec<Value>,
    inb: Vec<Value>,
    outb: Vec<Value>,
    /// The batch's moving-slot layout (shared by every lane); reused
    /// across batches so the steady state allocates nothing.
    link_slots: Vec<u32>,
    /// The runner indices batched this round — same reuse story.
    lanes: Vec<usize>,
    /// The candidates for the next round's phase 1.
    cand: Vec<usize>,
}

std::thread_local! {
    /// One scratch per thread, warm across runs: a fresh allocation per
    /// run means cold pages per run, which interleaved benchmark visits
    /// (and real multi-tenant traffic) pay over and over.
    static SCRATCH: std::cell::RefCell<KernelScratch> =
        std::cell::RefCell::new(KernelScratch::default());
}

/// Swap the thread's warm scratch out for the duration of a run. Pair
/// with [`put_scratch`]; an early-errored run that never puts back only
/// costs the warmth, not correctness.
pub(crate) fn take_scratch() -> KernelScratch {
    SCRATCH.with(|s| std::mem::take(&mut *s.borrow_mut()))
}

pub(crate) fn put_scratch(scratch: KernelScratch) {
    SCRATCH.with(|s| *s.borrow_mut() = scratch);
}

/// Execute one wave's kernel-eligible dirty chunks as struct-of-arrays
/// batches, then leave them for the ordinary chunk sweep (which drains
/// any post-compute ops and guarantees the wave fixpoint). Returns
/// whether any batch retired work.
///
/// The loop alternates two phases until no lane can advance: park every
/// live chunk at its Compute op (`macro_step_to_compute` retires the
/// soak prefix with ordinary accounting), then batch the parked lanes
/// over the minimum number of iterations every lane's rings can serve.
pub(crate) fn kernel_wave(
    kernel: &Kernel,
    work: &[usize],
    runners: &mut [ChunkRunner],
    slab: &RingSlab,
    scratch: &mut KernelScratch,
    report: &mut KernelReport,
) -> bool {
    let mut ran = false;
    let KernelScratch {
        locals,
        x,
        incr,
        regs,
        inb,
        outb,
        link_slots,
        lanes,
        cand,
    } = scratch;
    // Round 1 considers the whole worklist; later rounds revisit only the
    // lanes that just batched — same-wave chunks share no rings (the
    // plan's leveling invariant), so nothing else can have advanced.
    cand.clear();
    cand.extend_from_slice(work);
    loop {
        // Phase 1: advance every live chunk to its kernel point (or to
        // blockage / completion) and size the joint batch.
        lanes.clear();
        let mut iters = u64::MAX;
        for &k in cand.iter() {
            let r = &mut runners[k];
            if r.left == 0 || r.finished[0] {
                continue;
            }
            let mut view = SlabView(slab);
            let mut pass_moved = 0u64;
            if r.vms[0].macro_step_to_compute(&mut view, &mut r.stats, &mut pass_moved) {
                r.finished[0] = true;
                r.left -= 1;
            }
            r.moved += pass_moved;
            if r.finished[0] {
                continue;
            }
            let Some(remaining) = r.vms[0].kernel_point() else {
                continue;
            };
            let view = SlabView(slab);
            let mut m = remaining;
            for mc in r.vms[0].links() {
                let avail = view[mc.inp].len() as u64;
                let free = view[mc.out].free() as u64;
                m = m.min(avail).min(free);
            }
            if m == 0 {
                continue;
            }
            lanes.push(k);
            iters = iters.min(m);
        }
        if lanes.is_empty() {
            return ran;
        }

        // Defensive homogeneity check: every lane must share the moving
        // slot layout, local count, and index rank of the first (true by
        // construction — one basic statement, one stream set — but a
        // mismatch must degrade to scalar, not corrupt the batch).
        let first = &runners[lanes[0]].vms[0];
        let (n_locals, dims) = (first.n_locals(), first.dims());
        link_slots.clear();
        link_slots.extend(first.links().iter().map(|mc| mc.slot));
        let n_links = link_slots.len();
        lanes.retain(|&k| {
            let vm = &runners[k].vms[0];
            vm.n_locals() == n_locals
                && vm.dims() == dims
                && vm.links().len() == n_links
                && vm
                    .links()
                    .iter()
                    .zip(link_slots.iter())
                    .all(|(mc, &s)| mc.slot == s)
        });
        let lane_n = lanes.len();
        let iters = iters as usize;

        // Phase 2: gather — locals, index points, increments, and all
        // `iters` ring heads per link, popped in FIFO order. One
        // capacity decision for the whole batch was made above.
        locals.resize(n_locals * lane_n, 0);
        x.resize(dims * lane_n, 0);
        incr.resize(dims * lane_n, 0);
        regs.resize(kernel.ops.len() * lane_n, 0);
        inb.resize(n_links * lane_n * iters, 0);
        outb.resize(n_links * lane_n * iters, 0);
        for (li, &k) in lanes.iter().enumerate() {
            let r = &mut runners[k];
            r.moved += (n_links * iters) as u64;
            let vm = &mut r.vms[0];
            for (d, &inc) in vm.increments().iter().enumerate() {
                incr[d * lane_n + li] = inc;
            }
            {
                let (vm_locals, vm_x, _t) = vm.lane_state();
                for (s, &v) in vm_locals.iter().enumerate() {
                    locals[s * lane_n + li] = v;
                }
                for (d, &xv) in vm_x.iter().enumerate() {
                    x[d * lane_n + li] = xv;
                }
            }
            let mut view = SlabView(slab);
            for (j, mc) in vm.links().iter().enumerate() {
                let base = (j * lane_n + li) * iters;
                view[mc.inp].pop_many(&mut inb[base..base + iters]);
            }
        }

        // Phase 3: the tape, op-outer / lane-inner. Each iteration feeds
        // the moving slots from the gathered ring values, runs the SSA
        // ops over dense lane arrays, applies the writebacks, snapshots
        // the moving slots for the scatter, and advances the index
        // points — exactly one loop-summarized macro iteration, batched.
        for it in 0..iters {
            for (j, &slot) in link_slots.iter().enumerate() {
                let src = j * lane_n * iters;
                let dst = slot as usize * lane_n;
                for li in 0..lane_n {
                    locals[dst + li] = inb[src + li * iters + it];
                }
            }
            for (i, op) in kernel.ops.iter().enumerate() {
                let (head, tail) = regs.split_at_mut(i * lane_n);
                let dst = &mut tail[..lane_n];
                match *op {
                    KernelOp::Slot(s) => {
                        dst.copy_from_slice(&locals[s as usize * lane_n..][..lane_n])
                    }
                    KernelOp::Index(d) => {
                        dst.copy_from_slice(&x[d as usize * lane_n..][..lane_n])
                    }
                    KernelOp::Const(c) => dst.fill(c),
                    KernelOp::Add(a, b) => {
                        let a = &head[a as usize * lane_n..][..lane_n];
                        let b = &head[b as usize * lane_n..][..lane_n];
                        for l in 0..lane_n {
                            dst[l] = a[l] + b[l];
                        }
                    }
                    KernelOp::Sub(a, b) => {
                        let a = &head[a as usize * lane_n..][..lane_n];
                        let b = &head[b as usize * lane_n..][..lane_n];
                        for l in 0..lane_n {
                            dst[l] = a[l] - b[l];
                        }
                    }
                    KernelOp::Mul(a, b) => {
                        let a = &head[a as usize * lane_n..][..lane_n];
                        let b = &head[b as usize * lane_n..][..lane_n];
                        for l in 0..lane_n {
                            dst[l] = a[l] * b[l];
                        }
                    }
                    KernelOp::Min(a, b) => {
                        let a = &head[a as usize * lane_n..][..lane_n];
                        let b = &head[b as usize * lane_n..][..lane_n];
                        for l in 0..lane_n {
                            dst[l] = a[l].min(b[l]);
                        }
                    }
                    KernelOp::Max(a, b) => {
                        let a = &head[a as usize * lane_n..][..lane_n];
                        let b = &head[b as usize * lane_n..][..lane_n];
                        for l in 0..lane_n {
                            dst[l] = a[l].max(b[l]);
                        }
                    }
                    KernelOp::Neg(a) => {
                        let a = &head[a as usize * lane_n..][..lane_n];
                        for l in 0..lane_n {
                            dst[l] = -a[l];
                        }
                    }
                }
            }
            for &(slot, reg) in &kernel.writes {
                let (src, dst) = (reg as usize * lane_n, slot as usize * lane_n);
                locals[dst..dst + lane_n].copy_from_slice(&regs[src..src + lane_n]);
            }
            for (j, &slot) in link_slots.iter().enumerate() {
                let dst = j * lane_n * iters;
                let src = slot as usize * lane_n;
                for li in 0..lane_n {
                    outb[dst + li * iters + it] = locals[src + li];
                }
            }
            for d in 0..dims {
                let xs = d * lane_n;
                for li in 0..lane_n {
                    x[xs + li] += incr[xs + li];
                }
            }
        }

        // Phase 4: scatter — push the produced values in FIFO order,
        // write the locals / index points / iteration counter back, and
        // account the batch exactly as `iters` loop-summarized macro
        // iterations would have (one step per par-set, one message per
        // pushed value, one `moved` tick per ring touch).
        for (li, &k) in lanes.iter().enumerate() {
            let r = &mut runners[k];
            let vm = &mut r.vms[0];
            let mut view = SlabView(slab);
            for (j, mc) in vm.links().iter().enumerate() {
                let base = (j * lane_n + li) * iters;
                view[mc.out].push_many(&outb[base..base + iters]);
            }
            let (vm_locals, vm_x, t) = vm.lane_state();
            for (s, lv) in vm_locals.iter_mut().enumerate() {
                *lv = locals[s * lane_n + li];
            }
            for (d, xv) in vm_x.iter_mut().enumerate() {
                *xv = x[d * lane_n + li];
            }
            *t += iters as i64;
            r.stats.steps += 2 * iters as u64;
            r.stats.messages += (n_links * iters) as u64;
            r.moved += (n_links * iters) as u64;
        }

        ran = true;
        report.batches += 1;
        report.lanes += lane_n as u64;
        report.iterations += (lane_n * iters) as u64;
        std::mem::swap(lanes, cand);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_interpreter_matches_hand_evaluation() {
        // c := c + a*b, then a := -a  (sequential: the second update
        // sees the original a, the writeback order is the update order).
        let k = Kernel {
            ops: vec![
                KernelOp::Slot(2),
                KernelOp::Slot(0),
                KernelOp::Slot(1),
                KernelOp::Mul(1, 2),
                KernelOp::Add(0, 3),
                KernelOp::Neg(1),
            ],
            writes: vec![(2, 4), (0, 5)],
            n_slots: 3,
            n_dims: 0,
        };
        let mut locals = vec![3, 5, 10];
        k.execute_scalar(&mut locals, &[]);
        assert_eq!(locals, vec![-3, 5, 25]);
    }

    #[test]
    fn index_reads_see_the_current_point() {
        // out := x0 + x1
        let k = Kernel {
            ops: vec![KernelOp::Index(0), KernelOp::Index(1), KernelOp::Add(0, 1)],
            writes: vec![(0, 2)],
            n_slots: 1,
            n_dims: 2,
        };
        let mut locals = vec![0];
        k.execute_scalar(&mut locals, &[7, 35]);
        assert_eq!(locals, vec![42]);
    }
}
