//! The ProcIR optimizer: relay-chain fusion into delay rings, plus op
//! peepholes that feed it.
//!
//! Elaboration (Sec. 7.6 and `PS \ CS`) manufactures large numbers of
//! processes that exist only to *delay* values: the `d - 1` internal
//! buffers of fractional flow and the external relay pipes between
//! non-adjacent cells. Each is a single `pass s, n` — a pure FIFO of
//! depth 1 with a rendezvous handshake on both sides. After batching
//! (`crate::batch`) they still cost a VM, two ring endpoints, and a
//! scheduler visit per value. This pass erases them: a maximal linear
//! chain of `Pass`-only processes with unique endpoints and balanced
//! traffic collapses into a single **delay ring** — the chain's entry
//! channel survives with a fixed capacity at least the chain's total
//! buffering, the consumer is rewired onto it, and the relay processes
//! and interior channels are deleted outright.
//!
//! Legality is the Kahn-network argument one level up from batching
//! (`docs/scheduler.md`): a pure relay computes the identity stream
//! function, so fusing a chain changes neither the value sequence any
//! surviving process reads nor the order it reads it in — only the
//! *timing*. Granting the surviving channel the chain's worst-case
//! buffering (`Σ widths + k` holding slots for `k` relays, clamped to
//! the total traffic) makes every schedule of the original module
//! replayable on the fused one, so termination and stores are
//! preserved. What is **not** preserved is the logical step/message
//! count — each fused relay retires `2n` steps and `n` messages that no
//! longer happen — so unlike batching, optimization is observable in
//! the stats. The contract is: stores bit-identical, counts free to
//! shrink, and every structural decision written into a
//! [`OptReport`] (`systolic-opt-v1`) the caller can thread into
//! metrics, the CLI, and the codegen agreement check.
//!
//! Pass ordering: op peepholes run **first** (drop zero-iteration ops,
//! merge consecutive same-pair `Pass` repetitions, fuse an adjacent
//! `Keep`/`Eject` pair into a `Pass` when the local is dead), because
//! they can turn a process *into* a pure relay that chain fusion then
//! consumes. The peepholes alone are stat-invariant; only chain
//! deletion changes counts.

use crate::batch::DEFAULT_BATCH_WIDTH;
use crate::process::ChanId;
use crate::procir::{MovingLink, ProcId, ProcIrModule, ProcOp, ProcRecord};
use std::sync::Arc;

/// Whether a run may apply the optimizer at all. `Auto` optimizes
/// whenever the module proves out (and the run is on the batched path —
/// delay rings only exist there); `Off` keeps the elaborated module
/// verbatim and is the exactness oracle (`--opt off`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OptMode {
    #[default]
    Auto,
    Off,
}

/// One fused relay chain, in pre-optimization ids except where noted.
#[derive(Clone, Debug)]
pub struct ChainRecord {
    /// The chain's entry channel (producer side). This channel survives
    /// and becomes the delay ring.
    pub entry: ChanId,
    /// The chain's exit channel (consumer side); deleted, with the
    /// consumer rewired onto `entry`.
    pub exit: ChanId,
    /// `entry` under the post-optimization dense renumbering.
    pub surviving: ChanId,
    /// The fused relay processes, in flow order.
    pub relays: Vec<ProcId>,
    /// Per-relay repetition count (identical along the chain).
    pub traffic: u64,
    /// Ring capacity granted to the surviving channel: at least the
    /// chain's worst-case buffering, at most its total traffic.
    pub capacity: u64,
}

/// The `systolic-opt-v1` mapping report: what the optimizer did, in
/// enough detail for metrics, the CLI, and the codegen agreement check
/// to reconcile the optimized module with the elaborated one.
#[derive(Clone, Debug, Default)]
pub struct OptReport {
    pub processes_before: usize,
    pub processes_after: usize,
    pub channels_before: usize,
    pub channels_after: usize,
    pub ops_before: usize,
    pub ops_after: usize,
    /// Zero-iteration `Pass`/`Compute` ops dropped.
    pub zero_ops_dropped: u64,
    /// Consecutive same-pair `Pass` ops merged away.
    pub passes_merged: u64,
    /// Adjacent `Keep`/`Eject` pairs rewritten to `Pass`.
    pub keep_eject_fused: u64,
    /// Every fused chain, in discovery order.
    pub chains: Vec<ChainRecord>,
    /// Pre-opt `ProcId` → post-opt `ProcId`; `None` = deleted (fused
    /// into a delay ring).
    pub proc_map: Vec<Option<ProcId>>,
    /// Pre-opt `ChanId` → post-opt `ChanId`; `None` = deleted.
    pub chan_map: Vec<Option<ChanId>>,
}

impl OptReport {
    /// Total relay processes deleted by chain fusion.
    pub fn fused_relays(&self) -> usize {
        self.chains.iter().map(|c| c.relays.len()).sum()
    }

    /// One-line human summary for the CLI.
    pub fn summary(&self) -> String {
        format!(
            "{} relays fused into {} delay rings, {}→{} processes, {}→{} channels, \
             {} passes merged, {} keep/eject pairs fused, {} zero ops dropped",
            self.fused_relays(),
            self.chains.len(),
            self.processes_before,
            self.processes_after,
            self.channels_before,
            self.channels_after,
            self.passes_merged,
            self.keep_eject_fused,
            self.zero_ops_dropped,
        )
    }

    /// Serialize as `systolic-opt-v1` JSON (hand-rolled like every other
    /// report in this codebase; no serde).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"schema\": \"systolic-opt-v1\",\n");
        s.push_str(&format!(
            "  \"processes_before\": {},\n  \"processes_after\": {},\n",
            self.processes_before, self.processes_after
        ));
        s.push_str(&format!(
            "  \"channels_before\": {},\n  \"channels_after\": {},\n",
            self.channels_before, self.channels_after
        ));
        s.push_str(&format!(
            "  \"ops_before\": {},\n  \"ops_after\": {},\n",
            self.ops_before, self.ops_after
        ));
        s.push_str(&format!(
            "  \"zero_ops_dropped\": {},\n  \"passes_merged\": {},\n  \"keep_eject_fused\": {},\n",
            self.zero_ops_dropped, self.passes_merged, self.keep_eject_fused
        ));
        s.push_str("  \"chains\": [");
        for (i, c) in self.chains.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{ \"entry\": {}, \"exit\": {}, \"surviving\": {}, \
                 \"relays\": {}, \"traffic\": {}, \"capacity\": {} }}",
                c.entry,
                c.exit,
                c.surviving,
                c.relays.len(),
                c.traffic,
                c.capacity
            ));
        }
        if !self.chains.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }

    /// Parse a `systolic-opt-v1` report back. Inverse of
    /// [`OptReport::to_json`] up to the fields the JSON carries: the
    /// proc/chan maps are not serialized, and each chain's relay list
    /// comes back as `relays.len()` placeholder ids. Round-trip holds as
    /// `to_json(from_json(j)) == j` for any `j` produced by `to_json`.
    pub fn from_json(json: &str) -> Option<OptReport> {
        if !json.contains("\"schema\": \"systolic-opt-v1\"") {
            return None;
        }
        fn grab(s: &str, key: &str) -> Option<u64> {
            let pat = format!("\"{key}\": ");
            let at = s.find(&pat)? + pat.len();
            let rest = &s[at..];
            let end = rest
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(rest.len());
            rest[..end].parse().ok()
        }
        let mut r = OptReport {
            processes_before: grab(json, "processes_before")? as usize,
            processes_after: grab(json, "processes_after")? as usize,
            channels_before: grab(json, "channels_before")? as usize,
            channels_after: grab(json, "channels_after")? as usize,
            ops_before: grab(json, "ops_before")? as usize,
            ops_after: grab(json, "ops_after")? as usize,
            zero_ops_dropped: grab(json, "zero_ops_dropped")?,
            passes_merged: grab(json, "passes_merged")?,
            keep_eject_fused: grab(json, "keep_eject_fused")?,
            ..OptReport::default()
        };
        let chains_at = json.find("\"chains\": [")?;
        let mut rest = &json[chains_at..];
        while let Some(open) = rest.find('{') {
            let close = rest[open..].find('}')? + open;
            let obj = &rest[open..=close];
            r.chains.push(ChainRecord {
                entry: grab(obj, "entry")? as ChanId,
                exit: grab(obj, "exit")? as ChanId,
                surviving: grab(obj, "surviving")? as ChanId,
                relays: vec![0; grab(obj, "relays")? as usize],
                traffic: grab(obj, "traffic")?,
                capacity: grab(obj, "capacity")?,
            });
            rest = &rest[close + 1..];
        }
        Some(r)
    }
}

/// An optimized module plus everything the executors and codegen need
/// to run it: the per-channel minimum ring capacities (the delay rings;
/// `0` = no requirement beyond the batch analysis) and the mapping
/// report.
pub struct OptimizedModule {
    pub module: Arc<ProcIrModule>,
    /// Minimum ring capacity per post-opt channel; feed to
    /// [`crate::batch::analyze_with_caps`].
    pub chan_caps: Vec<u64>,
    pub report: OptReport,
}

/// Per-channel endpoint/traffic facts of the cleaned module, mirroring
/// `crate::batch::analyze` (which the fused module still runs through).
struct Endpoints {
    producer_of: Vec<Option<ProcId>>,
    consumer_of: Vec<Option<ProcId>>,
    traffic: Vec<u64>,
    pinned: Vec<bool>,
}

/// Run the pass pipeline. Returns `None` when the module is left
/// untouched: nothing to rewrite, or an endpoint/traffic shape the
/// legality analysis cannot prove (two producers or consumers on a
/// channel, unbalanced traffic) — exactly the shapes `crate::batch`
/// also rejects, so the caller's fallback is the same rendezvous path.
pub fn optimize(module: &Arc<ProcIrModule>) -> Option<OptimizedModule> {
    let mut report = OptReport {
        processes_before: module.procs.len(),
        channels_before: module.n_chans,
        ops_before: module.ops.len(),
        proc_map: vec![None; module.procs.len()],
        chan_map: vec![None; module.n_chans],
        ..OptReport::default()
    };

    // Phase 1: op peepholes, per process, on copies of the op lists.
    let cleaned: Vec<Vec<ProcOp>> = (0..module.procs.len())
        .map(|pid| peephole(module, pid, &mut report))
        .collect();
    let touched_ops = report.zero_ops_dropped + report.passes_merged + report.keep_eject_fused > 0;

    // Phase 2: endpoint facts on the cleaned ops. A shape the analysis
    // cannot prove unique/balanced rejects the whole module.
    let ends = endpoints(module, &cleaned)?;

    // Phase 3: chain discovery over pure relays.
    let chains = find_chains(module, &cleaned, &ends);
    if chains.is_empty() && !touched_ops {
        return None;
    }

    // Phase 4: rebuild the module without the fused relays.
    Some(rebuild(module, cleaned, chains, report))
}

/// The op peepholes for one process: drop zero-iteration ops, fuse an
/// adjacent dead `Keep`/`Eject` pair into a `Pass`, merge consecutive
/// same-pair `Pass` repetitions. Each rewrite is stat-invariant (the
/// rewritten ops retire the same logical sets and transfers).
fn peephole(module: &ProcIrModule, pid: ProcId, report: &mut OptReport) -> Vec<ProcOp> {
    // Pass A: zero-iteration ops retire no sets; deleting them is
    // invisible (and can make a keep/eject pair adjacent).
    let mut ops: Vec<ProcOp> = Vec::with_capacity(module.ops_of(pid).len());
    for &op in module.ops_of(pid) {
        match op {
            ProcOp::Pass { n: 0, .. } | ProcOp::Compute { count: 0 } => {
                report.zero_ops_dropped += 1;
            }
            _ => ops.push(op),
        }
    }

    // Pass B: slot liveness. A slot is *live* — and its keep/eject
    // pairs must stay — when a basic statement might read it (any
    // surviving Compute: the body sees all locals), a moving link flows
    // through it, or any Keep/Eject touches it outside an adjacent
    // keep-then-eject pair. Dead slots exist only to forward one value,
    // which is exactly `pass 1`.
    let n_locals = module.procs[pid].n_locals as usize;
    let mut slot_live = vec![false; n_locals];
    if ops.iter().any(|o| matches!(o, ProcOp::Compute { .. })) {
        slot_live.iter_mut().for_each(|l| *l = true);
    }
    for mc in module.moving_of(pid) {
        slot_live[mc.slot as usize] = true;
    }
    let adjacent_pair = |i: usize| -> Option<(ChanId, ChanId, u32)> {
        if let (
            Some(&ProcOp::Keep { chan: c_in, slot }),
            Some(&ProcOp::Eject {
                chan: c_out,
                slot: s2,
            }),
        ) = (ops.get(i), ops.get(i + 1))
        {
            if slot == s2 && c_in != c_out {
                return Some((c_in, c_out, slot));
            }
        }
        None
    };
    let mut i = 0;
    while i < ops.len() {
        if adjacent_pair(i).is_some() {
            i += 2;
        } else {
            if let ProcOp::Keep { slot, .. } | ProcOp::Eject { slot, .. } = ops[i] {
                slot_live[slot as usize] = true;
            }
            i += 1;
        }
    }

    // Pass C: rewrite dead keep/eject pairs to `pass 1` and merge
    // consecutive same-pair passes (the repetition counts simply add).
    let mut out: Vec<ProcOp> = Vec::with_capacity(ops.len());
    let mut i = 0;
    while i < ops.len() {
        let op = match adjacent_pair(i) {
            Some((c_in, c_out, slot)) if !slot_live[slot as usize] => {
                report.keep_eject_fused += 1;
                i += 2;
                ProcOp::Pass {
                    inp: c_in,
                    out: c_out,
                    n: 1,
                }
            }
            _ => {
                i += 1;
                ops[i - 1]
            }
        };
        if let (
            Some(ProcOp::Pass {
                inp: pi,
                out: po,
                n: pn,
            }),
            ProcOp::Pass { inp, out, n },
        ) = (out.last_mut(), op)
        {
            if *pi == inp && *po == out {
                *pn = pn.saturating_add(n);
                report.passes_merged += 1;
                continue;
            }
        }
        out.push(op);
    }
    out
}

/// Unique-endpoint and traffic facts over the cleaned ops, or `None`
/// when a channel has two producers/consumers or unbalanced traffic.
fn endpoints(module: &ProcIrModule, cleaned: &[Vec<ProcOp>]) -> Option<Endpoints> {
    let nc = module.n_chans;
    let mut producer_of: Vec<Option<ProcId>> = vec![None; nc];
    let mut consumer_of: Vec<Option<ProcId>> = vec![None; nc];
    let mut prod = vec![0u64; nc];
    let mut cons = vec![0u64; nc];
    let mut pinned = vec![false; nc];
    let mut ok = true;
    let mut claim = |tbl: &mut Vec<Option<ProcId>>, chan: ChanId, pid: ProcId| match tbl[chan] {
        None => tbl[chan] = Some(pid),
        Some(prev) if prev == pid => {}
        Some(_) => ok = false,
    };
    for (pid, ops) in cleaned.iter().enumerate() {
        for op in ops {
            match *op {
                ProcOp::Emit { chan } => {
                    claim(&mut producer_of, chan, pid);
                    prod[chan] += 1;
                }
                ProcOp::Collect { chan } => {
                    claim(&mut consumer_of, chan, pid);
                    cons[chan] += 1;
                }
                ProcOp::Keep { chan, .. } => {
                    claim(&mut consumer_of, chan, pid);
                    cons[chan] += 1;
                    pinned[chan] = true;
                }
                ProcOp::Eject { chan, .. } => {
                    claim(&mut producer_of, chan, pid);
                    prod[chan] += 1;
                    pinned[chan] = true;
                }
                ProcOp::Pass { inp, out, n } => {
                    claim(&mut consumer_of, inp, pid);
                    cons[inp] = cons[inp].saturating_add(n);
                    claim(&mut producer_of, out, pid);
                    prod[out] = prod[out].saturating_add(n);
                }
                ProcOp::Compute { count } => {
                    for mc in module.moving_of(pid) {
                        claim(&mut consumer_of, mc.inp, pid);
                        cons[mc.inp] = cons[mc.inp].saturating_add(count);
                        claim(&mut producer_of, mc.out, pid);
                        prod[mc.out] = prod[mc.out].saturating_add(count);
                    }
                }
            }
        }
    }
    if !ok || prod != cons {
        return None;
    }
    Some(Endpoints {
        producer_of,
        consumer_of,
        traffic: prod,
        pinned,
    })
}

/// A process is a pure relay when, after cleanup, it is exactly one
/// `Pass` between distinct channels and nothing else — no locals, no
/// moving links, no output buffer. Such a process computes the identity
/// stream function, so it (and only it) is a fusion candidate; in
/// particular a `Keep`/`Eject` endpoint can never be fused away.
fn pure_relay(
    module: &ProcIrModule,
    cleaned: &[Vec<ProcOp>],
    pid: ProcId,
) -> Option<(ChanId, ChanId, u64)> {
    match cleaned[pid][..] {
        [ProcOp::Pass { inp, out, n }]
            if inp != out
                && n > 0
                && module.moving_of(pid).is_empty()
                && module.procs[pid].output.is_none() =>
        {
            Some((inp, out, n))
        }
        _ => None,
    }
}

/// Discover maximal linear chains of pure relays. Each chain needs a
/// real (non-relay) producer feeding its entry channel and a real
/// consumer on its exit channel — a cycle of pure relays has neither
/// and is left alone.
fn find_chains(
    module: &ProcIrModule,
    cleaned: &[Vec<ProcOp>],
    ends: &Endpoints,
) -> Vec<ChainRecord> {
    let n = module.procs.len();
    let mut in_chain = vec![false; n];
    let mut chains = Vec::new();
    for seed in 0..n {
        if in_chain[seed] {
            continue;
        }
        let Some((mut inp, _, traffic)) = pure_relay(module, cleaned, seed) else {
            continue;
        };
        // Walk upstream to the chain's head, guarding against relay
        // cycles with a membership set.
        let mut members = vec![seed];
        let mut head = seed;
        while let Some(p) = ends.producer_of[inp] {
            if in_chain[p] || members.contains(&p) {
                break;
            }
            let Some((pi, _, pn)) = pure_relay(module, cleaned, p) else {
                break;
            };
            if pn != traffic {
                break;
            }
            members.insert(0, p);
            head = p;
            inp = pi;
        }
        // Walk downstream from the tail.
        let (_, mut out, _) = pure_relay(module, cleaned, *members.last().unwrap()).unwrap();
        while let Some(c) = ends.consumer_of[out] {
            if in_chain[c] || members.contains(&c) {
                break;
            }
            let Some((_, co, cn)) = pure_relay(module, cleaned, c) else {
                break;
            };
            if cn != traffic {
                break;
            }
            members.push(c);
            out = co;
        }
        let (entry, _, _) = pure_relay(module, cleaned, head).unwrap();
        let exit = out;
        // Both external endpoints must exist outside the chain, and the
        // entry/exit channels must be distinct (a closed relay loop is
        // not a delay line).
        let producer = ends.producer_of[entry];
        let consumer = ends.consumer_of[exit];
        let external = |p: &Option<ProcId>| matches!(p, Some(pid) if !members.contains(pid));
        if entry == exit || !external(&producer) || !external(&consumer) {
            continue;
        }
        for &m in &members {
            in_chain[m] = true;
        }
        // Capacity: the chain's worst-case in-flight buffering under the
        // batch analysis — each channel's ring width plus one held value
        // per relay — clamped to the total traffic (more can never be in
        // flight) and at least 1.
        let width = |c: ChanId| {
            if ends.pinned[c] {
                1
            } else {
                ends.traffic[c].clamp(1, DEFAULT_BATCH_WIDTH)
            }
        };
        let mut cap = width(entry) + members.len() as u64;
        let mut c = entry;
        for &m in &members {
            let (_, o, _) = pure_relay(module, cleaned, m).unwrap();
            cap = cap.saturating_add(width(o));
            c = o;
        }
        debug_assert_eq!(c, exit);
        let capacity = cap.min(traffic).max(1);
        chains.push(ChainRecord {
            entry,
            exit,
            surviving: entry, // renumbered in `rebuild`
            relays: members,
            traffic,
            capacity,
        });
    }
    chains
}

/// Rebuild the arena without the fused relays: rewire every reference
/// to a chain's exit channel onto its entry channel, drop the interior
/// channels, and renumber processes and channels densely.
fn rebuild(
    module: &Arc<ProcIrModule>,
    cleaned: Vec<Vec<ProcOp>>,
    mut chains: Vec<ChainRecord>,
    mut report: OptReport,
) -> OptimizedModule {
    let nc = module.n_chans;
    let mut removed_proc = vec![false; module.procs.len()];
    let mut redirect: Vec<ChanId> = (0..nc).collect();
    let mut dropped_chan = vec![false; nc];
    for ch in &chains {
        for &pid in &ch.relays {
            removed_proc[pid] = true;
        }
        redirect[ch.exit] = ch.entry;
        dropped_chan[ch.exit] = true;
        // Interior channels: every relay's input except the entry.
        for &pid in &ch.relays[1..] {
            if let [ProcOp::Pass { inp, .. }] = cleaned[pid][..] {
                dropped_chan[inp] = true;
            }
        }
    }
    let resolve = |mut c: ChanId| {
        while redirect[c] != c {
            c = redirect[c];
        }
        c
    };

    // Dense channel renumbering over the survivors.
    let mut next = 0;
    for (c, dropped) in dropped_chan.iter().enumerate().take(nc) {
        if !dropped {
            report.chan_map[c] = Some(next);
            next += 1;
        }
    }
    let new_nc = next;
    let remap = |c: ChanId| report.chan_map[resolve(c)].expect("surviving channel");

    let mut ops = Vec::with_capacity(module.ops.len());
    let mut data = Vec::with_capacity(module.data.len());
    let mut moving = Vec::with_capacity(module.moving.len());
    let mut points = Vec::with_capacity(module.points.len());
    let mut procs = Vec::with_capacity(module.procs.len());
    for (pid, rec) in module.procs.iter().enumerate() {
        if removed_proc[pid] {
            continue;
        }
        report.proc_map[pid] = Some(procs.len());
        let o0 = ops.len() as u32;
        for op in &cleaned[pid] {
            ops.push(match *op {
                ProcOp::Emit { chan } => ProcOp::Emit { chan: remap(chan) },
                ProcOp::Collect { chan } => ProcOp::Collect { chan: remap(chan) },
                ProcOp::Keep { chan, slot } => ProcOp::Keep {
                    chan: remap(chan),
                    slot,
                },
                ProcOp::Eject { chan, slot } => ProcOp::Eject {
                    chan: remap(chan),
                    slot,
                },
                ProcOp::Pass { inp, out, n } => ProcOp::Pass {
                    inp: remap(inp),
                    out: remap(out),
                    n,
                },
                ProcOp::Compute { count } => ProcOp::Compute { count },
            });
        }
        let d0 = data.len() as u32;
        data.extend_from_slice(module.data_of(pid));
        let m0 = moving.len() as u32;
        for mc in module.moving_of(pid) {
            moving.push(MovingLink {
                slot: mc.slot,
                inp: remap(mc.inp),
                out: remap(mc.out),
            });
        }
        let p0 = points.len() as u32;
        points.extend_from_slice(module.first_of(pid));
        points.extend_from_slice(module.increment_of(pid));
        procs.push(ProcRecord {
            label: rec.label.clone(),
            ops: (o0, ops.len() as u32),
            data: (d0, data.len() as u32),
            moving: (m0, moving.len() as u32),
            repeater: (p0, points.len() as u32),
            n_locals: rec.n_locals,
            output: rec.output,
        });
    }

    let mut chan_caps = vec![0u64; new_nc];
    for ch in &mut chains {
        ch.surviving = report.chan_map[ch.entry].expect("entry channel survives");
        chan_caps[ch.surviving] = chan_caps[ch.surviving].max(ch.capacity);
    }

    report.processes_after = procs.len();
    report.channels_after = new_nc;
    report.ops_after = ops.len();
    report.chains = chains;
    let module = Arc::new(ProcIrModule {
        ops,
        data,
        moving,
        points,
        procs,
        n_chans: new_nc,
        n_outputs: module.n_outputs,
        body: module.body.clone(),
        kernel: module.kernel.clone(),
        kernel_reject: module.kernel_reject.clone(),
    });
    OptimizedModule {
        module,
        chan_caps,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::analyze_with_caps;
    use crate::coop::run_coop_batched;
    use crate::procir::ProcIrBuilder;

    /// src -> relay -> relay -> relay -> sink: the three relays fuse
    /// into one delay ring on the entry channel and the sink reads the
    /// identical stream.
    #[test]
    fn relay_chain_fuses_into_one_delay_ring() {
        let mut b = ProcIrBuilder::new();
        let vals: Vec<i64> = (0..10).collect();
        b.source(0, &vals, "src");
        b.relay(0, 1, 10, "buf0");
        b.relay(1, 2, 10, "buf1");
        b.relay(2, 3, 10, "buf2");
        b.sink(3, 10, "sink");
        let m = b.build(None);
        let o = optimize(&m).expect("chain should fuse");
        assert_eq!(o.module.procs.len(), 2, "only src and sink survive");
        assert_eq!(o.module.n_chans, 1, "one delay ring channel");
        assert_eq!(o.report.chains.len(), 1);
        assert_eq!(o.report.fused_relays(), 3);
        let ch = &o.report.chains[0];
        assert_eq!((ch.entry, ch.exit, ch.traffic), (0, 3, 10));
        assert!(ch.capacity >= 3, "at least one held slot per relay");
        assert_eq!(o.chan_caps[ch.surviving], ch.capacity);
        // The fused module actually runs and the sink sees the stream.
        let plan = analyze_with_caps(&o.module, &o.chan_caps);
        assert!(plan.batchable(), "{:?}", plan.reject_reason());
        let (_, outs) = run_coop_batched(&o.module, &plan).unwrap();
        assert_eq!(*outs[0].lock(), vals);
    }

    /// A channel with two consumers (or producers) defeats the unique-
    /// endpoint analysis: the module is left alone.
    #[test]
    fn multi_consumer_chains_are_rejected() {
        let mut b = ProcIrBuilder::new();
        b.source(0, &[1, 2], "src");
        b.relay(0, 1, 1, "buf-a");
        b.relay(0, 2, 1, "buf-b");
        b.sink(1, 1, "sink-a");
        b.sink(2, 1, "sink-b");
        let m = b.build(None);
        assert!(optimize(&m).is_none(), "two consumers on channel 0");
    }

    /// Keep/Eject endpoints are never relay-fused: the keeping process
    /// is not a pure relay, so the chain stops at its channel.
    #[test]
    fn keep_eject_endpoints_survive() {
        let mut b = ProcIrBuilder::new();
        b.source(0, &[7], "src");
        b.begin("keeper");
        b.op(ProcOp::Keep { chan: 0, slot: 0 });
        b.op(ProcOp::Compute { count: 0 });
        b.op(ProcOp::Eject { chan: 1, slot: 0 });
        // A second use of the slot, so the keep/eject peephole cannot
        // rewrite it either (the dropped Compute makes it adjacent).
        b.op(ProcOp::Eject { chan: 2, slot: 0 });
        b.finish();
        b.sink(1, 1, "sink");
        b.sink(2, 1, "sink2");
        let m = b.build(None);
        let o = optimize(&m).expect("the zero Compute is dropped");
        assert_eq!(o.report.zero_ops_dropped, 1);
        assert_eq!(o.report.keep_eject_fused, 0, "live local is kept");
        assert!(o.report.chains.is_empty());
        assert_eq!(o.module.procs.len(), m.procs.len());
    }

    /// keep s; eject s with a dead local becomes pass 1, which then
    /// makes the process a pure relay the chain pass consumes.
    #[test]
    fn dead_keep_eject_becomes_a_relay_and_fuses() {
        let mut b = ProcIrBuilder::new();
        b.source(0, &[3, 4], "src");
        b.relay(0, 1, 2, "buf");
        b.begin("keeper");
        b.op(ProcOp::Keep { chan: 1, slot: 0 });
        b.op(ProcOp::Eject { chan: 2, slot: 0 });
        b.op(ProcOp::Keep { chan: 1, slot: 0 });
        b.op(ProcOp::Eject { chan: 2, slot: 0 });
        b.finish();
        b.sink(2, 2, "sink");
        let m = b.build(None);
        let o = optimize(&m).expect("should rewrite and fuse");
        assert_eq!(o.report.keep_eject_fused, 2);
        assert_eq!(o.report.passes_merged, 1, "the two pass 1s merge");
        assert_eq!(o.report.fused_relays(), 2, "relay and keeper both fuse");
        assert_eq!(o.module.procs.len(), 2);
        let plan = analyze_with_caps(&o.module, &o.chan_caps);
        let (_, outs) = run_coop_batched(&o.module, &plan).unwrap();
        assert_eq!(*outs[0].lock(), vec![3, 4]);
    }

    /// Consecutive same-pair passes merge; different pairs do not.
    #[test]
    fn consecutive_passes_merge() {
        let mut b = ProcIrBuilder::new();
        b.begin("seg");
        b.op(ProcOp::Pass {
            inp: 0,
            out: 1,
            n: 2,
        });
        b.op(ProcOp::Pass {
            inp: 0,
            out: 1,
            n: 3,
        });
        b.op(ProcOp::Pass {
            inp: 2,
            out: 3,
            n: 1,
        });
        b.finish();
        b.source(0, &[0; 5], "s0");
        b.source(2, &[0; 1], "s2");
        b.sink(1, 5, "k1");
        b.sink(3, 1, "k3");
        let m = b.build(None);
        let o = optimize(&m).expect("passes merge");
        assert_eq!(o.report.passes_merged, 1);
        let seg_ops = o.module.ops_of(o.report.proc_map[0].unwrap());
        assert_eq!(seg_ops.len(), 2);
        assert!(matches!(seg_ops[0], ProcOp::Pass { n: 5, .. }));
    }

    /// A closed loop of pure relays has no external endpoints and must
    /// be left alone rather than fused into a self-loop.
    #[test]
    fn pure_relay_cycle_is_left_alone() {
        let mut b = ProcIrBuilder::new();
        b.relay(0, 1, 4, "r0");
        b.relay(1, 0, 4, "r1");
        let m = b.build(None);
        assert!(optimize(&m).is_none());
    }

    #[test]
    fn report_json_round_trips() {
        let mut b = ProcIrBuilder::new();
        b.source(0, &[1, 2, 3], "src");
        b.relay(0, 1, 3, "buf0");
        b.relay(1, 2, 3, "buf1");
        b.sink(2, 3, "sink");
        let o = optimize(&b.build(None)).unwrap();
        let j = o.report.to_json();
        let parsed = OptReport::from_json(&j).expect("parses back");
        assert_eq!(parsed.to_json(), j, "round-trip is the identity");
        assert!(OptReport::from_json("{}").is_none());
    }
}
