//! Steady-state rendezvous batching: the post-elaboration analysis that
//! proves which channels may carry more than one in-flight value, and
//! the inline ring buffer the batched executors move those values
//! through.
//!
//! The paper's generated processes are statically-scheduled traces
//! (DESIGN.md §3): each channel's total traffic and both endpoints are
//! known from the bytecode alone, before the first value moves. In a
//! *steady phase* — a channel touched only by `Pass` repetitions and
//! `Compute` par-sets, never by a `Keep`/`Eject` — the producer and the
//! consumer execute matching per-value cycles, so the rendezvous order
//! within the phase is unobservable: the consumer reads values in FIFO
//! order whatever the handshake timing (the Kahn network determinism
//! argument; see `docs/scheduler.md` for the full safety story). The
//! analysis therefore grants each steady channel a batch width `k > 1`,
//! letting the engines retire up to `k` transfers per visit through a
//! [`Ring`] instead of one rendezvous handshake per value.
//!
//! Channels that carry a `load`/`recover` endpoint (`Keep`/`Eject`) are
//! pinned to width 1, and any shape the analysis cannot prove — two
//! producers, unbalanced endpoint traffic, a one-sided channel — rejects
//! the whole module, falling back to the rendezvous engines. Rejection
//! is a performance decision, never a correctness one: the batched and
//! unbatched paths are pinned bit-identical (stores, `messages`,
//! `steps`) by `tests/batching.rs`.

use crate::process::Value;
use crate::procir::{ProcId, ProcIrModule, ProcOp};
use std::collections::VecDeque;

/// The widest batch the analysis will grant a channel: bounds ring
/// memory (64 values ≈ one cache line of `i64`s) and keeps a producer
/// from running arbitrarily far ahead of the virtual clock.
pub const DEFAULT_BATCH_WIDTH: u64 = 64;

/// Whether a run may take the macro-stepping fast path. `Auto` engages
/// batching when the analysis proves the module and the run attaches no
/// recorder and no non-FIFO schedule policy; `Off` forces the
/// rendezvous engines unconditionally (the `--batch off` CLI switch).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BatchMode {
    #[default]
    Auto,
    Off,
}

/// A bounded FIFO of in-flight values for one batched channel. Plain
/// sequential code — the threaded executors serialize access under the
/// engine lock, the cooperative one owns all rings outright.
pub struct Ring {
    q: VecDeque<Value>,
    cap: usize,
}

impl Ring {
    pub fn new(cap: usize) -> Ring {
        let cap = cap.max(1);
        Ring {
            q: VecDeque::with_capacity(cap),
            cap,
        }
    }

    #[inline]
    pub fn is_full(&self) -> bool {
        self.q.len() >= self.cap
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// Push a value; the caller must have checked [`Ring::is_full`].
    #[inline]
    pub fn push(&mut self, v: Value) {
        debug_assert!(!self.is_full(), "push into a full ring");
        self.q.push_back(v);
    }

    #[inline]
    pub fn pop(&mut self) -> Option<Value> {
        self.q.pop_front()
    }

    /// Free slots before [`Ring::is_full`].
    #[inline]
    pub fn free(&self) -> usize {
        self.cap.saturating_sub(self.q.len())
    }

    /// Pop `dst.len()` values in FIFO order into `dst`. The caller must
    /// have checked occupancy ([`Ring::len`]) — the kernel path's one
    /// bounds decision per wave batch.
    #[inline]
    pub fn pop_many(&mut self, dst: &mut [Value]) {
        debug_assert!(dst.len() <= self.q.len(), "pop_many past occupancy");
        let n = dst.len();
        for (d, v) in dst.iter_mut().zip(self.q.drain(..n)) {
            *d = v;
        }
    }

    /// Push all of `vals` in order; the caller must have checked
    /// [`Ring::free`].
    #[inline]
    pub fn push_many(&mut self, vals: &[Value]) {
        debug_assert!(vals.len() <= self.free(), "push_many past capacity");
        self.q.extend(vals.iter().copied());
    }
}

/// The result of [`analyze`]: per-channel batch widths and endpoint
/// ownership, or the reason the module must stay on the rendezvous
/// engines.
pub struct BatchPlan {
    /// Safe batch width per channel (`k ≥ 1`), dense by `ChanId`.
    pub widths: Vec<u64>,
    /// The unique sending process per channel (`None` = untouched).
    pub producer_of: Vec<Option<ProcId>>,
    /// The unique receiving process per channel.
    pub consumer_of: Vec<Option<ProcId>>,
    /// Per-channel balanced traffic (values sent over the whole run).
    /// Meaningful when the plan is batchable — the balance check has
    /// then proven the producer and consumer sides equal.
    pub traffic: Vec<u64>,
    reject: Option<String>,
}

impl BatchPlan {
    /// Whether the module may be macro-stepped at all.
    pub fn batchable(&self) -> bool {
        self.reject.is_none()
    }

    /// Why not, when [`BatchPlan::batchable`] is false.
    pub fn reject_reason(&self) -> Option<&str> {
        self.reject.as_deref()
    }

    /// Fresh rings for one run, capacities from the widths.
    pub fn rings(&self) -> Vec<Ring> {
        self.widths.iter().map(|&k| Ring::new(k as usize)).collect()
    }

    /// Test-only: the same plan with the rejection cleared, so executor
    /// failure paths behind the proof can be exercised directly.
    #[cfg(test)]
    pub(crate) fn assume_proven(mut self) -> BatchPlan {
        self.reject = None;
        self
    }
}

/// Walk a module's bytecode and compute the per-channel safe batch
/// widths. Pure structural analysis, O(ops); runs once per elaboration,
/// never per step.
pub fn analyze(module: &ProcIrModule) -> BatchPlan {
    analyze_with_caps(module, &[])
}

/// [`analyze`], with per-channel minimum ring capacities layered on
/// top: `widths[c]` is raised to `caps[c]` where given. This is how the
/// optimizer's delay rings (`crate::opt`) reach the engines — a fused
/// chain's surviving channel must hold the chain's whole buffering,
/// overriding both the width clamp and the `Keep`/`Eject` pin (safe
/// because extra ring slack never changes a Kahn network's streams,
/// only its timing; the optimizer's contract is store identity, not
/// stat invariance).
pub fn analyze_with_caps(module: &ProcIrModule, caps: &[u64]) -> BatchPlan {
    let nc = module.n_chans;
    let mut producer_of: Vec<Option<ProcId>> = vec![None; nc];
    let mut consumer_of: Vec<Option<ProcId>> = vec![None; nc];
    let mut prod_traffic = vec![0u64; nc];
    let mut cons_traffic = vec![0u64; nc];
    // Channels with a `load`/`recover` endpoint stay at width 1: a
    // stationary value is consumed out of phase with the stream around
    // it, so the steady-phase argument does not apply.
    let mut pinned = vec![false; nc];
    let mut reject: Option<String> = None;

    fn claim(
        tbl: &mut [Option<ProcId>],
        chan: usize,
        pid: ProcId,
        what: &str,
        reject: &mut Option<String>,
    ) {
        match tbl[chan] {
            None => tbl[chan] = Some(pid),
            Some(prev) if prev == pid => {}
            Some(prev) => {
                if reject.is_none() {
                    *reject = Some(format!(
                        "channel {chan} has two {what}s (processes {prev} and {pid})"
                    ));
                }
            }
        }
    }

    for pid in 0..module.procs.len() {
        let links = module.moving_of(pid);
        if links.len() > 64 && reject.is_none() {
            // The VM tracks piecewise par-set completion in a u64 mask.
            reject = Some(format!(
                "process {pid} has {} moving links (max 64)",
                links.len()
            ));
        }
        for op in module.ops_of(pid) {
            match *op {
                ProcOp::Emit { chan } => {
                    claim(&mut producer_of, chan, pid, "producer", &mut reject);
                    prod_traffic[chan] += 1;
                }
                ProcOp::Collect { chan } => {
                    claim(&mut consumer_of, chan, pid, "consumer", &mut reject);
                    cons_traffic[chan] += 1;
                }
                ProcOp::Keep { chan, .. } => {
                    claim(&mut consumer_of, chan, pid, "consumer", &mut reject);
                    cons_traffic[chan] += 1;
                    pinned[chan] = true;
                }
                ProcOp::Eject { chan, .. } => {
                    claim(&mut producer_of, chan, pid, "producer", &mut reject);
                    prod_traffic[chan] += 1;
                    pinned[chan] = true;
                }
                ProcOp::Pass { inp, out, n } => {
                    claim(&mut consumer_of, inp, pid, "consumer", &mut reject);
                    cons_traffic[inp] = cons_traffic[inp].saturating_add(n);
                    claim(&mut producer_of, out, pid, "producer", &mut reject);
                    prod_traffic[out] = prod_traffic[out].saturating_add(n);
                }
                ProcOp::Compute { count } => {
                    for mc in links {
                        claim(&mut consumer_of, mc.inp, pid, "consumer", &mut reject);
                        cons_traffic[mc.inp] = cons_traffic[mc.inp].saturating_add(count);
                        claim(&mut producer_of, mc.out, pid, "producer", &mut reject);
                        prod_traffic[mc.out] = prod_traffic[mc.out].saturating_add(count);
                    }
                }
            }
        }
    }

    // Both endpoints must exist and agree on traffic; a one-sided or
    // unbalanced channel would let a ring producer run past the point
    // where the rendezvous engine reports a deadlock.
    if reject.is_none() {
        for c in 0..nc {
            if prod_traffic[c] != cons_traffic[c] {
                reject = Some(format!(
                    "channel {c} traffic unbalanced ({} sent vs {} received)",
                    prod_traffic[c], cons_traffic[c]
                ));
                break;
            }
        }
    }

    let widths = (0..nc)
        .map(|c| {
            let base = if pinned[c] {
                1
            } else {
                prod_traffic[c].clamp(1, DEFAULT_BATCH_WIDTH)
            };
            base.max(caps.get(c).copied().unwrap_or(0))
        })
        .collect();
    BatchPlan {
        widths,
        producer_of,
        consumer_of,
        traffic: prod_traffic,
        reject,
    }
}

/// Per-channel eligibility diagnostics: `None` when the channel passes
/// the batching proof locally, `Some(reason)` naming the first local
/// disqualifier (a second producer/consumer, a missing endpoint,
/// unbalanced traffic, or an endpoint process whose moving-link set
/// exceeds the VM's 64-bit par-set mask). [`analyze`] stops at the first
/// module-wide rejection; this walk keeps going so reports can explain
/// *every* channel that forces the wavefront/batched paths to fall back
/// (see `--opt-report` and `crate::wavefront`).
pub fn channel_diagnostics(module: &ProcIrModule) -> Vec<Option<String>> {
    let nc = module.n_chans;
    let mut producer_of: Vec<Option<ProcId>> = vec![None; nc];
    let mut consumer_of: Vec<Option<ProcId>> = vec![None; nc];
    let mut prod_traffic = vec![0u64; nc];
    let mut cons_traffic = vec![0u64; nc];
    let mut reasons: Vec<Option<String>> = vec![None; nc];

    let claim = |tbl: &mut [Option<ProcId>],
                 reasons: &mut [Option<String>],
                 chan: usize,
                 pid: ProcId,
                 what: &str| {
        match tbl[chan] {
            None => tbl[chan] = Some(pid),
            Some(prev) if prev == pid => {}
            Some(prev) => {
                if reasons[chan].is_none() {
                    reasons[chan] = Some(format!("two {what}s (processes {prev} and {pid})"));
                }
            }
        }
    };

    let mut touch =
        |prod: bool, chan: usize, pid: ProcId, n: u64, reasons: &mut [Option<String>]| {
            if prod {
                claim(&mut producer_of, reasons, chan, pid, "producer");
                prod_traffic[chan] = prod_traffic[chan].saturating_add(n);
            } else {
                claim(&mut consumer_of, reasons, chan, pid, "consumer");
                cons_traffic[chan] = cons_traffic[chan].saturating_add(n);
            }
        };

    for pid in 0..module.procs.len() {
        let links = module.moving_of(pid);
        let oversized = links.len() > 64;
        for op in module.ops_of(pid) {
            let touched: Vec<(bool, usize, u64)> = match *op {
                ProcOp::Emit { chan } | ProcOp::Eject { chan, .. } => vec![(true, chan, 1)],
                ProcOp::Collect { chan } | ProcOp::Keep { chan, .. } => vec![(false, chan, 1)],
                ProcOp::Pass { inp, out, n } => vec![(false, inp, n), (true, out, n)],
                ProcOp::Compute { count } => links
                    .iter()
                    .flat_map(|mc| [(false, mc.inp, count), (true, mc.out, count)])
                    .collect(),
            };
            for (prod, chan, n) in touched {
                touch(prod, chan, pid, n, &mut reasons);
                if oversized && reasons[chan].is_none() {
                    reasons[chan] = Some(format!(
                        "endpoint process {pid} has {} moving links (max 64)",
                        links.len()
                    ));
                }
            }
        }
    }

    for c in 0..nc {
        if reasons[c].is_some() {
            continue;
        }
        if prod_traffic[c] != cons_traffic[c] {
            reasons[c] = Some(format!(
                "traffic unbalanced ({} sent vs {} received)",
                prod_traffic[c], cons_traffic[c]
            ));
        }
    }
    reasons
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::procir::ProcIrBuilder;

    #[test]
    fn steady_pipeline_gets_wide_channels() {
        let mut b = ProcIrBuilder::new();
        b.source(0, &(0..100).collect::<Vec<_>>(), "src");
        b.relay(0, 1, 100, "relay");
        b.sink(1, 100, "sink");
        let m = b.build(None);
        let plan = analyze(&m);
        assert!(plan.batchable(), "{:?}", plan.reject_reason());
        assert_eq!(plan.widths, vec![DEFAULT_BATCH_WIDTH, DEFAULT_BATCH_WIDTH]);
        assert_eq!(plan.producer_of, vec![Some(0), Some(1)]);
        assert_eq!(plan.consumer_of, vec![Some(1), Some(2)]);
    }

    #[test]
    fn short_channels_clamp_to_their_traffic() {
        let mut b = ProcIrBuilder::new();
        b.source(0, &[1, 2, 3], "src");
        b.sink(0, 3, "sink");
        let plan = analyze(&b.build(None));
        assert!(plan.batchable());
        assert_eq!(plan.widths, vec![3]);
    }

    #[test]
    fn keep_and_eject_pin_their_channels() {
        use crate::procir::MovingLink;
        let mut b = ProcIrBuilder::new();
        b.begin("comp");
        b.op(ProcOp::Keep { chan: 2, slot: 1 });
        b.op(ProcOp::Compute { count: 3 });
        b.op(ProcOp::Eject { chan: 3, slot: 1 });
        b.repeater(
            &[MovingLink {
                slot: 0,
                inp: 0,
                out: 1,
            }],
            &[0],
            &[1],
            2,
        );
        b.finish();
        b.source(0, &[2, 3, 4], "a-in");
        b.source(2, &[10], "c-in");
        b.sink(1, 3, "a-out");
        b.sink(3, 1, "c-out");
        let plan = analyze(&b.build(None));
        assert!(plan.batchable(), "{:?}", plan.reject_reason());
        assert_eq!(plan.widths[0], 3, "moving stream batches");
        assert_eq!(plan.widths[1], 3);
        assert_eq!(plan.widths[2], 1, "keep channel pinned");
        assert_eq!(plan.widths[3], 1, "eject channel pinned");
    }

    #[test]
    fn two_producers_reject() {
        let mut b = ProcIrBuilder::new();
        b.source(0, &[1], "src-a");
        b.source(0, &[2], "src-b");
        b.sink(0, 2, "sink");
        let plan = analyze(&b.build(None));
        assert!(!plan.batchable());
        assert!(plan.reject_reason().unwrap().contains("two producers"));
    }

    #[test]
    fn one_sided_channel_rejects() {
        let mut b = ProcIrBuilder::new();
        b.sink(7, 1, "lonely");
        let plan = analyze(&b.build(None));
        assert!(!plan.batchable());
        assert!(plan.reject_reason().unwrap().contains("unbalanced"));
    }

    /// Named boundary regression for the `Pass::n`/`Compute::count`
    /// widening: a pass count one past `u32::MAX` must neither truncate
    /// in the builder nor wrap in the width arithmetic. (Analysis only —
    /// nobody executes 2^32 transfers in a unit test.)
    #[test]
    fn batch_width_math_survives_u32_overflow() {
        let mut b = ProcIrBuilder::new();
        let n = (u32::MAX as usize) + 1;
        b.relay(0, 1, n, "huge");
        let m = b.build(None);
        let ProcOp::Pass { n: stored, .. } = m.ops[0] else {
            panic!("expected a Pass op");
        };
        assert_eq!(stored, 1u64 << 32, "builder must not truncate to u32");
        let plan = analyze(&m);
        // One-sided traffic (no source/sink around the relay) rejects,
        // but the traffic sums themselves must be exact, not wrapped:
        // a u32 wrap would make both sides 0 and spuriously accept.
        assert!(!plan.batchable());
        assert!(plan.reject_reason().unwrap().contains("unbalanced"));

        let mut b = ProcIrBuilder::new();
        b.begin("a");
        b.op(ProcOp::Pass {
            inp: 0,
            out: 1,
            n: (1u64 << 32) + 5,
        });
        b.finish();
        b.begin("b");
        b.op(ProcOp::Pass {
            inp: 1,
            out: 0,
            n: (1u64 << 32) + 5,
        });
        b.finish();
        let plan = analyze(&b.build(None));
        assert!(plan.batchable(), "{:?}", plan.reject_reason());
        assert_eq!(plan.widths, vec![DEFAULT_BATCH_WIDTH; 2]);
    }
}
