//! The threaded executor: the same process networks on real OS threads
//! with blocking rendezvous — genuine asynchronous parallelism, used for
//! the speed-up experiments.
//!
//! The rendezvous engine is a single matcher protected by a mutex with one
//! condvar per process (the classic building block; cf. the guides'
//! "Rust Atomics and Locks" treatment of condition variables). A process
//! offers its whole communication set at once, so `par` communications
//! complete in any order without the thread having to block on one channel
//! at a time — this is what makes the executor deadlock-equivalent to the
//! cooperative scheduler.
//!
//! Like the cooperative scheduler, the matcher keeps its channel endpoints
//! in dense tables indexed by [`ChanId`] (no hashing under the lock), and
//! a malformed network — two processes claiming the same endpoint — aborts
//! the run with a diagnosis instead of panicking the offending thread.

use crate::coop::RunStats;
use crate::process::{ChanId, CommReq, Process, Value};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct SetState {
    remaining: usize,
    inbox: Vec<Option<Value>>,
}

struct EngineState {
    /// Dense endpoint tables by channel id, grown on first touch.
    sends: Vec<Option<(usize, usize, Value)>>,
    recvs: Vec<Option<(usize, usize)>>,
    sets: Vec<SetState>,
    messages: u64,
    /// First fatal diagnosis (protocol violation or timeout); preferred
    /// over the secondary "aborted" errors of the other threads.
    failure: Option<String>,
}

impl EngineState {
    fn ensure_chan(&mut self, chan: ChanId) {
        if chan >= self.sends.len() {
            self.sends.resize(chan + 1, None);
            self.recvs.resize(chan + 1, None);
        }
    }
}

struct Engine {
    state: Mutex<EngineState>,
    wakeups: Vec<Condvar>,
    aborted: AtomicBool,
}

impl Engine {
    fn new(nprocs: usize) -> Engine {
        Engine {
            state: Mutex::new(EngineState {
                sends: Vec::new(),
                recvs: Vec::new(),
                sets: (0..nprocs)
                    .map(|_| SetState {
                        remaining: 0,
                        inbox: Vec::new(),
                    })
                    .collect(),
                messages: 0,
                failure: None,
            }),
            wakeups: (0..nprocs).map(|_| Condvar::new()).collect(),
            aborted: AtomicBool::new(false),
        }
    }

    /// Record a fatal diagnosis, wake everyone, and return the message.
    fn abort(&self, st: &mut EngineState, msg: String) -> String {
        self.aborted.store(true, Ordering::Relaxed);
        if st.failure.is_none() {
            st.failure = Some(msg.clone());
        }
        for w in &self.wakeups {
            w.notify_one();
        }
        msg
    }

    /// Offer a communication set and block until it completes, filling
    /// `received` with the received values in request order. `Err` on
    /// timeout, abort, or a protocol violation.
    fn offer_set(
        &self,
        pid: usize,
        reqs: &[CommReq],
        received: &mut Vec<Value>,
        timeout: Duration,
    ) -> Result<(), String> {
        let mut st = self.state.lock();
        st.sets[pid].remaining = reqs.len();
        st.sets[pid].inbox.clear();
        st.sets[pid].inbox.resize(reqs.len(), None);
        for (ri, req) in reqs.iter().enumerate() {
            match *req {
                CommReq::Send { chan, value } => {
                    st.ensure_chan(chan);
                    if let Some((rpid, rri)) = st.recvs[chan].take() {
                        st.sets[rpid].inbox[rri] = Some(value);
                        st.sets[rpid].remaining -= 1;
                        st.sets[pid].remaining -= 1;
                        st.messages += 1;
                        if st.sets[rpid].remaining == 0 {
                            self.wakeups[rpid].notify_one();
                        }
                    } else {
                        if st.sends[chan].is_some() {
                            return Err(self.abort(
                                &mut st,
                                format!("protocol violation: two senders on channel {chan}"),
                            ));
                        }
                        st.sends[chan] = Some((pid, ri, value));
                    }
                }
                CommReq::Recv { chan } => {
                    st.ensure_chan(chan);
                    if let Some((spid, _sri, value)) = st.sends[chan].take() {
                        st.sets[pid].inbox[ri] = Some(value);
                        st.sets[pid].remaining -= 1;
                        st.sets[spid].remaining -= 1;
                        st.messages += 1;
                        if st.sets[spid].remaining == 0 {
                            self.wakeups[spid].notify_one();
                        }
                    } else {
                        if st.recvs[chan].is_some() {
                            return Err(self.abort(
                                &mut st,
                                format!("protocol violation: two receivers on channel {chan}"),
                            ));
                        }
                        st.recvs[chan] = Some((pid, ri));
                    }
                }
            }
        }
        while st.sets[pid].remaining > 0 {
            if self.aborted.load(Ordering::Relaxed) {
                return Err("aborted".into());
            }
            if self.wakeups[pid].wait_for(&mut st, timeout).timed_out() {
                return Err(self.abort(
                    &mut st,
                    format!("process {pid} timed out waiting for rendezvous"),
                ));
            }
        }
        received.clear();
        for (ri, req) in reqs.iter().enumerate() {
            if !req.is_send() {
                received.push(st.sets[pid].inbox[ri].take().expect("recv without value"));
            }
        }
        Ok(())
    }
}

/// Run a set of processes on OS threads (one thread each, small stacks).
/// `timeout` bounds any single rendezvous wait — a blown timeout reports
/// instead of hanging (the cooperative scheduler is the deadlock oracle;
/// this executor is for wall-clock measurement).
pub fn run_threaded(procs: Vec<Box<dyn Process>>, timeout: Duration) -> Result<RunStats, String> {
    let n = procs.len();
    let engine = Arc::new(Engine::new(n));
    let mut handles = Vec::with_capacity(n);
    let mut steps_total = 0u64;
    for (pid, mut proc) in procs.into_iter().enumerate() {
        let engine = engine.clone();
        let h = std::thread::Builder::new()
            .name(format!("systolic-{pid}"))
            .stack_size(128 * 1024)
            .spawn(move || -> Result<u64, String> {
                // Buffers reused across every step of this process.
                let mut received = Vec::new();
                let mut reqs = Vec::new();
                let mut steps = 0u64;
                loop {
                    reqs.clear();
                    proc.step_into(&received, &mut reqs);
                    steps += 1;
                    if reqs.is_empty() {
                        return Ok(steps);
                    }
                    engine.offer_set(pid, &reqs, &mut received, timeout)?;
                }
            })
            .expect("spawn systolic thread");
        handles.push(h);
    }
    let mut first_err = None;
    for h in handles {
        match h.join().map_err(|_| "thread panicked".to_string()) {
            Ok(Ok(s)) => steps_total += s,
            Ok(Err(e)) | Err(e) => first_err = first_err.or(Some(e)),
        }
    }
    let st = engine.state.lock();
    if let Some(e) = first_err {
        // The root cause, not whichever thread's abort joined first.
        return Err(st.failure.clone().unwrap_or(e));
    }
    Ok(RunStats {
        rounds: 0,
        messages: st.messages,
        processes: n,
        steps: steps_total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::{sink_buffer, RelayProc, SinkProc, SourceProc};

    const T: Duration = Duration::from_secs(10);

    #[test]
    fn threaded_pipeline_matches_cooperative() {
        let buf = sink_buffer();
        let procs: Vec<Box<dyn Process>> = vec![
            Box::new(SourceProc::new(0, vec![1, 2, 3, 4], "src")),
            Box::new(RelayProc::new(0, 1, 4, "relay")),
            Box::new(SinkProc::new(1, 4, buf.clone(), "sink")),
        ];
        let stats = run_threaded(procs, T).unwrap();
        assert_eq!(*buf.lock(), vec![1, 2, 3, 4]);
        assert_eq!(stats.messages, 8);
        assert_eq!(stats.processes, 3);
    }

    #[test]
    fn threaded_fanout_join() {
        struct Join {
            out: crate::process::SinkBuffer,
            rounds: usize,
        }
        impl Process for Join {
            fn step(&mut self, received: &[Value]) -> Vec<CommReq> {
                if received.len() == 2 {
                    self.out.lock().push(received[0] * received[1]);
                }
                if self.rounds == 0 {
                    return vec![];
                }
                self.rounds -= 1;
                vec![CommReq::Recv { chan: 0 }, CommReq::Recv { chan: 1 }]
            }
        }
        let buf = sink_buffer();
        let procs: Vec<Box<dyn Process>> = vec![
            Box::new(SourceProc::new(0, vec![2, 3], "sa")),
            Box::new(SourceProc::new(1, vec![10, 100], "sb")),
            Box::new(Join {
                out: buf.clone(),
                rounds: 2,
            }),
        ];
        run_threaded(procs, T).unwrap();
        assert_eq!(*buf.lock(), vec![20, 300]);
    }

    #[test]
    fn timeout_reports_instead_of_hanging() {
        let buf = sink_buffer();
        let procs: Vec<Box<dyn Process>> = vec![Box::new(SinkProc::new(7, 1, buf, "lonely"))];
        let err = run_threaded(procs, Duration::from_millis(50)).unwrap_err();
        assert!(err.contains("timed out"), "{err}");
    }

    #[test]
    fn two_senders_abort_with_diagnosis() {
        // No receiver exists, so both sources must park their sends on
        // channel 0; whichever registers second trips the violation, and
        // the run reports it (not a bare "aborted").
        let procs: Vec<Box<dyn Process>> = vec![
            Box::new(SourceProc::new(0, vec![1, 2], "src-a")),
            Box::new(SourceProc::new(0, vec![3, 4], "src-b")),
        ];
        let err = run_threaded(procs, T).unwrap_err();
        assert!(err.contains("two senders on channel 0"), "{err}");
    }

    #[test]
    fn many_threads_small_stacks() {
        // 200 parallel one-shot pipelines.
        let mut procs: Vec<Box<dyn Process>> = Vec::new();
        let mut bufs = Vec::new();
        for i in 0..200 {
            let buf = sink_buffer();
            procs.push(Box::new(SourceProc::new(i, vec![i as Value], "s")));
            procs.push(Box::new(SinkProc::new(i, 1, buf.clone(), "k")));
            bufs.push(buf);
        }
        run_threaded(procs, T).unwrap();
        for (i, b) in bufs.iter().enumerate() {
            assert_eq!(*b.lock(), vec![i as Value]);
        }
    }
}
