//! The threaded executor: the same process networks on real OS threads
//! with blocking rendezvous — genuine asynchronous parallelism, used for
//! the speed-up experiments.
//!
//! The rendezvous engine is a single matcher protected by a mutex with one
//! condvar per process (the classic building block; cf. the guides'
//! "Rust Atomics and Locks" treatment of condition variables). A process
//! offers its whole communication set at once, so `par` communications
//! complete in any order without the thread having to block on one channel
//! at a time — this is what makes the executor deadlock-equivalent to the
//! cooperative scheduler.
//!
//! Like the cooperative scheduler, the matcher keeps its channel endpoints
//! in dense tables indexed by [`ChanId`] (no hashing under the lock), and
//! a malformed network — two processes claiming the same endpoint — aborts
//! the run with a structured [`RunError`] diagnosis instead of panicking
//! the offending thread.

use crate::batch::{BatchPlan, Ring};
use crate::coop::{ProtocolViolation, RunError, RunStats};
use crate::process::{ChanId, CommReq, Process, SinkBuffer, Value};
use crate::procir::ProcIrModule;
use crate::record::{SharedRecorder, Transfer};
use crate::schedule::YieldPlan;
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct SetState {
    remaining: usize,
    inbox: Vec<Option<Value>>,
}

struct EngineState {
    /// Dense endpoint tables by channel id, grown on first touch.
    sends: Vec<Option<(usize, usize, Value)>>,
    recvs: Vec<Option<(usize, usize)>>,
    sets: Vec<SetState>,
    messages: u64,
    /// First fatal diagnosis (protocol violation or timeout); preferred
    /// over the secondary [`RunError::Aborted`] of the other threads.
    failure: Option<RunError>,
}

impl EngineState {
    fn ensure_chan(&mut self, chan: ChanId) {
        if chan >= self.sends.len() {
            self.sends.resize(chan + 1, None);
            self.recvs.resize(chan + 1, None);
        }
    }
}

struct Engine {
    state: Mutex<EngineState>,
    wakeups: Vec<Condvar>,
    /// Process labels captured before the threads were spawned, so
    /// violation diagnoses can name both offenders.
    labels: Vec<String>,
    aborted: AtomicBool,
    /// Attached observability sinks (see `crate::record`); every hook is
    /// behind an `is_empty` branch, so unobserved runs pay nothing.
    recorders: Vec<SharedRecorder>,
    /// Run start, for the microsecond virtual clock of recorded events
    /// (this executor has no round clock).
    epoch: Instant,
}

impl Engine {
    fn new(labels: Vec<String>, recorders: Vec<SharedRecorder>) -> Engine {
        let nprocs = labels.len();
        Engine {
            state: Mutex::new(EngineState {
                sends: Vec::new(),
                recvs: Vec::new(),
                sets: (0..nprocs)
                    .map(|_| SetState {
                        remaining: 0,
                        inbox: Vec::new(),
                    })
                    .collect(),
                messages: 0,
                failure: None,
            }),
            wakeups: (0..nprocs).map(|_| Condvar::new()).collect(),
            labels,
            aborted: AtomicBool::new(false),
            recorders,
            epoch: Instant::now(),
        }
    }

    /// Microseconds since run start — the virtual time of recorded events.
    fn now(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Report one completed transfer to every recorder (waits are a
    /// round-clock notion; this executor reports them as 0).
    fn record_transfer(&self, chan: ChanId, value: Value, sender: usize, receiver: usize) {
        if self.recorders.is_empty() {
            return;
        }
        let ev = Transfer {
            time: self.now(),
            chan,
            value,
            sender,
            receiver,
            sender_wait: 0,
            receiver_wait: 0,
        };
        for r in &self.recorders {
            r.lock().transfer(&ev);
        }
    }

    /// Record a fatal diagnosis, wake everyone, and return the error.
    fn abort(&self, st: &mut EngineState, err: RunError) -> RunError {
        self.aborted.store(true, Ordering::Relaxed);
        if st.failure.is_none() {
            st.failure = Some(err.clone());
        }
        for w in &self.wakeups {
            w.notify_one();
        }
        err
    }

    fn violation(
        &self,
        chan: ChanId,
        endpoint: &'static str,
        first: usize,
        second: usize,
    ) -> RunError {
        RunError::Protocol(ProtocolViolation {
            chan,
            endpoint,
            first: self.labels[first].clone(),
            second: self.labels[second].clone(),
        })
    }

    /// Offer a communication set and block until it completes, filling
    /// `received` with the received values in request order. `Err` on
    /// timeout, abort, or a protocol violation.
    fn offer_set(
        &self,
        pid: usize,
        reqs: &[CommReq],
        received: &mut Vec<Value>,
        timeout: Duration,
    ) -> Result<(), RunError> {
        let mut st = self.state.lock();
        st.sets[pid].remaining = reqs.len();
        st.sets[pid].inbox.clear();
        st.sets[pid].inbox.resize(reqs.len(), None);
        for (ri, req) in reqs.iter().enumerate() {
            match *req {
                CommReq::Send { chan, value } => {
                    st.ensure_chan(chan);
                    if let Some((rpid, rri)) = st.recvs[chan].take() {
                        st.sets[rpid].inbox[rri] = Some(value);
                        st.sets[rpid].remaining -= 1;
                        st.sets[pid].remaining -= 1;
                        st.messages += 1;
                        self.record_transfer(chan, value, pid, rpid);
                        if st.sets[rpid].remaining == 0 {
                            self.wakeups[rpid].notify_one();
                        }
                    } else {
                        if let Some((prev, _, _)) = st.sends[chan] {
                            let err = self.violation(chan, "sender", prev, pid);
                            return Err(self.abort(&mut st, err));
                        }
                        st.sends[chan] = Some((pid, ri, value));
                    }
                }
                CommReq::Recv { chan } => {
                    st.ensure_chan(chan);
                    if let Some((spid, _sri, value)) = st.sends[chan].take() {
                        st.sets[pid].inbox[ri] = Some(value);
                        st.sets[pid].remaining -= 1;
                        st.sets[spid].remaining -= 1;
                        st.messages += 1;
                        self.record_transfer(chan, value, spid, pid);
                        if st.sets[spid].remaining == 0 {
                            self.wakeups[spid].notify_one();
                        }
                    } else {
                        if let Some((prev, _)) = st.recvs[chan] {
                            let err = self.violation(chan, "receiver", prev, pid);
                            return Err(self.abort(&mut st, err));
                        }
                        st.recvs[chan] = Some((pid, ri));
                    }
                }
            }
        }
        while st.sets[pid].remaining > 0 {
            if self.aborted.load(Ordering::Relaxed) {
                return Err(RunError::Aborted);
            }
            if self.wakeups[pid].wait_for(&mut st, timeout).timed_out() {
                let err = RunError::Timeout {
                    scope: format!("process {pid} ({})", self.labels[pid]),
                };
                return Err(self.abort(&mut st, err));
            }
        }
        received.clear();
        for (ri, req) in reqs.iter().enumerate() {
            if !req.is_send() {
                received.push(st.sets[pid].inbox[ri].take().expect("recv without value"));
            }
        }
        Ok(())
    }
}

/// Run a set of processes on OS threads (one thread each, small stacks).
/// `timeout` bounds any single rendezvous wait — a blown timeout reports
/// instead of hanging (the cooperative scheduler is the deadlock oracle;
/// this executor is for wall-clock measurement).
pub fn run_threaded(procs: Vec<Box<dyn Process>>, timeout: Duration) -> Result<RunStats, RunError> {
    run_threaded_recorded(procs, timeout, Vec::new())
}

/// [`run_threaded`] with observability sinks attached (see
/// `crate::record`). Event times are microseconds since run start —
/// this executor has no round clock, so transfer waits are reported
/// as 0. With an empty recorder list this is exactly `run_threaded`.
pub fn run_threaded_recorded(
    procs: Vec<Box<dyn Process>>,
    timeout: Duration,
    recorders: Vec<SharedRecorder>,
) -> Result<RunStats, RunError> {
    run_threaded_perturbed(procs, timeout, recorders, None)
}

/// [`run_threaded_recorded`] with seeded yield-point injection: each
/// process thread surrenders its timeslice at pseudo-random step
/// boundaries drawn from `yields` (see [`YieldPlan`]), perturbing the OS
/// schedule without touching rendezvous semantics. The schedule-
/// independence harness (`crates/sim`) uses this to check that results
/// do not depend on thread interleaving. `None` is exactly
/// [`run_threaded_recorded`].
pub fn run_threaded_perturbed(
    procs: Vec<Box<dyn Process>>,
    timeout: Duration,
    recorders: Vec<SharedRecorder>,
    yields: Option<YieldPlan>,
) -> Result<RunStats, RunError> {
    let n = procs.len();
    let labels: Vec<String> = procs.iter().map(|p| p.label()).collect();
    let engine = Arc::new(Engine::new(labels, recorders));
    for r in &engine.recorders {
        r.lock().start(&engine.labels);
    }
    let mut handles = Vec::with_capacity(n);
    let mut steps_total = 0u64;
    for (pid, mut proc) in procs.into_iter().enumerate() {
        let engine = engine.clone();
        let h = std::thread::Builder::new()
            .name(format!("systolic-{pid}"))
            .stack_size(128 * 1024)
            .spawn(move || -> Result<u64, RunError> {
                // Buffers reused across every step of this process.
                let mut received = Vec::new();
                let mut reqs = Vec::new();
                let mut steps = 0u64;
                let recording = !engine.recorders.is_empty();
                let mut injector = yields.map(|y| y.injector(pid as u64));
                loop {
                    if let Some(inj) = injector.as_mut() {
                        inj.maybe_yield();
                    }
                    reqs.clear();
                    proc.step_into(&received, &mut reqs);
                    steps += 1;
                    if recording {
                        let now = engine.now();
                        for r in &engine.recorders {
                            let mut r = r.lock();
                            r.step(now, pid);
                            if reqs.is_empty() {
                                r.finished(now, pid);
                            }
                        }
                    }
                    if reqs.is_empty() {
                        return Ok(steps);
                    }
                    engine.offer_set(pid, &reqs, &mut received, timeout)?;
                }
            })
            .expect("spawn systolic thread");
        handles.push(h);
    }
    let mut first_err = None;
    for (pid, h) in handles.into_iter().enumerate() {
        match h.join().map_err(|_| RunError::Panicked {
            scope: format!("process {pid}"),
        }) {
            Ok(Ok(s)) => steps_total += s,
            Ok(Err(e)) | Err(e) => first_err = first_err.or(Some(e)),
        }
    }
    let st = engine.state.lock();
    if let Some(e) = first_err {
        // The root cause, not whichever thread's abort joined first.
        return Err(st.failure.clone().unwrap_or(e));
    }
    let now = engine.now();
    for r in &engine.recorders {
        r.lock().end(now);
    }
    Ok(RunStats {
        rounds: 0,
        messages: st.messages,
        processes: n,
        steps: steps_total,
    })
}

/// Shared state of the batched threaded executor: all rings live under
/// one lock (ring traffic is batched, so the lock is taken once per
/// macro-step, not once per value — that is the entire point).
struct BatchState {
    rings: Vec<Ring>,
    failure: Option<RunError>,
}

struct BatchEngine {
    state: Mutex<BatchState>,
    /// One wakeup per process.
    wakeups: Vec<Condvar>,
    /// Per process: the peers sharing a channel with it, so a thread
    /// that moved values wakes exactly the threads that might now be
    /// unblocked (derived from the plan's endpoint tables).
    neighbours: Vec<Vec<usize>>,
    labels: Vec<String>,
    aborted: AtomicBool,
}

impl BatchEngine {
    /// Record a fatal diagnosis, wake everyone, and return the error.
    fn abort(&self, st: &mut BatchState, err: RunError) -> RunError {
        self.aborted.store(true, Ordering::Relaxed);
        if st.failure.is_none() {
            st.failure = Some(err.clone());
        }
        for w in &self.wakeups {
            w.notify_one();
        }
        err
    }
}

/// Per-process neighbour sets from a plan's endpoint tables.
pub(crate) fn neighbour_sets(plan: &BatchPlan, n_procs: usize) -> Vec<Vec<usize>> {
    let mut neighbours: Vec<Vec<usize>> = vec![Vec::new(); n_procs];
    for c in 0..plan.widths.len() {
        if let (Some(p), Some(q)) = (plan.producer_of[c], plan.consumer_of[c]) {
            if p != q {
                neighbours[p].push(q);
                neighbours[q].push(p);
            }
        }
    }
    for nb in &mut neighbours {
        nb.sort_unstable();
        nb.dedup();
    }
    neighbours
}

/// The batched threaded executor: one OS thread per process as in
/// [`run_threaded`], but each thread drives `ProcVm::macro_step` over
/// the plan's shared rings instead of offering rendezvous sets — one
/// lock acquisition retires a whole batch of transfers. Semantics are
/// pinned to the unbatched executor (`tests/batching.rs`): stores
/// bit-identical, `messages`/`steps` the same logical counts, `rounds`
/// reported as 0 (no virtual clock). As in [`run_threaded`], a blown
/// `timeout` on any single wait reports instead of hanging.
pub fn run_threaded_batched(
    module: &Arc<ProcIrModule>,
    plan: &BatchPlan,
    timeout: Duration,
) -> Result<(RunStats, Vec<SinkBuffer>), RunError> {
    debug_assert!(plan.batchable(), "caller checks BatchPlan::batchable");
    let (vms, outputs) = module.instantiate_vms();
    let n = vms.len();
    let labels: Vec<String> = (0..n).map(|pid| module.label_of(pid).to_string()).collect();
    let engine = Arc::new(BatchEngine {
        state: Mutex::new(BatchState {
            rings: plan.rings(),
            failure: None,
        }),
        wakeups: (0..n).map(|_| Condvar::new()).collect(),
        neighbours: neighbour_sets(plan, n),
        labels,
        aborted: AtomicBool::new(false),
    });
    let mut handles = Vec::with_capacity(n);
    for (pid, mut vm) in vms.into_iter().enumerate() {
        let engine = engine.clone();
        let h = std::thread::Builder::new()
            .name(format!("systolic-batch-{pid}"))
            .stack_size(128 * 1024)
            .spawn(move || -> Result<RunStats, RunError> {
                let mut stats = RunStats::default();
                let mut st = engine.state.lock();
                loop {
                    let mut moved = 0u64;
                    let done = vm.macro_step(&mut st.rings, &mut stats, &mut moved);
                    if moved > 0 {
                        for &nb in &engine.neighbours[pid] {
                            engine.wakeups[nb].notify_one();
                        }
                    }
                    if done {
                        return Ok(stats);
                    }
                    if engine.aborted.load(Ordering::Relaxed) {
                        return Err(RunError::Aborted);
                    }
                    if engine.wakeups[pid].wait_for(&mut st, timeout).timed_out() {
                        let err = RunError::Timeout {
                            scope: format!("process {pid} ({})", engine.labels[pid]),
                        };
                        return Err(engine.abort(&mut st, err));
                    }
                }
            })
            .expect("spawn systolic batch thread");
        handles.push(h);
    }
    let mut total = RunStats {
        rounds: 0,
        messages: 0,
        processes: n,
        steps: 0,
    };
    let mut first_err = None;
    for (pid, h) in handles.into_iter().enumerate() {
        match h.join().map_err(|_| RunError::Panicked {
            scope: format!("process {pid}"),
        }) {
            Ok(Ok(s)) => {
                total.messages += s.messages;
                total.steps += s.steps;
            }
            Ok(Err(e)) | Err(e) => first_err = first_err.or(Some(e)),
        }
    }
    if let Some(e) = first_err {
        // The root cause, not whichever thread's abort joined first.
        let st = engine.state.lock();
        return Err(st.failure.clone().unwrap_or(e));
    }
    Ok((total, outputs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::{sink_buffer, SinkBuffer};
    use crate::procir::ProcIrBuilder;

    const T: Duration = Duration::from_secs(10);

    /// Instantiate a builder's module, returning the processes and the
    /// output buffers in sink-declaration order.
    fn procs_of(b: ProcIrBuilder) -> (Vec<Box<dyn Process>>, Vec<SinkBuffer>) {
        let inst = b.build(None).instantiate();
        (inst.procs, inst.outputs)
    }

    #[test]
    fn threaded_pipeline_matches_cooperative() {
        let mut b = ProcIrBuilder::new();
        b.source(0, &[1, 2, 3, 4], "src");
        b.relay(0, 1, 4, "relay");
        b.sink(1, 4, "sink");
        let (procs, outs) = procs_of(b);
        let stats = run_threaded(procs, T).unwrap();
        assert_eq!(*outs[0].lock(), vec![1, 2, 3, 4]);
        assert_eq!(stats.messages, 8);
        assert_eq!(stats.processes, 3);
    }

    #[test]
    fn threaded_fanout_join() {
        struct Join {
            out: SinkBuffer,
            rounds: usize,
        }
        impl Process for Join {
            fn step(&mut self, received: &[Value]) -> Vec<CommReq> {
                if received.len() == 2 {
                    self.out.lock().push(received[0] * received[1]);
                }
                if self.rounds == 0 {
                    return vec![];
                }
                self.rounds -= 1;
                vec![CommReq::Recv { chan: 0 }, CommReq::Recv { chan: 1 }]
            }
        }
        let mut b = ProcIrBuilder::new();
        b.source(0, &[2, 3], "sa");
        b.source(1, &[10, 100], "sb");
        let (mut procs, _) = procs_of(b);
        let buf = sink_buffer();
        procs.push(Box::new(Join {
            out: buf.clone(),
            rounds: 2,
        }));
        run_threaded(procs, T).unwrap();
        assert_eq!(*buf.lock(), vec![20, 300]);
    }

    #[test]
    fn timeout_reports_instead_of_hanging() {
        let mut b = ProcIrBuilder::new();
        b.sink(7, 1, "lonely");
        let (procs, _) = procs_of(b);
        let err = run_threaded(procs, Duration::from_millis(50)).unwrap_err();
        assert!(matches!(err, RunError::Timeout { .. }), "{err}");
        assert!(err.to_string().contains("timed out"), "{err}");
    }

    #[test]
    fn two_senders_abort_with_diagnosis() {
        // No receiver exists, so both sources must park their sends on
        // channel 0; whichever registers second trips the violation, and
        // the run reports it (not a bare "aborted").
        let mut b = ProcIrBuilder::new();
        b.source(0, &[1, 2], "src-a");
        b.source(0, &[3, 4], "src-b");
        let (procs, _) = procs_of(b);
        let err = run_threaded(procs, T).unwrap_err();
        let RunError::Protocol(v) = err else {
            panic!("expected protocol violation, got {err}");
        };
        assert_eq!(v.chan, 0);
        assert_eq!(v.endpoint, "sender");
        // Registration order is racy across threads, but both offenders
        // are named either way.
        let mut pair = [v.first.as_str(), v.second.as_str()];
        pair.sort_unstable();
        assert_eq!(pair, ["src-a", "src-b"]);
        assert!(v.to_string().contains("two senders"));
    }

    #[test]
    fn yield_injection_perturbs_but_does_not_change_results() {
        for seed in [0u64, 7, 99] {
            let mut b = ProcIrBuilder::new();
            b.source(0, &[1, 2, 3, 4], "src");
            b.relay(0, 1, 4, "relay");
            b.sink(1, 4, "sink");
            let (procs, outs) = procs_of(b);
            let plan = YieldPlan {
                seed,
                yield_per_1024: 512,
            };
            let stats = run_threaded_perturbed(procs, T, Vec::new(), Some(plan)).unwrap();
            assert_eq!(*outs[0].lock(), vec![1, 2, 3, 4], "seed {seed}");
            assert_eq!(stats.messages, 8, "seed {seed}");
        }
    }

    #[test]
    fn batched_threaded_matches_unbatched_logical_stats() {
        let build = || {
            let mut b = ProcIrBuilder::new();
            b.source(0, &(0..40).collect::<Vec<_>>(), "src");
            b.relay(0, 1, 40, "relay");
            b.sink(1, 40, "sink");
            b.build(None)
        };
        let module = build();
        let inst = module.instantiate();
        let base = run_threaded(inst.procs, T).unwrap();
        let base_out = inst.outputs[0].lock().clone();

        let plan = crate::batch::analyze(&module);
        assert!(plan.batchable(), "{:?}", plan.reject_reason());
        let (stats, outs) = run_threaded_batched(&module, &plan, T).unwrap();
        assert_eq!(*outs[0].lock(), base_out, "stores bit-identical");
        assert_eq!(stats.messages, base.messages, "logical messages invariant");
        assert_eq!(stats.steps, base.steps, "logical steps invariant");
        assert_eq!(stats.rounds, 0, "no virtual clock");
    }

    #[test]
    fn batched_threaded_cycle_times_out_instead_of_hanging() {
        use crate::procir::ProcOp;
        let mut b = ProcIrBuilder::new();
        b.begin("fwd");
        b.op(ProcOp::Pass {
            inp: 0,
            out: 1,
            n: 2,
        });
        b.finish();
        b.begin("bwd");
        b.op(ProcOp::Pass {
            inp: 1,
            out: 0,
            n: 2,
        });
        b.finish();
        let module = b.build(None);
        let plan = crate::batch::analyze(&module);
        assert!(plan.batchable(), "{:?}", plan.reject_reason());
        let err = run_threaded_batched(&module, &plan, Duration::from_millis(50)).unwrap_err();
        assert!(
            matches!(err, RunError::Timeout { .. } | RunError::Aborted),
            "{err}"
        );
    }

    #[test]
    fn many_threads_small_stacks() {
        // 200 parallel one-shot pipelines.
        let mut b = ProcIrBuilder::new();
        for i in 0..200usize {
            b.source(i, &[i as Value], "s");
            b.sink(i, 1, "k");
        }
        let (procs, outs) = procs_of(b);
        run_threaded(procs, T).unwrap();
        for (i, buf) in outs.iter().enumerate() {
            assert_eq!(*buf.lock(), vec![i as Value]);
        }
    }
}
