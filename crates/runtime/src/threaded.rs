//! The threaded executor: the same process networks on real OS threads
//! with blocking rendezvous — genuine asynchronous parallelism, used for
//! the speed-up experiments.
//!
//! The rendezvous engine is a single matcher protected by a mutex with one
//! condvar per process (the classic building block; cf. the guides'
//! "Rust Atomics and Locks" treatment of condition variables). A process
//! offers its whole communication set at once, so `par` communications
//! complete in any order without the thread having to block on one channel
//! at a time — this is what makes the executor deadlock-equivalent to the
//! cooperative scheduler.

use crate::coop::RunStats;
use crate::process::{ChanId, CommReq, Process, Value};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct SetState {
    remaining: usize,
    inbox: Vec<Option<Value>>,
}

struct EngineState {
    sends: HashMap<ChanId, (usize, usize, Value)>,
    recvs: HashMap<ChanId, (usize, usize)>,
    sets: Vec<SetState>,
    messages: u64,
}

struct Engine {
    state: Mutex<EngineState>,
    wakeups: Vec<Condvar>,
    aborted: AtomicBool,
}

impl Engine {
    fn new(nprocs: usize) -> Engine {
        Engine {
            state: Mutex::new(EngineState {
                sends: HashMap::new(),
                recvs: HashMap::new(),
                sets: (0..nprocs)
                    .map(|_| SetState {
                        remaining: 0,
                        inbox: Vec::new(),
                    })
                    .collect(),
                messages: 0,
            }),
            wakeups: (0..nprocs).map(|_| Condvar::new()).collect(),
            aborted: AtomicBool::new(false),
        }
    }

    /// Offer a communication set and block until it completes. Returns the
    /// received values in request order, or `Err` on timeout/abort.
    fn offer_set(
        &self,
        pid: usize,
        reqs: &[CommReq],
        timeout: Duration,
    ) -> Result<Vec<Value>, String> {
        let mut st = self.state.lock();
        st.sets[pid] = SetState {
            remaining: reqs.len(),
            inbox: vec![None; reqs.len()],
        };
        for (ri, req) in reqs.iter().enumerate() {
            match *req {
                CommReq::Send { chan, value } => {
                    if let Some((rpid, rri)) = st.recvs.remove(&chan) {
                        st.sets[rpid].inbox[rri] = Some(value);
                        st.sets[rpid].remaining -= 1;
                        st.sets[pid].remaining -= 1;
                        st.messages += 1;
                        if st.sets[rpid].remaining == 0 {
                            self.wakeups[rpid].notify_one();
                        }
                    } else {
                        let prev = st.sends.insert(chan, (pid, ri, value));
                        assert!(prev.is_none(), "two senders on channel {chan}");
                    }
                }
                CommReq::Recv { chan } => {
                    if let Some((spid, _sri, value)) = st.sends.remove(&chan) {
                        st.sets[pid].inbox[ri] = Some(value);
                        st.sets[pid].remaining -= 1;
                        st.sets[spid].remaining -= 1;
                        st.messages += 1;
                        if st.sets[spid].remaining == 0 {
                            self.wakeups[spid].notify_one();
                        }
                    } else {
                        let prev = st.recvs.insert(chan, (pid, ri));
                        assert!(prev.is_none(), "two receivers on channel {chan}");
                    }
                }
            }
        }
        while st.sets[pid].remaining > 0 {
            if self.aborted.load(Ordering::Relaxed) {
                return Err("aborted".into());
            }
            if self.wakeups[pid].wait_for(&mut st, timeout).timed_out() {
                self.aborted.store(true, Ordering::Relaxed);
                for w in &self.wakeups {
                    w.notify_one();
                }
                return Err(format!("process {pid} timed out waiting for rendezvous"));
            }
        }
        let mut received = Vec::new();
        for (ri, req) in reqs.iter().enumerate() {
            if !req.is_send() {
                received.push(st.sets[pid].inbox[ri].take().expect("recv without value"));
            }
        }
        Ok(received)
    }
}

/// Run a set of processes on OS threads (one thread each, small stacks).
/// `timeout` bounds any single rendezvous wait — a blown timeout reports
/// instead of hanging (the cooperative scheduler is the deadlock oracle;
/// this executor is for wall-clock measurement).
pub fn run_threaded(procs: Vec<Box<dyn Process>>, timeout: Duration) -> Result<RunStats, String> {
    let n = procs.len();
    let engine = Arc::new(Engine::new(n));
    let mut handles = Vec::with_capacity(n);
    let mut steps_total = 0u64;
    for (pid, mut proc) in procs.into_iter().enumerate() {
        let engine = engine.clone();
        let h = std::thread::Builder::new()
            .name(format!("systolic-{pid}"))
            .stack_size(128 * 1024)
            .spawn(move || -> Result<u64, String> {
                let mut received = Vec::new();
                let mut steps = 0u64;
                loop {
                    let reqs = proc.step(&received);
                    steps += 1;
                    if reqs.is_empty() {
                        return Ok(steps);
                    }
                    received = engine.offer_set(pid, &reqs, timeout)?;
                }
            })
            .expect("spawn systolic thread");
        handles.push(h);
    }
    let mut first_err = None;
    for h in handles {
        match h.join().map_err(|_| "thread panicked".to_string()) {
            Ok(Ok(s)) => steps_total += s,
            Ok(Err(e)) | Err(e) => first_err = first_err.or(Some(e)),
        }
    }
    if let Some(e) = first_err {
        return Err(e);
    }
    let st = engine.state.lock();
    Ok(RunStats {
        rounds: 0,
        messages: st.messages,
        processes: n,
        steps: steps_total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::{sink_buffer, RelayProc, SinkProc, SourceProc};

    const T: Duration = Duration::from_secs(10);

    #[test]
    fn threaded_pipeline_matches_cooperative() {
        let buf = sink_buffer();
        let procs: Vec<Box<dyn Process>> = vec![
            Box::new(SourceProc::new(0, vec![1, 2, 3, 4], "src")),
            Box::new(RelayProc::new(0, 1, 4, "relay")),
            Box::new(SinkProc::new(1, 4, buf.clone(), "sink")),
        ];
        let stats = run_threaded(procs, T).unwrap();
        assert_eq!(*buf.lock(), vec![1, 2, 3, 4]);
        assert_eq!(stats.messages, 8);
        assert_eq!(stats.processes, 3);
    }

    #[test]
    fn threaded_fanout_join() {
        struct Join {
            out: crate::process::SinkBuffer,
            rounds: usize,
        }
        impl Process for Join {
            fn step(&mut self, received: &[Value]) -> Vec<CommReq> {
                if received.len() == 2 {
                    self.out.lock().push(received[0] * received[1]);
                }
                if self.rounds == 0 {
                    return vec![];
                }
                self.rounds -= 1;
                vec![CommReq::Recv { chan: 0 }, CommReq::Recv { chan: 1 }]
            }
        }
        let buf = sink_buffer();
        let procs: Vec<Box<dyn Process>> = vec![
            Box::new(SourceProc::new(0, vec![2, 3], "sa")),
            Box::new(SourceProc::new(1, vec![10, 100], "sb")),
            Box::new(Join {
                out: buf.clone(),
                rounds: 2,
            }),
        ];
        run_threaded(procs, T).unwrap();
        assert_eq!(*buf.lock(), vec![20, 300]);
    }

    #[test]
    fn timeout_reports_instead_of_hanging() {
        let buf = sink_buffer();
        let procs: Vec<Box<dyn Process>> = vec![Box::new(SinkProc::new(7, 1, buf, "lonely"))];
        let err = run_threaded(procs, Duration::from_millis(50)).unwrap_err();
        assert!(
            err.contains("timed out") || err.contains("aborted"),
            "{err}"
        );
    }

    #[test]
    fn many_threads_small_stacks() {
        // 200 parallel one-shot pipelines.
        let mut procs: Vec<Box<dyn Process>> = Vec::new();
        let mut bufs = Vec::new();
        for i in 0..200 {
            let buf = sink_buffer();
            procs.push(Box::new(SourceProc::new(i, vec![i as Value], "s")));
            procs.push(Box::new(SinkProc::new(i, 1, buf.clone(), "k")));
            bufs.push(buf);
        }
        run_threaded(procs, T).unwrap();
        for (i, b) in bufs.iter().enumerate() {
            assert_eq!(*b.lock(), vec![i as Value]);
        }
    }
}
