//! Partitioned execution: many virtual processes per worker thread.
//!
//! Sec. 8 lists the refinement "our programs must be refined to meet the
//! restrictions that actual machines impose: not enough processors ...
//! such limitations can be imposed with techniques of partitioning \[23\]".
//! This module supplies the runtime half of that refinement: a fixed
//! number of workers each hosts a *group* of virtual processes,
//! multiplexing them cooperatively, while groups communicate through the
//! same rendezvous engine as the one-thread-per-process executor.
//!
//! The crucial difference from [`crate::threaded`] is that a worker never
//! blocks on a single process's communication set: it registers offers
//! non-blockingly, resumes whichever member completed, and parks only
//! when *every* member is stuck — so intra-group rendezvous still make
//! progress (they complete inside the shared matcher the moment both
//! sides are offered, regardless of which thread hosts them).

use crate::coop::RunStats;
use crate::process::{ChanId, CommReq, Process, Value};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct SetState {
    remaining: usize,
    inbox: Vec<Option<Value>>,
    /// Completed but not yet resumed by its worker.
    ready: bool,
    finished: bool,
}

struct EngineState {
    sends: HashMap<ChanId, (usize, usize, Value)>,
    recvs: HashMap<ChanId, (usize, usize)>,
    sets: Vec<SetState>,
    messages: u64,
}

struct Engine {
    state: Mutex<EngineState>,
    /// One wakeup per group.
    wakeups: Vec<Condvar>,
    group_of: Vec<usize>,
    aborted: AtomicBool,
}

impl Engine {
    /// Register a process's next communication set; complete any matches
    /// this enables. Caller holds no lock.
    fn register(&self, pid: usize, reqs: &[CommReq]) {
        let mut st = self.state.lock();
        st.sets[pid] = SetState {
            remaining: reqs.len(),
            inbox: vec![None; reqs.len()],
            ready: reqs.is_empty(),
            finished: false,
        };
        let mut to_wake = Vec::new();
        for (ri, req) in reqs.iter().enumerate() {
            match *req {
                CommReq::Send { chan, value } => {
                    if let Some((rpid, rri)) = st.recvs.remove(&chan) {
                        st.sets[rpid].inbox[rri] = Some(value);
                        Self::complete(&mut st, rpid, &mut to_wake, &self.group_of);
                        Self::complete(&mut st, pid, &mut to_wake, &self.group_of);
                        st.messages += 1;
                    } else {
                        let prev = st.sends.insert(chan, (pid, ri, value));
                        assert!(prev.is_none(), "two senders on channel {chan}");
                    }
                }
                CommReq::Recv { chan } => {
                    if let Some((spid, _sri, value)) = st.sends.remove(&chan) {
                        st.sets[pid].inbox[ri] = Some(value);
                        Self::complete(&mut st, pid, &mut to_wake, &self.group_of);
                        Self::complete(&mut st, spid, &mut to_wake, &self.group_of);
                        st.messages += 1;
                    } else {
                        let prev = st.recvs.insert(chan, (pid, ri));
                        assert!(prev.is_none(), "two receivers on channel {chan}");
                    }
                }
            }
        }
        drop(st);
        to_wake.sort_unstable();
        to_wake.dedup();
        for g in to_wake {
            self.wakeups[g].notify_one();
        }
    }

    fn complete(st: &mut EngineState, pid: usize, to_wake: &mut Vec<usize>, group_of: &[usize]) {
        st.sets[pid].remaining -= 1;
        if st.sets[pid].remaining == 0 {
            st.sets[pid].ready = true;
            to_wake.push(group_of[pid]);
        }
    }

    /// Pop a ready member of `group`, returning its id and received
    /// values; or park until one appears. `None` on abort/timeout or when
    /// every member has finished.
    fn next_ready(
        &self,
        group_id: usize,
        members: &[usize],
        reqs_of: &dyn Fn(usize) -> Vec<bool>, // is_send per request index
        timeout: Duration,
    ) -> Result<Option<(usize, Vec<Value>)>, String> {
        let mut st = self.state.lock();
        loop {
            if members.iter().all(|&m| st.sets[m].finished) {
                return Ok(None);
            }
            if let Some(&m) = members
                .iter()
                .find(|&&m| st.sets[m].ready && !st.sets[m].finished)
            {
                st.sets[m].ready = false;
                let sends = reqs_of(m);
                let mut received = Vec::new();
                for (ri, is_send) in sends.iter().enumerate() {
                    if !is_send {
                        received.push(
                            st.sets[m].inbox[ri]
                                .take()
                                .expect("recv completed without value"),
                        );
                    }
                }
                return Ok(Some((m, received)));
            }
            if self.aborted.load(Ordering::Relaxed) {
                return Err("aborted".into());
            }
            if self.wakeups[group_id]
                .wait_for(&mut st, timeout)
                .timed_out()
            {
                self.aborted.store(true, Ordering::Relaxed);
                for w in &self.wakeups {
                    w.notify_all();
                }
                return Err(format!("group {group_id} timed out waiting for rendezvous"));
            }
        }
    }
}

/// Run processes partitioned into `groups` (a partition of process ids),
/// one OS thread per group. Returns the usual statistics.
pub fn run_partitioned(
    procs: Vec<Box<dyn Process>>,
    groups: Vec<Vec<usize>>,
    timeout: Duration,
) -> Result<RunStats, String> {
    let n = procs.len();
    {
        let mut seen = vec![false; n];
        for g in &groups {
            for &m in g {
                assert!(!seen[m], "process {m} in two groups");
                seen[m] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "groups must cover every process");
    }
    let mut group_of = vec![0usize; n];
    for (gi, g) in groups.iter().enumerate() {
        for &m in g {
            group_of[m] = gi;
        }
    }
    let engine = Arc::new(Engine {
        state: Mutex::new(EngineState {
            sends: HashMap::new(),
            recvs: HashMap::new(),
            sets: (0..n)
                .map(|_| SetState {
                    remaining: 0,
                    inbox: Vec::new(),
                    ready: true,
                    finished: false,
                })
                .collect(),
            messages: 0,
        }),
        wakeups: (0..groups.len()).map(|_| Condvar::new()).collect(),
        group_of,
        aborted: AtomicBool::new(false),
    });

    // Distribute process ownership to the group threads.
    let mut slots: Vec<Option<Box<dyn Process>>> = procs.into_iter().map(Some).collect();
    let mut handles = Vec::new();
    let mut steps_total = 0u64;
    for (gi, members) in groups.iter().enumerate() {
        let mut owned: Vec<(usize, Box<dyn Process>)> = members
            .iter()
            .map(|&m| (m, slots[m].take().unwrap()))
            .collect();
        let engine = engine.clone();
        let members = members.clone();
        let h = std::thread::Builder::new()
            .name(format!("systolic-group-{gi}"))
            .spawn(move || -> Result<u64, String> {
                let mut steps = 0u64;
                // Track each member's current request shape for inbox
                // extraction.
                let mut shapes: HashMap<usize, Vec<bool>> = HashMap::new();
                // Prime every member.
                for (pid, proc) in owned.iter_mut() {
                    let reqs = proc.step(&[]);
                    steps += 1;
                    if reqs.is_empty() {
                        engine.state.lock().sets[*pid].finished = true;
                        continue;
                    }
                    shapes.insert(*pid, reqs.iter().map(|r| r.is_send()).collect());
                    engine.register(*pid, &reqs);
                }
                loop {
                    let shapes_ref = shapes.clone();
                    let lookup = move |pid: usize| shapes_ref[&pid].clone();
                    match engine.next_ready(gi, &members, &lookup, timeout)? {
                        None => return Ok(steps),
                        Some((pid, received)) => {
                            let proc = owned
                                .iter_mut()
                                .find(|(p, _)| *p == pid)
                                .map(|(_, pr)| pr)
                                .expect("ready member owned by this group");
                            let reqs = proc.step(&received);
                            steps += 1;
                            if reqs.is_empty() {
                                engine.state.lock().sets[pid].finished = true;
                                shapes.remove(&pid);
                            } else {
                                shapes.insert(pid, reqs.iter().map(|r| r.is_send()).collect());
                                engine.register(pid, &reqs);
                            }
                        }
                    }
                }
            })
            .expect("spawn group thread");
        handles.push(h);
    }
    let mut first_err = None;
    for h in handles {
        match h.join().map_err(|_| "group thread panicked".to_string()) {
            Ok(Ok(s)) => steps_total += s,
            Ok(Err(e)) | Err(e) => first_err = first_err.or(Some(e)),
        }
    }
    if let Some(e) = first_err {
        return Err(e);
    }
    let st = engine.state.lock();
    Ok(RunStats {
        rounds: 0,
        messages: st.messages,
        processes: n,
        steps: steps_total,
    })
}

/// A simple block partition: processes in index order, `k` groups of
/// near-equal size.
pub fn block_partition(n_procs: usize, k: usize) -> Vec<Vec<usize>> {
    let k = k.max(1).min(n_procs.max(1));
    let mut groups = vec![Vec::new(); k];
    for p in 0..n_procs {
        groups[p * k / n_procs.max(1)].push(p);
    }
    groups.retain(|g| !g.is_empty());
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::{sink_buffer, RelayProc, SinkProc, SourceProc};

    const T: Duration = Duration::from_secs(10);

    fn pipeline(
        len: usize,
        values: Vec<Value>,
    ) -> (Vec<Box<dyn Process>>, crate::process::SinkBuffer) {
        let buf = sink_buffer();
        let n = values.len();
        let mut procs: Vec<Box<dyn Process>> = vec![Box::new(SourceProc::new(0, values, "src"))];
        for i in 0..len {
            procs.push(Box::new(RelayProc::new(i, i + 1, n, format!("r{i}"))));
        }
        procs.push(Box::new(SinkProc::new(len, n, buf.clone(), "sink")));
        (procs, buf)
    }

    #[test]
    fn single_group_runs_everything_on_one_thread() {
        let (procs, buf) = pipeline(5, vec![1, 2, 3]);
        let n = procs.len();
        let stats = run_partitioned(procs, vec![(0..n).collect()], T).unwrap();
        assert_eq!(*buf.lock(), vec![1, 2, 3]);
        assert_eq!(stats.processes, n);
    }

    #[test]
    fn two_groups_split_mid_pipeline() {
        let (procs, buf) = pipeline(6, (0..10).collect());
        let n = procs.len();
        let groups = vec![(0..n / 2).collect(), (n / 2..n).collect()];
        run_partitioned(procs, groups, T).unwrap();
        assert_eq!(*buf.lock(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn block_partition_shapes() {
        assert_eq!(block_partition(10, 3).len(), 3);
        assert_eq!(block_partition(10, 3).concat().len(), 10);
        assert_eq!(block_partition(2, 8).len(), 2, "no empty groups");
        assert_eq!(block_partition(7, 1), vec![(0..7).collect::<Vec<_>>()]);
    }

    #[test]
    fn every_partition_of_a_diamond_works() {
        // Fan-out/fan-in across group boundaries in all placements.
        for k in 1..=4 {
            let buf = sink_buffer();
            let procs: Vec<Box<dyn Process>> = vec![
                Box::new(SourceProc::new(0, vec![5, 6], "sa")),
                Box::new(SourceProc::new(1, vec![7, 8], "sb")),
                Box::new(RelayProc::new(0, 2, 2, "ra")),
                Box::new(RelayProc::new(1, 3, 2, "rb")),
                Box::new(SinkProc::new(2, 2, buf.clone(), "ka")),
                Box::new(SinkProc::new(3, 2, sink_buffer(), "kb")),
            ];
            let groups = block_partition(procs.len(), k);
            run_partitioned(procs, groups, T).unwrap();
            assert_eq!(*buf.lock(), vec![5, 6], "k = {k}");
        }
    }

    #[test]
    fn timeout_on_stuck_group() {
        let buf = sink_buffer();
        let procs: Vec<Box<dyn Process>> = vec![Box::new(SinkProc::new(9, 1, buf, "lonely"))];
        let err = run_partitioned(procs, vec![vec![0]], Duration::from_millis(50)).unwrap_err();
        assert!(
            err.contains("timed out") || err.contains("aborted"),
            "{err}"
        );
    }
}
