//! Partitioned execution: many virtual processes per worker thread.
//!
//! Sec. 8 lists the refinement "our programs must be refined to meet the
//! restrictions that actual machines impose: not enough processors ...
//! such limitations can be imposed with techniques of partitioning \[23\]".
//! This module supplies the runtime half of that refinement: a fixed
//! number of workers each hosts a *group* of virtual processes,
//! multiplexing them cooperatively, while groups communicate through the
//! same rendezvous engine as the one-thread-per-process executor.
//!
//! The crucial difference from [`crate::threaded`] is that a worker never
//! blocks on a single process's communication set: it registers offers
//! non-blockingly, resumes whichever member completed, and parks only
//! when *every* member is stuck — so intra-group rendezvous still make
//! progress (they complete inside the shared matcher the moment both
//! sides are offered, regardless of which thread hosts them).
//!
//! As in [`crate::coop`] and [`crate::threaded`], channel endpoints live
//! in dense tables indexed by [`ChanId`], worker loops reuse their
//! request/receive buffers across steps, and a malformed network (two
//! processes on one endpoint) aborts with a structured [`RunError`]
//! diagnosis instead of panicking a worker.

use crate::batch::{BatchPlan, Ring};
use crate::coop::{ProtocolViolation, RunError, RunStats};
use crate::process::{ChanId, CommReq, Process, SinkBuffer, Value};
use crate::procir::{ProcIrModule, ProcVm};
use crate::record::{SharedRecorder, Transfer};
use crate::schedule::YieldPlan;
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct SetState {
    remaining: usize,
    inbox: Vec<Option<Value>>,
    /// Completed but not yet resumed by its worker.
    ready: bool,
    finished: bool,
}

struct EngineState {
    /// Dense endpoint tables by channel id, grown on first touch.
    sends: Vec<Option<(usize, usize, Value)>>,
    recvs: Vec<Option<(usize, usize)>>,
    sets: Vec<SetState>,
    messages: u64,
    /// First fatal diagnosis; preferred over secondary [`RunError::Aborted`].
    failure: Option<RunError>,
}

impl EngineState {
    fn ensure_chan(&mut self, chan: ChanId) {
        if chan >= self.sends.len() {
            self.sends.resize(chan + 1, None);
            self.recvs.resize(chan + 1, None);
        }
    }
}

struct Engine {
    state: Mutex<EngineState>,
    /// One wakeup per group.
    wakeups: Vec<Condvar>,
    group_of: Vec<usize>,
    /// Process labels captured before the workers were spawned, so
    /// violation diagnoses can name both offenders.
    labels: Vec<String>,
    aborted: AtomicBool,
    /// Attached observability sinks (see `crate::record`); every hook is
    /// behind an `is_empty` branch, so unobserved runs pay nothing.
    recorders: Vec<SharedRecorder>,
    /// Run start, for the microsecond virtual clock of recorded events.
    epoch: Instant,
}

impl Engine {
    /// Microseconds since run start — the virtual time of recorded events.
    fn now(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Report one completed transfer to every recorder (waits are a
    /// round-clock notion; this executor reports them as 0).
    fn record_transfer(&self, chan: ChanId, value: Value, sender: usize, receiver: usize) {
        if self.recorders.is_empty() {
            return;
        }
        let ev = Transfer {
            time: self.now(),
            chan,
            value,
            sender,
            receiver,
            sender_wait: 0,
            receiver_wait: 0,
        };
        for r in &self.recorders {
            r.lock().transfer(&ev);
        }
    }

    /// Record a fatal diagnosis, wake every group, and return the error.
    fn abort(&self, st: &mut EngineState, err: RunError) -> RunError {
        self.aborted.store(true, Ordering::Relaxed);
        if st.failure.is_none() {
            st.failure = Some(err.clone());
        }
        for w in &self.wakeups {
            w.notify_all();
        }
        err
    }

    fn violation(
        &self,
        chan: ChanId,
        endpoint: &'static str,
        first: usize,
        second: usize,
    ) -> RunError {
        RunError::Protocol(ProtocolViolation {
            chan,
            endpoint,
            first: self.labels[first].clone(),
            second: self.labels[second].clone(),
        })
    }

    /// Register a process's next communication set; complete any matches
    /// this enables. Caller holds no lock.
    fn register(&self, pid: usize, reqs: &[CommReq]) -> Result<(), RunError> {
        let mut st = self.state.lock();
        st.sets[pid].remaining = reqs.len();
        st.sets[pid].inbox.clear();
        st.sets[pid].inbox.resize(reqs.len(), None);
        st.sets[pid].ready = reqs.is_empty();
        st.sets[pid].finished = false;
        let mut to_wake = Vec::new();
        for (ri, req) in reqs.iter().enumerate() {
            match *req {
                CommReq::Send { chan, value } => {
                    st.ensure_chan(chan);
                    if let Some((rpid, rri)) = st.recvs[chan].take() {
                        st.sets[rpid].inbox[rri] = Some(value);
                        Self::complete(&mut st, rpid, &mut to_wake, &self.group_of);
                        Self::complete(&mut st, pid, &mut to_wake, &self.group_of);
                        st.messages += 1;
                        self.record_transfer(chan, value, pid, rpid);
                    } else {
                        if let Some((prev, _, _)) = st.sends[chan] {
                            let err = self.violation(chan, "sender", prev, pid);
                            return Err(self.abort(&mut st, err));
                        }
                        st.sends[chan] = Some((pid, ri, value));
                    }
                }
                CommReq::Recv { chan } => {
                    st.ensure_chan(chan);
                    if let Some((spid, _sri, value)) = st.sends[chan].take() {
                        st.sets[pid].inbox[ri] = Some(value);
                        Self::complete(&mut st, pid, &mut to_wake, &self.group_of);
                        Self::complete(&mut st, spid, &mut to_wake, &self.group_of);
                        st.messages += 1;
                        self.record_transfer(chan, value, spid, pid);
                    } else {
                        if let Some((prev, _)) = st.recvs[chan] {
                            let err = self.violation(chan, "receiver", prev, pid);
                            return Err(self.abort(&mut st, err));
                        }
                        st.recvs[chan] = Some((pid, ri));
                    }
                }
            }
        }
        drop(st);
        to_wake.sort_unstable();
        to_wake.dedup();
        for g in to_wake {
            self.wakeups[g].notify_one();
        }
        Ok(())
    }

    fn complete(st: &mut EngineState, pid: usize, to_wake: &mut Vec<usize>, group_of: &[usize]) {
        st.sets[pid].remaining -= 1;
        if st.sets[pid].remaining == 0 {
            st.sets[pid].ready = true;
            to_wake.push(group_of[pid]);
        }
    }

    /// Pop a ready member of `group`, filling `received` with its values
    /// (request shapes come from `shapes`, indexed by pid); or park until
    /// one appears. `None` on abort/timeout or when every member finished.
    fn next_ready(
        &self,
        group_id: usize,
        members: &[usize],
        shapes: &[Vec<bool>], // is_send per request index, by pid
        received: &mut Vec<Value>,
        timeout: Duration,
    ) -> Result<Option<usize>, RunError> {
        let mut st = self.state.lock();
        loop {
            if members.iter().all(|&m| st.sets[m].finished) {
                return Ok(None);
            }
            if let Some(&m) = members
                .iter()
                .find(|&&m| st.sets[m].ready && !st.sets[m].finished)
            {
                st.sets[m].ready = false;
                received.clear();
                for (ri, is_send) in shapes[m].iter().enumerate() {
                    if !is_send {
                        received.push(
                            st.sets[m].inbox[ri]
                                .take()
                                .expect("recv completed without value"),
                        );
                    }
                }
                return Ok(Some(m));
            }
            if self.aborted.load(Ordering::Relaxed) {
                return Err(st.failure.clone().unwrap_or(RunError::Aborted));
            }
            if self.wakeups[group_id]
                .wait_for(&mut st, timeout)
                .timed_out()
            {
                let err = RunError::Timeout {
                    scope: format!("group {group_id}"),
                };
                return Err(self.abort(&mut st, err));
            }
        }
    }
}

/// Run processes partitioned into `groups` (a partition of process ids),
/// one OS thread per group. Returns the usual statistics.
pub fn run_partitioned(
    procs: Vec<Box<dyn Process>>,
    groups: Vec<Vec<usize>>,
    timeout: Duration,
) -> Result<RunStats, RunError> {
    run_partitioned_recorded(procs, groups, timeout, Vec::new())
}

/// [`run_partitioned`] with observability sinks attached (see
/// `crate::record`). Event times are microseconds since run start;
/// transfer waits are reported as 0 (no round clock). With an empty
/// recorder list this is exactly `run_partitioned`.
pub fn run_partitioned_recorded(
    procs: Vec<Box<dyn Process>>,
    groups: Vec<Vec<usize>>,
    timeout: Duration,
    recorders: Vec<SharedRecorder>,
) -> Result<RunStats, RunError> {
    run_partitioned_perturbed(procs, groups, timeout, recorders, None)
}

/// [`run_partitioned_recorded`] with seeded yield-point injection: each
/// group worker surrenders its timeslice at pseudo-random resume
/// boundaries drawn from `yields` (see [`YieldPlan`]), perturbing both
/// the OS schedule and the order in which a worker multiplexes its
/// members — rendezvous semantics are untouched. `None` is exactly
/// [`run_partitioned_recorded`].
pub fn run_partitioned_perturbed(
    procs: Vec<Box<dyn Process>>,
    groups: Vec<Vec<usize>>,
    timeout: Duration,
    recorders: Vec<SharedRecorder>,
    yields: Option<YieldPlan>,
) -> Result<RunStats, RunError> {
    let n = procs.len();
    check_partition(n, &groups)?;
    let mut group_of = vec![0usize; n];
    for (gi, g) in groups.iter().enumerate() {
        for &m in g {
            group_of[m] = gi;
        }
    }
    let labels: Vec<String> = procs.iter().map(|p| p.label()).collect();
    let engine = Arc::new(Engine {
        state: Mutex::new(EngineState {
            sends: Vec::new(),
            recvs: Vec::new(),
            sets: (0..n)
                .map(|_| SetState {
                    remaining: 0,
                    inbox: Vec::new(),
                    ready: true,
                    finished: false,
                })
                .collect(),
            messages: 0,
            failure: None,
        }),
        wakeups: (0..groups.len()).map(|_| Condvar::new()).collect(),
        group_of,
        labels,
        aborted: AtomicBool::new(false),
        recorders,
        epoch: Instant::now(),
    });
    for r in &engine.recorders {
        r.lock().start(&engine.labels);
    }

    // Distribute process ownership to the group threads.
    let mut slots: Vec<Option<Box<dyn Process>>> = procs.into_iter().map(Some).collect();
    let mut handles = Vec::new();
    let mut steps_total = 0u64;
    for (gi, members) in groups.iter().enumerate() {
        let mut owned: Vec<(usize, Box<dyn Process>)> = members
            .iter()
            .map(|&m| (m, slots[m].take().unwrap()))
            .collect();
        let engine = engine.clone();
        let members = members.clone();
        let h = std::thread::Builder::new()
            .name(format!("systolic-group-{gi}"))
            .spawn(move || -> Result<u64, RunError> {
                let mut steps = 0u64;
                let mut injector = yields.map(|y| y.injector(gi as u64));
                // Each member's current request shape (is_send per request
                // index), dense by pid; the per-member vectors and the
                // request/receive buffers are reused across every step.
                let mut shapes: Vec<Vec<bool>> = vec![Vec::new(); engine.group_of.len()];
                let mut reqs = Vec::new();
                let mut received = Vec::new();
                let recording = !engine.recorders.is_empty();
                // Prime every member.
                for (pid, proc) in owned.iter_mut() {
                    reqs.clear();
                    proc.step_into(&[], &mut reqs);
                    steps += 1;
                    if recording {
                        let now = engine.now();
                        for r in &engine.recorders {
                            let mut r = r.lock();
                            r.step(now, *pid);
                            if reqs.is_empty() {
                                r.finished(now, *pid);
                            }
                        }
                    }
                    if reqs.is_empty() {
                        engine.state.lock().sets[*pid].finished = true;
                        continue;
                    }
                    shapes[*pid].clear();
                    shapes[*pid].extend(reqs.iter().map(|r| r.is_send()));
                    engine.register(*pid, &reqs)?;
                }
                loop {
                    if let Some(inj) = injector.as_mut() {
                        inj.maybe_yield();
                    }
                    match engine.next_ready(gi, &members, &shapes, &mut received, timeout)? {
                        None => return Ok(steps),
                        Some(pid) => {
                            let proc = owned
                                .iter_mut()
                                .find(|(p, _)| *p == pid)
                                .map(|(_, pr)| pr)
                                .expect("ready member owned by this group");
                            reqs.clear();
                            proc.step_into(&received, &mut reqs);
                            steps += 1;
                            if recording {
                                let now = engine.now();
                                for r in &engine.recorders {
                                    let mut r = r.lock();
                                    r.step(now, pid);
                                    if reqs.is_empty() {
                                        r.finished(now, pid);
                                    }
                                }
                            }
                            if reqs.is_empty() {
                                engine.state.lock().sets[pid].finished = true;
                            } else {
                                shapes[pid].clear();
                                shapes[pid].extend(reqs.iter().map(|r| r.is_send()));
                                engine.register(pid, &reqs)?;
                            }
                        }
                    }
                }
            })
            .expect("spawn group thread");
        handles.push(h);
    }
    let mut first_err = None;
    for (gi, h) in handles.into_iter().enumerate() {
        match h.join().map_err(|_| RunError::Panicked {
            scope: format!("group {gi}"),
        }) {
            Ok(Ok(s)) => steps_total += s,
            Ok(Err(e)) | Err(e) => first_err = first_err.or(Some(e)),
        }
    }
    let st = engine.state.lock();
    if let Some(e) = first_err {
        // The root cause, not whichever group's abort joined first.
        return Err(st.failure.clone().unwrap_or(e));
    }
    let now = engine.now();
    for r in &engine.recorders {
        r.lock().end(now);
    }
    Ok(RunStats {
        rounds: 0,
        messages: st.messages,
        processes: n,
        steps: steps_total,
    })
}

/// Validate that `groups` is a partition of `0..n`; the shared
/// precondition of both partitioned executors.
fn check_partition(n: usize, groups: &[Vec<usize>]) -> Result<(), RunError> {
    let mut seen = vec![false; n];
    for g in groups {
        for &m in g {
            if m >= n {
                return Err(RunError::Partition {
                    reason: format!("group member {m} out of range (n = {n})"),
                });
            }
            if seen[m] {
                return Err(RunError::Partition {
                    reason: format!("process {m} in two groups"),
                });
            }
            seen[m] = true;
        }
    }
    if let Some(m) = seen.iter().position(|&s| !s) {
        return Err(RunError::Partition {
            reason: format!("process {m} not in any group"),
        });
    }
    Ok(())
}

/// Shared state of the batched partitioned executor (mirrors the
/// threaded one: all rings under one lock, taken per macro-sweep).
struct BatchState {
    rings: Vec<Ring>,
    failure: Option<RunError>,
}

struct BatchEngine {
    state: Mutex<BatchState>,
    /// One wakeup per group.
    wakeups: Vec<Condvar>,
    aborted: AtomicBool,
}

/// The batched partitioned executor: the Sec. 8 refinement over
/// `ProcVm::macro_step`. Each worker round-robins its group's members
/// over the plan's shared rings until none progresses, then parks on the
/// group condvar; a member whose macro-step moved values wakes exactly
/// the *other* groups hosting its channel peers (intra-group unblocking
/// happens in the same sweep for free — the whole reason partitioning
/// multiplexes instead of blocking). Semantics pinned to the unbatched
/// executors by `tests/batching.rs`: stores bit-identical,
/// `messages`/`steps` logical counts, `rounds` 0.
pub fn run_partitioned_batched(
    module: &Arc<ProcIrModule>,
    plan: &BatchPlan,
    groups: Vec<Vec<usize>>,
    timeout: Duration,
) -> Result<(RunStats, Vec<SinkBuffer>), RunError> {
    debug_assert!(plan.batchable(), "caller checks BatchPlan::batchable");
    let (vms, outputs) = module.instantiate_vms();
    let n = vms.len();
    check_partition(n, &groups)?;
    let mut group_of = vec![0usize; n];
    for (gi, g) in groups.iter().enumerate() {
        for &m in g {
            group_of[m] = gi;
        }
    }
    // Which other groups to wake when a member's macro-step moves
    // values, dense by pid.
    let neighbours = crate::threaded::neighbour_sets(plan, n);
    let neighbour_groups: Arc<Vec<Vec<usize>>> = Arc::new(
        (0..n)
            .map(|pid| {
                let mut gs: Vec<usize> = neighbours[pid]
                    .iter()
                    .map(|&q| group_of[q])
                    .filter(|&g| g != group_of[pid])
                    .collect();
                gs.sort_unstable();
                gs.dedup();
                gs
            })
            .collect(),
    );
    let engine = Arc::new(BatchEngine {
        state: Mutex::new(BatchState {
            rings: plan.rings(),
            failure: None,
        }),
        wakeups: (0..groups.len()).map(|_| Condvar::new()).collect(),
        aborted: AtomicBool::new(false),
    });

    let mut slots: Vec<Option<ProcVm>> = vms.into_iter().map(Some).collect();
    let mut handles = Vec::new();
    for (gi, members) in groups.iter().enumerate() {
        let mut owned: Vec<(usize, ProcVm, bool)> = members
            .iter()
            .map(|&m| (m, slots[m].take().unwrap(), false))
            .collect();
        let engine = engine.clone();
        let neighbour_groups = neighbour_groups.clone();
        let h = std::thread::Builder::new()
            .name(format!("systolic-batch-group-{gi}"))
            .spawn(move || -> Result<RunStats, RunError> {
                let mut stats = RunStats::default();
                let mut live = owned.len();
                let mut st = engine.state.lock();
                loop {
                    let mut progressed = false;
                    for (pid, vm, done) in owned.iter_mut() {
                        if *done {
                            continue;
                        }
                        let mut moved = 0u64;
                        let finished = vm.macro_step(&mut st.rings, &mut stats, &mut moved);
                        if moved > 0 {
                            progressed = true;
                            for &g in &neighbour_groups[*pid] {
                                engine.wakeups[g].notify_one();
                            }
                        }
                        if finished {
                            *done = true;
                            live -= 1;
                        }
                    }
                    if live == 0 {
                        return Ok(stats);
                    }
                    if progressed {
                        // A member may have unblocked a sibling; sweep
                        // again before parking.
                        continue;
                    }
                    if engine.aborted.load(Ordering::Relaxed) {
                        return Err(RunError::Aborted);
                    }
                    if engine.wakeups[gi].wait_for(&mut st, timeout).timed_out() {
                        let err = RunError::Timeout {
                            scope: format!("group {gi}"),
                        };
                        engine.aborted.store(true, Ordering::Relaxed);
                        if st.failure.is_none() {
                            st.failure = Some(err.clone());
                        }
                        for w in &engine.wakeups {
                            w.notify_all();
                        }
                        return Err(err);
                    }
                }
            })
            .expect("spawn batch group thread");
        handles.push(h);
    }
    let mut total = RunStats {
        rounds: 0,
        messages: 0,
        processes: n,
        steps: 0,
    };
    let mut first_err = None;
    for (gi, h) in handles.into_iter().enumerate() {
        match h.join().map_err(|_| RunError::Panicked {
            scope: format!("group {gi}"),
        }) {
            Ok(Ok(s)) => {
                total.messages += s.messages;
                total.steps += s.steps;
            }
            Ok(Err(e)) | Err(e) => first_err = first_err.or(Some(e)),
        }
    }
    if let Some(e) = first_err {
        // The root cause, not whichever group's abort joined first.
        let st = engine.state.lock();
        return Err(st.failure.clone().unwrap_or(e));
    }
    Ok((total, outputs))
}

/// A simple block partition: processes in index order, `k` groups of
/// near-equal size.
pub fn block_partition(n_procs: usize, k: usize) -> Vec<Vec<usize>> {
    let k = k.max(1).min(n_procs.max(1));
    let mut groups = vec![Vec::new(); k];
    for p in 0..n_procs {
        groups[p * k / n_procs.max(1)].push(p);
    }
    groups.retain(|g| !g.is_empty());
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::SinkBuffer;
    use crate::procir::ProcIrBuilder;

    const T: Duration = Duration::from_secs(10);

    fn pipeline(len: usize, values: Vec<Value>) -> (Vec<Box<dyn Process>>, SinkBuffer) {
        let n = values.len();
        let mut b = ProcIrBuilder::new();
        b.source(0, &values, "src");
        for i in 0..len {
            b.relay(i, i + 1, n, format!("r{i}"));
        }
        b.sink(len, n, "sink");
        let inst = b.build(None).instantiate();
        let buf = inst.outputs[0].clone();
        (inst.procs, buf)
    }

    #[test]
    fn single_group_runs_everything_on_one_thread() {
        let (procs, buf) = pipeline(5, vec![1, 2, 3]);
        let n = procs.len();
        let stats = run_partitioned(procs, vec![(0..n).collect()], T).unwrap();
        assert_eq!(*buf.lock(), vec![1, 2, 3]);
        assert_eq!(stats.processes, n);
    }

    #[test]
    fn two_groups_split_mid_pipeline() {
        let (procs, buf) = pipeline(6, (0..10).collect());
        let n = procs.len();
        let groups = vec![(0..n / 2).collect(), (n / 2..n).collect()];
        run_partitioned(procs, groups, T).unwrap();
        assert_eq!(*buf.lock(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn block_partition_shapes() {
        assert_eq!(block_partition(10, 3).len(), 3);
        assert_eq!(block_partition(10, 3).concat().len(), 10);
        assert_eq!(block_partition(2, 8).len(), 2, "no empty groups");
        assert_eq!(block_partition(7, 1), vec![(0..7).collect::<Vec<_>>()]);
    }

    #[test]
    fn every_partition_of_a_diamond_works() {
        // Fan-out/fan-in across group boundaries in all placements.
        for k in 1..=4 {
            let mut b = ProcIrBuilder::new();
            b.source(0, &[5, 6], "sa");
            b.source(1, &[7, 8], "sb");
            b.relay(0, 2, 2, "ra");
            b.relay(1, 3, 2, "rb");
            b.sink(2, 2, "ka");
            b.sink(3, 2, "kb");
            let inst = b.build(None).instantiate();
            let buf = inst.outputs[0].clone();
            let groups = block_partition(inst.procs.len(), k);
            run_partitioned(inst.procs, groups, T).unwrap();
            assert_eq!(*buf.lock(), vec![5, 6], "k = {k}");
        }
    }

    #[test]
    fn yield_injection_perturbs_but_does_not_change_results() {
        for seed in [0u64, 5, 31] {
            let (procs, buf) = pipeline(4, (0..8).collect());
            let groups = block_partition(procs.len(), 3);
            let plan = YieldPlan {
                seed,
                yield_per_1024: 512,
            };
            run_partitioned_perturbed(procs, groups, T, Vec::new(), Some(plan)).unwrap();
            assert_eq!(*buf.lock(), (0..8).collect::<Vec<_>>(), "seed {seed}");
        }
    }

    #[test]
    fn batched_partitions_match_unbatched_for_all_worker_counts() {
        let build = || {
            let mut b = ProcIrBuilder::new();
            b.source(0, &(0..20).collect::<Vec<_>>(), "src");
            for i in 0..4 {
                b.relay(i, i + 1, 20, format!("r{i}"));
            }
            b.sink(4, 20, "sink");
            b.build(None)
        };
        let module = build();
        let inst = module.instantiate();
        let nprocs = inst.procs.len();
        let base = run_partitioned(inst.procs, block_partition(nprocs, 2), T).unwrap();
        let base_out = inst.outputs[0].lock().clone();

        let plan = crate::batch::analyze(&module);
        assert!(plan.batchable(), "{:?}", plan.reject_reason());
        for k in 1..=4 {
            let groups = block_partition(nprocs, k);
            let (stats, outs) = run_partitioned_batched(&module, &plan, groups, T).unwrap();
            assert_eq!(*outs[0].lock(), base_out, "k = {k}: store");
            assert_eq!(stats.messages, base.messages, "k = {k}: messages");
            assert_eq!(stats.steps, base.steps, "k = {k}: steps");
        }
    }

    #[test]
    fn batched_bad_partition_is_a_structured_error() {
        let mut b = ProcIrBuilder::new();
        b.source(0, &[1], "src");
        b.sink(0, 1, "sink");
        let module = b.build(None);
        let plan = crate::batch::analyze(&module);
        let err = run_partitioned_batched(&module, &plan, vec![vec![0]], T).unwrap_err();
        assert!(matches!(err, RunError::Partition { .. }), "{err}");
    }

    #[test]
    fn timeout_on_stuck_group() {
        let mut b = ProcIrBuilder::new();
        b.sink(9, 1, "lonely");
        let inst = b.build(None).instantiate();
        let err =
            run_partitioned(inst.procs, vec![vec![0]], Duration::from_millis(50)).unwrap_err();
        assert!(
            matches!(err, RunError::Timeout { .. } | RunError::Aborted),
            "{err}"
        );
    }

    #[test]
    fn bad_partitions_are_structured_errors() {
        let (procs, _) = pipeline(0, vec![1]);
        let err = run_partitioned(procs, vec![vec![0], vec![0, 1]], T).unwrap_err();
        let RunError::Partition { reason } = err else {
            panic!("expected partition error, got {err}");
        };
        assert!(reason.contains("two groups"), "{reason}");

        let (procs, _) = pipeline(0, vec![1]);
        let err = run_partitioned(procs, vec![vec![0]], T).unwrap_err();
        assert!(
            matches!(err, RunError::Partition { .. }),
            "uncovered process must be diagnosed: {err}"
        );
    }

    #[test]
    fn two_receivers_abort_with_diagnosis() {
        // Two sinks both claim the receive end of channel 0 with no sender
        // in the network, so both receives must park; whichever registers
        // second trips the violation, and the run reports it regardless of
        // which group observed the abort first.
        for k in 1..=2 {
            let mut b = ProcIrBuilder::new();
            b.sink(0, 2, "sink-a");
            b.sink(0, 2, "sink-b");
            let inst = b.build(None).instantiate();
            let groups = block_partition(inst.procs.len(), k);
            let err = run_partitioned(inst.procs, groups, T).unwrap_err();
            let RunError::Protocol(v) = err else {
                panic!("expected protocol violation, got {err} (k = {k})");
            };
            assert_eq!(v.chan, 0);
            assert_eq!(v.endpoint, "receiver");
            let mut pair = [v.first.as_str(), v.second.as_str()];
            pair.sort_unstable();
            assert_eq!(pair, ["sink-a", "sink-b"], "k = {k}");
        }
    }
}
