//! The persistent wave-worker pool.
//!
//! `run_wavefront`'s parallel mode used to open a fresh
//! `std::thread::scope` per run — fine for a one-shot CLI run, but the
//! multi-tenant service executes thousands of warm requests per second,
//! and OS thread spawn/join on every one of them dominated the parallel
//! path's cost. This module keeps one process-wide pool of workers
//! ([`WavePool::global`]) that every wavefront run shares; a run submits
//! its wave's chunk tasks as a *scope* and blocks until all of them
//! retire, recovering the exact join-barrier semantics of
//! `thread::scope` without the per-run spawn.
//!
//! Only `std::sync` primitives are used (no crossbeam in the tree): a
//! mutex-guarded injector queue with a condvar for the workers, and a
//! per-scope latch for the caller. Borrowed (non-`'static`) tasks are
//! transmuted to `'static` before they enter the queue — sound because
//! [`WavePool::scope`] does not return until the latch counts every
//! task done, so no borrow outlives the call (the same argument
//! `thread::scope` makes). A panicking task is caught, counted, and
//! re-raised in the submitting thread once the scope completes, again
//! matching the scoped-thread contract.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

type Task = Box<dyn FnOnce() + Send + 'static>;

struct Queue {
    tasks: VecDeque<Task>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    available: Condvar,
}

struct ScopeState {
    left: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

/// A fixed set of worker threads executing submitted task scopes. One
/// global instance serves every wavefront run; tests may build private
/// pools (dropped pools shut their workers down).
pub struct WavePool {
    shared: Arc<Shared>,
    workers: usize,
    /// Worker threads ever spawned by this pool — constant after
    /// construction; the warm-run regression pins exactly that.
    threads_spawned: AtomicU64,
    /// Tasks retired over the pool's lifetime.
    tasks_executed: Arc<AtomicU64>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WavePool {
    /// A pool with `workers` threads (at least one).
    pub fn new(workers: usize) -> WavePool {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                tasks: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
        });
        let tasks_executed = Arc::new(AtomicU64::new(0));
        let handles = (0..workers)
            .map(|i| {
                let shared = shared.clone();
                let done = tasks_executed.clone();
                std::thread::Builder::new()
                    .name(format!("wave-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &done))
                    .expect("spawn wave worker")
            })
            .collect();
        WavePool {
            shared,
            workers,
            threads_spawned: AtomicU64::new(workers as u64),
            tasks_executed,
            handles,
        }
    }

    /// The process-wide pool, sized to the machine, spawned on first
    /// use and kept for the life of the process.
    pub fn global() -> &'static WavePool {
        static GLOBAL: OnceLock<WavePool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            WavePool::new(
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1),
            )
        })
    }

    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Worker threads spawned over the pool's lifetime. For the global
    /// pool this is paid exactly once — repeated warm runs must not move
    /// it, which the wavefront regression test asserts.
    pub fn threads_spawned(&self) -> u64 {
        self.threads_spawned.load(Ordering::Relaxed)
    }

    /// Tasks retired over the pool's lifetime.
    pub fn tasks_executed(&self) -> u64 {
        self.tasks_executed.load(Ordering::Relaxed)
    }

    /// Run the borrowed tasks on the pool and block until all complete
    /// — the `thread::scope` replacement. Panics in tasks are re-raised
    /// here after the scope fully drains.
    pub fn scope<'s>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 's>>) {
        if tasks.is_empty() {
            return;
        }
        let latch = Arc::new((
            Mutex::new(ScopeState {
                left: tasks.len(),
                panic: None,
            }),
            Condvar::new(),
        ));
        {
            let mut q = self.shared.queue.lock().unwrap();
            for task in tasks {
                // SAFETY: the wait below blocks this call until the
                // latch has counted every task done, so no borrow in
                // `task` outlives the scope (see module docs).
                let task: Task = unsafe {
                    std::mem::transmute::<
                        Box<dyn FnOnce() + Send + 's>,
                        Box<dyn FnOnce() + Send + 'static>,
                    >(task)
                };
                let latch = latch.clone();
                q.tasks.push_back(Box::new(move || {
                    let result = catch_unwind(AssertUnwindSafe(task));
                    let (state, cv) = &*latch;
                    let mut s = state.lock().unwrap();
                    s.left -= 1;
                    if let Err(p) = result {
                        s.panic.get_or_insert(p);
                    }
                    if s.left == 0 {
                        cv.notify_all();
                    }
                }));
            }
            self.shared.available.notify_all();
        }
        let (state, cv) = &*latch;
        let mut s = state.lock().unwrap();
        while s.left > 0 {
            s = cv.wait(s).unwrap();
        }
        if let Some(p) = s.panic.take() {
            drop(s);
            resume_unwind(p);
        }
    }
}

impl Drop for WavePool {
    fn drop(&mut self) {
        {
            let mut q = self.shared.queue.lock().unwrap();
            q.shutdown = true;
        }
        self.shared.available.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, done: &AtomicU64) {
    loop {
        let task = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(t) = q.tasks.pop_front() {
                    break t;
                }
                if q.shutdown {
                    return;
                }
                q = shared.available.wait(q).unwrap();
            }
        };
        task();
        done.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn scope_runs_borrowed_tasks_to_completion() {
        let pool = WavePool::new(4);
        let mut cells = [0u64; 16];
        let hits = AtomicUsize::new(0);
        {
            let hits = &hits;
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = cells
                .iter_mut()
                .map(|c| {
                    Box::new(move || {
                        *c += 7;
                        hits.fetch_add(1, Ordering::Relaxed);
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.scope(tasks);
        }
        assert_eq!(hits.load(Ordering::Relaxed), 16);
        assert!(cells.iter().all(|&c| c == 7));
        assert_eq!(pool.tasks_executed(), 16);
        assert_eq!(pool.threads_spawned(), 4);
    }

    #[test]
    fn scopes_reuse_the_same_workers() {
        let pool = WavePool::new(2);
        for _ in 0..8 {
            let mut acc = 0u64;
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> =
                vec![Box::new(|| acc = 1) as Box<dyn FnOnce() + Send + '_>];
            pool.scope(tasks);
            assert_eq!(acc, 1);
        }
        assert_eq!(pool.threads_spawned(), 2, "no per-scope spawn");
        assert_eq!(pool.tasks_executed(), 8);
    }

    #[test]
    fn a_panicking_task_is_reraised_after_the_scope_drains() {
        let pool = WavePool::new(2);
        let err = catch_unwind(AssertUnwindSafe(|| {
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = vec![
                Box::new(|| panic!("lane exploded")) as Box<dyn FnOnce() + Send + '_>,
                Box::new(|| ()) as Box<dyn FnOnce() + Send + '_>,
            ];
            pool.scope(tasks);
        }));
        let msg = err.unwrap_err();
        let msg = msg.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(msg.contains("lane exploded"), "{msg:?}");
        // The pool survives the panic and keeps serving scopes.
        let mut ok = false;
        pool.scope(vec![Box::new(|| ok = true) as Box<dyn FnOnce() + Send + '_>]);
        assert!(ok);
    }
}
