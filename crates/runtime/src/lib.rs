//! # systolic-runtime
//!
//! The distributed-memory multiprocessor substrate (the paper's target
//! machine model, Sec. 4, simulated): asynchronously composed sequential
//! processes, synchronous point-to-point channels, `par` communication
//! sets, host-side sources and sinks.
//!
//! - [`process`] — the [`Process`] coroutine trait and the channel
//!   vocabulary ([`CommReq`], [`ChanId`], [`Value`]);
//! - [`procir`] — the flat process bytecode ([`ProcIrModule`]) that every
//!   elaborated process lowers to, and the generic VM ([`ProcVm`]) that
//!   interprets it;
//! - [`batch`] — the steady-state batching analysis ([`analyze`]) and
//!   per-channel [`Ring`] buffers behind the macro-stepping fast path of
//!   all three executors (see `docs/scheduler.md`);
//! - [`coop`] — the deterministic cooperative scheduler with rendezvous
//!   rounds (the virtual systolic clock), exact deadlock detection, and a
//!   buffered-channel ablation mode;
//! - [`threaded`] — the OS-thread executor with a blocking rendezvous
//!   engine for wall-clock parallel measurements;
//! - [`partition`] — the Sec. 8 partitioning refinement: many virtual
//!   processes multiplexed per worker thread;
//! - [`record`] — the observability layer: the [`Recorder`] event sink
//!   threaded through the VM and all three executors, with metrics
//!   aggregation ([`MetricsRecorder`]) and Chrome-trace export
//!   ([`PerfettoRecorder`]); zero cost when no recorder is attached.
//! - [`wavefront`] — the fourth executor: SCC-condensed, longest-path
//!   staged chunk sweeps over the batch rings ([`WavefrontPlan`]), with
//!   an optional pool-parallel mode (see `docs/wavefront.md`).
//! - [`kernel`] — compiled compute kernels: the typed straight-line
//!   form of the basic statement ([`Kernel`]) and the struct-of-arrays
//!   wave batch executor behind `--kernel auto` (see `docs/kernels.md`).
//! - [`wavepool`] — the persistent worker pool the wavefront executor's
//!   parallel mode shares across runs ([`WavePool`]).

pub mod batch;
pub mod coop;
pub mod kernel;
pub mod opt;
pub mod partition;
pub mod process;
pub mod procir;
pub mod record;
pub mod schedule;
pub mod threaded;
pub mod wavefront;
pub mod wavepool;

pub use batch::{
    analyze, analyze_with_caps, channel_diagnostics, BatchMode, BatchPlan, Ring,
    DEFAULT_BATCH_WIDTH,
};
pub use coop::{
    run_coop_batched, ChannelPolicy, Deadlock, Network, ProtocolViolation, RunError, RunStats,
    TraceEvent,
};
pub use opt::{optimize, ChainRecord, OptMode, OptReport, OptimizedModule};
pub use partition::{
    block_partition, run_partitioned, run_partitioned_batched, run_partitioned_perturbed,
    run_partitioned_recorded,
};
pub use process::{sink_buffer, ChanId, CommReq, Process, SinkBuffer, Value};
pub use procir::{
    ComputeBody, Instance, MovingLink, ProcId, ProcIrBuilder, ProcIrModule, ProcOp, ProcRecord,
    ProcVm,
};
pub use record::{
    canonicalize_transfers, first_divergence, shared, ChanMetrics, EventLogRecorder,
    MetricsRecorder, MetricsReport, OpKind, PerfettoEvent, PerfettoRecorder, Phase, ProcMetrics,
    Recorder, SharedRecorder, Transfer, QUEUE_ENDPOINT,
};
pub use schedule::{FifoPolicy, Pcg32, SchedulePolicy, YieldInjector, YieldPlan, STARVATION_LIMIT};
pub use threaded::{
    run_threaded, run_threaded_batched, run_threaded_perturbed, run_threaded_recorded,
};
pub use kernel::{
    analyze_kernels, Kernel, KernelMode, KernelOp, KernelPlan, KernelReport,
};
pub use wavefront::{
    analyze_wavefront, run_wavefront, WavefrontMode, WavefrontPlan, WAVEFRONT_RING_CAP,
};
pub use wavepool::WavePool;
