//! Randomized stress tests: the three executors (cooperative, threaded,
//! partitioned) must agree on arbitrary relay networks.

use proptest::prelude::*;
use std::time::Duration;
use systolic_runtime::{
    block_partition, run_partitioned, run_threaded, sink_buffer, ChannelPolicy, Network, Process,
    RelayProc, SinkBuffer, SinkProc, SourceProc,
};

/// Build `k` independent pipelines with the given relay counts and
/// payload lengths. Returns (processes, sink buffers, expected values).
#[allow(clippy::type_complexity)]
fn build(specs: &[(usize, usize)]) -> (Vec<Box<dyn Process>>, Vec<SinkBuffer>, Vec<Vec<i64>>) {
    let mut procs: Vec<Box<dyn Process>> = Vec::new();
    let mut bufs = Vec::new();
    let mut expected = Vec::new();
    let mut chan = 0usize;
    for (pipe, &(relays, len)) in specs.iter().enumerate() {
        let values: Vec<i64> = (0..len as i64).map(|v| v * 7 + pipe as i64).collect();
        procs.push(Box::new(SourceProc::new(
            chan,
            values.clone(),
            format!("src{pipe}"),
        )));
        for r in 0..relays {
            procs.push(Box::new(RelayProc::new(
                chan,
                chan + 1,
                len,
                format!("r{pipe}.{r}"),
            )));
            chan += 1;
        }
        let buf = sink_buffer();
        procs.push(Box::new(SinkProc::new(
            chan,
            len,
            buf.clone(),
            format!("sink{pipe}"),
        )));
        chan += 1;
        bufs.push(buf);
        expected.push(values);
    }
    (procs, bufs, expected)
}

/// Case count: default, overridable via PROPTEST_CASES for deep fuzzing.
fn env_cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: env_cases(32), ..ProptestConfig::default() })]

    #[test]
    fn executors_agree_on_random_pipelines(
        specs in proptest::collection::vec((0usize..6, 0usize..12), 1..6),
        workers in 1usize..5,
    ) {
        // Cooperative.
        let (procs, bufs, expected) = build(&specs);
        let mut net = Network::new(ChannelPolicy::Rendezvous);
        for p in procs {
            net.add(p);
        }
        net.run().unwrap();
        for (b, e) in bufs.iter().zip(&expected) {
            prop_assert_eq!(&*b.lock(), e);
        }

        // Threaded.
        let (procs, bufs, expected) = build(&specs);
        run_threaded(procs, Duration::from_secs(20)).unwrap();
        for (b, e) in bufs.iter().zip(&expected) {
            prop_assert_eq!(&*b.lock(), e);
        }

        // Partitioned.
        let (procs, bufs, expected) = build(&specs);
        let groups = block_partition(procs.len(), workers);
        run_partitioned(procs, groups, Duration::from_secs(20)).unwrap();
        for (b, e) in bufs.iter().zip(&expected) {
            prop_assert_eq!(&*b.lock(), e);
        }
    }

    #[test]
    fn buffered_policy_agrees_with_rendezvous(
        specs in proptest::collection::vec((0usize..5, 1usize..10), 1..4),
        cap in 1usize..5,
    ) {
        let (procs, bufs, expected) = build(&specs);
        let mut net = Network::new(ChannelPolicy::Buffered(cap));
        for p in procs {
            net.add(p);
        }
        net.run().unwrap();
        for (b, e) in bufs.iter().zip(&expected) {
            prop_assert_eq!(&*b.lock(), e);
        }
    }

    /// Message conservation: total messages equals sum over pipes of
    /// values x hops under rendezvous.
    #[test]
    fn message_conservation(
        specs in proptest::collection::vec((0usize..5, 0usize..10), 1..5),
    ) {
        let (procs, _bufs, _expected) = build(&specs);
        let mut net = Network::new(ChannelPolicy::Rendezvous);
        for p in procs {
            net.add(p);
        }
        let stats = net.run().unwrap();
        let expect: u64 = specs.iter().map(|&(r, l)| ((r + 1) * l) as u64).sum();
        prop_assert_eq!(stats.messages, expect);
    }
}
