//! Randomized stress tests: the three executors (cooperative, threaded,
//! partitioned) must agree on arbitrary relay networks lowered to ProcIR.

use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;
use systolic_runtime::{
    block_partition, run_partitioned, run_threaded, ChannelPolicy, Network, ProcIrBuilder,
    ProcIrModule,
};

/// Build `k` independent pipelines with the given relay counts and
/// payload lengths as one ProcIR module. Returns (module, expected values
/// per pipeline, in sink order).
fn build(specs: &[(usize, usize)]) -> (Arc<ProcIrModule>, Vec<Vec<i64>>) {
    let mut b = ProcIrBuilder::new();
    let mut expected = Vec::new();
    let mut chan = 0usize;
    for (pipe, &(relays, len)) in specs.iter().enumerate() {
        let values: Vec<i64> = (0..len as i64).map(|v| v * 7 + pipe as i64).collect();
        b.source(chan, &values, format!("src{pipe}"));
        for r in 0..relays {
            b.relay(chan, chan + 1, len, format!("r{pipe}.{r}"));
            chan += 1;
        }
        b.sink(chan, len, format!("sink{pipe}"));
        chan += 1;
        expected.push(values);
    }
    (b.build(None), expected)
}

/// Case count: default, overridable via PROPTEST_CASES for deep fuzzing.
fn env_cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: env_cases(32), ..ProptestConfig::default() })]

    #[test]
    fn executors_agree_on_random_pipelines(
        specs in proptest::collection::vec((0usize..6, 0usize..12), 1..6),
        workers in 1usize..5,
    ) {
        // One elaboration, one module: each executor re-instantiates it.
        let (module, expected) = build(&specs);

        // Cooperative.
        let inst = module.instantiate();
        let mut net = Network::new(ChannelPolicy::Rendezvous);
        for p in inst.procs {
            net.add(p);
        }
        net.run().unwrap();
        for (b, e) in inst.outputs.iter().zip(&expected) {
            prop_assert_eq!(&*b.lock(), e);
        }

        // Threaded.
        let inst = module.instantiate();
        run_threaded(inst.procs, Duration::from_secs(20)).unwrap();
        for (b, e) in inst.outputs.iter().zip(&expected) {
            prop_assert_eq!(&*b.lock(), e);
        }

        // Partitioned.
        let inst = module.instantiate();
        let groups = block_partition(inst.procs.len(), workers);
        run_partitioned(inst.procs, groups, Duration::from_secs(20)).unwrap();
        for (b, e) in inst.outputs.iter().zip(&expected) {
            prop_assert_eq!(&*b.lock(), e);
        }
    }

    #[test]
    fn buffered_policy_agrees_with_rendezvous(
        specs in proptest::collection::vec((0usize..5, 1usize..10), 1..4),
        cap in 1usize..5,
    ) {
        let (module, expected) = build(&specs);
        let inst = module.instantiate();
        let mut net = Network::new(ChannelPolicy::Buffered(cap));
        for p in inst.procs {
            net.add(p);
        }
        net.run().unwrap();
        for (b, e) in inst.outputs.iter().zip(&expected) {
            prop_assert_eq!(&*b.lock(), e);
        }
    }

    /// Message conservation: total messages equals sum over pipes of
    /// values x hops under rendezvous.
    #[test]
    fn message_conservation(
        specs in proptest::collection::vec((0usize..5, 0usize..10), 1..5),
    ) {
        let (module, _expected) = build(&specs);
        let mut net = Network::new(ChannelPolicy::Rendezvous);
        for p in module.instantiate().procs {
            net.add(p);
        }
        let stats = net.run().unwrap();
        let expect: u64 = specs.iter().map(|&(r, l)| ((r + 1) * l) as u64).sum();
        prop_assert_eq!(stats.messages, expect);
    }
}
