//! Derivation of the temporal distribution `step`.
//!
//! The paper assumes the systolic array is produced by an upstream design
//! method ("several automatic systems for deriving systolic arrays
//! guarantee the optimality of step", Sec. 3.2, citing [5, 10, 11, 22]).
//! Those systems are not available, so this module provides the equivalent
//! substrate: an exhaustive search over small-coefficient linear schedules
//! that (a) respect every data dependence of the source program and
//! (b) minimize the makespan at a reference problem size.

use crate::array::SystolicArray;
use systolic_ir::SourceProgram;
use systolic_math::{point, Env};

/// A candidate schedule with its quality metrics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScheduleCandidate {
    /// Step coefficients, length `r`.
    pub step: Vec<i64>,
    /// Makespan at the reference size (smaller is better).
    pub makespan: i64,
    /// Sum of |coefficients| (tie-break: cheaper control).
    pub weight: i64,
}

/// The dependence directions a schedule must respect, extracted from the
/// source program: for each *written* stream the forward-oriented reuse
/// direction (strict), and for each read-only stream the reuse direction
/// (non-zero step required, either sign).
#[derive(Clone, Debug)]
pub struct Dependences {
    /// `step . d > 0` required.
    pub strict: Vec<Vec<i64>>,
    /// `step . d != 0` required.
    pub nonzero: Vec<Vec<i64>>,
}

/// Extract dependence directions from the program (Sec. 3.2's requirement
/// that `step` "respects the data dependences in the source program").
pub fn dependences(program: &SourceProgram) -> Dependences {
    let written = program.body.streams_written();
    let mut strict = Vec::new();
    let mut nonzero = Vec::new();
    for s in program.stream_ids() {
        let g = program
            .stream(s)
            .index_map
            .null_generator()
            .expect("rank r-1 index map");
        if written.contains(&s) {
            strict.push(orient_forward(&g, program));
        } else {
            nonzero.push(g);
        }
    }
    Dependences { strict, nonzero }
}

fn orient_forward(g: &[i64], program: &SourceProgram) -> Vec<i64> {
    for (i, &gi) in g.iter().enumerate() {
        if gi != 0 {
            return if gi.signum() == program.loops[i].step.signum() {
                g.to_vec()
            } else {
                point::scale(-1, g)
            };
        }
    }
    g.to_vec()
}

/// Is `step` valid for the dependences?
pub fn is_valid_step(step: &[i64], deps: &Dependences) -> bool {
    deps.strict.iter().all(|d| point::dot(step, d) > 0)
        && deps.nonzero.iter().all(|d| point::dot(step, d) != 0)
}

/// Makespan of a bare step vector at a concrete size (max - min + 1 over
/// the rectangular index space).
pub fn step_makespan(step: &[i64], program: &SourceProgram, env: &Env) -> i64 {
    let bounds = program.concrete_bounds(env);
    let (mut lo, mut hi) = (0i64, 0i64);
    for (i, &(lb, rb)) in bounds.iter().enumerate() {
        let (a, b) = (step[i] * lb, step[i] * rb);
        lo += a.min(b);
        hi += a.max(b);
    }
    hi - lo + 1
}

/// Exhaustively enumerate valid schedules with coefficients in
/// `[-bound, bound]`, ranked by (makespan, weight, lexicographic). The
/// reference size binds every problem-size symbol to `sample_size`.
pub fn enumerate_schedules(
    program: &SourceProgram,
    bound: i64,
    sample_size: i64,
) -> Vec<ScheduleCandidate> {
    let deps = dependences(program);
    let r = program.r();
    let mut env = Env::new();
    for &s in &program.sizes {
        env.bind(s, sample_size);
    }
    let mut out = Vec::new();
    let mut step = vec![-bound; r];
    loop {
        if is_valid_step(&step, &deps) {
            out.push(ScheduleCandidate {
                makespan: step_makespan(&step, program, &env),
                weight: step.iter().map(|c| c.abs()).sum(),
                step: step.clone(),
            });
        }
        // Odometer over [-bound, bound]^r.
        let mut d = r;
        loop {
            if d == 0 {
                out.sort_by(|a, b| {
                    (a.makespan, a.weight, &a.step).cmp(&(b.makespan, b.weight, &b.step))
                });
                return out;
            }
            d -= 1;
            step[d] += 1;
            if step[d] <= bound {
                break;
            }
            step[d] = -bound;
        }
    }
}

/// The best schedule (minimal makespan, then weight), if any exists within
/// the coefficient bound.
pub fn optimal_step(program: &SourceProgram, bound: i64, sample_size: i64) -> Option<Vec<i64>> {
    enumerate_schedules(program, bound, sample_size)
        .into_iter()
        .next()
        .map(|c| c.step)
}

/// Verify a full array pairs a valid schedule with its place function —
/// convenience wrapper over [`SystolicArray::validate`].
pub fn check(program: &SourceProgram, array: &SystolicArray) -> bool {
    array.validate(program).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_ir::gallery;

    #[test]
    fn polyprod_dependences() {
        let p = gallery::polynomial_product();
        let d = dependences(&p);
        // c written: forward (1, -1). a, b read-only.
        assert_eq!(d.strict, vec![vec![1, -1]]);
        assert_eq!(d.nonzero.len(), 2);
    }

    #[test]
    fn paper_steps_are_valid() {
        let p = gallery::polynomial_product();
        let d = dependences(&p);
        assert!(is_valid_step(&[2, 1], &d), "paper's step 2i + j");
        assert!(is_valid_step(&[3, 1], &d), "slower but valid schedule");
        assert!(!is_valid_step(&[1, 1], &d), "step constant along c's reuse");
        // The mirror (1, 2) reverses the imperative accumulation chain of
        // c (reads of c[k] happen in order of increasing i): invalid.
        assert!(!is_valid_step(&[1, 2], &d));
        let mm = gallery::matrix_product();
        let d = dependences(&mm);
        assert!(is_valid_step(&[1, 1, 1], &d), "paper's step i + j + k");
        assert!(!is_valid_step(&[1, 1, 0], &d), "no time along k");
    }

    #[test]
    fn optimal_matches_paper_makespan() {
        // For polynomial product the minimal linear makespan with valid
        // scheduling is 3n + 1 (e.g. 2i + j); the search must find a
        // schedule at least as good as the paper's.
        let p = gallery::polynomial_product();
        let best = optimal_step(&p, 2, 8).unwrap();
        let mut env = Env::new();
        env.bind(p.sizes[0], 8);
        assert!(step_makespan(&best, &p, &env) <= step_makespan(&[2, 1], &p, &env));
        let d = dependences(&p);
        assert!(is_valid_step(&best, &d));
    }

    #[test]
    fn optimal_matmul_is_the_paper_schedule() {
        let mm = gallery::matrix_product();
        let best = optimal_step(&mm, 1, 6).unwrap();
        // i + j + k (or a signed variant of the same makespan 3n + 1).
        let mut env = Env::new();
        env.bind(mm.sizes[0], 6);
        assert_eq!(step_makespan(&best, &mm, &env), 19, "3n + 1 at n = 6");
    }

    #[test]
    fn enumeration_is_sorted_and_valid() {
        let p = gallery::polynomial_product();
        let all = enumerate_schedules(&p, 2, 5);
        assert!(!all.is_empty());
        let d = dependences(&p);
        assert!(all.windows(2).all(|w| w[0].makespan <= w[1].makespan));
        assert!(all.iter().all(|c| is_valid_step(&c.step, &d)));
    }

    #[test]
    fn reversed_loop_orients_dependences() {
        let mut p = gallery::polynomial_product();
        p.loops[0].step = -1; // i runs n..0
        let d = dependences(&p);
        // c's reuse (1,-1) now forward-oriented as (-1, 1).
        assert_eq!(d.strict, vec![vec![-1, 1]]);
        assert!(is_valid_step(&[-2, 1], &d));
        assert!(!is_valid_step(&[2, 1], &d));
    }
}
