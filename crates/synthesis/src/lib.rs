//! # systolic-synthesis
//!
//! Derivation of systolic arrays from source programs — the substrate the
//! paper assumes ("there are several implemented methods for the systematic
//! derivation of systolic arrays [5, 10, 11, 22]", Sec. 1). Given a valid
//! source program this crate finds linear `step` schedules respecting the
//! data dependences, constructs compatible `place` functions from
//! projection directions, and validates complete arrays against Sec. 3.2's
//! conditions (eq. 1, well-defined neighbour-bounded flows).
//!
//! - [`array`] — the [`SystolicArray`] type, `flow`, validity, makespan;
//! - [`schedule`] — dependence extraction and optimal-step search;
//! - [`placement`] — place construction, enumeration, and
//!   [`placement::paper`] with the four appendix designs.

pub mod array;
pub mod explore;
pub mod placement;
pub mod schedule;

pub use array::{ArrayError, SystolicArray};
pub use explore::{explore, Design};
pub use placement::{enumerate_places, place_from_projection};
pub use schedule::{dependences, enumerate_schedules, optimal_step};

/// Derive a complete systolic array automatically: pick the optimal step
/// within the coefficient bound, then the first valid place (preferring
/// simple places — single-axis projections — as parallelizing compilers
/// do, Sec. 7.2.3).
pub fn derive_array(
    program: &systolic_ir::SourceProgram,
    bound: i64,
    sample_size: i64,
) -> Option<SystolicArray> {
    let step = optimal_step(program, bound, sample_size)?;
    let mut arrays = enumerate_places(program, &step);
    if arrays.is_empty() {
        return None;
    }
    // Prefer a simple place: projection direction with a single non-zero
    // component.
    arrays.sort_by_key(|a| {
        a.projection_direction()
            .map(|u| u.iter().filter(|&&x| x != 0).count())
            .unwrap_or(usize::MAX)
    });
    arrays.into_iter().next()
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_ir::gallery;
    use systolic_math::Env;

    #[test]
    fn fully_automatic_derivation() {
        for p in gallery::all() {
            let arr =
                derive_array(&p, 2, 6).unwrap_or_else(|| panic!("{}: no array found", p.name));
            arr.validate(&p).unwrap();
            let mut env = Env::new();
            for &s in &p.sizes {
                env.bind(s, 6);
            }
            // Linear-in-n makespan: far below the sequential op count.
            let seq_ops = p.index_space_size(&env) as i64;
            assert!(arr.makespan(&p, &env) < seq_ops, "{}", p.name);
        }
    }
}
