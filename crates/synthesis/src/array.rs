//! The systolic array specification (Sec. 3.2): the two linear
//! distribution functions `step` and `place`, and the derived `flow`.

use systolic_ir::{SourceProgram, StreamId};
use systolic_math::{point, Matrix, RatPoint, Rational};

/// A linear systolic array: `step :: Op -> Z` (temporal distribution) and
/// `place :: Op -> Z^{r-1}` (spatial distribution), both linear and
/// constant-free, as required in Sec. 3.2.
#[derive(Clone, Debug)]
pub struct SystolicArray {
    /// Coefficients of the step functional, length `r`.
    pub step: Vec<i64>,
    /// The place matrix, `(r-1) x r`.
    pub place: Matrix,
}

/// Why a `(step, place)` pair is not a valid systolic array for a program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArrayError {
    /// `place` does not have rank `r-1`.
    PlaceRankDeficient { rank: usize, expected: usize },
    /// `step` and `place` are inconsistent: a non-trivial projection
    /// direction is mapped to step 0 (violates eq. 1 / Theorem 3).
    StepPlaceInconsistent,
    /// Step does not respect the ordering of accesses to a written stream:
    /// the dependence along the stream's reuse direction gets a
    /// non-positive step increase.
    DependenceViolated { stream: usize },
    /// A read-only stream's reuse direction is mapped to step 0 (would be a
    /// broadcast, which systolic arrays do not allow).
    BroadcastRequired { stream: usize },
    /// A stream's flow violates the neighbouring-connection restriction
    /// (no `m > 0` with `nb(m * flow)`).
    FlowNotNeighbouring { stream: usize, flow: Vec<Rational> },
    /// The projection direction is not a unit-component vector, so the
    /// derived `increment` leaves {-1, 0, +1}^r (restriction A.2).
    IncrementNotUnit { increment: Vec<i64> },
}

impl SystolicArray {
    pub fn new(step: Vec<i64>, place: Matrix) -> SystolicArray {
        assert_eq!(step.len(), place.cols(), "step/place arity mismatch");
        SystolicArray { step, place }
    }

    /// The nesting depth `r` this array serves.
    pub fn r(&self) -> usize {
        self.step.len()
    }

    /// `step.x` for a concrete index point.
    pub fn step_at(&self, x: &[i64]) -> i64 {
        point::dot(&self.step, x)
    }

    /// `place.x` for a concrete index point.
    pub fn place_at(&self, x: &[i64]) -> Vec<i64> {
        self.place.apply_int(x)
    }

    /// The primitive generator of `null.place` (Theorems 1–2), oriented so
    /// that `step` increases along it (Theorem 6's normalization, used to
    /// derive `increment` in Sec. 7.2.1).
    pub fn projection_direction(&self) -> Option<Vec<i64>> {
        let g = self.place.null_generator()?;
        let s = point::dot(&self.step, &g);
        if s == 0 {
            return None; // step/place inconsistent (Theorem 3).
        }
        Some(if s > 0 { g } else { point::scale(-1, &g) })
    }

    /// `flow.s` (Sec. 3.2 / Theorem 10): pick the reuse direction of the
    /// stream (the null generator of its index map) and form
    /// `place.d / step.d`. Stationary streams get the zero vector.
    pub fn flow(&self, program: &SourceProgram, s: StreamId) -> RatPoint {
        let m = &program.stream(s).index_map;
        let d = m
            .null_generator()
            .expect("index map must have a 1-dimensional null space (rank r-1)");
        let num = self.place.apply(&d);
        let den = point::dot(&self.step, &d);
        assert!(
            den != 0,
            "flow undefined: step constant along stream reuse direction"
        );
        point::rat_scale(Rational::new(1, den), &num)
    }

    /// Is the stream stationary under this array (zero flow)?
    pub fn is_stationary(&self, program: &SourceProgram, s: StreamId) -> bool {
        point::rat_is_zero(&self.flow(program, s))
    }

    /// Full validity check of the array against a source program
    /// (Sec. 3.2's eq. 1, the dependence order, the neighbouring-connection
    /// requirement, and restriction A.2 on `increment`).
    pub fn validate(&self, program: &SourceProgram) -> Result<(), ArrayError> {
        let r = self.r();
        if self.place.rank() != r - 1 {
            return Err(ArrayError::PlaceRankDeficient {
                rank: self.place.rank(),
                expected: r - 1,
            });
        }
        let Some(dir) = self.projection_direction() else {
            return Err(ArrayError::StepPlaceInconsistent);
        };
        if !point::nb(&dir) {
            // increment = unit along dir; primitive generator already.
            return Err(ArrayError::IncrementNotUnit { increment: dir });
        }

        let written = program.body.streams_written();
        for s in program.stream_ids() {
            let m = &program.stream(s).index_map;
            let g = m
                .null_generator()
                .expect("index maps validated to rank r-1 before array checks");
            let sg = point::dot(&self.step, &g);
            if written.contains(&s) {
                // Orient g forward in sequential execution order and demand
                // the step increases along it (true dependence).
                let fwd = orient_lex_forward(&g, program);
                if point::dot(&self.step, &fwd) <= 0 {
                    return Err(ArrayError::DependenceViolated { stream: s.0 });
                }
            } else if sg == 0 {
                return Err(ArrayError::BroadcastRequired { stream: s.0 });
            }
            let flow = self.flow(program, s);
            if point::neighbour_multiple(&flow).is_none() {
                return Err(ArrayError::FlowNotNeighbouring { stream: s.0, flow });
            }
        }
        Ok(())
    }

    /// The makespan (number of distinct step values) at a concrete problem
    /// size: `max step - min step + 1` over the index-space vertices.
    pub fn makespan(&self, program: &SourceProgram, env: &systolic_math::Env) -> i64 {
        let bounds = program.concrete_bounds(env);
        let (mut lo, mut hi) = (0i64, 0i64);
        for (i, &(lb, rb)) in bounds.iter().enumerate() {
            let c = self.step[i];
            let (a, b) = (c * lb, c * rb);
            lo += a.min(b);
            hi += a.max(b);
        }
        hi - lo + 1
    }
}

/// Orient a reuse direction forward in sequential execution order: the
/// first non-zero component must agree with the direction its loop runs
/// (lexicographic order under the loop steps).
fn orient_lex_forward(g: &[i64], program: &SourceProgram) -> Vec<i64> {
    for (i, &gi) in g.iter().enumerate() {
        if gi != 0 {
            let dir = program.loops[i].step;
            return if gi.signum() == dir.signum() {
                g.to_vec()
            } else {
                point::scale(-1, g)
            };
        }
    }
    g.to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_ir::gallery;
    use systolic_math::Env;

    fn polyprod_d1() -> (systolic_ir::SourceProgram, SystolicArray) {
        let p = gallery::polynomial_product();
        let arr = SystolicArray::new(vec![2, 1], Matrix::from_rows(&[vec![1, 0]]));
        (p, arr)
    }

    #[test]
    fn paper_flows_polyprod_place_i() {
        // Appendix D.1: flow.a = 0, flow.b = 1/2, flow.c = 1.
        let (p, arr) = polyprod_d1();
        arr.validate(&p).unwrap();
        assert_eq!(arr.flow(&p, StreamId(0)), vec![Rational::ZERO]);
        assert_eq!(arr.flow(&p, StreamId(1)), vec![Rational::new(1, 2)]);
        assert_eq!(arr.flow(&p, StreamId(2)), vec![Rational::ONE]);
        assert!(arr.is_stationary(&p, StreamId(0)));
        assert!(!arr.is_stationary(&p, StreamId(1)));
    }

    #[test]
    fn paper_flows_polyprod_place_i_plus_j() {
        // Appendix D.2: flow.a = 1/2, flow.b = 1/2... actually the paper
        // derives flow.a = 1/2? Check: place = i+j, step = 2i+j.
        // null M.a = (0,1): place/step = 1/1 = 1. null M.b = (1,0): 1/2.
        // null M.c = (1,-1): 0/1 = 0 -> stationary.
        let p = gallery::polynomial_product();
        let arr = SystolicArray::new(vec![2, 1], Matrix::from_rows(&[vec![1, 1]]));
        arr.validate(&p).unwrap();
        assert_eq!(arr.flow(&p, StreamId(0)), vec![Rational::ONE]);
        assert_eq!(arr.flow(&p, StreamId(1)), vec![Rational::new(1, 2)]);
        assert_eq!(arr.flow(&p, StreamId(2)), vec![Rational::ZERO]);
    }

    #[test]
    fn paper_flows_matmul_simple() {
        // Appendix E.1: flow.a = (0,1), flow.b = (1,0), flow.c = (0,0).
        let p = gallery::matrix_product();
        let arr = SystolicArray::new(
            vec![1, 1, 1],
            Matrix::from_rows(&[vec![1, 0, 0], vec![0, 1, 0]]),
        );
        arr.validate(&p).unwrap();
        let f = |k| arr.flow(&p, StreamId(k));
        assert_eq!(f(0), vec![Rational::ZERO, Rational::ONE]);
        assert_eq!(f(1), vec![Rational::ONE, Rational::ZERO]);
        assert_eq!(f(2), vec![Rational::ZERO, Rational::ZERO]);
    }

    #[test]
    fn paper_flows_matmul_kung_leiserson() {
        // Appendix E.2: flow.a = (0,1), flow.b = (1,0), flow.c = (-1,-1).
        let p = gallery::matrix_product();
        let arr = SystolicArray::new(
            vec![1, 1, 1],
            Matrix::from_rows(&[vec![1, 0, -1], vec![0, 1, -1]]),
        );
        arr.validate(&p).unwrap();
        let f = |k| arr.flow(&p, StreamId(k));
        assert_eq!(f(0), vec![Rational::ZERO, Rational::ONE]);
        assert_eq!(f(1), vec![Rational::ONE, Rational::ZERO]);
        assert_eq!(f(2), vec![Rational::int(-1), Rational::int(-1)]);
    }

    #[test]
    fn place_i_minus_j_is_rejected() {
        // Sec. D.2.3's aside: place.(i,j) = i-j gives flow.c = 2, which
        // violates the neighbouring restriction.
        let p = gallery::polynomial_product();
        let arr = SystolicArray::new(vec![2, 1], Matrix::from_rows(&[vec![1, -1]]));
        match arr.validate(&p) {
            Err(ArrayError::FlowNotNeighbouring { stream: 2, flow }) => {
                assert_eq!(flow, vec![Rational::int(2)]);
            }
            other => panic!("expected flow violation, got {other:?}"),
        }
    }

    #[test]
    fn inconsistent_step_place_rejected() {
        // step = (0, 1) with place = i: null.place = (0, 1) direction gets
        // step difference... dot((0,1),(0,1)) = 1, fine. Use step (1, 0):
        // dot = 0 -> processes would execute two statements simultaneously.
        let p = gallery::polynomial_product();
        let arr = SystolicArray::new(vec![1, 0], Matrix::from_rows(&[vec![1, 0]]));
        assert_eq!(arr.validate(&p), Err(ArrayError::StepPlaceInconsistent));
    }

    #[test]
    fn anti_dependence_rejected() {
        // step = (2, -1) decreases along c's forward reuse direction (1,-1)?
        // dot((2,-1),(1,-1)) = 3 > 0 ok; try step (-2, -1): forward dir of
        // c is (1,-1) (i ascending): dot = -1 < 0 -> violation. But a and b
        // also break first? a's dir (0,1): dot = -1 != 0 fine (read-only).
        let p = gallery::polynomial_product();
        let arr = SystolicArray::new(vec![-2, -1], Matrix::from_rows(&[vec![1, 0]]));
        assert_eq!(
            arr.validate(&p),
            Err(ArrayError::DependenceViolated { stream: 2 })
        );
    }

    #[test]
    fn makespan_matches_paper_step_functions() {
        let (p, arr) = polyprod_d1();
        let mut env = Env::new();
        env.bind(p.sizes[0], 4);
        // step = 2i + j over [0,4]^2: range 0..=12 -> 13 steps.
        assert_eq!(arr.makespan(&p, &env), 13);
        let mm = gallery::matrix_product();
        let arr = SystolicArray::new(
            vec![1, 1, 1],
            Matrix::from_rows(&[vec![1, 0, 0], vec![0, 1, 0]]),
        );
        let mut env = Env::new();
        env.bind(mm.sizes[0], 4);
        assert_eq!(arr.makespan(&mm, &env), 13);
    }

    #[test]
    fn projection_direction_is_step_oriented() {
        let (_, arr) = polyprod_d1();
        assert_eq!(arr.projection_direction(), Some(vec![0, 1]));
        let kl = SystolicArray::new(
            vec![1, 1, 1],
            Matrix::from_rows(&[vec![1, 0, -1], vec![0, 1, -1]]),
        );
        assert_eq!(kl.projection_direction(), Some(vec![1, 1, 1]));
    }
}
