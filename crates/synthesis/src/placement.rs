//! Construction of spatial distributions (`place` functions).
//!
//! "Once \[step\] has been derived, many different place functions are
//! possible; each must be compatible with the partial order defined by the
//! step" (Sec. 3.2). A linear place of rank `r-1` is determined (up to a
//! change of basis in the process space) by its 1-dimensional null space —
//! the *projection direction*. This module constructs a canonical integer
//! place matrix from a projection direction, enumerates the directions that
//! yield valid arrays for a given step, and names the paper's designs.

use crate::array::SystolicArray;
use systolic_ir::SourceProgram;
use systolic_math::{point, Matrix};

/// Build the canonical `(r-1) x r` place matrix that projects along `u`.
///
/// For each axis `a` other than the pivot axis `p` (the last axis with
/// `u.p != 0`), emit the row `u.p * e_a - u.a * e_p`, normalized to
/// primitive form with positive leading coefficient. The null space of the
/// result is exactly `span(u)`.
///
/// This reproduces the paper's arrays: `u = (0,1) -> place i`;
/// `u = (1,-1) -> place i+j`; `u = (0,0,1) -> place (i,j)`;
/// `u = (1,1,1) -> place (i-k, j-k)` (Kung–Leiserson).
pub fn place_from_projection(u: &[i64]) -> Matrix {
    assert!(!point::is_zero(u), "projection direction must be non-zero");
    let r = u.len();
    let p = (0..r).rev().find(|&i| u[i] != 0).unwrap();
    let mut rows = Vec::with_capacity(r - 1);
    for a in 0..r {
        if a == p {
            continue;
        }
        let mut row = vec![0i64; r];
        row[a] = u[p];
        row[p] = -u[a];
        // Normalize: primitive, positive leading coefficient.
        let g = point::content(&row).max(1);
        let mut row: Vec<i64> = row.iter().map(|&x| x / g).collect();
        if let Some(&lead) = row.iter().find(|&&x| x != 0) {
            if lead < 0 {
                row = point::scale(-1, &row);
            }
        }
        rows.push(row);
    }
    Matrix::from_rows(&rows)
}

/// All projection directions with components in `{-1, 0, +1}` (restriction
/// A.2 on `increment`) that make a valid array with the given step,
/// together with the built arrays. Directions are deduplicated up to sign.
pub fn enumerate_places(program: &SourceProgram, step: &[i64]) -> Vec<SystolicArray> {
    let r = step.len();
    let mut out = Vec::new();
    let mut u = vec![-1i64; r];
    loop {
        if !point::is_zero(&u) && is_canonical_sign(&u) {
            let arr = SystolicArray::new(step.to_vec(), place_from_projection(&u));
            if arr.validate(program).is_ok() {
                out.push(arr);
            }
        }
        let mut d = r;
        loop {
            if d == 0 {
                return out;
            }
            d -= 1;
            u[d] += 1;
            if u[d] <= 1 {
                break;
            }
            u[d] = -1;
        }
    }
}

/// First non-zero component positive (one representative per +-u pair).
fn is_canonical_sign(u: &[i64]) -> bool {
    u.iter().find(|&&x| x != 0).is_none_or(|&x| x > 0)
}

/// The four designs worked out in the paper's appendices.
pub mod paper {
    use super::*;
    use systolic_ir::gallery;

    /// Appendix D.1: polynomial product, `place.(i,j) = i` (simple).
    pub fn polyprod_d1() -> (SourceProgram, SystolicArray) {
        let p = gallery::polynomial_product();
        let a = SystolicArray::new(vec![2, 1], Matrix::from_rows(&[vec![1, 0]]));
        (p, a)
    }

    /// Appendix D.2: polynomial product, `place.(i,j) = i + j`.
    pub fn polyprod_d2() -> (SourceProgram, SystolicArray) {
        let p = gallery::polynomial_product();
        let a = SystolicArray::new(vec![2, 1], Matrix::from_rows(&[vec![1, 1]]));
        (p, a)
    }

    /// Appendix E.1: matrix product, `place.(i,j,k) = (i,j)` (simple).
    pub fn matmul_e1() -> (SourceProgram, SystolicArray) {
        let p = gallery::matrix_product();
        let a = SystolicArray::new(
            vec![1, 1, 1],
            Matrix::from_rows(&[vec![1, 0, 0], vec![0, 1, 0]]),
        );
        (p, a)
    }

    /// Appendix E.2: matrix product, `place.(i,j,k) = (i-k, j-k)` — the
    /// Kung–Leiserson hexagonal array.
    pub fn matmul_e2() -> (SourceProgram, SystolicArray) {
        let p = gallery::matrix_product();
        let a = SystolicArray::new(
            vec![1, 1, 1],
            Matrix::from_rows(&[vec![1, 0, -1], vec![0, 1, -1]]),
        );
        (p, a)
    }

    /// All four, with their appendix labels.
    pub fn all() -> Vec<(&'static str, SourceProgram, SystolicArray)> {
        let (p1, a1) = polyprod_d1();
        let (p2, a2) = polyprod_d2();
        let (p3, a3) = matmul_e1();
        let (p4, a4) = matmul_e2();
        vec![
            ("D.1", p1, a1),
            ("D.2", p2, a2),
            ("E.1", p3, a3),
            ("E.2", p4, a4),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_ir::gallery;

    #[test]
    fn projection_reproduces_paper_places() {
        assert_eq!(
            place_from_projection(&[0, 1]),
            Matrix::from_rows(&[vec![1, 0]])
        );
        assert_eq!(
            place_from_projection(&[1, -1]),
            Matrix::from_rows(&[vec![1, 1]])
        );
        assert_eq!(
            place_from_projection(&[0, 0, 1]),
            Matrix::from_rows(&[vec![1, 0, 0], vec![0, 1, 0]])
        );
        assert_eq!(
            place_from_projection(&[1, 1, 1]),
            Matrix::from_rows(&[vec![1, 0, -1], vec![0, 1, -1]])
        );
    }

    #[test]
    fn constructed_place_has_right_null_space() {
        for u in [vec![1, 0, 0], vec![1, -1, 0], vec![1, 1, -1], vec![0, 1, 1]] {
            let m = place_from_projection(&u);
            assert_eq!(m.rank(), 2);
            let g = m.null_generator().unwrap();
            assert!(g == u || g == point::scale(-1, &u), "{u:?} vs {g:?}");
        }
    }

    #[test]
    fn paper_designs_validate() {
        for (label, p, a) in paper::all() {
            a.validate(&p).unwrap_or_else(|e| panic!("{label}: {e:?}"));
        }
    }

    #[test]
    fn enumeration_contains_paper_designs() {
        let p = gallery::polynomial_product();
        let arrays = enumerate_places(&p, &[2, 1]);
        let places: Vec<_> = arrays.iter().map(|a| a.place.clone()).collect();
        assert!(
            places.contains(&Matrix::from_rows(&[vec![1, 0]])),
            "place i"
        );
        assert!(
            places.contains(&Matrix::from_rows(&[vec![1, 1]])),
            "place i+j"
        );
        // place i - j (u = (1,1)) is filtered: flow.c = 2 is not
        // neighbouring (Sec. D.2.3's aside).
        assert!(!places.contains(&Matrix::from_rows(&[vec![1, -1]])));

        let mm = gallery::matrix_product();
        let arrays = enumerate_places(&mm, &[1, 1, 1]);
        let places: Vec<_> = arrays.iter().map(|a| a.place.clone()).collect();
        assert!(places.contains(&Matrix::from_rows(&[vec![1, 0, 0], vec![0, 1, 0]])));
        assert!(places.contains(&Matrix::from_rows(&[vec![1, 0, -1], vec![0, 1, -1]])));
    }

    #[test]
    fn enumerated_arrays_all_validate() {
        let mm = gallery::matrix_product();
        let arrays = enumerate_places(&mm, &[1, 1, 1]);
        assert!(!arrays.is_empty());
        for a in &arrays {
            a.validate(&mm).unwrap();
        }
    }
}
