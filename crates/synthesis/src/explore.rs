//! Design-space exploration: enumerate complete (step, place) designs
//! and rank them by cost.
//!
//! "step is the primary function that determines a systolic array. Once
//! it has been derived, many different place functions are possible"
//! (Sec. 3.2). Downstream users choose by trading makespan against
//! processor count, channel count, stationary operands, and buffering;
//! this module makes that trade-off table explicit.

use crate::array::SystolicArray;
use crate::placement::enumerate_places;
use crate::schedule::enumerate_schedules;
use systolic_ir::SourceProgram;
use systolic_math::{point, Env};

/// A fully evaluated candidate design.
#[derive(Clone, Debug)]
pub struct Design {
    pub array: SystolicArray,
    /// `max step - min step + 1` at the reference size.
    pub makespan: i64,
    /// Number of process-space points (the enclosing box) at the
    /// reference size.
    pub processes: i64,
    /// Names of stationary streams under this design.
    pub stationary: Vec<String>,
    /// Largest flow denominator across streams (1 = no internal buffers).
    pub max_denominator: i64,
    /// Is the place simple (a single-axis projection)?
    pub simple: bool,
}

impl Design {
    /// The classic area-time cost: processes x makespan.
    pub fn area_time(&self) -> i64 {
        self.processes * self.makespan
    }
}

/// Enumerate every valid design with step coefficients within
/// `step_bound` and unit projection directions, evaluated at
/// `sample_size`. Sorted by (makespan, processes, step weight).
pub fn explore(program: &SourceProgram, step_bound: i64, sample_size: i64) -> Vec<Design> {
    let mut env = Env::new();
    for &s in &program.sizes {
        env.bind(s, sample_size);
    }
    let mut out: Vec<Design> = Vec::new();
    let mut seen_steps = std::collections::HashSet::new();
    for cand in enumerate_schedules(program, step_bound, sample_size) {
        if !seen_steps.insert(cand.step.clone()) {
            continue;
        }
        for array in enumerate_places(program, &cand.step) {
            let bounds = program.concrete_bounds(&env);
            // Process-space box volume.
            let mut volume = 1i64;
            for row in 0..array.place.rows() {
                let (mut lo, mut hi) = (0i64, 0i64);
                for (j, &(lb, rb)) in bounds.iter().enumerate() {
                    let c = array.place.at(row, j);
                    let (a, b) = (
                        c * systolic_math::Rational::int(lb),
                        c * systolic_math::Rational::int(rb),
                    );
                    let (a, b) = (a.to_integer().unwrap_or(0), b.to_integer().unwrap_or(0));
                    lo += a.min(b);
                    hi += a.max(b);
                }
                volume *= hi - lo + 1;
            }
            let stationary: Vec<String> = program
                .stream_ids()
                .filter(|&s| array.is_stationary(program, s))
                .map(|s| program.stream_name(s).to_string())
                .collect();
            let max_denominator = program
                .stream_ids()
                .map(|s| point::neighbour_multiple(&array.flow(program, s)).unwrap_or(1))
                .max()
                .unwrap_or(1);
            let simple = array
                .projection_direction()
                .map(|u| u.iter().filter(|&&c| c != 0).count() == 1)
                .unwrap_or(false);
            out.push(Design {
                makespan: cand.makespan,
                processes: volume,
                stationary,
                max_denominator,
                simple,
                array,
            });
        }
    }
    out.sort_by_key(|d| {
        (
            d.makespan,
            d.processes,
            d.array.step.iter().map(|c| c.abs()).sum::<i64>(),
        )
    });
    out
}

/// Render the exploration as a table.
pub fn render_table(program: &SourceProgram, designs: &[Design], limit: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:<12} {:>9} {:>7} {:>10} {:>6} {:<12}",
        "step", "projection", "makespan", "procs", "area*time", "denom", "stationary"
    );
    for d in designs.iter().take(limit) {
        let _ = writeln!(
            out,
            "{:<14} {:<12} {:>9} {:>7} {:>10} {:>6} {:<12}",
            format!("{:?}", d.array.step),
            d.array
                .projection_direction()
                .map(|u| point::fmt_point(&u))
                .unwrap_or_default(),
            d.makespan,
            d.processes,
            d.area_time(),
            d.max_denominator,
            if d.stationary.is_empty() {
                "-".to_string()
            } else {
                d.stationary.join(",")
            },
        );
    }
    let _ = writeln!(
        out,
        "({} designs total for {})",
        designs.len(),
        program.name
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_ir::gallery;

    #[test]
    fn polyprod_design_space_contains_the_paper_designs() {
        let p = gallery::polynomial_product();
        let designs = explore(&p, 2, 6);
        assert!(!designs.is_empty());
        // Both appendix D designs appear with the paper's step.
        let has = |place_rows: &[Vec<i64>]| {
            designs.iter().any(|d| {
                d.array.step == vec![2, 1]
                    && d.array.place == systolic_math::Matrix::from_rows(place_rows)
            })
        };
        assert!(has(&[vec![1, 0]]), "D.1");
        assert!(has(&[vec![1, 1]]), "D.2");
        // Sorted by makespan.
        assert!(designs.windows(2).all(|w| w[0].makespan <= w[1].makespan));
    }

    #[test]
    fn matmul_design_space_ranks_kung_leiserson() {
        let p = gallery::matrix_product();
        let designs = explore(&p, 1, 4);
        let kl = designs
            .iter()
            .find(|d| {
                d.array.place == systolic_math::Matrix::from_rows(&[vec![1, 0, -1], vec![0, 1, -1]])
            })
            .expect("Kung-Leiserson in the space");
        assert_eq!(kl.makespan, 13, "3n+1 at n=4");
        assert_eq!(kl.processes, 81, "(2n+1)^2");
        assert!(kl.stationary.is_empty(), "all streams move");
        let simple = designs
            .iter()
            .find(|d| {
                d.array.place == systolic_math::Matrix::from_rows(&[vec![1, 0, 0], vec![0, 1, 0]])
            })
            .expect("E.1 in the space");
        assert_eq!(simple.processes, 25, "(n+1)^2");
        assert_eq!(simple.stationary, vec!["c"]);
        assert!(simple.simple);
    }

    #[test]
    fn all_explored_designs_are_valid() {
        let p = gallery::fir_filter();
        let designs = explore(&p, 2, 4);
        assert!(!designs.is_empty());
        for d in &designs {
            d.array.validate(&p).unwrap();
            assert!(d.makespan >= 1);
            assert!(d.processes >= 1);
        }
    }

    #[test]
    fn table_renders() {
        let p = gallery::polynomial_product();
        let designs = explore(&p, 2, 6);
        let table = render_table(&p, &designs, 5);
        assert!(table.contains("makespan"));
        assert!(table.lines().count() >= 3);
    }
}
