//! Code generators: render the abstract syntax in three concrete styles.
//!
//! - [`paper_style`] — the notation of Appendices C–E (`parfor`, `par`,
//!   guarded `if .. [] .. fi`, `send`/`receive`/`pass`/`load`/`recover`);
//! - [`occam_style`] — occam-like (`PAR`, `SEQ`, `!`/`?` channel
//!   operators), the paper's principal experimental target (Sec. 8);
//! - [`c_style`] — C with communication directives, the paper's second
//!   target (the Symult s2010 runs).
//!
//! These are textual back ends: Sec. 4's claim is that the abstract syntax
//! "is easily translated to any distributed programming language", and
//! the printers demonstrate three such translations from one tree.

use crate::syntax::{Program, Stmt};

struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    fn new() -> Printer {
        Printer {
            out: String::new(),
            indent: 0,
        }
    }

    fn line(&mut self, s: &str) {
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
        self.out.push_str(s);
        self.out.push('\n');
    }

    fn nested(&mut self, f: impl FnOnce(&mut Printer)) {
        self.indent += 1;
        f(self);
        self.indent -= 1;
    }
}

/// Render in the paper's own notation (Appendix C).
pub fn paper_style(p: &Program) -> String {
    let mut pr = Printer::new();
    pr.line(&format!("/* {} */", p.name));
    for s in &p.items {
        paper_stmt(&mut pr, s);
    }
    pr.out
}

fn paper_stmt(pr: &mut Printer, s: &Stmt) {
    match s {
        Stmt::Comment(c) => pr.line(&format!("/****** {c} ******/")),
        Stmt::ChanDecl { name, dims } => {
            let d: Vec<String> = dims.iter().map(|(lo, hi)| format!("{lo}..{hi}")).collect();
            pr.line(&format!("chan {}[{}]", name, d.join(", ")));
        }
        Stmt::IntDecl { names } => pr.line(&format!("int {}", names.join(", "))),
        Stmt::TupleDecl { arity, names } => {
            let tuple = vec!["int"; *arity].join(",");
            pr.line(&format!("({tuple}) {}", names.join(", ")));
        }
        Stmt::Par(body) => {
            pr.line("par");
            pr.nested(|pr| body.iter().for_each(|x| paper_stmt(pr, x)));
            pr.line("end par");
        }
        Stmt::Seq(body) => body.iter().for_each(|x| paper_stmt(pr, x)),
        Stmt::ParFor { var, lo, hi, body } => {
            pr.line(&format!("parfor {var} from {lo} to {hi} do"));
            pr.nested(|pr| body.iter().for_each(|x| paper_stmt(pr, x)));
            pr.line("end parfor");
        }
        Stmt::For { var, lo, hi, body } => {
            pr.line(&format!("for {var} from {lo} to {hi} do"));
            pr.nested(|pr| body.iter().for_each(|x| paper_stmt(pr, x)));
            pr.line("end for");
        }
        Stmt::AssignIf {
            target,
            arms,
            else_null,
        } => {
            pr.line(&format!("{target} :="));
            pr.nested(|pr| {
                for (i, (g, e)) in arms.iter().enumerate() {
                    let lead = if i == 0 { "if" } else { "[]" };
                    pr.line(&format!("{lead} {g}  ->  {e}"));
                }
                if *else_null {
                    pr.line("[] else -> null");
                }
                pr.line("fi");
            });
        }
        Stmt::Assign { target, value } => pr.line(&format!("{target} := {value}")),
        Stmt::SendRepeater {
            stream,
            first,
            last,
            inc,
            chan,
        } => {
            pr.line(&format!("send {stream} {{{first} {last} {inc}}} to {chan}"));
        }
        Stmt::RecvRepeater {
            stream,
            first,
            last,
            inc,
            chan,
        } => {
            pr.line(&format!(
                "receive {stream} {{{first} {last} {inc}}} from {chan}"
            ));
        }
        Stmt::Send { value, chan } => pr.line(&format!("send {value} to {chan}")),
        Stmt::Recv { var, chan } => pr.line(&format!("receive {var} from {chan}")),
        Stmt::Pass { stream, count } => pr.line(&format!("pass {stream}, {count}")),
        Stmt::Load { stream, count } => pr.line(&format!("load {stream}, {count}")),
        Stmt::Recover { stream, count } => pr.line(&format!("recover {stream}, {count}")),
        Stmt::Repeater {
            first,
            last,
            inc,
            body,
        } => {
            pr.line(&format!("{{{first} {last} {inc}}} :"));
            pr.nested(|pr| body.iter().for_each(|x| paper_stmt(pr, x)));
        }
        Stmt::IfStmt { arms, else_skip } => {
            for (i, (g, b)) in arms.iter().enumerate() {
                let lead = if i == 0 { "if" } else { "[]" };
                pr.line(&format!("{lead} {g} ->"));
                pr.nested(|pr| b.iter().for_each(|x| paper_stmt(pr, x)));
            }
            if *else_skip {
                pr.line("[] else -> skip");
            }
            pr.line("fi");
        }
        Stmt::Skip => pr.line("skip"),
    }
}

/// Render occam-like text: indentation-structured `PAR`/`SEQ`, `!`/`?`.
pub fn occam_style(p: &Program) -> String {
    let mut pr = Printer::new();
    pr.line(&format!("-- {} (occam-like rendering)", p.name));
    for s in &p.items {
        occam_stmt(&mut pr, s);
    }
    pr.out
}

fn occam_stmt(pr: &mut Printer, s: &Stmt) {
    match s {
        Stmt::Comment(c) => pr.line(&format!("-- {c}")),
        Stmt::ChanDecl { name, dims } => {
            let size: Vec<String> = dims
                .iter()
                .map(|(lo, hi)| format!("(({hi}) - ({lo}) + 1)"))
                .collect();
            pr.line(&format!("[{}]CHAN OF INT {} :", size.join("*"), name));
        }
        Stmt::IntDecl { names } => pr.line(&format!("INT {} :", names.join(", "))),
        Stmt::TupleDecl { arity, names } => {
            for n in names {
                pr.line(&format!("[{arity}]INT {n} :"));
            }
        }
        Stmt::Par(body) => {
            pr.line("PAR");
            pr.nested(|pr| body.iter().for_each(|x| occam_stmt(pr, x)));
        }
        Stmt::Seq(body) => {
            pr.line("SEQ");
            pr.nested(|pr| body.iter().for_each(|x| occam_stmt(pr, x)));
        }
        Stmt::ParFor { var, lo, hi, body } => {
            // occam counts loops by a base and a count (Sec. 7.2.2's
            // remark on eq. 4).
            pr.line(&format!("PAR {var} = ({lo}) FOR (({hi}) - ({lo}) + 1)"));
            pr.nested(|pr| body.iter().for_each(|x| occam_stmt(pr, x)));
        }
        Stmt::For { var, lo, hi, body } => {
            pr.line(&format!("SEQ {var} = ({lo}) FOR (({hi}) - ({lo}) + 1)"));
            pr.nested(|pr| body.iter().for_each(|x| occam_stmt(pr, x)));
        }
        Stmt::AssignIf {
            target,
            arms,
            else_null,
        } => {
            pr.line("IF");
            pr.nested(|pr| {
                for (g, e) in arms {
                    pr.line(&occam_guard(g));
                    pr.nested(|pr| pr.line(&format!("{target} := {e}")));
                }
                if *else_null {
                    pr.line("TRUE");
                    pr.nested(|pr| pr.line("SKIP  -- null process"));
                }
            });
        }
        Stmt::Assign { target, value } => pr.line(&format!("{target} := {value}")),
        Stmt::SendRepeater {
            stream,
            first,
            last,
            inc,
            chan,
        } => {
            pr.line(&format!(
                "-- repeater {{{first} {last} {inc}}} over elements of {stream}"
            ));
            pr.line(&format!(
                "{} ! {}.elements({first}, {last}, {inc})",
                occam_chan(chan),
                stream
            ));
        }
        Stmt::RecvRepeater {
            stream,
            first,
            last,
            inc,
            chan,
        } => {
            pr.line(&format!(
                "-- repeater {{{first} {last} {inc}}} over elements of {stream}"
            ));
            pr.line(&format!(
                "{} ? {}.elements({first}, {last}, {inc})",
                occam_chan(chan),
                stream
            ));
        }
        Stmt::Send { value, chan } => pr.line(&format!("{} ! {value}", occam_chan(chan))),
        Stmt::Recv { var, chan } => pr.line(&format!("{} ? {var}", occam_chan(chan))),
        Stmt::Pass { stream, count } => {
            pr.line(&format!("SEQ pass.{stream} = 0 FOR ({count})"));
            pr.nested(|pr| {
                pr.line("INT tmp :");
                pr.line("SEQ");
                pr.nested(|pr| {
                    pr.line(&format!("{stream}.in ? tmp"));
                    pr.line(&format!("{stream}.out ! tmp"));
                });
            });
        }
        Stmt::Load { stream, count } => {
            pr.line("SEQ");
            pr.nested(|pr| {
                pr.line(&format!("{stream}.in ? {stream}"));
                occam_stmt(
                    pr,
                    &Stmt::Pass {
                        stream: stream.clone(),
                        count: count.clone(),
                    },
                );
            });
        }
        Stmt::Recover { stream, count } => {
            pr.line("SEQ");
            pr.nested(|pr| {
                occam_stmt(
                    pr,
                    &Stmt::Pass {
                        stream: stream.clone(),
                        count: count.clone(),
                    },
                );
                pr.line(&format!("{stream}.out ! {stream}"));
            });
        }
        Stmt::Repeater {
            first,
            last,
            inc,
            body,
        } => {
            pr.line(&format!("-- repeater {{{first} {last} {inc}}}"));
            pr.line(&format!("SEQ rep = 0 FOR count({first}, {last}, {inc})"));
            pr.nested(|pr| {
                pr.line("SEQ");
                pr.nested(|pr| body.iter().for_each(|x| occam_stmt(pr, x)));
            });
        }
        Stmt::IfStmt { arms, else_skip } => {
            pr.line("IF");
            pr.nested(|pr| {
                for (g, b) in arms {
                    pr.line(&occam_guard(g));
                    pr.nested(|pr| {
                        pr.line("SEQ");
                        pr.nested(|pr| b.iter().for_each(|x| occam_stmt(pr, x)));
                    });
                }
                if *else_skip {
                    pr.line("TRUE");
                    pr.nested(|pr| pr.line("SKIP"));
                }
            });
        }
        Stmt::Skip => pr.line("SKIP"),
    }
}

fn occam_chan(chan: &str) -> String {
    // a_chan[col, row] -> a.chan[col][row]
    let c = chan.replace('_', ".");
    match c.split_once('[') {
        Some((base, rest)) => {
            let inner = rest.trim_end_matches(']');
            let idx: Vec<String> = inner
                .split(',')
                .map(|p| format!("[{}]", p.trim()))
                .collect();
            format!("{base}{}", idx.join(""))
        }
        None => c,
    }
}

fn occam_guard(g: &str) -> String {
    g.replace("  /\\  ", " AND ")
}

/// Render C-with-communication-directives text (the Symult s2010 style).
pub fn c_style(p: &Program) -> String {
    let mut pr = Printer::new();
    pr.line(&format!(
        "/* {} — C with communication directives */",
        p.name
    ));
    for s in &p.items {
        c_stmt(&mut pr, s);
    }
    pr.out
}

fn c_stmt(pr: &mut Printer, s: &Stmt) {
    match s {
        Stmt::Comment(c) => pr.line(&format!("/* {c} */")),
        Stmt::ChanDecl { name, dims } => {
            let d: Vec<String> = dims.iter().map(|(lo, hi)| format!("/*{lo}..{hi}*/")).collect();
            pr.line(&format!("channel_t {name}{};", d.join("")));
        }
        Stmt::IntDecl { names } => pr.line(&format!("long {};", names.join(", "))),
        Stmt::TupleDecl { arity, names } => {
            for n in names {
                pr.line(&format!("long {n}[{arity}];"));
            }
        }
        Stmt::Par(body) => {
            pr.line("PAR {");
            pr.nested(|pr| body.iter().for_each(|x| c_stmt(pr, x)));
            pr.line("}");
        }
        Stmt::Seq(body) => {
            pr.line("{");
            pr.nested(|pr| body.iter().for_each(|x| c_stmt(pr, x)));
            pr.line("}");
        }
        Stmt::ParFor { var, lo, hi, body } => {
            pr.line(&format!("PARFOR ({var} = {lo}; {var} <= {hi}; {var}++) {{"));
            pr.nested(|pr| body.iter().for_each(|x| c_stmt(pr, x)));
            pr.line("}");
        }
        Stmt::For { var, lo, hi, body } => {
            pr.line(&format!("for ({var} = {lo}; {var} <= {hi}; {var}++) {{"));
            pr.nested(|pr| body.iter().for_each(|x| c_stmt(pr, x)));
            pr.line("}");
        }
        Stmt::AssignIf { target, arms, else_null } => {
            for (i, (g, e)) in arms.iter().enumerate() {
                let kw = if i == 0 { "if" } else { "else if" };
                pr.line(&format!("{kw} ({}) {{ {target} = {e}; }}", c_guard(g)));
            }
            if *else_null {
                pr.line(&format!("else {{ /* null */ {target} = NULL_REPEATER; }}"));
            }
        }
        Stmt::Assign { target, value } => pr.line(&format!("{target} = {value};")),
        Stmt::SendRepeater { stream, first, last, inc, chan } => pr.line(&format!(
            "send_repeater({chan_fn}, {stream}, /*first*/ {first}, /*last*/ {last}, /*inc*/ {inc});",
            chan_fn = c_chan(chan)
        )),
        Stmt::RecvRepeater { stream, first, last, inc, chan } => pr.line(&format!(
            "recv_repeater({chan_fn}, {stream}, /*first*/ {first}, /*last*/ {last}, /*inc*/ {inc});",
            chan_fn = c_chan(chan)
        )),
        Stmt::Send { value, chan } => pr.line(&format!("csend({}, {value});", c_chan(chan))),
        Stmt::Recv { var, chan } => pr.line(&format!("{var} = crecv({});", c_chan(chan))),
        Stmt::Pass { stream, count } => pr.line(&format!("pass({stream}_in, {stream}_out, {count});")),
        Stmt::Load { stream, count } => {
            pr.line(&format!("{stream} = crecv({stream}_in);"));
            pr.line(&format!("pass({stream}_in, {stream}_out, {count});"));
        }
        Stmt::Recover { stream, count } => {
            pr.line(&format!("pass({stream}_in, {stream}_out, {count});"));
            pr.line(&format!("csend({stream}_out, {stream});"));
        }
        Stmt::Repeater { first, last, inc, body } => {
            pr.line(&format!(
                "for (REPEATER(x, {first}, {last}, {inc})) {{"
            ));
            pr.nested(|pr| body.iter().for_each(|x| c_stmt(pr, x)));
            pr.line("}");
        }
        Stmt::IfStmt { arms, else_skip } => {
            for (i, (g, b)) in arms.iter().enumerate() {
                let kw = if i == 0 { "if" } else { "else if" };
                pr.line(&format!("{kw} ({}) {{", c_guard(g)));
                pr.nested(|pr| b.iter().for_each(|x| c_stmt(pr, x)));
                pr.line("}");
            }
            if *else_skip {
                pr.line("else { /* skip */ }");
            }
        }
        Stmt::Skip => pr.line(";"),
    }
}

fn c_chan(chan: &str) -> String {
    // a_chan[col, row] -> CHAN(a_chan, col, row)
    match chan.split_once('[') {
        Some((base, rest)) => {
            format!("CHAN({}, {})", base, rest.trim_end_matches(']'))
        }
        None => chan.to_string(),
    }
}

fn c_guard(g: &str) -> String {
    // Break chained inequalities into && of pairs.
    let conj: Vec<String> = g
        .split("  /\\  ")
        .map(|chain| {
            let parts: Vec<&str> = chain.split(" <= ").collect();
            if parts.len() <= 2 {
                chain.replace(" not ", " !").to_string()
            } else {
                parts
                    .windows(2)
                    .map(|w| format!("({}) <= ({})", w[0], w[1]))
                    .collect::<Vec<_>>()
                    .join(" && ")
            }
        })
        .collect();
    conj.join(" && ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use systolic_core::{compile, Options};
    use systolic_synthesis::placement::paper;

    fn render_all(
        pair: (
            systolic_ir::SourceProgram,
            systolic_synthesis::SystolicArray,
        ),
    ) -> (String, String, String) {
        let (p, a) = pair;
        let plan = compile(&p, &a, &Options::default()).unwrap();
        let prog = lower(&plan);
        (paper_style(&prog), occam_style(&prog), c_style(&prog))
    }

    #[test]
    fn d1_paper_text_contains_appendix_lines() {
        let (paper, occam, c) = render_all(paper::polyprod_d1());
        assert!(paper.contains("load a, n - col"));
        assert!(paper.contains("recover a, col"));
        assert!(paper.contains("pass c, col"));
        assert!(paper.contains("{(col, 0) (col, n) (0,1)} :"));
        assert!(paper.contains("c := c + a * b"));
        assert!(paper.contains("parfor col from 0 to n do"));
        assert!(occam.contains("PAR"));
        assert!(occam.contains("c := c + a * b"));
        assert!(c.contains("PARFOR (col = 0; col <= n; col++)"));
        assert!(c.contains("c = c + a * b;"));
    }

    #[test]
    fn e2_paper_text_has_null_alternatives() {
        let (paper, occam, c) = render_all(paper::matmul_e2());
        assert!(paper.contains("[] else -> null"));
        assert!(paper.contains("send c to c_chan[col - 1, row - 1]"));
        assert!(paper.contains("parfor col from -n to n do"));
        assert!(occam.contains("SKIP  -- null process"));
        assert!(c.contains("NULL_REPEATER"));
    }

    #[test]
    fn chan_name_translations() {
        assert_eq!(occam_chan("a_chan[col, row]"), "a.chan[col][row]");
        assert_eq!(c_chan("a_chan[col + 1]"), "CHAN(a_chan, col + 1)");
    }

    #[test]
    fn guard_translations() {
        assert_eq!(
            c_guard("0 <= col - n <= n  /\\  0 <= row <= n"),
            "(0) <= (col - n) && (col - n) <= (n) && (0) <= (row) && (row) <= (n)"
        );
    }

    #[test]
    fn occam_renders_pass_load_recover() {
        let prog = Program {
            name: "t".into(),
            items: vec![
                Stmt::Load { stream: "a".into(), count: "n - col".into() },
                Stmt::Pass { stream: "c".into(), count: "col".into() },
                Stmt::Recover { stream: "a".into(), count: "col".into() },
                Stmt::Repeater {
                    first: "(col, 0)".into(),
                    last: "(col, n)".into(),
                    inc: "(0,1)".into(),
                    body: vec![Stmt::Assign { target: "c".into(), value: "c + a * b".into() }],
                },
            ],
        };
        let occam = occam_style(&prog);
        assert!(occam.contains("a.in ? a"), "load keeps the first element");
        assert!(occam.contains("SEQ pass.c = 0 FOR (col)"));
        assert!(occam.contains("a.out ! a"), "recover ejects the local");
        assert!(occam.contains("SEQ rep = 0 FOR count((col, 0), (col, n), (0,1))"));
        let c = c_style(&prog);
        assert!(c.contains("a = crecv(a_in);"));
        assert!(c.contains("pass(c_in, c_out, col);"));
        assert!(c.contains("csend(a_out, a);"));
    }

    #[test]
    fn seq_and_for_statements_render() {
        let prog = Program {
            name: "t".into(),
            items: vec![Stmt::Seq(vec![Stmt::For {
                var: "k".into(),
                lo: "0".into(),
                hi: "n".into(),
                body: vec![Stmt::Skip],
            }])],
        };
        assert!(paper_style(&prog).contains("for k from 0 to n do"));
        assert!(occam_style(&prog).contains("SEQ k = (0) FOR ((n) - (0) + 1)"));
        assert!(c_style(&prog).contains("for (k = 0; k <= n; k++) {"));
    }

    #[test]
    fn all_designs_render_nonempty_in_all_styles() {
        for (label, p, a) in paper::all() {
            let plan = compile(&p, &a, &Options::default()).unwrap();
            let prog = lower(&plan);
            for (style, text) in [
                ("paper", paper_style(&prog)),
                ("occam", occam_style(&prog)),
                ("c", c_style(&prog)),
            ] {
                assert!(text.lines().count() > 30, "{label}/{style} too short");
            }
        }
    }
}
