//! Lowering a compiled [`SystolicProgram`] plan to the target abstract
//! syntax: the final-program assembly of Appendices D.1.7, D.2.7, E.1.7,
//! and E.2.7 — channel declarations, input processes, buffer processes,
//! computation processes, output processes, composed in `par`.

use crate::syntax::{Program, Stmt};
use systolic_core::{StreamKind, StreamPlan, SystolicProgram};
use systolic_ir::{ScalarExpr, SourceProgram};
use systolic_math::affine::{display_point, AffinePoint};
use systolic_math::{point, Affine, Piecewise, Var};

/// Render an affine expression.
fn aff(plan: &SystolicProgram, e: &Affine) -> String {
    e.display(&plan.vars)
}

/// Render an affine point.
fn pt(plan: &SystolicProgram, p: &[Affine]) -> String {
    display_point(p, &plan.vars)
}

/// Substitute one coordinate throughout a guarded piecewise point and
/// simplify (prune infeasible clauses).
fn subst_pw<T: Clone>(
    pw: &Piecewise<T>,
    v: Var,
    repl: &Affine,
    mut f: impl FnMut(&T) -> T,
) -> Piecewise<T> {
    let mut clauses = Vec::new();
    for (g, val) in pw.clauses() {
        if let Some(g2) = g.substitute(v, repl).simplify() {
            clauses.push((g2, f(val)));
        }
    }
    Piecewise::new(clauses)
}

fn subst_point(p: &AffinePoint, v: Var, repl: &Affine) -> AffinePoint {
    p.iter().map(|e| e.substitute(v, repl)).collect()
}

/// The coordinate point of a process, as affine expressions.
fn coord_point(plan: &SystolicProgram) -> AffinePoint {
    plan.coords.iter().map(|&c| Affine::var(c)).collect()
}

/// Channel index string for the channel *into* process `y` (`s_chan[y]`).
fn chan_at(plan: &SystolicProgram, sp: &StreamPlan, y: &[Affine], shift: i64) -> String {
    let idx: Vec<Affine> = y
        .iter()
        .zip(&sp.unit_flow)
        .map(|(e, &u)| e.clone() + Affine::int(shift * u))
        .collect();
    format!(
        "{}_chan[{}]",
        sp.name,
        idx.iter()
            .map(|e| aff_string(plan, e))
            .collect::<Vec<_>>()
            .join(", ")
    )
}

fn aff_string(plan: &SystolicProgram, e: &Affine) -> String {
    e.display(&plan.vars)
}

/// The buffer channel at process `y` (`s_buff[y]`, Appendix D).
fn buff_chan_at(plan: &SystolicProgram, sp: &StreamPlan, y: &[Affine]) -> String {
    format!(
        "{}_buff[{}]",
        sp.name,
        y.iter()
            .map(|e| aff_string(plan, e))
            .collect::<Vec<_>>()
            .join(", ")
    )
}

/// Render the basic statement: par-receive moving streams, the updates,
/// par-send moving streams (the Appendix D/E basic-statement shape).
fn render_basic_statement(plan: &SystolicProgram) -> Vec<Stmt> {
    let src = &plan.source;
    let y = coord_point(plan);
    let mut recvs = Vec::new();
    let mut sends = Vec::new();
    for sp in &plan.streams {
        if sp.kind == StreamKind::Moving {
            // Fractional flows interpose buffer processes: the cell
            // receives from the buffer channel family (D.1.7's
            // `receive b from b_buff[col]`).
            let in_chan = if sp.denominator > 1 {
                buff_chan_at(plan, sp, &y)
            } else {
                chan_at(plan, sp, &y, 0)
            };
            recvs.push(Stmt::Recv {
                var: sp.name.clone(),
                chan: in_chan,
            });
            sends.push(Stmt::Send {
                value: sp.name.clone(),
                chan: chan_at(plan, sp, &y, 1),
            });
        }
    }
    let mut body = Vec::new();
    if !recvs.is_empty() {
        body.push(Stmt::Par(recvs));
    }
    for u in &src.body.updates {
        let target = src.stream_name(u.target).to_string();
        let value = render_scalar(src, &u.value);
        match &u.guard {
            None => body.push(Stmt::Assign { target, value }),
            Some(g) => body.push(Stmt::IfStmt {
                arms: vec![(render_bool(src, g), vec![Stmt::Assign { target, value }])],
                else_skip: true,
            }),
        }
    }
    if !sends.is_empty() {
        body.push(Stmt::Par(sends));
    }
    body
}

fn render_scalar(src: &SourceProgram, e: &ScalarExpr) -> String {
    match e {
        ScalarExpr::Stream(s) => src.stream_name(*s).to_string(),
        ScalarExpr::Index(i) => src.loops[*i].index_name.clone(),
        ScalarExpr::Const(c) => c.to_string(),
        ScalarExpr::Add(a, b) => format!("{} + {}", render_scalar(src, a), render_scalar(src, b)),
        ScalarExpr::Sub(a, b) => format!("{} - {}", render_scalar(src, a), render_scalar(src, b)),
        ScalarExpr::Mul(a, b) => {
            format!("{} * {}", render_atom(src, a), render_atom(src, b))
        }
        ScalarExpr::Min(a, b) => {
            format!("min({}, {})", render_scalar(src, a), render_scalar(src, b))
        }
        ScalarExpr::Max(a, b) => {
            format!("max({}, {})", render_scalar(src, a), render_scalar(src, b))
        }
        ScalarExpr::Neg(a) => format!("-{}", render_atom(src, a)),
    }
}

fn render_atom(src: &SourceProgram, e: &ScalarExpr) -> String {
    match e {
        ScalarExpr::Add(..) | ScalarExpr::Sub(..) => format!("({})", render_scalar(src, e)),
        _ => render_scalar(src, e),
    }
}

fn render_bool(src: &SourceProgram, b: &systolic_ir::BoolExpr) -> String {
    use systolic_ir::{BoolExpr, CmpOp};
    match b {
        BoolExpr::Cmp(op, a, c) => {
            let sym = match op {
                CmpOp::Eq => "=",
                CmpOp::Ne => "<>",
                CmpOp::Lt => "<",
                CmpOp::Le => "<=",
                CmpOp::Gt => ">",
                CmpOp::Ge => ">=",
            };
            format!(
                "{} {} {}",
                render_scalar(src, a),
                sym,
                render_scalar(src, c)
            )
        }
        BoolExpr::And(a, c) => format!("{} and {}", render_bool(src, a), render_bool(src, c)),
        BoolExpr::Or(a, c) => format!("{} or {}", render_bool(src, a), render_bool(src, c)),
        BoolExpr::Not(a) => format!("not ({})", render_bool(src, a)),
        BoolExpr::True => "true".into(),
    }
}

/// Emit an assignment of a (possibly piecewise) repeater-bound pair, plus
/// the statement using it. `single` receives direct strings when there is
/// only one unguarded clause.
fn piecewise_pair(
    plan: &SystolicProgram,
    name: &str,
    fs: &Piecewise<AffinePoint>,
    ls: &Piecewise<AffinePoint>,
    out: &mut Vec<Stmt>,
) -> (String, String) {
    let single = fs.len() == 1
        && ls.len() == 1
        && fs.clauses()[0].0.is_always()
        && ls.clauses()[0].0.is_always();
    if single {
        (pt(plan, &fs.clauses()[0].1), pt(plan, &ls.clauses()[0].1))
    } else {
        // The paper emits separate case analyses for first and last
        // (their guards need not match, E.2.2).
        let fvar = format!("first_{name}");
        let lvar = format!("last_{name}");
        out.push(Stmt::TupleDecl {
            arity: plan.r - 1,
            names: vec![fvar.clone(), lvar.clone()],
        });
        for (var, pw) in [(&fvar, fs), (&lvar, ls)] {
            out.push(Stmt::AssignIf {
                target: var.clone(),
                arms: pw
                    .clauses()
                    .iter()
                    .map(|(g, p)| (g.display(&plan.vars), pt(plan, p)))
                    .collect(),
                else_null: true,
            });
        }
        (fvar, lvar)
    }
}

/// Emit a (possibly piecewise) scalar count; returns the expression or the
/// assigned variable name.
fn piecewise_count(
    plan: &SystolicProgram,
    var_name: &str,
    pw: &Piecewise<Affine>,
    out: &mut Vec<Stmt>,
) -> String {
    if pw.len() == 1 && pw.clauses()[0].0.is_always() {
        aff(plan, &pw.clauses()[0].1)
    } else {
        out.push(Stmt::IntDecl {
            names: vec![var_name.to_string()],
        });
        out.push(Stmt::AssignIf {
            target: var_name.to_string(),
            arms: pw
                .clauses()
                .iter()
                .map(|(g, e)| (g.display(&plan.vars), aff(plan, e)))
                .collect(),
            else_null: true,
        });
        var_name.to_string()
    }
}

/// Wrap `body` in `parfor`s over the given process-space dimensions.
fn parfor_nest(
    plan: &SystolicProgram,
    dims: &[(usize, Affine, Affine)],
    body: Vec<Stmt>,
) -> Vec<Stmt> {
    let mut inner = body;
    for &(d, ref lo, ref hi) in dims.iter().rev() {
        inner = vec![Stmt::ParFor {
            var: plan.vars.name(plan.coords[d]).to_string(),
            lo: aff(plan, lo),
            hi: aff(plan, hi),
            body: inner,
        }];
    }
    inner
}

/// The i/o processes of one stream (inputs or outputs).
fn io_processes(plan: &SystolicProgram, sp: &StreamPlan, inputs: bool) -> Vec<Stmt> {
    let dims = plan.r - 1;
    let mut out = Vec::new();
    for iod in &sp.io_dims {
        let at_min = iod.input_at_min == inputs;
        let boundary = if at_min {
            plan.ps_min[iod.dim].clone()
        } else {
            plan.ps_max[iod.dim].clone()
        };
        // Free dimensions, with exclusion-shrunk ranges (Sec. 7.3 dedup).
        let mut frees = Vec::new();
        for f in 0..dims {
            if f == iod.dim {
                continue;
            }
            let (mut lo, mut hi) = (plan.ps_min[f].clone(), plan.ps_max[f].clone());
            if iod.exclude_dims.contains(&f) {
                // Skip the corner already claimed by dimension f's own
                // boundary (same side: input corner for inputs, output
                // corner for outputs).
                let f_dim = sp
                    .io_dims
                    .iter()
                    .find(|d| d.dim == f)
                    .expect("excluded dim is io");
                let f_at_min = f_dim.input_at_min == inputs;
                if f_at_min {
                    lo = lo + Affine::int(1);
                } else {
                    hi = hi - Affine::int(1);
                }
            }
            frees.push((f, lo, hi));
        }

        // Specialize the repeater bounds to the boundary.
        let cvar = plan.coords[iod.dim];
        let fs = subst_pw(&sp.first_s, cvar, &boundary, |p| {
            subst_point(p, cvar, &boundary)
        });
        let ls = subst_pw(&sp.last_s, cvar, &boundary, |p| {
            subst_point(p, cvar, &boundary)
        });

        // The channel: inputs send into s_chan[y0]; outputs receive from
        // s_chan[ylast + unit_flow].
        let mut y = coord_point(plan);
        y[iod.dim] = boundary.clone();
        let chan = chan_at(plan, sp, &y, if inputs { 0 } else { 1 });

        let mut body = Vec::new();
        let (first, last) = piecewise_pair(plan, &sp.name, &fs, &ls, &mut body);
        let inc = point::fmt_point(&sp.increment_s);
        if inputs {
            body.push(Stmt::SendRepeater {
                stream: sp.name.clone(),
                first,
                last,
                inc,
                chan,
            });
        } else {
            body.push(Stmt::RecvRepeater {
                stream: sp.name.clone(),
                first,
                last,
                inc,
                chan,
            });
        }
        out.extend(parfor_nest(plan, &frees, body));
    }
    out
}

/// The internal buffer processes for fractional flows (Sec. 7.6).
fn internal_buffers(plan: &SystolicProgram, sp: &StreamPlan) -> Vec<Stmt> {
    if sp.denominator <= 1 {
        return Vec::new();
    }
    let dims: Vec<(usize, Affine, Affine)> = (0..plan.r - 1)
        .map(|d| (d, plan.ps_min[d].clone(), plan.ps_max[d].clone()))
        .collect();
    let mut body = vec![
        Stmt::Comment(format!(
            "flow.{} = {} has denominator {}: {} buffer(s) per edge",
            sp.name,
            point::fmt_rat_point(&sp.io_flow),
            sp.denominator,
            sp.denominator - 1
        )),
        Stmt::IntDecl {
            names: vec!["foo".into()],
        },
    ];
    let count = piecewise_count(
        plan,
        &format!("pass_{}", sp.name),
        &sp.pass_total,
        &mut body,
    );
    // The appendix writes the buffer as an explicit loop receiving from
    // the stream channel and forwarding on the buffer channel family
    // (D.1.7); the cell then reads `s_buff[y]`.
    let y = coord_point(plan);
    body.push(Stmt::For {
        var: "counter".into(),
        lo: "1".into(),
        hi: count,
        body: vec![
            Stmt::Recv {
                var: "foo".into(),
                chan: chan_at(plan, sp, &y, 0),
            },
            Stmt::Send {
                value: "foo".into(),
                chan: buff_chan_at(plan, sp, &y),
            },
        ],
    });
    parfor_nest(plan, &dims, body)
}

/// The external buffer processes (`PS \ CS`), when the place function is
/// not simple.
fn external_buffers(plan: &SystolicProgram) -> Vec<Stmt> {
    if plan.simple_place {
        return Vec::new();
    }
    let dims: Vec<(usize, Affine, Affine)> = (0..plan.r - 1)
        .map(|d| (d, plan.ps_min[d].clone(), plan.ps_max[d].clone()))
        .collect();
    let cs_guard = plan
        .first
        .clauses()
        .iter()
        .map(|(g, _)| format!("({})", g.display(&plan.vars)))
        .collect::<Vec<_>>()
        .join(" \\/ ");
    let mut passes = Vec::new();
    for sp in &plan.streams {
        let count = piecewise_count(
            plan,
            &format!("pass_{}", sp.name),
            &sp.pass_total,
            &mut passes,
        );
        passes.push(Stmt::Pass {
            stream: sp.name.clone(),
            count,
        });
    }
    let body = vec![Stmt::IfStmt {
        arms: vec![(format!("not ({cs_guard})"), vec![Stmt::Par(passes)])],
        else_skip: true,
    }];
    parfor_nest(plan, &dims, body)
}

/// The computation processes.
fn computation_processes(plan: &SystolicProgram) -> Vec<Stmt> {
    let dims: Vec<(usize, Affine, Affine)> = (0..plan.r - 1)
        .map(|d| (d, plan.ps_min[d].clone(), plan.ps_max[d].clone()))
        .collect();
    let y = coord_point(plan);
    let mut body = Vec::new();
    body.push(Stmt::IntDecl {
        names: plan.streams.iter().map(|s| s.name.clone()).collect(),
    });

    let (first, last) = piecewise_pair(plan, "x", &plan.first, &plan.last, &mut body);

    // Loads.
    for sp in &plan.streams {
        if let StreamKind::Stationary { .. } = sp.kind {
            let c = piecewise_count(plan, &format!("load_{}", sp.name), &sp.drain, &mut body);
            body.push(Stmt::Load {
                stream: sp.name.clone(),
                count: c,
            });
        }
    }
    // Soaks.
    for sp in &plan.streams {
        if sp.kind == StreamKind::Moving {
            let c = piecewise_count(plan, &format!("soak_{}", sp.name), &sp.soak, &mut body);
            body.push(Stmt::Pass {
                stream: sp.name.clone(),
                count: c,
            });
        }
    }
    // The repeater.
    body.push(Stmt::Repeater {
        first,
        last,
        inc: point::fmt_point(&plan.increment),
        body: render_basic_statement(plan),
    });
    // Drains.
    for sp in &plan.streams {
        if sp.kind == StreamKind::Moving {
            let c = piecewise_count(plan, &format!("drain_{}", sp.name), &sp.drain, &mut body);
            body.push(Stmt::Pass {
                stream: sp.name.clone(),
                count: c,
            });
        }
    }
    // Recoveries.
    for sp in &plan.streams {
        if let StreamKind::Stationary { .. } = sp.kind {
            let c = piecewise_count(plan, &format!("rec_{}", sp.name), &sp.soak, &mut body);
            body.push(Stmt::Recover {
                stream: sp.name.clone(),
                count: c,
            });
        }
    }
    let _ = y;
    parfor_nest(plan, &dims, body)
}

/// Channel declarations: per stream, ranges extended by one position in
/// each flow direction (the i/o fringe).
fn chan_decls(plan: &SystolicProgram) -> Vec<Stmt> {
    plan.streams
        .iter()
        .map(|sp| {
            let dims: Vec<(String, String)> = (0..plan.r - 1)
                .map(|d| {
                    let lo = plan.ps_min[d].clone();
                    let hi = plan.ps_max[d].clone();
                    let (lo, hi) = match sp.unit_flow[d].signum() {
                        1 => (lo, hi + Affine::int(1)),
                        -1 => (lo - Affine::int(1), hi),
                        _ => (lo, hi),
                    };
                    (aff(plan, &lo), aff(plan, &hi))
                })
                .collect();
            Stmt::ChanDecl {
                name: format!("{}_chan", sp.name),
                dims,
            }
        })
        .collect()
}

/// Buffer channel declarations for fractional-flow streams
/// (`chan b_buff[0..n]`, Appendix D).
fn buff_chan_decls(plan: &SystolicProgram) -> Vec<Stmt> {
    plan.streams
        .iter()
        .filter(|sp| sp.denominator > 1)
        .map(|sp| {
            let dims: Vec<(String, String)> = (0..plan.r - 1)
                .map(|d| (aff(plan, &plan.ps_min[d]), aff(plan, &plan.ps_max[d])))
                .collect();
            Stmt::ChanDecl {
                name: format!("{}_buff", sp.name),
                dims,
            }
        })
        .collect()
}

/// Lower a full plan to the abstract-syntax program.
pub fn lower(plan: &SystolicProgram) -> Program {
    let mut items = Vec::new();
    items.push(Stmt::Comment(format!(
        "systolic program for {} (step {:?}, increment {})",
        plan.source.name,
        plan.array.step,
        point::fmt_point(&plan.increment),
    )));
    items.extend(chan_decls(plan));
    items.extend(buff_chan_decls(plan));

    let mut par = Vec::new();
    par.push(Stmt::Comment("Input Processes".into()));
    for sp in &plan.streams {
        par.extend(io_processes(plan, sp, true));
    }
    let mut bufs = Vec::new();
    for sp in &plan.streams {
        bufs.extend(internal_buffers(plan, sp));
    }
    bufs.extend(external_buffers(plan));
    if !bufs.is_empty() {
        par.push(Stmt::Comment("Buffer Processes".into()));
        par.extend(bufs);
    }
    par.push(Stmt::Comment("Computation Processes".into()));
    par.extend(computation_processes(plan));
    par.push(Stmt::Comment("Output Processes".into()));
    for sp in &plan.streams {
        par.extend(io_processes(plan, sp, false));
    }
    items.push(Stmt::Par(par));
    Program {
        name: plan.source.name.clone(),
        items,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_core::{compile, Options};
    use systolic_synthesis::placement::paper;

    fn plan_for(
        pair: (
            systolic_ir::SourceProgram,
            systolic_synthesis::SystolicArray,
        ),
    ) -> SystolicProgram {
        let (p, a) = pair;
        compile(&p, &a, &Options::default()).unwrap()
    }

    fn flatten(s: &Stmt, out: &mut Vec<Stmt>) {
        out.push(s.clone());
        match s {
            Stmt::Par(xs) | Stmt::Seq(xs) => xs.iter().for_each(|x| flatten(x, out)),
            Stmt::ParFor { body, .. } | Stmt::For { body, .. } | Stmt::Repeater { body, .. } => {
                body.iter().for_each(|x| flatten(x, out))
            }
            Stmt::IfStmt { arms, .. } => arms
                .iter()
                .for_each(|(_, b)| b.iter().for_each(|x| flatten(x, out))),
            _ => {}
        }
    }

    fn all_stmts(p: &Program) -> Vec<Stmt> {
        let mut out = Vec::new();
        p.items.iter().for_each(|s| flatten(s, &mut out));
        out
    }

    #[test]
    fn d1_program_structure() {
        let plan = plan_for(paper::polyprod_d1());
        let prog = lower(&plan);
        let stmts = all_stmts(&prog);
        // load a, n - col; recover a, col (Appendix D.1.7).
        assert!(stmts.iter().any(|s| matches!(s,
            Stmt::Load { stream, count } if stream == "a" && count == "n - col")));
        assert!(stmts.iter().any(|s| matches!(s,
            Stmt::Recover { stream, count } if stream == "a" && count == "col")));
        // pass c, col before and pass c, n - col after the repeater.
        assert!(stmts.iter().any(|s| matches!(s,
            Stmt::Pass { stream, count } if stream == "c" && count == "col")));
        assert!(stmts.iter().any(|s| matches!(s,
            Stmt::Pass { stream, count } if stream == "c" && count == "n - col")));
        // The repeater {(col,0) (col,n) (0,1)}.
        assert!(stmts.iter().any(|s| matches!(s,
            Stmt::Repeater { first, last, inc, .. }
                if first == "(col, 0)" && last == "(col, n)" && inc == "(0,1)")));
        // One internal buffer for b: the explicit D.1.7 loop form.
        assert!(stmts.iter().any(|s| matches!(s,
            Stmt::For { hi, .. } if hi == "n + 1")));
        assert!(stmts.iter().any(|s| matches!(s,
            Stmt::Send { value, chan } if value == "foo" && chan == "b_buff[col]")));
        // The cell reads b from the buffer channel, not b_chan.
        assert!(stmts.iter().any(|s| matches!(s,
            Stmt::Recv { var, chan } if var == "b" && chan == "b_buff[col]")));
        assert!(stmts.iter().any(|s| matches!(s,
            Stmt::ChanDecl { name, .. } if name == "b_buff")));
        // io repeaters {0 n 1} for b, {0 2n 1} for c.
        assert!(stmts.iter().any(|s| matches!(s,
            Stmt::SendRepeater { stream, first, last, .. }
                if stream == "b" && first == "0" && last == "n")));
        assert!(stmts.iter().any(|s| matches!(s,
            Stmt::SendRepeater { stream, first, last, .. }
                if stream == "c" && first == "0" && last == "2*n")));
    }

    #[test]
    fn d2_reversed_b_repeater() {
        let plan = plan_for(paper::polyprod_d2());
        let prog = lower(&plan);
        let stmts = all_stmts(&prog);
        // b's io repeater is {n 0 -1} (Appendix D.2.4).
        assert!(stmts.iter().any(|s| matches!(s,
            Stmt::SendRepeater { stream, first, last, inc, .. }
                if stream == "b" && first == "n" && last == "0" && inc == "-1")));
        // first/last are piecewise: an AssignIf with two arms exists.
        assert!(stmts.iter().any(|s| matches!(s,
            Stmt::AssignIf { target, arms, .. }
                if target.contains("first_x") && arms.len() == 2)));
    }

    #[test]
    fn e1_channels_and_repeaters() {
        let plan = plan_for(paper::matmul_e1());
        let prog = lower(&plan);
        let stmts = all_stmts(&prog);
        // a_chan[0..n, 0..n+1] (flow (0,1) extends dim 1).
        assert!(stmts.iter().any(|s| match s {
            Stmt::ChanDecl { name, dims } =>
                name == "a_chan"
                    && dims == &vec![("0".into(), "n".into()), ("0".into(), "n + 1".into())],
            _ => false,
        }));
        // The repeater {(col,row,0) (col,row,n) (0,0,1)}.
        assert!(stmts.iter().any(|s| matches!(s,
            Stmt::Repeater { first, last, inc, .. }
                if first == "(col, row, 0)" && last == "(col, row, n)" && inc == "(0,0,1)")));
        // load c, n - col and recover c, col (E.1.7).
        assert!(stmts.iter().any(|s| matches!(s,
            Stmt::Load { stream, count } if stream == "c" && count == "n - col")));
        assert!(stmts.iter().any(|s| matches!(s,
            Stmt::Recover { stream, count } if stream == "c" && count == "col")));
        // No buffer section for E.1.
        assert!(!stmts
            .iter()
            .any(|s| matches!(s, Stmt::Comment(c) if c == "Buffer Processes")));
    }

    #[test]
    fn e2_has_external_buffers_and_null_alternatives() {
        let plan = plan_for(paper::matmul_e2());
        let prog = lower(&plan);
        let stmts = all_stmts(&prog);
        assert!(stmts
            .iter()
            .any(|s| matches!(s, Stmt::Comment(c) if c == "Buffer Processes")));
        // Null alternatives: AssignIf with else_null for first/last.
        assert!(stmts.iter().any(|s| matches!(s,
            Stmt::AssignIf { target, else_null: true, arms }
                if target.contains("first_x") && arms.len() == 3)));
        // The basic statement sends c to c_chan[col - 1, row - 1].
        assert!(stmts.iter().any(|s| matches!(s,
            Stmt::Send { value, chan }
                if value == "c" && chan == "c_chan[col - 1, row - 1]")));
        // And receives a from a_chan[col, row].
        assert!(stmts.iter().any(|s| matches!(s,
            Stmt::Recv { var, chan } if var == "a" && chan == "a_chan[col, row]")));
    }

    #[test]
    fn e2_io_exclusion_shrinks_a_range() {
        let plan = plan_for(paper::matmul_e2());
        let prog = lower(&plan);
        let stmts = all_stmts(&prog);
        // Stream c has two io dims; the second (dim 1) excludes dim 0's
        // corner: a parfor over col with range shrunk by one.
        let shrunk = stmts.iter().any(|s| match s {
            Stmt::ParFor { lo, hi, .. } => {
                (lo == "-n + 1" && hi == "n") || (lo == "-n" && hi == "n - 1")
            }
            _ => false,
        });
        assert!(shrunk, "expected an exclusion-shrunk parfor range");
    }

    #[test]
    fn program_sizes_are_substantial() {
        for (label, p, a) in paper::all() {
            let plan = compile(&p, &a, &Options::default()).unwrap();
            let prog = lower(&plan);
            assert!(prog.size() > 25, "{label}: size {}", prog.size());
        }
    }
}
