//! # systolic-ast
//!
//! The target abstract syntax of the systolizing compiler (Sec. 4,
//! Appendix C) and its code generators.
//!
//! - [`syntax`] — the statement forms the final programs of Appendices
//!   D.1.7 / D.2.7 / E.1.7 / E.2.7 are built from;
//! - [`lower`] — assembly of a compiled plan into a full program
//!   (channel declarations; input, buffer, computation, and output
//!   processes under `par`);
//! - [`printers`] — three renderings from the same tree: the paper's
//!   notation, occam-like, and C-with-communication-directives.

pub mod lower;
pub mod printers;
pub mod syntax;

pub use lower::lower;
pub use printers::{c_style, occam_style, paper_style};
pub use syntax::{Program, Stmt};
