//! The target abstract syntax (Sec. 4 and Appendix C).
//!
//! "Our systolic programs are expressed in an abstract syntax that is
//! easily translated to any distributed programming language" — the
//! constructs required are arrays of processes (`parfor`), arrays of
//! channels, synchronous communication, and ordinary sequential glue.
//! Expressions are carried as already-rendered strings (they are linear
//! expressions over problem sizes and process coordinates, rendered once
//! by the lowering pass); the printers differ in the *structure* syntax.

/// A whole target program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Program {
    pub name: String,
    pub items: Vec<Stmt>,
}

/// Target statements.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    Comment(String),
    /// `chan name[lo0..hi0, lo1..hi1, ...]`
    ChanDecl {
        name: String,
        dims: Vec<(String, String)>,
    },
    /// `int a, b, c`
    IntDecl {
        names: Vec<String>,
    },
    /// `(int,...,int) first, last` — tuple-valued locals.
    TupleDecl {
        arity: usize,
        names: Vec<String>,
    },
    /// Parallel composition of arbitrary processes.
    Par(Vec<Stmt>),
    /// Sequential composition.
    Seq(Vec<Stmt>),
    /// `parfor var from lo to hi do body` — an array of processes.
    ParFor {
        var: String,
        lo: String,
        hi: String,
        body: Vec<Stmt>,
    },
    /// An ordinary sequential counted loop.
    For {
        var: String,
        lo: String,
        hi: String,
        body: Vec<Stmt>,
    },
    /// `target := if g0 -> e0 [] g1 -> e1 [] (else -> null) fi`
    AssignIf {
        target: String,
        arms: Vec<(String, String)>,
        else_null: bool,
    },
    /// `target := value`
    Assign {
        target: String,
        value: String,
    },
    /// `send s {first last inc} to chan` — an i/o repeater (Sec. 4.2).
    SendRepeater {
        stream: String,
        first: String,
        last: String,
        inc: String,
        chan: String,
    },
    /// `receive s {first last inc} from chan`.
    RecvRepeater {
        stream: String,
        first: String,
        last: String,
        inc: String,
        chan: String,
    },
    /// `send value to chan`.
    Send {
        value: String,
        chan: String,
    },
    /// `receive var from chan`.
    Recv {
        var: String,
        chan: String,
    },
    /// `pass s, count` (Appendix C).
    Pass {
        stream: String,
        count: String,
    },
    /// `load s, count` = receive-and-keep, then pass.
    Load {
        stream: String,
        count: String,
    },
    /// `recover s, count` = pass, then send own.
    Recover {
        stream: String,
        count: String,
    },
    /// The computation repeater `{first last increment}` with the basic
    /// statement as body.
    Repeater {
        first: String,
        last: String,
        inc: String,
        body: Vec<Stmt>,
    },
    /// `if g -> stmts [] ... fi` at statement level.
    IfStmt {
        arms: Vec<(String, Vec<Stmt>)>,
        else_skip: bool,
    },
    Skip,
}

impl Stmt {
    /// Recursively count statements (structure metric used in tests).
    pub fn size(&self) -> usize {
        1 + match self {
            Stmt::Par(xs) | Stmt::Seq(xs) => xs.iter().map(Stmt::size).sum(),
            Stmt::ParFor { body, .. } | Stmt::For { body, .. } | Stmt::Repeater { body, .. } => {
                body.iter().map(Stmt::size).sum()
            }
            Stmt::IfStmt { arms, .. } => arms
                .iter()
                .map(|(_, b)| b.iter().map(Stmt::size).sum::<usize>())
                .sum(),
            _ => 0,
        }
    }
}

impl Program {
    pub fn size(&self) -> usize {
        self.items.iter().map(Stmt::size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_counts_nested_statements() {
        let p = Program {
            name: "t".into(),
            items: vec![Stmt::Par(vec![
                Stmt::Skip,
                Stmt::ParFor {
                    var: "col".into(),
                    lo: "0".into(),
                    hi: "n".into(),
                    body: vec![Stmt::Pass {
                        stream: "a".into(),
                        count: "n".into(),
                    }],
                },
            ])],
        };
        assert_eq!(p.size(), 4);
    }
}
