//! Offline shim for the `parking_lot` API subset used by this workspace.
//!
//! The build environment has no network access to crates.io, so the
//! workspace patches `parking_lot` to this crate (see `[patch.crates-io]`
//! in the root `Cargo.toml`). It wraps `std::sync` primitives behind
//! parking_lot's ergonomics: `Mutex::lock` returns the guard directly
//! (poisoning is swallowed — a panicked holder does not wedge the lock),
//! and `Condvar::wait_for` takes the guard by `&mut` instead of by value.
//!
//! Only the surface the runtime crates use is provided: `Mutex`,
//! `MutexGuard`, `Condvar` (`wait_for`, `notify_one`, `notify_all`), and
//! `WaitTimeoutResult::timed_out`.

use std::ops::{Deref, DerefMut};
use std::time::Duration;

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait_for` can temporarily move the std guard
    // out (std's wait APIs take the guard by value).
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard moved during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard moved during wait")
    }
}

#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard moved during wait");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(std_guard);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard moved during wait");
        let (std_guard, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(std_guard);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let t0 = Instant::now();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
        assert!(t0.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn notify_wakes_waiter() {
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (m.clone(), cv.clone());
        let t = std::thread::spawn(move || {
            let mut g = m2.lock();
            while !*g {
                let r = cv2.wait_for(&mut g, Duration::from_secs(5));
                assert!(!r.timed_out());
            }
        });
        std::thread::sleep(Duration::from_millis(5));
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }
}
