//! The benchmark trajectory harness: runs the simulate suite (the four
//! appendix designs plus `programs/fir.sys`, at several problem sizes)
//! and appends a labeled snapshot to `BENCH_simulate.json` at the repo
//! root with wall-clock, rounds, messages, and steps per configuration.
//!
//! Each PR reruns this binary; the committed file accumulates one
//! snapshot per PR, so the simulator's performance trajectory is the
//! diff between adjacent snapshots (rounds/messages/steps must never
//! change — they are pinned by `tests/determinism.rs`):
//!
//! ```sh
//! cargo run --release -p systolic-bench --bin simulate_trajectory -- <label>
//! ```
//!
//! Wall-clock is the minimum over [`ITERS`] runs (the usual noise-robust
//! estimator); rounds/messages/steps are deterministic and identical
//! across runs.
//!
//! The timed runs go through `run_plan_batch` under an explicit FIFO
//! `SchedulePolicy`: since PR 5 the trajectory measures the steady-state
//! batching fast path (see `docs/scheduler.md`), and since PR 6 the
//! ProcIR optimizer rides along (`OptMode::Auto`, see
//! `docs/process-ir.md`) — relay chains fuse into delay rings, so the
//! timed module can be structurally smaller than the elaborated one.
//! The FIFO policy keeps guarding the schedule hook's
//! zero-cost-when-inert contract. Since PR 8 the timed pass additionally
//! takes the wavefront executor (see `docs/wavefront.md`): topologically
//! staged chunk sweeps over traffic-wide rings replace the pid-order
//! macro-sweep, and every timed run asserts the wavefront gate engaged.
//! Since PR 10 the timed pass runs with `KernelMode::Auto`: eligible
//! wavefront chunks execute through the compiled struct-of-arrays
//! kernel (see `docs/kernels.md`) instead of scalar macro-steps; stores
//! and logical counts stay invariant, only wall clock moves.
//! The *recorded* statistics stay those of the unbatched rendezvous
//! engine — an untimed baseline pass per configuration supplies them, so
//! snapshot rounds remain comparable across the whole trajectory — and
//! every timed pass is asserted to engage batching and recover a store
//! bit-identical to that baseline. When the optimizer left the module
//! untouched the logical `messages`/`steps` counts must also be
//! invariant; when it fused chains, the post-fusion counts are recorded
//! as `opt_*` fields beside the baseline ones, so the snapshot shows the
//! structural shrink as well as the speedup. A separate observed pass (outside the timing loop) contributes
//! the receiver-wait and messages-per-round histograms, and
//! double-checks that attaching recorders leaves rounds/messages/steps
//! untouched.
//!
//! Since PR 7 each entry also records `elab_cold_ms` (a full two-phase
//! elaboration — skeleton compile + instantiation — into a fresh module
//! store) and `elab_warm_ms` (the cached lookup every later run of the
//! same configuration pays); at the largest matmul size the warm path
//! must beat cold by 10x (see `docs/elaboration.md`). Both fields are
//! covered by the `--gate-pct` gate; prior snapshots without them are
//! skipped.
//!
//! Extra modes:
//!
//! - `--gate-pct P` (default 10): before appending, each configuration's
//!   new wall-clock is compared against the best prior snapshot; any
//!   configuration more than `P` percent slower fails the run (exit 1,
//!   nothing written). The gate is skipped when the file has no prior
//!   snapshots.
//! - `--quick`: CI smoke mode — one configuration (matmul E.1, n = 12),
//!   one baseline pass and one batched pass, assert the invariance
//!   contract, print, and exit without timing anything or touching
//!   `BENCH_simulate.json`.
//! - `--elab-smoke`: CI cache mode — cold/warm elaboration of matmul
//!   E.1/E.2 at n = 24, assert the 10x bar, and write the measurements
//!   plus the module-store counters to `target/elab-cache-stats.json`
//!   (uploaded as a CI artifact). No touching `BENCH_simulate.json`.

use std::fmt::Write as _;
use std::time::Instant;
use systolic_core::{compile, Options};
use systolic_interp::{
    run_plan_batch_kernel, run_plan_recorded, run_plan_scheduled, ElabOptions, ModuleStore,
    SystolicRun,
};
use systolic_ir::HostStore;
use systolic_math::Env;
use systolic_runtime::{
    shared, BatchMode, ChannelPolicy, FifoPolicy, KernelMode, MetricsRecorder, OptMode, RunStats,
    WavefrontMode,
};
use systolic_synthesis::placement::paper;

const ITERS: usize = 25;

type DesignFn = fn() -> (
    systolic_ir::SourceProgram,
    systolic_synthesis::SystolicArray,
);

struct Entry {
    design: &'static str,
    n: i64,
    wall_ms: f64,
    /// Cold two-phase elaboration (skeleton compile + instantiation into
    /// an empty module store) and the warm lookup the executors pay on
    /// every later run of the same configuration (an Arc clone out of
    /// the store). Both are min-over-[`ITERS`] wall-clock.
    elab_cold_ms: f64,
    elab_warm_ms: f64,
    processes: usize,
    rounds: u64,
    messages: u64,
    steps: u64,
    /// Post-fusion stats and fused-relay count when the optimizer
    /// engaged (`None`: module left untouched, counts invariant).
    opt: Option<(RunStats, usize)>,
    /// (receiver wait in rounds, transfer count) — from the observed pass.
    wait_hist: Vec<(u64, u64)>,
    /// (messages in one round, round count) — the occupancy profile.
    msgs_per_round_hist: Vec<(u64, u64)>,
}

fn pairs_json(pairs: &[(u64, u64)]) -> String {
    let body: Vec<String> = pairs.iter().map(|(a, b)| format!("[{a}, {b}]")).collect();
    format!("[{}]", body.join(", "))
}

/// One compiled configuration, ready to time.
struct Prepared {
    label: &'static str,
    n: i64,
    plan: systolic_core::SystolicProgram,
    env: Env,
    store: HostStore,
}

fn prepare(label: &'static str, mk: DesignFn, n: i64) -> Prepared {
    let (p, a) = mk();
    let plan = compile(&p, &a, &Options::default()).unwrap();
    let mut env = Env::new();
    for &sz in &p.sizes {
        env.bind(sz, n);
    }
    let mut store = HostStore::allocate(&p, &env);
    let inputs: &[&str] = if p.name.starts_with("fir") {
        &["h", "x"]
    } else {
        &["a", "b"]
    };
    for (i, name) in inputs.iter().enumerate() {
        store.fill_random(name, i as u64 + 1, -9, 9);
    }
    Prepared {
        label,
        n,
        plan,
        env,
        store,
    }
}

/// The shipped program file, through the text front end: its long relay
/// pipes are the second chain-fusion witness beside matmul E.2.
fn fir_sys() -> (
    systolic_ir::SourceProgram,
    systolic_synthesis::SystolicArray,
) {
    let p = systolic_lang::parse(include_str!("../../../../programs/fir.sys")).unwrap();
    let a = systolic_synthesis::derive_array(&p, 2, 4).unwrap();
    (p, a)
}

/// The shipped polynomial-product file, through the text front end: the
/// Appendix D design as a *parsed* program rather than the in-crate
/// constructor, so the trajectory also covers the `.sys` path end to end.
fn polyprod_sys() -> (
    systolic_ir::SourceProgram,
    systolic_synthesis::SystolicArray,
) {
    let p = systolic_lang::parse(include_str!("../../../../programs/polyprod.sys")).unwrap();
    let a = systolic_synthesis::derive_array(&p, 2, 4).unwrap();
    (p, a)
}

/// The untimed unbatched baseline: supplies the snapshot statistics
/// (round counts comparable with every prior snapshot) and the reference
/// store for the invariance assertion.
fn baseline_run(c: &Prepared) -> (RunStats, HostStore) {
    let run = run_plan_scheduled(
        &c.plan,
        &c.env,
        &c.store,
        ChannelPolicy::Rendezvous,
        &ElabOptions::default(),
        Some(Box::new(FifoPolicy)),
        &[],
    )
    .unwrap();
    (run.stats, run.store)
}

/// One timed batched pass; asserts the fast path engaged and the store
/// matches the unbatched baseline bit for bit. With `OptMode::Off` (or
/// when the optimizer leaves the module untouched) the logical counts
/// must also be invariant; a fused run's stats legitimately describe
/// the smaller module and are returned for the snapshot's `opt_*`
/// fields.
fn timed_run(
    c: &Prepared,
    base: &(RunStats, HostStore),
    opt: OptMode,
    wavefront: WavefrontMode,
    kernel: KernelMode,
) -> (f64, SystolicRun) {
    let t0 = Instant::now();
    let run = run_plan_batch_kernel(
        &c.plan,
        &c.env,
        &c.store,
        ChannelPolicy::Rendezvous,
        &ElabOptions::default(),
        BatchMode::Auto,
        opt,
        wavefront,
        kernel,
        Some(Box::new(FifoPolicy)),
        &[],
    )
    .unwrap();
    let dt = t0.elapsed().as_secs_f64() * 1e3;
    assert!(run.batched, "{} n={}: batching must engage", c.label, c.n);
    assert_eq!(
        run.wavefront,
        wavefront != WavefrontMode::Off,
        "{} n={}: the wavefront gate disagrees with the requested mode",
        c.label,
        c.n
    );
    if run.opt.is_none() {
        assert_eq!(
            (run.stats.messages, run.stats.steps, run.stats.processes),
            (base.0.messages, base.0.steps, base.0.processes),
            "{} n={}: batching changed the logical counts",
            c.label,
            c.n
        );
    }
    assert_eq!(
        run.store, base.1,
        "{} n={}: the fast path changed the result",
        c.label, c.n
    );
    (dt, run)
}

/// Cold vs warm elaboration wall-clock for one configuration. Cold pays
/// the full two-phase build — skeleton compile plus instantiation — into
/// a fresh [`ModuleStore`]; warm is the path every later run of the same
/// configuration takes: a keyed lookup returning the cached
/// `Arc<ProcIrModule>`. Min over `iters` runs of each.
fn elab_times(c: &Prepared, iters: usize) -> (f64, f64) {
    let opts = ElabOptions::default();
    let (mut cold, mut warm) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..iters {
        let ms = ModuleStore::new();
        let t0 = Instant::now();
        ms.module(&c.plan, &c.env, &c.store, &opts).unwrap();
        cold = cold.min(t0.elapsed().as_secs_f64() * 1e3);
        let t0 = Instant::now();
        ms.module(&c.plan, &c.env, &c.store, &opts).unwrap();
        warm = warm.min(t0.elapsed().as_secs_f64() * 1e3);
        let s = ms.stats();
        assert_eq!(
            (s.module_misses, s.module_hits),
            (1, 1),
            "{} n={}: the second lookup must be a cache hit",
            c.label,
            c.n
        );
    }
    (cold, warm)
}

fn observed_entry(
    c: &Prepared,
    wall_ms: f64,
    elab: (f64, f64),
    stats: RunStats,
    opt: Option<(RunStats, usize)>,
) -> Entry {
    // Observed pass, outside the timing loop: histograms for the
    // snapshot, plus the invariance check.
    let (metrics, erased) = shared(MetricsRecorder::new());
    let observed = run_plan_recorded(
        &c.plan,
        &c.env,
        &c.store,
        ChannelPolicy::Rendezvous,
        &ElabOptions::default(),
        &[erased],
    )
    .unwrap();
    assert_eq!(
        observed.stats, stats,
        "recorders must not perturb rounds/messages/steps"
    );
    let report = metrics.lock().report();

    Entry {
        design: c.label,
        n: c.n,
        wall_ms,
        elab_cold_ms: elab.0,
        elab_warm_ms: elab.1,
        processes: stats.processes,
        rounds: stats.rounds,
        messages: stats.messages,
        steps: stats.steps,
        opt,
        wait_hist: report.wait_hist,
        msgs_per_round_hist: report.msgs_per_time_hist,
    }
}

/// Best prior timings per (design, n), parsed from the flat snapshot
/// JSON the harness itself writes (no serde in the workspace). The
/// elaboration fields only exist from the `pr7-symbolic-elab` snapshot
/// on; older lines simply contribute `None` and the gate skips them.
struct Prior {
    design: String,
    n: i64,
    wall_ms: f64,
    elab_cold_ms: Option<f64>,
    elab_warm_ms: Option<f64>,
}

fn prior_best(old: &str) -> Vec<Prior> {
    fn fold(slot: &mut Option<f64>, v: Option<f64>) {
        if let Some(v) = v {
            *slot = Some(slot.map_or(v, |w| w.min(v)));
        }
    }
    let mut best: Vec<Prior> = Vec::new();
    for line in old.lines() {
        let Some(d0) = line.find("\"design\": \"") else {
            continue;
        };
        let rest = &line[d0 + 11..];
        let Some(d1) = rest.find('"') else { continue };
        let design = rest[..d1].to_string();
        let field = |name: &str| -> Option<f64> {
            let i = line.find(name)? + name.len();
            let tail = &line[i..];
            let end = tail
                .find(|ch: char| !(ch.is_ascii_digit() || ch == '.' || ch == '-'))
                .unwrap_or(tail.len());
            tail[..end].parse().ok()
        };
        let (Some(n), Some(wall)) = (field("\"n\": "), field("\"wall_ms\": ")) else {
            continue;
        };
        let n = n as i64;
        let (cold, warm) = (field("\"elab_cold_ms\": "), field("\"elab_warm_ms\": "));
        match best.iter_mut().find(|p| p.design == design && p.n == n) {
            Some(p) => {
                p.wall_ms = p.wall_ms.min(wall);
                fold(&mut p.elab_cold_ms, cold);
                fold(&mut p.elab_warm_ms, warm);
            }
            None => best.push(Prior {
                design,
                n,
                wall_ms: wall,
                elab_cold_ms: cold,
                elab_warm_ms: warm,
            }),
        }
    }
    best
}

/// CI smoke mode: one small configuration, the full invariance contract,
/// no timing assertions and no file writes.
fn quick_smoke() {
    let c = prepare("matmul-E.1", paper::matmul_e1, 12);
    let base = baseline_run(&c);
    // With the optimizer off the full invariance contract holds.
    let _ = timed_run(&c, &base, OptMode::Off, WavefrontMode::Off, KernelMode::Off);
    println!(
        "quick smoke OK: {} n={} — batched run matches the rendezvous \
         baseline ({} messages, {} steps, store bit-identical)",
        c.label, c.n, base.0.messages, base.0.steps
    );
    // The wavefront executor holds the same contract on both chunk
    // modes: stores bit-identical to the rendezvous baseline, logical
    // messages/steps invariant (asserted inside `timed_run`).
    for mode in [WavefrontMode::Auto, WavefrontMode::Par] {
        let (_, run) = timed_run(&c, &base, OptMode::Off, mode, KernelMode::Off);
        assert!(run.wavefront);
        println!(
            "quick smoke OK: {} n={} — wavefront run ({mode:?}) matches the \
             rendezvous baseline (store bit-identical, counts invariant)",
            c.label, c.n
        );
    }
    // The compiled-kernel gate (see `docs/kernels.md`): `--kernel auto`
    // must actually fuse waves on E.1, `--kernel off` must run the same
    // waves scalar — both bit-identical to the baseline (asserted inside
    // `timed_run`).
    for (mode, want_fused) in [(KernelMode::Auto, true), (KernelMode::Off, false)] {
        let (_, run) = timed_run(&c, &base, OptMode::Off, WavefrontMode::Auto, mode);
        let k = run.kernel.expect("wavefront runs carry a kernel report");
        assert_eq!(
            k.waves_fused > 0,
            want_fused,
            "{} n={}: kernel mode {mode:?} (report: {k:?})",
            c.label,
            c.n
        );
        println!(
            "quick smoke OK: {} n={} — kernel {} run matches the rendezvous \
             baseline ({} waves fused, {} kernel iterations)",
            c.label,
            c.n,
            if want_fused { "auto" } else { "off" },
            k.waves_fused,
            k.iterations
        );
    }
    // And with it on, E.2 fuses its relay chains, stays bit-identical,
    // and the systolic-opt-v1 mapping report round-trips through JSON.
    let c = prepare("matmul-E.2", paper::matmul_e2, 8);
    let base = baseline_run(&c);
    let (_, run) = timed_run(&c, &base, OptMode::Auto, WavefrontMode::Off, KernelMode::Off);
    let report = run.opt.expect("E.2 n=8 must fuse relay chains");
    let j = report.to_json();
    assert!(j.contains("\"schema\": \"systolic-opt-v1\""), "{j}");
    let back = systolic_runtime::OptReport::from_json(&j).expect("parseable report");
    assert_eq!(back.to_json(), j, "mapping report must round-trip");
    println!(
        "quick smoke OK: {} n={} — optimizer fused {} relays \
         ({} -> {} processes), store bit-identical, report round-trips",
        c.label,
        c.n,
        report.fused_relays(),
        report.processes_before,
        report.processes_after
    );
}

/// CI cache mode: the acceptance measurement for two-phase elaboration,
/// plus a machine-readable artifact with the module-store counters.
fn elab_smoke() {
    let opts = ElabOptions::default();
    let mut measured = Vec::new();
    for (label, mk) in [
        ("matmul-E.1", paper::matmul_e1 as DesignFn),
        ("matmul-E.2", paper::matmul_e2 as DesignFn),
    ] {
        let c = prepare(label, mk, 24);
        let (cold, warm) = elab_times(&c, 5);
        assert!(
            cold >= 10.0 * warm,
            "{label} n=24: warm elaboration {warm:.4} ms is not 10x faster than cold {cold:.4} ms"
        );
        println!(
            "elab smoke OK: {label} n=24 — cold {cold:.3} ms, warm {warm:.4} ms ({:.0}x)",
            cold / warm
        );
        // Drive the *global* store too, so the artifact's counters show
        // the executors' shared cache at work (miss, then hits).
        for _ in 0..3 {
            ModuleStore::global()
                .module(&c.plan, &c.env, &c.store, &opts)
                .unwrap();
        }
        measured.push((label, cold, warm));
    }
    let mut body = String::from("{\n  \"schema\": \"systolic-elab-cache-v1\",\n  \"configs\": [\n");
    for (i, (label, cold, warm)) in measured.iter().enumerate() {
        let _ = writeln!(
            body,
            "    {{\"design\": \"{label}\", \"n\": 24, \"elab_cold_ms\": {cold:.4}, \
             \"elab_warm_ms\": {warm:.4}}}{}",
            if i + 1 < measured.len() { "," } else { "" }
        );
    }
    let _ = writeln!(
        body,
        "  ],\n  \"cache\": {}\n}}",
        ModuleStore::global().stats().to_json()
    );
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = std::path::Path::new(root).join("target/elab-cache-stats.json");
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    std::fs::write(&path, body).expect("write elab-cache-stats.json");
    println!("wrote {}", path.display());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--quick") {
        quick_smoke();
        return;
    }
    if args.iter().any(|a| a == "--elab-smoke") {
        elab_smoke();
        return;
    }
    let gate_pct: f64 = args
        .iter()
        .position(|a| a == "--gate-pct")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(10.0);
    let mut label = String::from("current");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--gate-pct" => i += 2,
            a if a.starts_with("--") => i += 1,
            a => {
                label = a.to_string();
                break;
            }
        }
    }

    let suite: [(&'static str, DesignFn, &[i64]); 6] = [
        ("polyprod-D.1", paper::polyprod_d1, &[16, 32, 64]),
        ("polyprod-D.2", paper::polyprod_d2, &[16, 32, 64]),
        ("matmul-E.1", paper::matmul_e1, &[8, 16, 24]),
        ("matmul-E.2", paper::matmul_e2, &[8, 16, 24]),
        ("fir.sys", fir_sys, &[8, 16, 24]),
        ("polyprod.sys", polyprod_sys, &[16, 32, 64]),
    ];

    let configs: Vec<Prepared> = suite
        .iter()
        .flat_map(|&(label, mk, sizes)| sizes.iter().map(move |&n| prepare(label, mk, n)))
        .collect();

    let baselines: Vec<(RunStats, HostStore)> = configs.iter().map(baseline_run).collect();

    // Interleaved passes: visit every configuration once per pass rather
    // than running each one's iterations back to back, so a config's
    // minimum samples ITERS separate moments of the session instead of
    // one burst — a shared-machine noise spike then inflates a single
    // pass, not a whole configuration.
    let mut best = vec![f64::INFINITY; configs.len()];
    let mut opt_stats: Vec<Option<(RunStats, usize)>> = vec![None; configs.len()];
    for _ in 0..ITERS {
        for (i, c) in configs.iter().enumerate() {
            let (dt, run) = timed_run(
                c,
                &baselines[i],
                OptMode::Auto,
                WavefrontMode::Auto,
                KernelMode::Auto,
            );
            if dt < best[i] {
                best[i] = dt;
            }
            if opt_stats[i].is_none() {
                if let Some(r) = &run.opt {
                    opt_stats[i] = Some((run.stats.clone(), r.fused_relays()));
                }
            }
        }
    }

    let mut entries = Vec::new();
    for (i, (c, wall)) in configs.iter().zip(best).enumerate() {
        let elab = elab_times(c, ITERS);
        // The acceptance bar for the two-phase scheme: at the largest
        // matmul size a warm lookup beats a cold elaboration by 10x.
        if c.label.starts_with("matmul") && c.n == 24 {
            assert!(
                elab.0 >= 10.0 * elab.1,
                "{} n=24: warm elaboration {:.4} ms is not 10x faster than cold {:.4} ms",
                c.label,
                elab.1,
                elab.0
            );
        }
        let e = observed_entry(c, wall, elab, baselines[i].0.clone(), opt_stats[i].take());
        let shrink = match &e.opt {
            Some((s, fused)) => format!("  opt: {} procs, {} fused relays", s.processes, fused),
            None => String::new(),
        };
        println!(
            "{:<14} n={:<3} wall {:>9.3} ms  elab {:>8.3}/{:<9.4} ms  procs {:>6}  rounds {:>6}  messages {:>9}  steps {:>9}{}",
            e.design,
            e.n,
            e.wall_ms,
            e.elab_cold_ms,
            e.elab_warm_ms,
            e.processes,
            e.rounds,
            e.messages,
            e.steps,
            shrink
        );
        entries.push(e);
    }

    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = std::path::Path::new(root).join("BENCH_simulate.json");
    let old = std::fs::read_to_string(&path).unwrap_or_default();

    // The regression gate: every configuration must stay within
    // `gate_pct` percent of its best prior snapshot.
    let prior = prior_best(&old);
    let mut violations = Vec::new();
    for e in &entries {
        if let Some(p) = prior.iter().find(|p| p.design == e.design && p.n == e.n) {
            let mut check = |what: &str, new: f64, prior: Option<f64>, slack_ms: f64| {
                let Some(w) = prior else { return };
                let limit = w * (1.0 + gate_pct / 100.0) + slack_ms;
                if new > limit {
                    violations.push(format!(
                        "{} n={}: {what} {new:.3} ms exceeds the {gate_pct:.0}% gate over \
                         the best prior snapshot ({w:.3} ms, limit {limit:.3} ms)",
                        e.design, e.n
                    ));
                }
            };
            check("wall", e.wall_ms, Some(p.wall_ms), 0.0);
            // The elaboration timings are small (the warm lookup is a
            // sub-microsecond Arc clone), so the percentage gate gets a
            // small absolute slack: it still catches the regression that
            // matters — a warm lookup degenerating into a re-elaboration
            // — without tripping on scheduler noise.
            check("cold elab", e.elab_cold_ms, p.elab_cold_ms, 0.2);
            check("warm elab", e.elab_warm_ms, p.elab_warm_ms, 0.2);
        }
    }
    if !violations.is_empty() {
        eprintln!("REGRESSION GATE FAILED — nothing written:");
        for v in &violations {
            eprintln!("  {v}");
        }
        std::process::exit(1);
    }

    // Hand-rolled JSON: the schema is fixed and flat, and the workspace
    // deliberately avoids a serde_json dependency outside criterion.
    let mut snapshot = format!("    {{\"label\": \"{label}\", \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let opt_fields = match &e.opt {
            Some((s, fused)) => format!(
                "\"opt_processes\": {}, \"opt_rounds\": {}, \"opt_messages\": {}, \
                 \"opt_steps\": {}, \"opt_fused_relays\": {}, ",
                s.processes, s.rounds, s.messages, s.steps, fused
            ),
            None => String::new(),
        };
        let _ = writeln!(
            snapshot,
            "      {{\"design\": \"{}\", \"n\": {}, \"wall_ms\": {:.3}, \
             \"elab_cold_ms\": {:.4}, \"elab_warm_ms\": {:.4}, \"processes\": {}, \
             \"rounds\": {}, \"messages\": {}, \"steps\": {}, {}\
             \"wait_hist\": {}, \"msgs_per_round_hist\": {}}}{}",
            e.design,
            e.n,
            e.wall_ms,
            e.elab_cold_ms,
            e.elab_warm_ms,
            e.processes,
            e.rounds,
            e.messages,
            e.steps,
            opt_fields,
            pairs_json(&e.wait_hist),
            pairs_json(&e.msgs_per_round_hist),
            if i + 1 < entries.len() { "," } else { "" }
        );
    }
    snapshot.push_str("    ]}");

    let json = if old.contains("\"snapshots\"") {
        // Append to an existing snapshot file (insert before the closing
        // of the snapshots array).
        let cut = old.rfind("\n  ]\n}").expect("well-formed snapshot file");
        format!("{},\n{snapshot}\n  ]\n}}\n", &old[..cut])
    } else {
        format!("{{\n  \"suite\": \"simulate\",\n  \"snapshots\": [\n{snapshot}\n  ]\n}}\n")
    };
    std::fs::write(&path, json).expect("write BENCH_simulate.json");
    println!("wrote {} (snapshot \"{label}\")", path.display());
}
