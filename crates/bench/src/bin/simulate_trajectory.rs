//! The benchmark trajectory harness: runs the simulate suite (the four
//! appendix designs at several problem sizes) and appends a labeled
//! snapshot to `BENCH_simulate.json` at the repo root with wall-clock,
//! rounds, messages, and steps per configuration.
//!
//! Each PR reruns this binary; the committed file accumulates one
//! snapshot per PR, so the simulator's performance trajectory is the
//! diff between adjacent snapshots (rounds/messages/steps must never
//! change — they are pinned by `tests/determinism.rs`):
//!
//! ```sh
//! cargo run --release -p systolic-bench --bin simulate_trajectory -- <label>
//! ```
//!
//! Wall-clock is the minimum over [`ITERS`] runs (the usual noise-robust
//! estimator); rounds/messages/steps are deterministic and identical
//! across runs.
//!
//! The timed runs go through `run_plan_batch` under an explicit FIFO
//! `SchedulePolicy`: since PR 5 the trajectory measures the steady-state
//! batching fast path (see `docs/scheduler.md`), and the FIFO policy
//! keeps guarding the schedule hook's zero-cost-when-inert contract.
//! The *recorded* statistics stay those of the unbatched rendezvous
//! engine — an untimed baseline pass per configuration supplies them, so
//! snapshot rounds remain comparable across the whole trajectory — and
//! every timed pass is asserted to engage batching and preserve the
//! logical `messages`/`steps` counts and the recovered store bit for
//! bit. A separate observed pass (outside the timing loop) contributes
//! the receiver-wait and messages-per-round histograms, and
//! double-checks that attaching recorders leaves rounds/messages/steps
//! untouched.
//!
//! Two extra modes:
//!
//! - `--gate-pct P` (default 10): before appending, each configuration's
//!   new wall-clock is compared against the best prior snapshot; any
//!   configuration more than `P` percent slower fails the run (exit 1,
//!   nothing written). The gate is skipped when the file has no prior
//!   snapshots.
//! - `--quick`: CI smoke mode — one configuration (matmul E.1, n = 12),
//!   one baseline pass and one batched pass, assert the invariance
//!   contract, print, and exit without timing anything or touching
//!   `BENCH_simulate.json`.

use std::fmt::Write as _;
use std::time::Instant;
use systolic_core::{compile, Options};
use systolic_interp::{run_plan_batch, run_plan_recorded, run_plan_scheduled, ElabOptions};
use systolic_ir::HostStore;
use systolic_math::Env;
use systolic_runtime::{shared, BatchMode, ChannelPolicy, FifoPolicy, MetricsRecorder, RunStats};
use systolic_synthesis::placement::paper;

const ITERS: usize = 25;

type DesignFn = fn() -> (
    systolic_ir::SourceProgram,
    systolic_synthesis::SystolicArray,
);

struct Entry {
    design: &'static str,
    n: i64,
    wall_ms: f64,
    processes: usize,
    rounds: u64,
    messages: u64,
    steps: u64,
    /// (receiver wait in rounds, transfer count) — from the observed pass.
    wait_hist: Vec<(u64, u64)>,
    /// (messages in one round, round count) — the occupancy profile.
    msgs_per_round_hist: Vec<(u64, u64)>,
}

fn pairs_json(pairs: &[(u64, u64)]) -> String {
    let body: Vec<String> = pairs.iter().map(|(a, b)| format!("[{a}, {b}]")).collect();
    format!("[{}]", body.join(", "))
}

/// One compiled configuration, ready to time.
struct Prepared {
    label: &'static str,
    n: i64,
    plan: systolic_core::SystolicProgram,
    env: Env,
    store: HostStore,
}

fn prepare(label: &'static str, mk: DesignFn, n: i64) -> Prepared {
    let (p, a) = mk();
    let plan = compile(&p, &a, &Options::default()).unwrap();
    let mut env = Env::new();
    env.bind(p.sizes[0], n);
    let mut store = HostStore::allocate(&p, &env);
    store.fill_random("a", 1, -9, 9);
    store.fill_random("b", 2, -9, 9);
    Prepared {
        label,
        n,
        plan,
        env,
        store,
    }
}

/// The untimed unbatched baseline: supplies the snapshot statistics
/// (round counts comparable with every prior snapshot) and the reference
/// store for the invariance assertion.
fn baseline_run(c: &Prepared) -> (RunStats, HostStore) {
    let run = run_plan_scheduled(
        &c.plan,
        &c.env,
        &c.store,
        ChannelPolicy::Rendezvous,
        &ElabOptions::default(),
        Some(Box::new(FifoPolicy)),
        &[],
    )
    .unwrap();
    (run.stats, run.store)
}

/// One timed batched pass; asserts the fast path engaged and that the
/// logical counts and the store match the unbatched baseline.
fn timed_run(c: &Prepared, base: &(RunStats, HostStore)) -> f64 {
    let t0 = Instant::now();
    let run = run_plan_batch(
        &c.plan,
        &c.env,
        &c.store,
        ChannelPolicy::Rendezvous,
        &ElabOptions::default(),
        BatchMode::Auto,
        Some(Box::new(FifoPolicy)),
        &[],
    )
    .unwrap();
    let dt = t0.elapsed().as_secs_f64() * 1e3;
    assert!(run.batched, "{} n={}: batching must engage", c.label, c.n);
    assert_eq!(
        (run.stats.messages, run.stats.steps, run.stats.processes),
        (base.0.messages, base.0.steps, base.0.processes),
        "{} n={}: batching changed the logical counts",
        c.label,
        c.n
    );
    assert_eq!(
        run.store, base.1,
        "{} n={}: batching changed the result",
        c.label, c.n
    );
    dt
}

fn observed_entry(c: &Prepared, wall_ms: f64, stats: RunStats) -> Entry {
    // Observed pass, outside the timing loop: histograms for the
    // snapshot, plus the invariance check.
    let (metrics, erased) = shared(MetricsRecorder::new());
    let observed = run_plan_recorded(
        &c.plan,
        &c.env,
        &c.store,
        ChannelPolicy::Rendezvous,
        &ElabOptions::default(),
        &[erased],
    )
    .unwrap();
    assert_eq!(
        observed.stats, stats,
        "recorders must not perturb rounds/messages/steps"
    );
    let report = metrics.lock().report();

    Entry {
        design: c.label,
        n: c.n,
        wall_ms,
        processes: stats.processes,
        rounds: stats.rounds,
        messages: stats.messages,
        steps: stats.steps,
        wait_hist: report.wait_hist,
        msgs_per_round_hist: report.msgs_per_time_hist,
    }
}

/// Best prior wall-clock per (design, n), parsed from the flat snapshot
/// JSON the harness itself writes (no serde in the workspace).
fn prior_best(old: &str) -> Vec<(String, i64, f64)> {
    let mut best: Vec<(String, i64, f64)> = Vec::new();
    for line in old.lines() {
        let Some(d0) = line.find("\"design\": \"") else {
            continue;
        };
        let rest = &line[d0 + 11..];
        let Some(d1) = rest.find('"') else { continue };
        let design = rest[..d1].to_string();
        let field = |name: &str| -> Option<f64> {
            let i = line.find(name)? + name.len();
            let tail = &line[i..];
            let end = tail
                .find(|ch: char| !(ch.is_ascii_digit() || ch == '.' || ch == '-'))
                .unwrap_or(tail.len());
            tail[..end].parse().ok()
        };
        let (Some(n), Some(wall)) = (field("\"n\": "), field("\"wall_ms\": ")) else {
            continue;
        };
        let n = n as i64;
        match best.iter_mut().find(|(d, m, _)| *d == design && *m == n) {
            Some((_, _, w)) if *w <= wall => {}
            Some((_, _, w)) => *w = wall,
            None => best.push((design, n, wall)),
        }
    }
    best
}

/// CI smoke mode: one small configuration, the full invariance contract,
/// no timing assertions and no file writes.
fn quick_smoke() {
    let c = prepare("matmul-E.1", paper::matmul_e1, 12);
    let base = baseline_run(&c);
    let _ = timed_run(&c, &base); // asserts batched + invariant internally
    println!(
        "quick smoke OK: {} n={} — batched run matches the rendezvous \
         baseline ({} messages, {} steps, store bit-identical)",
        c.label, c.n, base.0.messages, base.0.steps
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--quick") {
        quick_smoke();
        return;
    }
    let gate_pct: f64 = args
        .iter()
        .position(|a| a == "--gate-pct")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(10.0);
    let mut label = String::from("current");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--gate-pct" => i += 2,
            a if a.starts_with("--") => i += 1,
            a => {
                label = a.to_string();
                break;
            }
        }
    }

    let suite: [(&'static str, DesignFn, &[i64]); 4] = [
        ("polyprod-D.1", paper::polyprod_d1, &[16, 32, 64]),
        ("polyprod-D.2", paper::polyprod_d2, &[16, 32, 64]),
        ("matmul-E.1", paper::matmul_e1, &[8, 16, 24]),
        ("matmul-E.2", paper::matmul_e2, &[8, 16, 24]),
    ];

    let configs: Vec<Prepared> = suite
        .iter()
        .flat_map(|&(label, mk, sizes)| sizes.iter().map(move |&n| prepare(label, mk, n)))
        .collect();

    let baselines: Vec<(RunStats, HostStore)> = configs.iter().map(baseline_run).collect();

    // Interleaved passes: visit every configuration once per pass rather
    // than running each one's iterations back to back, so a config's
    // minimum samples ITERS separate moments of the session instead of
    // one burst — a shared-machine noise spike then inflates a single
    // pass, not a whole configuration.
    let mut best = vec![f64::INFINITY; configs.len()];
    for _ in 0..ITERS {
        for (i, c) in configs.iter().enumerate() {
            let dt = timed_run(c, &baselines[i]);
            if dt < best[i] {
                best[i] = dt;
            }
        }
    }

    let mut entries = Vec::new();
    for ((c, wall), (s, _)) in configs.iter().zip(best).zip(&baselines) {
        let e = observed_entry(c, wall, s.clone());
        println!(
            "{:<14} n={:<3} wall {:>9.3} ms  procs {:>6}  rounds {:>6}  messages {:>9}  steps {:>9}",
            e.design, e.n, e.wall_ms, e.processes, e.rounds, e.messages, e.steps
        );
        entries.push(e);
    }

    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = std::path::Path::new(root).join("BENCH_simulate.json");
    let old = std::fs::read_to_string(&path).unwrap_or_default();

    // The regression gate: every configuration must stay within
    // `gate_pct` percent of its best prior snapshot.
    let prior = prior_best(&old);
    let mut violations = Vec::new();
    for e in &entries {
        if let Some((_, _, w)) = prior.iter().find(|(d, n, _)| d == e.design && *n == e.n) {
            let limit = w * (1.0 + gate_pct / 100.0);
            if e.wall_ms > limit {
                violations.push(format!(
                    "{} n={}: {:.3} ms exceeds the {:.0}% gate over the best \
                     prior snapshot ({:.3} ms, limit {:.3} ms)",
                    e.design, e.n, e.wall_ms, gate_pct, w, limit
                ));
            }
        }
    }
    if !violations.is_empty() {
        eprintln!("REGRESSION GATE FAILED — nothing written:");
        for v in &violations {
            eprintln!("  {v}");
        }
        std::process::exit(1);
    }

    // Hand-rolled JSON: the schema is fixed and flat, and the workspace
    // deliberately avoids a serde_json dependency outside criterion.
    let mut snapshot = format!("    {{\"label\": \"{label}\", \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let _ = writeln!(
            snapshot,
            "      {{\"design\": \"{}\", \"n\": {}, \"wall_ms\": {:.3}, \"processes\": {}, \
             \"rounds\": {}, \"messages\": {}, \"steps\": {}, \
             \"wait_hist\": {}, \"msgs_per_round_hist\": {}}}{}",
            e.design,
            e.n,
            e.wall_ms,
            e.processes,
            e.rounds,
            e.messages,
            e.steps,
            pairs_json(&e.wait_hist),
            pairs_json(&e.msgs_per_round_hist),
            if i + 1 < entries.len() { "," } else { "" }
        );
    }
    snapshot.push_str("    ]}");

    let json = if old.contains("\"snapshots\"") {
        // Append to an existing snapshot file (insert before the closing
        // of the snapshots array).
        let cut = old.rfind("\n  ]\n}").expect("well-formed snapshot file");
        format!("{},\n{snapshot}\n  ]\n}}\n", &old[..cut])
    } else {
        format!("{{\n  \"suite\": \"simulate\",\n  \"snapshots\": [\n{snapshot}\n  ]\n}}\n")
    };
    std::fs::write(&path, json).expect("write BENCH_simulate.json");
    println!("wrote {} (snapshot \"{label}\")", path.display());
}
