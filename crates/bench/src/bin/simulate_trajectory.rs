//! The benchmark trajectory harness: runs the simulate suite (the four
//! appendix designs at several problem sizes) and appends a labeled
//! snapshot to `BENCH_simulate.json` at the repo root with wall-clock,
//! rounds, messages, and steps per configuration.
//!
//! Each PR reruns this binary; the committed file accumulates one
//! snapshot per PR, so the simulator's performance trajectory is the
//! diff between adjacent snapshots (rounds/messages/steps must never
//! change — they are pinned by `tests/determinism.rs`):
//!
//! ```sh
//! cargo run --release -p systolic-bench --bin simulate_trajectory -- <label>
//! ```
//!
//! Wall-clock is the minimum over [`ITERS`] runs (the usual noise-robust
//! estimator); rounds/messages/steps are deterministic and identical
//! across runs.
//!
//! The timed runs carry no recorders — the snapshot guards the
//! zero-cost-when-off contract of the observability layer. They *do*
//! carry an explicit FIFO `SchedulePolicy`, so the snapshot also guards
//! the schedule-exploration hook's zero-cost-when-inert contract: the
//! hooked engine under FIFO must stay within noise of the unhooked
//! trajectory (and `tests/determinism.rs` pins it bit-identical). A
//! separate observed pass (outside the timing loop) contributes the
//! receiver-wait and messages-per-round histograms, and double-checks
//! that attaching recorders leaves rounds/messages/steps untouched.

use std::fmt::Write as _;
use std::time::Instant;
use systolic_core::{compile, Options};
use systolic_interp::{run_plan_recorded, run_plan_scheduled, ElabOptions};
use systolic_ir::HostStore;
use systolic_math::Env;
use systolic_runtime::{shared, ChannelPolicy, FifoPolicy, MetricsRecorder};
use systolic_synthesis::placement::paper;

const ITERS: usize = 25;

type DesignFn = fn() -> (
    systolic_ir::SourceProgram,
    systolic_synthesis::SystolicArray,
);

struct Entry {
    design: &'static str,
    n: i64,
    wall_ms: f64,
    processes: usize,
    rounds: u64,
    messages: u64,
    steps: u64,
    /// (receiver wait in rounds, transfer count) — from the observed pass.
    wait_hist: Vec<(u64, u64)>,
    /// (messages in one round, round count) — the occupancy profile.
    msgs_per_round_hist: Vec<(u64, u64)>,
}

fn pairs_json(pairs: &[(u64, u64)]) -> String {
    let body: Vec<String> = pairs.iter().map(|(a, b)| format!("[{a}, {b}]")).collect();
    format!("[{}]", body.join(", "))
}

/// One compiled configuration, ready to time.
struct Prepared {
    label: &'static str,
    n: i64,
    plan: systolic_core::SystolicProgram,
    env: Env,
    store: HostStore,
}

fn prepare(label: &'static str, mk: DesignFn, n: i64) -> Prepared {
    let (p, a) = mk();
    let plan = compile(&p, &a, &Options::default()).unwrap();
    let mut env = Env::new();
    env.bind(p.sizes[0], n);
    let mut store = HostStore::allocate(&p, &env);
    store.fill_random("a", 1, -9, 9);
    store.fill_random("b", 2, -9, 9);
    Prepared {
        label,
        n,
        plan,
        env,
        store,
    }
}

fn timed_run(c: &Prepared) -> (f64, systolic_runtime::RunStats) {
    let t0 = Instant::now();
    let run = run_plan_scheduled(
        &c.plan,
        &c.env,
        &c.store,
        ChannelPolicy::Rendezvous,
        &ElabOptions::default(),
        Some(Box::new(FifoPolicy)),
        &[],
    )
    .unwrap();
    (t0.elapsed().as_secs_f64() * 1e3, run.stats)
}

fn observed_entry(c: &Prepared, wall_ms: f64, stats: systolic_runtime::RunStats) -> Entry {
    // Observed pass, outside the timing loop: histograms for the
    // snapshot, plus the invariance check.
    let (metrics, erased) = shared(MetricsRecorder::new());
    let observed = run_plan_recorded(
        &c.plan,
        &c.env,
        &c.store,
        ChannelPolicy::Rendezvous,
        &ElabOptions::default(),
        &[erased],
    )
    .unwrap();
    assert_eq!(
        observed.stats, stats,
        "recorders must not perturb rounds/messages/steps"
    );
    let report = metrics.lock().report();

    Entry {
        design: c.label,
        n: c.n,
        wall_ms,
        processes: stats.processes,
        rounds: stats.rounds,
        messages: stats.messages,
        steps: stats.steps,
        wait_hist: report.wait_hist,
        msgs_per_round_hist: report.msgs_per_time_hist,
    }
}

fn main() {
    let suite: [(&'static str, DesignFn, &[i64]); 4] = [
        ("polyprod-D.1", paper::polyprod_d1, &[16, 32, 64]),
        ("polyprod-D.2", paper::polyprod_d2, &[16, 32, 64]),
        ("matmul-E.1", paper::matmul_e1, &[8, 16, 24]),
        ("matmul-E.2", paper::matmul_e2, &[8, 16, 24]),
    ];

    let configs: Vec<Prepared> = suite
        .iter()
        .flat_map(|&(label, mk, sizes)| sizes.iter().map(move |&n| prepare(label, mk, n)))
        .collect();

    // Interleaved passes: visit every configuration once per pass rather
    // than running each one's iterations back to back, so a config's
    // minimum samples ITERS separate moments of the session instead of
    // one burst — a shared-machine noise spike then inflates a single
    // pass, not a whole configuration.
    let mut best = vec![f64::INFINITY; configs.len()];
    let mut stats = Vec::new();
    for (i, c) in configs.iter().enumerate() {
        let (dt, s) = timed_run(c);
        best[i] = dt;
        stats.push(s);
    }
    for _ in 1..ITERS {
        for (i, c) in configs.iter().enumerate() {
            let (dt, _) = timed_run(c);
            if dt < best[i] {
                best[i] = dt;
            }
        }
    }

    let mut entries = Vec::new();
    for ((c, wall), s) in configs.iter().zip(best).zip(stats) {
        let e = observed_entry(c, wall, s);
        println!(
            "{:<14} n={:<3} wall {:>9.3} ms  procs {:>6}  rounds {:>6}  messages {:>9}  steps {:>9}",
            e.design, e.n, e.wall_ms, e.processes, e.rounds, e.messages, e.steps
        );
        entries.push(e);
    }

    // Hand-rolled JSON: the schema is fixed and flat, and the workspace
    // deliberately avoids a serde_json dependency outside criterion.
    let label = std::env::args().nth(1).unwrap_or_else(|| "current".into());
    let mut snapshot = format!("    {{\"label\": \"{label}\", \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let _ = writeln!(
            snapshot,
            "      {{\"design\": \"{}\", \"n\": {}, \"wall_ms\": {:.3}, \"processes\": {}, \
             \"rounds\": {}, \"messages\": {}, \"steps\": {}, \
             \"wait_hist\": {}, \"msgs_per_round_hist\": {}}}{}",
            e.design,
            e.n,
            e.wall_ms,
            e.processes,
            e.rounds,
            e.messages,
            e.steps,
            pairs_json(&e.wait_hist),
            pairs_json(&e.msgs_per_round_hist),
            if i + 1 < entries.len() { "," } else { "" }
        );
    }
    snapshot.push_str("    ]}");

    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = std::path::Path::new(root).join("BENCH_simulate.json");
    let json = match std::fs::read_to_string(&path) {
        // Append to an existing snapshot file (insert before the closing
        // of the snapshots array).
        Ok(old) if old.contains("\"snapshots\"") => {
            let cut = old.rfind("\n  ]\n}").expect("well-formed snapshot file");
            format!("{},\n{snapshot}\n  ]\n}}\n", &old[..cut])
        }
        _ => format!("{{\n  \"suite\": \"simulate\",\n  \"snapshots\": [\n{snapshot}\n  ]\n}}\n"),
    };
    std::fs::write(&path, json).expect("write BENCH_simulate.json");
    println!("wrote {} (snapshot \"{label}\")", path.display());
}
