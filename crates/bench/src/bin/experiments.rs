//! The experiment runner: regenerates every table recorded in
//! `EXPERIMENTS.md` — the derived quantities of Appendices D and E, the
//! E.1.4 summary table, the equivalence matrix, the makespan scaling
//! table, the Appendix B theorem audit, and the ablations.
//!
//! ```sh
//! cargo run --release -p systolic-bench --bin experiments
//! ```

use systolic_core::{compile, theorems, Options, StreamKind};
use systolic_interp::{run_plan, runtime_gen, verify_equivalence, ElabOptions};
use systolic_ir::HostStore;
use systolic_math::{point, Env};
use systolic_runtime::ChannelPolicy;
use systolic_synthesis::placement::paper;

fn env_at(p: &systolic_ir::SourceProgram, n: i64) -> Env {
    let mut env = Env::new();
    for &s in &p.sizes {
        env.bind(s, n);
    }
    env
}

fn main() {
    section_derivations();
    section_e14_table();
    section_equivalence();
    section_makespan();
    section_theorems();
    section_census();
    section_ablations();
    section_protocols();
    section_schedule_search();
}

fn section_derivations() {
    println!("================================================================");
    println!("Experiments D1/D2/E1/E2: derived quantities per appendix design");
    println!("================================================================");
    for (label, p, a) in paper::all() {
        let plan = compile(&p, &a, &Options::default()).unwrap();
        println!("--- Appendix {label} ---");
        println!("{}", systolic_core::report::render(&plan));
    }
}

fn section_e14_table() {
    println!("================================================================");
    println!("Experiment E1 (table of Sec. E.1.4): per-stream pipe summary");
    println!("================================================================");
    let (p, a) = paper::matmul_e1();
    let plan = compile(&p, &a, &Options::default()).unwrap();
    println!(
        "{:<4} {:<12} {:<12} {:<22} {:<22}",
        "s", "kind", "increment_s", "first_s", "last_s"
    );
    for sp in &plan.streams {
        let f = sp
            .first_s
            .clauses()
            .iter()
            .map(|(_, pt)| systolic_math::affine::display_point(pt, &plan.vars))
            .collect::<Vec<_>>()
            .join(" | ");
        let l = sp
            .last_s
            .clauses()
            .iter()
            .map(|(_, pt)| systolic_math::affine::display_point(pt, &plan.vars))
            .collect::<Vec<_>>()
            .join(" | ");
        let kind = match &sp.kind {
            StreamKind::Moving => "moving".to_string(),
            StreamKind::Stationary { .. } => "stationary".to_string(),
        };
        println!(
            "{:<4} {:<12} {:<12} {:<22} {:<22}",
            sp.name,
            kind,
            point::fmt_point(&sp.increment_s),
            f,
            l
        );
    }
    println!();
}

fn section_equivalence() {
    println!("================================================================");
    println!("Experiment X1: systolic execution == sequential execution");
    println!("================================================================");
    println!(
        "{:<6} {:>4} {:>6} {:>8} {:>8} {:>10} {:>8}",
        "design", "n", "seed", "procs", "rounds", "messages", "result"
    );
    for (label, p, a) in paper::all() {
        let plan = compile(&p, &a, &Options::default()).unwrap();
        let sweep: &[i64] = if p.r() == 2 { &[4, 8, 16] } else { &[2, 4, 6] };
        for &n in sweep {
            for seed in [7u64, 1234] {
                let env = env_at(&p, n);
                match verify_equivalence(&plan, &env, &["a", "b"], seed) {
                    Ok(stats) => println!(
                        "{:<6} {:>4} {:>6} {:>8} {:>8} {:>10} {:>8}",
                        label, n, seed, stats.processes, stats.rounds, stats.messages, "OK"
                    ),
                    Err(e) => println!("{label:<6} {n:>4} {seed:>6}  FAILED: {e}"),
                }
            }
        }
    }
    println!();
}

fn section_makespan() {
    println!("================================================================");
    println!("Experiment X2: makespan — schedule range vs virtual clock");
    println!("  (sequential work is quadratic/cubic; both systolic columns");
    println!("   must grow linearly in n)");
    println!("================================================================");
    println!(
        "{:<6} {:>4} {:>10} {:>10} {:>8} {:>12}",
        "design", "n", "seq ops", "schedule", "rounds", "rounds/sched"
    );
    for (label, p, a) in paper::all() {
        let plan = compile(&p, &a, &Options::default()).unwrap();
        for n in [2i64, 4, 8] {
            let env = env_at(&p, n);
            let seq_ops = p.index_space_size(&env);
            let schedule = a.makespan(&p, &env);
            let stats = verify_equivalence(&plan, &env, &["a", "b"], 3).unwrap();
            println!(
                "{:<6} {:>4} {:>10} {:>10} {:>8} {:>12.2}",
                label,
                n,
                seq_ops,
                schedule,
                stats.rounds,
                stats.rounds as f64 / schedule as f64
            );
        }
    }
    println!();
}

fn section_theorems() {
    println!("================================================================");
    println!("Experiment T: Appendix B theorems, audited on every design");
    println!("================================================================");
    for (label, p, a) in paper::all() {
        let plan = compile(&p, &a, &Options::default()).unwrap();
        let env = env_at(&p, 4);
        let audit = theorems::audit(&plan, &env);
        println!(
            "Appendix {label}: {}",
            if audit.ok() {
                "all theorems hold".to_string()
            } else {
                format!("FAILURES {:?}", audit.failures)
            }
        );
    }
    println!();
}

fn section_census() {
    println!("================================================================");
    println!("Process census at n = 4 (layout shapes of the four designs)");
    println!("================================================================");
    println!(
        "{:<6} {:>6} {:>8} {:>8} {:>8} {:>8} {:>10}",
        "design", "comp", "ext-buf", "int-buf", "inputs", "outputs", "channels"
    );
    for (label, p, a) in paper::all() {
        let plan = compile(&p, &a, &Options::default()).unwrap();
        let env = env_at(&p, 4);
        let store = HostStore::allocate(&p, &env);
        let el = systolic_interp::elaborate(&plan, &env, &store, &ElabOptions::default()).unwrap();
        println!(
            "{:<6} {:>6} {:>8} {:>8} {:>8} {:>8} {:>10}",
            label,
            el.census.computation,
            el.census.external_buffers,
            el.census.internal_buffers,
            el.census.inputs,
            el.census.outputs,
            el.census.channels
        );
    }
    println!();
}

fn section_ablations() {
    println!("================================================================");
    println!("Experiment B3: ablations");
    println!("================================================================");

    // B3a: internal buffers on the fractional-flow design D.1.
    let (p, a) = paper::polyprod_d1();
    let plan = compile(&p, &a, &Options::default()).unwrap();
    let n = 8i64;
    let env = env_at(&p, n);
    let mut store = HostStore::allocate(&p, &env);
    store.fill_random("a", 1, -9, 9);
    store.fill_random("b", 2, -9, 9);
    println!("B3a: D.1 internal buffers (stream b, flow 1/2) at n = {n}");
    for (label, buffers) in [("with buffers", true), ("without", false)] {
        let run = run_plan(
            &plan,
            &env,
            &store,
            ChannelPolicy::Rendezvous,
            &ElabOptions {
                internal_buffers: buffers,
                ..Default::default()
            },
        )
        .unwrap();
        println!(
            "  {label:<16} procs {:>4}  rounds {:>4}  messages {:>6}",
            run.stats.processes, run.stats.rounds, run.stats.messages
        );
    }

    // B3b: channel policy on D.2.
    let (p, a) = paper::polyprod_d2();
    let plan = compile(&p, &a, &Options::default()).unwrap();
    let env = env_at(&p, n);
    let mut store = HostStore::allocate(&p, &env);
    store.fill_random("a", 3, -9, 9);
    store.fill_random("b", 4, -9, 9);
    println!("B3b: D.2 channel policy at n = {n}");
    for (label, policy) in [
        ("rendezvous", ChannelPolicy::Rendezvous),
        ("buffered(1)", ChannelPolicy::Buffered(1)),
        ("buffered(4)", ChannelPolicy::Buffered(4)),
    ] {
        let run = run_plan(&plan, &env, &store, policy, &ElabOptions::default()).unwrap();
        println!(
            "  {label:<16} rounds {:>4}  messages {:>6}",
            run.stats.rounds, run.stats.messages
        );
    }

    // B3c: simple vs non-simple place at equal n.
    println!("B3c: simple vs non-simple place at n = 4");
    for (label, pair) in [
        ("D.1 (simple)", paper::polyprod_d1()),
        ("D.2 (non-simple)", paper::polyprod_d2()),
        ("E.1 (simple)", paper::matmul_e1()),
        ("E.2 (non-simple)", paper::matmul_e2()),
    ]
    .iter()
    .map(|(l, pr)| (*l, pr.clone()))
    {
        let (p, a) = pair;
        let plan = compile(&p, &a, &Options::default()).unwrap();
        let env = env_at(&p, 4);
        let stats = verify_equivalence(&plan, &env, &["a", "b"], 5).unwrap();
        println!(
            "  {label:<18} procs {:>4}  rounds {:>4}  messages {:>6}",
            stats.processes, stats.rounds, stats.messages
        );
    }

    // B3d: run-time generation baseline work vs problem size.
    println!("B3d: run-time statement generation (index points scanned per phase)");
    let (p, a) = paper::matmul_e1();
    let plan = compile(&p, &a, &Options::default()).unwrap();
    for n in [4i64, 8, 16] {
        let env = env_at(&p, n);
        let (_, visited) = runtime_gen::scan(&plan, &env);
        println!(
            "  n = {n:<3} scan visits {visited:>6} index points; the compiled plan \
             evaluates closed forms (O(1) per process)"
        );
    }
    println!();
}

fn section_protocols() {
    println!("================================================================");
    println!("Protocol variants (Sec. 4.2's \"one of many possible choices\")");
    println!("================================================================");
    println!(
        "{:<6} {:<28} {:>8} {:>8} {:>10}",
        "design", "protocol", "procs", "rounds", "messages"
    );
    for (label, p, a) in paper::all() {
        let plan = compile(&p, &a, &Options::default()).unwrap();
        let env = env_at(&p, 4);
        let mut store = HostStore::allocate(&p, &env);
        store.fill_random("a", 5, -9, 9);
        store.fill_random("b", 6, -9, 9);
        let variants: [(&str, ElabOptions); 3] = [
            ("paper phases", ElabOptions::default()),
            (
                "split propagation",
                ElabOptions {
                    split_propagation: true,
                    ..Default::default()
                },
            ),
            (
                "merged host io",
                ElabOptions {
                    merge_io: true,
                    ..Default::default()
                },
            ),
        ];
        for (name, opts) in variants {
            match run_plan(&plan, &env, &store, ChannelPolicy::Rendezvous, &opts) {
                Ok(run) => println!(
                    "{:<6} {:<28} {:>8} {:>8} {:>10}",
                    label, name, run.stats.processes, run.stats.rounds, run.stats.messages
                ),
                Err(e) => println!("{label:<6} {name:<28} DEADLOCK: {e}"),
            }
        }
    }
    println!();
}

fn section_schedule_search() {
    println!("================================================================");
    println!("Experiment X4: schedule search vs the paper's schedules");
    println!("================================================================");
    let poly = systolic_ir::gallery::polynomial_product();
    let mm = systolic_ir::gallery::matrix_product();
    let env_p = env_at(&poly, 10);
    let env_m = env_at(&mm, 10);
    use systolic_synthesis::schedule::step_makespan;
    let best_p = systolic_synthesis::optimal_step(&poly, 2, 10).unwrap();
    let best_m = systolic_synthesis::optimal_step(&mm, 1, 10).unwrap();
    println!(
        "polyprod: paper step (2,1) makespan {}",
        step_makespan(&[2, 1], &poly, &env_p)
    );
    println!(
        "polyprod: found step {:?} makespan {}  <-- strictly better (see EXPERIMENTS.md)",
        best_p,
        step_makespan(&best_p, &poly, &env_p)
    );
    println!(
        "matmul:   paper step (1,1,1) makespan {}",
        step_makespan(&[1, 1, 1], &mm, &env_m)
    );
    println!(
        "matmul:   found step {:?} makespan {}  <-- matches optimal",
        best_m,
        step_makespan(&best_m, &mm, &env_m)
    );
    println!();
}
