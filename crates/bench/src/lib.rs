//! # systolic-bench
//!
//! The benchmark harness: Criterion benches (`compile`, `simulate`) and
//! the `experiments` binary that regenerates every table recorded in
//! `EXPERIMENTS.md`.
