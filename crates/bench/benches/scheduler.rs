//! Scheduler-only benchmark: `Network::run` on matmul E.1 networks.
//! Elaboration happens once per size — the cached `Arc<ProcIrModule>` is
//! re-instantiated in the `iter_batched` setup, so the measured routine is
//! the event-driven engine's cost per simulated network, not the compiler
//! front half's (and not even the lowering's).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use systolic_core::{compile, Options};
use systolic_interp::{elaborate, ElabOptions};
use systolic_ir::HostStore;
use systolic_math::Env;
use systolic_runtime::{ChannelPolicy, Network};
use systolic_synthesis::placement::paper;

fn bench_scheduler(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduler/matmul-E.1");
    g.sample_size(10);
    for n in [8i64, 16, 24] {
        let (p, a) = paper::matmul_e1();
        let plan = compile(&p, &a, &Options::default()).unwrap();
        let mut env = Env::new();
        env.bind(p.sizes[0], n);
        let mut store = HostStore::allocate(&p, &env);
        store.fill_random("a", 1, -9, 9);
        store.fill_random("b", 2, -9, 9);
        let module = elaborate(&plan, &env, &store, &ElabOptions::default())
            .unwrap()
            .module;
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter_batched(
                || {
                    let mut net = Network::new(ChannelPolicy::Rendezvous);
                    for pr in module.instantiate().procs {
                        net.add(pr);
                    }
                    net
                },
                |net| net.run().unwrap(),
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
