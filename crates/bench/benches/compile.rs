//! Benchmark B1 + experiments D1/D2/E1/E2 (timing side): the cost of the
//! symbolic derivation.
//!
//! The scheme's selling point against run-time generation (Sec. 8) is
//! that its cost is *independent of the problem size*: everything is
//! derived once, symbolically. We measure (a) compilation time per
//! appendix design, (b) scaling with the loop depth `r` (2, 3, 4), and
//! (c) the run-time-generation baseline whose cost grows with `n`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use systolic_core::{compile, Options};
use systolic_interp::runtime_gen;
use systolic_math::Env;
use systolic_synthesis::placement::paper;

fn bench_appendix_designs(c: &mut Criterion) {
    let mut g = c.benchmark_group("compile/appendix");
    for (label, p, a) in paper::all() {
        g.bench_function(label, |b| {
            b.iter(|| compile(black_box(&p), black_box(&a), &Options::default()).unwrap())
        });
    }
    g.finish();
}

fn bench_loop_depth(c: &mut Criterion) {
    let mut g = c.benchmark_group("compile/loop-depth");
    let programs = [
        ("r2-polyprod", systolic_ir::gallery::polynomial_product()),
        ("r3-matmul", systolic_ir::gallery::matrix_product()),
        ("r4-tensor", systolic_ir::gallery::tensor_contraction()),
    ];
    for (label, p) in programs {
        let a = systolic_synthesis::derive_array(&p, 1, 4).expect("array");
        g.bench_function(label, |b| {
            b.iter(|| compile(black_box(&p), black_box(&a), &Options::default()).unwrap())
        });
    }
    g.finish();
}

fn bench_runtime_generation_baseline(c: &mut Criterion) {
    // B3d: the "other end of the spectrum" — per-process statement
    // derivation by index-space scan, whose cost grows with n while the
    // compiled plan's cost stays flat.
    let (p, a) = paper::matmul_e1();
    let plan = compile(&p, &a, &Options::default()).unwrap();
    let mut g = c.benchmark_group("compile/runtime-gen-baseline");
    for n in [4i64, 8, 12, 16] {
        let mut env = Env::new();
        env.bind(p.sizes[0], n);
        g.bench_with_input(BenchmarkId::new("scan", n), &n, |b, _| {
            b.iter(|| runtime_gen::scan(black_box(&plan), black_box(&env)))
        });
    }
    // The compiled-scheme equivalent of that phase: evaluating the plan
    // at every process (what elaboration does).
    for n in [4i64, 8, 12, 16] {
        let mut env = Env::new();
        env.bind(p.sizes[0], n);
        g.bench_with_input(BenchmarkId::new("plan-eval", n), &n, |b, _| {
            b.iter(|| {
                let mut total = 0i64;
                for y in plan.ps_points(&env) {
                    total += plan.count_at(&env, &y);
                }
                black_box(total)
            })
        });
    }
    g.finish();
}

fn bench_synthesis_search(c: &mut Criterion) {
    // X4 timing: the schedule search.
    let mut g = c.benchmark_group("synthesis/step-search");
    let poly = systolic_ir::gallery::polynomial_product();
    let mm = systolic_ir::gallery::matrix_product();
    for bound in [1i64, 2, 3] {
        g.bench_with_input(BenchmarkId::new("polyprod", bound), &bound, |b, &bound| {
            b.iter(|| systolic_synthesis::optimal_step(black_box(&poly), bound, 6))
        });
        g.bench_with_input(BenchmarkId::new("matmul", bound), &bound, |b, &bound| {
            b.iter(|| systolic_synthesis::optimal_step(black_box(&mm), bound, 6))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_appendix_designs, bench_loop_depth,
              bench_runtime_generation_baseline, bench_synthesis_search
}
criterion_main!(benches);
