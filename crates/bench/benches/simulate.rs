//! Benchmarks X1/X2/B2 (timing side): simulated execution of the four
//! appendix designs vs the sequential reference, across problem sizes.
//!
//! Expected shape: sequential time grows with the index-space volume
//! (quadratic for polyprod, cubic for matmul); the simulator pays a
//! large constant per message but its *virtual* clock (measured by the
//! experiments runner, not here) grows linearly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use systolic_core::{compile, Options};
use systolic_interp::{run_plan, ElabOptions};
use systolic_ir::{seq, HostStore};
use systolic_math::Env;
use systolic_runtime::ChannelPolicy;
use systolic_synthesis::placement::paper;

fn setup(
    pair: (
        systolic_ir::SourceProgram,
        systolic_synthesis::SystolicArray,
    ),
    n: i64,
) -> (systolic_core::SystolicProgram, Env, HostStore) {
    let (p, a) = pair;
    let plan = compile(&p, &a, &Options::default()).unwrap();
    let mut env = Env::new();
    env.bind(p.sizes[0], n);
    let mut store = HostStore::allocate(&p, &env);
    store.fill_random("a", 1, -9, 9);
    store.fill_random("b", 2, -9, 9);
    (plan, env, store)
}

fn bench_sequential_baseline(c: &mut Criterion) {
    let mut g = c.benchmark_group("execute/sequential");
    for n in [8i64, 16, 32] {
        let (plan, env, store) = setup(paper::matmul_e1(), n);
        g.bench_with_input(BenchmarkId::new("matmul", n), &n, |b, _| {
            b.iter(|| {
                let mut s = store.clone();
                seq::run(&plan.source, &env, &mut s);
                black_box(s)
            })
        });
    }
    g.finish();
}

type DesignFn = fn() -> (
    systolic_ir::SourceProgram,
    systolic_synthesis::SystolicArray,
);

fn bench_simulated_designs(c: &mut Criterion) {
    let mut g = c.benchmark_group("execute/simulated");
    g.sample_size(10);
    let designs: [(&str, DesignFn); 4] = [
        ("D.1", paper::polyprod_d1),
        ("D.2", paper::polyprod_d2),
        ("E.1", paper::matmul_e1),
        ("E.2", paper::matmul_e2),
    ];
    for (label, mk) in designs {
        for n in [4i64, 8] {
            let (plan, env, store) = setup(mk(), n);
            g.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| {
                    run_plan(
                        black_box(&plan),
                        &env,
                        &store,
                        ChannelPolicy::Rendezvous,
                        &ElabOptions::default(),
                    )
                    .unwrap()
                })
            });
        }
    }
    g.finish();
}

fn bench_channel_policy_ablation(c: &mut Criterion) {
    // B3b: rendezvous vs buffered channels on the same design.
    let mut g = c.benchmark_group("execute/channel-policy");
    g.sample_size(10);
    let (plan, env, store) = setup(paper::polyprod_d2(), 8);
    for (label, policy) in [
        ("rendezvous", ChannelPolicy::Rendezvous),
        ("buffered-1", ChannelPolicy::Buffered(1)),
        ("buffered-4", ChannelPolicy::Buffered(4)),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| run_plan(&plan, &env, &store, policy, &ElabOptions::default()).unwrap())
        });
    }
    g.finish();
}

fn bench_internal_buffer_ablation(c: &mut Criterion) {
    // B3a: with and without the Sec. 7.6 buffers on the fractional-flow
    // design D.1.
    let mut g = c.benchmark_group("execute/internal-buffers");
    g.sample_size(10);
    let (plan, env, store) = setup(paper::polyprod_d1(), 12);
    for (label, buffers) in [("with", true), ("without", false)] {
        g.bench_function(label, |b| {
            b.iter(|| {
                run_plan(
                    &plan,
                    &env,
                    &store,
                    ChannelPolicy::Rendezvous,
                    &ElabOptions {
                        internal_buffers: buffers,
                        ..Default::default()
                    },
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

fn bench_threaded_executor(c: &mut Criterion) {
    // B2: the OS-thread executor.
    let mut g = c.benchmark_group("execute/threaded");
    g.sample_size(10);
    let (plan, env, store) = setup(paper::matmul_e1(), 6);
    g.bench_function("matmul-E.1-n6", |b| {
        b.iter(|| {
            systolic_interp::run_plan_threaded(
                &plan,
                &env,
                &store,
                std::time::Duration::from_secs(60),
            )
            .unwrap()
        })
    });
    g.finish();
}

fn bench_partitioned_speedup(c: &mut Criterion) {
    // B2 (partitioned): wall-clock vs worker count on the Kung-Leiserson
    // array — the partitioning refinement of Sec. 8.
    let mut g = c.benchmark_group("execute/partitioned");
    g.sample_size(10);
    let (plan, env, store) = setup(paper::matmul_e2(), 8);
    for workers in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, &w| {
            b.iter(|| {
                systolic_interp::run_plan_partitioned(
                    black_box(&plan),
                    &env,
                    &store,
                    w,
                    std::time::Duration::from_secs(120),
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_sequential_baseline, bench_simulated_designs,
              bench_channel_policy_ablation, bench_internal_buffer_ablation,
              bench_threaded_executor, bench_partitioned_speedup
}
criterion_main!(benches);
