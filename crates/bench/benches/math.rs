//! Micro-benchmarks for the symbolic substrate: the operations the
//! compilation scheme spends its time in (null spaces, symbolic solving,
//! affine arithmetic, piecewise evaluation).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use systolic_math::{linsolve, Affine, Chain, Env, Guard, Matrix, Piecewise, Rational, VarTable};

fn bench_null_space(c: &mut Criterion) {
    let mut g = c.benchmark_group("math/null-space");
    let kl = Matrix::from_rows(&[vec![1, 0, -1], vec![0, 1, -1]]);
    g.bench_function("kung-leiserson-place", |b| {
        b.iter(|| black_box(&kl).null_generator())
    });
    let wide = Matrix::from_rows(&[vec![1, 0, 0, -1], vec![0, 1, 0, -1], vec![0, 0, 1, -1]]);
    g.bench_function("r4-place", |b| b.iter(|| black_box(&wide).null_generator()));
    g.finish();
}

fn bench_symbolic_solve(c: &mut Criterion) {
    let mut t = VarTable::new();
    let col = t.coord(0);
    let row = t.coord(1);
    let a = Matrix::from_rows(&[vec![0, -1], vec![1, -1]]);
    let b = vec![Affine::var(col), Affine::var(row)];
    c.bench_function("math/face-solve", |bch| {
        bch.iter(|| linsolve::solve(black_box(&a), black_box(&b)).unwrap())
    });
}

fn bench_affine_ops(c: &mut Criterion) {
    let mut t = VarTable::new();
    let n = t.size("n");
    let col = t.coord(0);
    let e1 = Affine::var(n).scale(Rational::int(2)) - Affine::var(col) + Affine::int(1);
    let e2 = Affine::var(col) + Affine::var(n);
    let mut g = c.benchmark_group("math/affine");
    g.bench_function("add-sub", |b| {
        b.iter(|| black_box(e1.clone()) + black_box(&e2) - black_box(&e1))
    });
    let mut env = Env::new();
    env.bind(n, 100).bind(col, 37);
    g.bench_function("eval", |b| b.iter(|| black_box(&e1).eval_int(&env)));
    g.bench_function("substitute", |b| {
        b.iter(|| black_box(&e1).substitute(col, black_box(&e2)))
    });
    g.finish();
}

fn bench_piecewise_select(c: &mut Criterion) {
    let mut t = VarTable::new();
    let n = t.size("n");
    let col = t.coord(0);
    let row = t.coord(1);
    // An E.2-sized 9-clause piecewise (the count expression shape).
    let clauses: Vec<(Guard, Affine)> = (0..9)
        .map(|k| {
            let g = Guard::always()
                .and_chain(Chain::between(
                    Affine::int(-k),
                    Affine::var(col) - Affine::var(row),
                    Affine::var(n),
                ))
                .and_chain(Chain::between(
                    Affine::zero(),
                    Affine::var(col),
                    Affine::var(n),
                ));
            (g, Affine::var(n) + Affine::int(k))
        })
        .collect();
    let pw = Piecewise::new(clauses);
    let mut env = Env::new();
    env.bind(n, 50).bind(col, 20).bind(row, 30);
    c.bench_function("math/piecewise-select-9", |b| {
        b.iter(|| black_box(&pw).select(&env))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_null_space, bench_symbolic_solve, bench_affine_ops, bench_piecewise_select
}
criterion_main!(benches);
