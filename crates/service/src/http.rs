//! `std::net` HTTP/1.1 transport: accept loop + thread per connection,
//! keep-alive, `Content-Length` bodies. Deliberately minimal — the
//! workspace builds offline (no tokio/hyper), and a blocking
//! thread-per-connection model is exactly right for a simulation
//! service whose requests each burn a worker anyway. Backpressure
//! lives in [`crate::pool`], not in the accept path: accepting is
//! cheap, and a full worker queue answers 429 immediately.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::api::ApiError;
use crate::Service;

/// Largest accepted request body. Inline `.sys` programs are a few KB;
/// anything near this limit is abuse, answered with a structured 413.
pub const MAX_BODY: usize = 1 << 20;

/// A running server: its bound address and a shutdown handle.
pub struct ServerHandle {
    pub addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// Stop accepting and join the accept loop. In-flight connections
    /// finish their current response and close.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Serve `service` on `listener` until [`ServerHandle::shutdown`].
pub fn serve(service: Arc<Service>, listener: TcpListener) -> std::io::Result<ServerHandle> {
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_accept = Arc::clone(&stop);
    let accept_thread = std::thread::Builder::new()
        .name("http-accept".into())
        .spawn(move || {
            for conn in listener.incoming() {
                if stop_accept.load(Ordering::SeqCst) {
                    return;
                }
                let Ok(stream) = conn else { continue };
                let svc = Arc::clone(&service);
                let stop_conn = Arc::clone(&stop_accept);
                // Connection threads are cheap (small stacks, mostly
                // blocked on read); 1000+ concurrent clients are fine
                // under the default fd limit.
                let _ = std::thread::Builder::new()
                    .name("http-conn".into())
                    .stack_size(128 * 1024)
                    .spawn(move || handle_connection(svc, stream, stop_conn));
            }
        })?;
    Ok(ServerHandle {
        addr,
        stop,
        accept_thread: Some(accept_thread),
    })
}

fn handle_connection(service: Arc<Service>, stream: TcpStream, stop: Arc<AtomicBool>) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut stream = stream;
    while !stop.load(Ordering::SeqCst) {
        let (method, path, body, keep_alive) = match read_request(&mut reader) {
            Ok(Some(r)) => r,
            Ok(None) => return, // clean EOF between requests
            Err(e) => {
                let _ = write_response(&mut stream, e.status, &e.to_json(), false);
                return;
            }
        };
        let (status, response) = route(&service, &method, &path, &body);
        if write_response(&mut stream, status, &response, keep_alive).is_err() || !keep_alive {
            return;
        }
    }
}

/// Dispatch one request. Unknown routes are structured 404s.
pub fn route(service: &Arc<Service>, method: &str, path: &str, body: &str) -> (u16, String) {
    match (method, path) {
        ("POST", "/v1/run") => service.handle_run(body),
        ("POST", "/v1/replay") => service.handle_replay(body),
        ("GET", "/stats") => (200, service.stats_json()),
        ("GET", "/healthz") => (200, "{\"ok\":true}".to_string()),
        ("POST", "/debug/panic") if service.config.debug_panic_route => {
            service.handle_debug_panic()
        }
        _ => {
            let e = ApiError::new(404, "not-found", format!("no route {method} {path}"));
            (e.status, e.to_json())
        }
    }
}

type Request = (String, String, String, bool);

/// Read one HTTP/1.1 request. `Ok(None)` is a clean close before the
/// request line (keep-alive ending).
fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Option<Request>, ApiError> {
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(_) => return Ok(None),
    }
    let mut parts = line.split_whitespace();
    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
        return Err(ApiError::bad_request("malformed request line"));
    };
    let (method, path) = (method.to_string(), path.to_string());
    let mut content_length = 0usize;
    let mut keep_alive = true; // HTTP/1.1 default
    loop {
        let mut h = String::new();
        match reader.read_line(&mut h) {
            Ok(0) => return Err(ApiError::bad_request("connection closed mid-headers")),
            Ok(_) => {}
            Err(_) => return Err(ApiError::bad_request("unreadable headers")),
        }
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some((name, value)) = h.split_once(':') {
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .parse()
                    .map_err(|_| ApiError::bad_request("bad Content-Length"))?;
            } else if name.eq_ignore_ascii_case("connection")
                && value.eq_ignore_ascii_case("close")
            {
                keep_alive = false;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(ApiError::new(
            413,
            "body-too-large",
            format!("request body {content_length} exceeds {MAX_BODY} bytes"),
        ));
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|_| ApiError::bad_request("short request body"))?;
    let body =
        String::from_utf8(body).map_err(|_| ApiError::bad_request("body is not UTF-8"))?;
    Ok(Some((method, path, body, keep_alive)))
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        504 => "Gateway Timeout",
        _ => "OK",
    };
    let conn = if keep_alive { "keep-alive" } else { "close" };
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {conn}\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}
