//! The wire vocabulary of the simulation service: request parsing,
//! structured errors, and response rendering (`systolic-service-v1`).
//!
//! Everything is hand-rolled JSON over [`systolic_sim::Json`] — the
//! workspace-wide policy (see `crates/sim/src/json.rs`). Errors are
//! *structured*: every failure maps to an HTTP status plus a stable
//! `kind` and the offender labels the runtime diagnosis carries
//! ([`systolic_runtime::RunError::offenders`]); raw panic payloads
//! never cross the wire (see `crate::pool`).

use systolic_interp::{ExecError, SystolicRun, VerifyError};
use systolic_runtime::{BatchMode, KernelMode, OptMode, RunError, WavefrontMode};
use systolic_sim::Json;

/// The response schema identifier.
pub const SCHEMA: &str = "systolic-service-v1";

/// A structured service failure: HTTP status, stable machine-readable
/// `kind`, human prose, and the offender labels (blocked processes of a
/// deadlock, the scope that timed out, the engine that diverged).
#[derive(Clone, Debug)]
pub struct ApiError {
    pub status: u16,
    pub kind: &'static str,
    pub message: String,
    pub offenders: Vec<String>,
}

impl ApiError {
    pub fn new(status: u16, kind: &'static str, message: impl Into<String>) -> ApiError {
        ApiError {
            status,
            kind,
            message: message.into(),
            offenders: Vec::new(),
        }
    }

    pub fn bad_request(message: impl Into<String>) -> ApiError {
        ApiError::new(400, "bad-request", message)
    }

    pub fn parse(message: impl Into<String>) -> ApiError {
        ApiError::new(400, "parse", message)
    }

    pub fn unknown_design(key: &str) -> ApiError {
        ApiError::new(404, "unknown-design", format!("unknown design '{key}'"))
    }

    pub fn size_limit(got: i64, max: i64) -> ApiError {
        ApiError::new(
            413,
            "size-limit",
            format!("requested problem size {got} exceeds the service limit {max}"),
        )
    }

    pub fn overloaded(queue_cap: usize) -> ApiError {
        ApiError::new(
            429,
            "overloaded",
            format!("worker queue full ({queue_cap} waiting); retry later"),
        )
    }

    pub fn deadline(ms: u64) -> ApiError {
        ApiError {
            status: 504,
            kind: "timeout",
            message: format!("request deadline of {ms} ms expired"),
            offenders: vec!["request".into()],
        }
    }

    pub fn internal(message: impl Into<String>) -> ApiError {
        ApiError::new(500, "internal", message)
    }

    /// Map a structured runtime diagnosis to the wire. Deadlocks and
    /// protocol violations are *program* pathologies (422 — the request
    /// was well-formed, the configuration cannot run); timeouts are 504;
    /// worker-side panics and aborts are 500.
    pub fn from_run_error(e: &RunError) -> ApiError {
        let status = match e {
            RunError::Deadlock(_) | RunError::Protocol(_) => 422,
            RunError::Timeout { .. } => 504,
            RunError::Aborted | RunError::Panicked { .. } => 500,
            RunError::Partition { .. } => 400,
        };
        ApiError {
            status,
            kind: match e.kind() {
                "deadlock" => "deadlock",
                "protocol" => "protocol",
                "timeout" => "timeout",
                "aborted" => "aborted",
                "panic" => "panic",
                _ => "partition",
            },
            message: e.to_string(),
            offenders: e.offenders(),
        }
    }

    pub fn from_exec_error(e: &ExecError) -> ApiError {
        match e {
            ExecError::Run(r) => ApiError::from_run_error(r),
            ExecError::Elab(el) => ApiError::new(422, "elaborate", el.to_string()),
            ExecError::ShortOutput { .. } => ApiError::internal(e.to_string()),
        }
    }

    /// Differential-mode failures keep the engine label structurally:
    /// the diverging executor leads the offender list.
    pub fn from_verify_error(e: &VerifyError) -> ApiError {
        match e {
            VerifyError::Engine { engine, error } => {
                let mut api = ApiError::from_run_error(error);
                api.offenders.insert(0, (*engine).to_string());
                api
            }
            VerifyError::Divergence { engine, variable } => ApiError {
                status: 500,
                kind: "divergence",
                message: e.to_string(),
                offenders: vec![(*engine).to_string(), variable.clone()],
            },
            VerifyError::Setup { message } => ApiError::internal(message.clone()),
        }
    }

    /// `{"error":{"kind":...,"message":...,"offenders":[...]}}`
    pub fn to_json(&self) -> String {
        Json::Obj(vec![(
            "error".into(),
            Json::Obj(vec![
                ("kind".into(), Json::Str(self.kind.into())),
                ("message".into(), Json::Str(self.message.clone())),
                (
                    "offenders".into(),
                    Json::Arr(self.offenders.iter().map(|o| Json::Str(o.clone())).collect()),
                ),
            ]),
        )])
        .to_string()
    }
}

/// What program a request names: a gallery design key or inline `.sys`
/// source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProgramRef {
    Design(String),
    Source(String),
}

/// Which artifact the response body carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OutputKind {
    /// The post-run host store (the default).
    Stores,
    /// The `systolic-metrics-v1` report of an observed run.
    Metrics,
    /// The Chrome `trace_event` document of an observed run.
    Trace,
}

/// A parsed `POST /v1/run` body. Engine-mode and executor fields mirror
/// the CLI flags bit for bit (`--batch/--opt/--wavefront/--executor`).
#[derive(Debug)]
pub struct RunRequest {
    pub program: ProgramRef,
    pub sizes: Vec<i64>,
    /// Seed the named input variables are filled from
    /// (`HostStore::fill_random(name, seed + i)` in declaration order —
    /// the same convention as `verify_equivalence`, so oracles can
    /// reproduce the data exactly).
    pub seed: u64,
    /// Input variables to fill; `None` uses the design's registry
    /// defaults (inline-source requests with no list run zero-filled).
    pub inputs: Option<Vec<String>>,
    pub batch: BatchMode,
    pub opt: OptMode,
    pub wavefront: WavefrontMode,
    pub kernel: KernelMode,
    pub executor: String,
    pub workers: usize,
    pub deadline_ms: Option<u64>,
    pub output: OutputKind,
    /// Differential mode: additionally run the sequential reference and
    /// fail (naming the engine) on any store mismatch.
    pub verify: bool,
    /// Adversarial schedule `{policy, seed}`; non-FIFO policies run on
    /// the cooperative engine (see `systolic_interp::facade`).
    pub schedule: Option<(String, u64)>,
}

fn mode_field<'a>(doc: &'a Json, key: &str) -> Result<Option<&'a str>, ApiError> {
    match doc.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_str()
            .map(Some)
            .ok_or_else(|| ApiError::bad_request(format!("field '{key}' must be a string"))),
    }
}

fn u64_field(doc: &Json, key: &str) -> Result<Option<u64>, ApiError> {
    match doc.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => match v.as_i64() {
            Some(n) if n >= 0 => Ok(Some(n as u64)),
            _ => Err(ApiError::bad_request(format!(
                "field '{key}' must be a non-negative integer"
            ))),
        },
    }
}

/// Parse and validate a run request body.
pub fn parse_run_request(body: &str) -> Result<RunRequest, ApiError> {
    let doc = systolic_sim::json::parse(body)
        .map_err(|e| ApiError::bad_request(format!("malformed request JSON: {e}")))?;
    let program = match (doc.get("design"), doc.get("source")) {
        (Some(d), None) => ProgramRef::Design(
            d.as_str()
                .ok_or_else(|| ApiError::bad_request("field 'design' must be a string"))?
                .to_string(),
        ),
        (None, Some(s)) => ProgramRef::Source(
            s.as_str()
                .ok_or_else(|| ApiError::bad_request("field 'source' must be a string"))?
                .to_string(),
        ),
        (Some(_), Some(_)) => {
            return Err(ApiError::bad_request(
                "give either 'design' or 'source', not both",
            ))
        }
        (None, None) => {
            return Err(ApiError::bad_request(
                "request must name a 'design' or carry inline 'source'",
            ))
        }
    };
    let sizes = doc
        .get("sizes")
        .and_then(|v| v.as_arr())
        .ok_or_else(|| ApiError::bad_request("field 'sizes' must be an array of integers"))?
        .iter()
        .map(|v| {
            v.as_i64()
                .ok_or_else(|| ApiError::bad_request("field 'sizes' must be an array of integers"))
        })
        .collect::<Result<Vec<i64>, _>>()?;
    let inputs = match doc.get("inputs") {
        None | Some(Json::Null) => None,
        Some(v) => Some(
            v.as_arr()
                .ok_or_else(|| ApiError::bad_request("field 'inputs' must be an array of strings"))?
                .iter()
                .map(|x| {
                    x.as_str().map(str::to_string).ok_or_else(|| {
                        ApiError::bad_request("field 'inputs' must be an array of strings")
                    })
                })
                .collect::<Result<Vec<String>, _>>()?,
        ),
    };
    let batch = match mode_field(&doc, "batch")? {
        None | Some("auto") => BatchMode::Auto,
        Some("off") => BatchMode::Off,
        Some(other) => {
            return Err(ApiError::bad_request(format!(
                "unknown batch mode '{other}' (auto|off)"
            )))
        }
    };
    let opt = match mode_field(&doc, "opt")? {
        None | Some("auto") => OptMode::Auto,
        Some("off") => OptMode::Off,
        Some(other) => {
            return Err(ApiError::bad_request(format!(
                "unknown opt mode '{other}' (auto|off)"
            )))
        }
    };
    let wavefront = match mode_field(&doc, "wavefront")? {
        None | Some("auto") => WavefrontMode::Auto,
        Some("off") => WavefrontMode::Off,
        Some("par") => WavefrontMode::Par,
        Some(other) => {
            return Err(ApiError::bad_request(format!(
                "unknown wavefront mode '{other}' (auto|off|par)"
            )))
        }
    };
    let kernel = match mode_field(&doc, "kernel")? {
        None | Some("auto") => KernelMode::Auto,
        Some("off") => KernelMode::Off,
        Some(other) => {
            return Err(ApiError::bad_request(format!(
                "unknown kernel mode '{other}' (auto|off)"
            )))
        }
    };
    let executor = mode_field(&doc, "executor")?.unwrap_or("coop").to_string();
    if !matches!(executor.as_str(), "coop" | "threaded" | "partitioned") {
        return Err(ApiError::bad_request(format!(
            "unknown executor '{executor}' (coop|threaded|partitioned)"
        )));
    }
    let output = match mode_field(&doc, "output")? {
        None | Some("stores") => OutputKind::Stores,
        Some("metrics") => OutputKind::Metrics,
        Some("trace") => OutputKind::Trace,
        Some(other) => {
            return Err(ApiError::bad_request(format!(
                "unknown output '{other}' (stores|metrics|trace)"
            )))
        }
    };
    let schedule = match doc.get("schedule") {
        None | Some(Json::Null) => None,
        Some(s) => {
            let policy = s
                .get("policy")
                .and_then(|p| p.as_str())
                .ok_or_else(|| ApiError::bad_request("schedule.policy must be a string"))?;
            let seed = s.get("seed").and_then(|v| v.as_i64()).unwrap_or(0) as u64;
            Some((policy.to_string(), seed))
        }
    };
    Ok(RunRequest {
        program,
        sizes,
        seed: u64_field(&doc, "seed")?.unwrap_or(42),
        inputs,
        batch,
        opt,
        wavefront,
        kernel,
        executor,
        workers: u64_field(&doc, "workers")?.unwrap_or(2).max(1) as usize,
        deadline_ms: u64_field(&doc, "deadline_ms")?,
        output,
        verify: doc.get("verify").and_then(|v| v.as_bool()).unwrap_or(false),
        schedule,
    })
}

/// Render a completed run as the stores response.
pub fn render_stores(design: &str, executor: &str, run: &SystolicRun, verified: bool) -> String {
    let mut stores = Vec::new();
    for name in run.store.names() {
        let arr = run.store.get(name);
        let bounds = arr
            .bounds()
            .iter()
            .map(|&(lo, hi)| Json::Arr(vec![Json::Num(lo), Json::Num(hi)]))
            .collect();
        let values = arr.raw().iter().map(|&v| Json::Num(v)).collect();
        stores.push((
            name.to_string(),
            Json::Obj(vec![
                ("bounds".into(), Json::Arr(bounds)),
                ("values".into(), Json::Arr(values)),
            ]),
        ));
    }
    stores.sort_by(|a, b| a.0.cmp(&b.0));
    Json::Obj(vec![
        ("schema".into(), Json::Str(SCHEMA.into())),
        ("design".into(), Json::Str(design.into())),
        (
            "engine".into(),
            Json::Obj(vec![
                ("executor".into(), Json::Str(executor.into())),
                ("batched".into(), Json::Bool(run.batched)),
                ("wavefront".into(), Json::Bool(run.wavefront)),
                (
                    "kernels".into(),
                    Json::Bool(run.kernel.as_ref().is_some_and(|k| k.waves_fused > 0)),
                ),
                ("optimized".into(), Json::Bool(run.opt.is_some())),
            ]),
        ),
        (
            "stats".into(),
            Json::Obj(vec![
                ("rounds".into(), Json::Num(run.stats.rounds as i64)),
                ("messages".into(), Json::Num(run.stats.messages as i64)),
                ("steps".into(), Json::Num(run.stats.steps as i64)),
                ("processes".into(), Json::Num(run.stats.processes as i64)),
            ]),
        ),
        ("verified".into(), Json::Bool(verified)),
        ("stores".into(), Json::Obj(stores)),
    ])
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_design_request() {
        let r = parse_run_request(r#"{"design":"E.1","sizes":[8]}"#).unwrap();
        assert_eq!(r.program, ProgramRef::Design("E.1".into()));
        assert_eq!(r.sizes, vec![8]);
        assert_eq!(r.executor, "coop");
        assert_eq!(r.output, OutputKind::Stores);
        assert!(!r.verify);
    }

    #[test]
    fn rejects_junk_with_a_parse_error_kind() {
        let e = parse_run_request("{nope").unwrap_err();
        assert_eq!(e.status, 400);
        let j = e.to_json();
        assert!(j.contains("\"kind\":\"bad-request\""), "{j}");
    }

    #[test]
    fn deadlock_maps_to_422_with_offenders() {
        let e = ApiError::from_run_error(&RunError::Deadlock(systolic_runtime::Deadlock {
            blocked: vec!["a@(1) recv chan 3".into()],
        }));
        assert_eq!((e.status, e.kind), (422, "deadlock"));
        assert_eq!(e.offenders.len(), 1);
        assert!(e.to_json().contains("a@(1) recv chan 3"));
    }

    #[test]
    fn timeout_maps_to_504_with_the_scope() {
        let e = ApiError::from_run_error(&RunError::Timeout {
            scope: "process 3".into(),
        });
        assert_eq!((e.status, e.kind), (504, "timeout"));
        assert_eq!(e.offenders, vec!["process 3".to_string()]);
    }
}
