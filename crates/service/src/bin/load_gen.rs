//! Closed-loop load generator for the simulation service, and the
//! keeper of `BENCH_service.json` (the service counterpart of
//! `BENCH_simulate.json` — same labeled-snapshot scheme, same
//! regression gate).
//!
//! Boots a real server (`systolic_service::http::serve`) on a loopback
//! port and drives it over actual sockets. Two scenarios:
//!
//! - **warm-latency** — one client, matmul E.1 at n = 24, repeated
//!   requests against hot plan/module caches. Records end-to-end
//!   p50/p99; the acceptance bar is warm p50 under 10 ms. Since PR 10
//!   every warm response must also report `engine.kernels = true` — the
//!   default coop run takes the wavefront executor's compiled
//!   struct-of-arrays kernel path (see `docs/kernels.md`), so the warm
//!   percentiles measure the kernel fast path, not the scalar sweep.
//! - **saturation** — N closed-loop clients (default 1000) with a mixed
//!   design/executor/mode workload across the whole gallery, rotating
//!   `kernel: auto|off` so both wave execution strategies serve
//!   concurrently. The pool workers are plugged until every client has a
//!   request in flight, so the peak-concurrency claim is measured, not
//!   hoped for. Every response's stores are checked bit-for-bit against
//!   a locally precomputed sequential oracle — zero mismatches required,
//!   which pins the kernel path as observationally invisible end to end.
//!
//! Flags:
//! - `--quick`: CI smoke mode — small client counts, full correctness
//!   checks (oracle match, peak concurrency, structured stats), **no**
//!   wall-clock assertions and no `BENCH_service.json` write (CI
//!   runners are too noisy for timing gates; the precedent is
//!   `simulate_trajectory --quick`). Still parses an existing bench
//!   file so a corrupted checkin fails fast.
//! - `--clients N`, `--per-client R`, `--warm-requests K`: load shape.
//! - `--label L`: snapshot label (default `pr9-service`).
//! - `--gate-pct P`: regression gate — new p50/p99 more than `P`%
//!   (plus a scenario-sized slack) over the best prior snapshot fails
//!   the run and writes nothing.
//! - `--out PATH`: bench file path (default `BENCH_service.json`).
//! - `--artifact PATH`: also write the measured snapshot (alone, as a
//!   complete suite document) to `PATH` — the CI upload artifact.

use std::collections::HashMap;
use std::io::{Read, Write as _};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

use systolic_ir::seq;
use systolic_math::Env;
use systolic_service::{compile_design, http, Service, ServiceConfig};
use systolic_sim::json;

/// The gallery mix: DST-registry keys and sizes (small on purpose —
/// saturation measures the service, not the simulator).
const GALLERY: &[(&str, &[i64])] = &[
    ("D.1", &[4]),
    ("D.2", &[4]),
    ("E.1", &[3]),
    ("E.2", &[3]),
    ("fir", &[2, 5]),
];

/// Executor rotation for the saturation mix. Coop-heavy: it is the
/// default engine; the threaded/partitioned entries prove the pool
/// serves every engine concurrently.
const EXECUTORS: &[&str] = &["coop", "coop", "threaded", "coop", "partitioned"];

const SEEDS: &[u64] = &[42, 43, 44, 45, 46, 47, 48];

struct Config {
    quick: bool,
    clients: usize,
    per_client: usize,
    warm_requests: usize,
    label: String,
    gate_pct: f64,
    out: String,
    artifact: Option<String>,
}

fn parse_args() -> Config {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let quick = args.iter().any(|a| a == "--quick");
    Config {
        quick,
        clients: flag("--clients")
            .and_then(|v| v.parse().ok())
            .unwrap_or(if quick { 32 } else { 1000 }),
        per_client: flag("--per-client")
            .and_then(|v| v.parse().ok())
            .unwrap_or(if quick { 1 } else { 2 }),
        warm_requests: flag("--warm-requests")
            .and_then(|v| v.parse().ok())
            .unwrap_or(if quick { 10 } else { 50 }),
        label: flag("--label").unwrap_or_else(|| "pr10-kernels".into()),
        gate_pct: flag("--gate-pct").and_then(|v| v.parse().ok()).unwrap_or(25.0),
        out: flag("--out").unwrap_or_else(|| "BENCH_service.json".into()),
        artifact: flag("--artifact"),
    }
}

// ---------------------------------------------------------------------
// Minimal HTTP client (connection per request, `Connection: close`).

fn http_post(addr: std::net::SocketAddr, path: &str, body: &str) -> Result<(u16, String), String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .write_all(
            format!(
                "POST {path} HTTP/1.1\r\nHost: load-gen\r\nConnection: close\r\n\
                 Content-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .map_err(|e| format!("write: {e}"))?;
    read_response(&mut stream)
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> Result<(u16, String), String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: load-gen\r\nConnection: close\r\n\r\n")
                .as_bytes(),
        )
        .map_err(|e| format!("write: {e}"))?;
    read_response(&mut stream)
}

fn read_response(stream: &mut TcpStream) -> Result<(u16, String), String> {
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("read: {e}"))?;
    let text = String::from_utf8(raw).map_err(|_| "non-UTF-8 response".to_string())?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| "malformed response (no header break)".to_string())?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line: {head}"))?;
    Ok((status, body.to_string()))
}

// ---------------------------------------------------------------------
// Client-side sequential oracle.

/// Expected stores per `(design index, seed)`: every variable's raw
/// values after a sequential reference run, with inputs filled by the
/// same `fill_random(name, seed + i)` convention the service uses.
type Oracle = HashMap<(usize, u64), HashMap<String, Vec<i64>>>;

fn build_oracle() -> Oracle {
    let mut oracle = Oracle::new();
    for (di, (key, sizes)) in GALLERY.iter().enumerate() {
        let resolved = compile_design(key).expect("gallery design compiles");
        let mut env = Env::new();
        for (&v, &val) in resolved.plan.source.sizes.iter().zip(sizes.iter()) {
            env.bind(v, val);
        }
        let inputs: Vec<&str> = resolved.default_inputs.iter().map(|s| s.as_str()).collect();
        for &seed in SEEDS {
            let store = seq::run_random(&resolved.plan.source, &env, &inputs, seed);
            let expected: HashMap<String, Vec<i64>> = store
                .names()
                .map(|name| (name.to_string(), store.get(name).raw().to_vec()))
                .collect();
            oracle.insert((di, seed), expected);
        }
    }
    oracle
}

/// Compare a 200 response body against the oracle entry. Returns a
/// description of the first mismatch, if any.
fn check_stores(body: &str, expected: &HashMap<String, Vec<i64>>) -> Option<String> {
    let doc = match json::parse(body) {
        Ok(d) => d,
        Err(e) => return Some(format!("unparseable response body: {e}")),
    };
    let Some(stores) = doc.get("stores") else {
        return Some("response has no 'stores' field".into());
    };
    for (name, want) in expected {
        let Some(values) = stores.get(name).and_then(|s| s.get("values")) else {
            return Some(format!("response missing store '{name}'"));
        };
        let got: Vec<i64> = values
            .as_arr()
            .map(|a| a.iter().filter_map(|v| v.as_i64()).collect())
            .unwrap_or_default();
        if &got != want {
            return Some(format!(
                "store '{name}' diverges from the sequential oracle \
                 ({} values vs {} expected)",
                got.len(),
                want.len()
            ));
        }
    }
    None
}

/// Whether a 200 response's engine block reports the given flag set.
fn engine_flag(body: &str, key: &str) -> bool {
    json::parse(body)
        .ok()
        .as_ref()
        .and_then(|d| d.get("engine"))
        .and_then(|e| e.get(key))
        .and_then(|v| v.as_bool())
        .unwrap_or(false)
}

// ---------------------------------------------------------------------
// Scenarios.

struct ScenarioResult {
    scenario: &'static str,
    design: Option<(&'static str, i64)>,
    clients: usize,
    requests: usize,
    peak_in_flight: u64,
    mismatches: usize,
    p50_ms: f64,
    p99_ms: f64,
    req_per_s: f64,
}

fn percentile(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted_us.len() - 1) as f64).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)] as f64 / 1000.0
}

/// One client, matmul E.1 n = 24, hot caches. The acceptance criterion
/// lives here: warm p50 under 10 ms end-to-end.
fn warm_latency(
    addr: std::net::SocketAddr,
    cfg: &Config,
) -> ScenarioResult {
    let body = r#"{"design":"E.1","sizes":[24],"seed":42,"deadline_ms":60000}"#;
    // Warm-up: pays plan compilation + module elaboration once.
    let (status, warmup) = http_post(addr, "/v1/run", body).expect("warm-up request");
    assert_eq!(status, 200, "warm-up failed: {warmup}");

    // The warm oracle (n = 24 is not in the saturation mix).
    let resolved = compile_design("E.1").expect("E.1 compiles");
    let mut env = Env::new();
    for &v in resolved.plan.source.sizes.iter() {
        env.bind(v, 24);
    }
    let inputs: Vec<&str> = resolved.default_inputs.iter().map(|s| s.as_str()).collect();
    let oracle_store = seq::run_random(&resolved.plan.source, &env, &inputs, 42);
    let expected: HashMap<String, Vec<i64>> = oracle_store
        .names()
        .map(|name| (name.to_string(), oracle_store.get(name).raw().to_vec()))
        .collect();

    let mut latencies_us = Vec::with_capacity(cfg.warm_requests);
    let mut mismatches = 0usize;
    let start = Instant::now();
    for _ in 0..cfg.warm_requests {
        let t0 = Instant::now();
        let (status, resp) = http_post(addr, "/v1/run", body).expect("warm request");
        latencies_us.push(t0.elapsed().as_micros() as u64);
        if status != 200 {
            mismatches += 1;
            eprintln!("warm-latency: non-200 ({status}): {resp}");
        } else if let Some(why) = check_stores(&resp, &expected) {
            mismatches += 1;
            eprintln!("warm-latency: {why}");
        } else if !engine_flag(&resp, "kernels") {
            // The warm percentiles are a claim about the kernel fast
            // path; a silent fall-back to the scalar sweep would keep
            // the stores right but invalidate the measurement.
            mismatches += 1;
            eprintln!("warm-latency: engine did not engage the wave kernels");
        }
    }
    let wall = start.elapsed().as_secs_f64();
    latencies_us.sort_unstable();
    ScenarioResult {
        scenario: "warm-latency",
        design: Some(("E.1", 24)),
        clients: 1,
        requests: cfg.warm_requests,
        peak_in_flight: 1,
        mismatches,
        p50_ms: percentile(&latencies_us, 50.0),
        p99_ms: percentile(&latencies_us, 99.0),
        req_per_s: cfg.warm_requests as f64 / wall.max(1e-9),
    }
}

/// N closed-loop clients over the gallery mix. The pool workers are
/// plugged until every client has a request in flight, so the reported
/// peak concurrency is exact; then the plug is pulled and the queue
/// drains under measurement.
fn saturation(
    svc: &Arc<Service>,
    addr: std::net::SocketAddr,
    oracle: &Arc<Oracle>,
    cfg: &Config,
) -> ScenarioResult {
    let clients = cfg.clients;
    let per_client = cfg.per_client.max(1);

    // Plug every worker: jobs that block until released. Requests
    // submitted meanwhile queue up behind them — that is what lets N
    // clients be simultaneously in flight on a small box.
    let mut plugs = Vec::new();
    for _ in 0..svc.pool.n_workers {
        let (gate_tx, gate_rx) = sync_channel::<()>(0);
        let rx = svc
            .pool
            .submit(Box::new(move || {
                let _ = gate_rx.recv();
                (200, "plug".into())
            }))
            .expect("plug submission");
        plugs.push((gate_tx, rx));
    }

    let barrier = Arc::new(Barrier::new(clients));
    let in_flight = Arc::new(AtomicU64::new(0));
    let peak = Arc::new(AtomicU64::new(0));
    let failures: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let all_latencies: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));

    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|ci| {
            let barrier = Arc::clone(&barrier);
            let in_flight = Arc::clone(&in_flight);
            let peak = Arc::clone(&peak);
            let failures = Arc::clone(&failures);
            let all_latencies = Arc::clone(&all_latencies);
            let oracle = Arc::clone(oracle);
            std::thread::Builder::new()
                .name(format!("client-{ci}"))
                .stack_size(256 * 1024)
                .spawn(move || {
                    barrier.wait();
                    let mut local_lat = Vec::with_capacity(per_client);
                    for r in 0..per_client {
                        let idx = ci + r * 7919; // co-prime stride mixes the gallery
                        let di = idx % GALLERY.len();
                        let (design, sizes) = GALLERY[di];
                        let seed = SEEDS[idx % SEEDS.len()];
                        let executor = EXECUTORS[idx % EXECUTORS.len()];
                        let verify = idx % 7 == 0;
                        // Alternate the wave execution strategy: the
                        // oracle check below holds bit-for-bit on both,
                        // served interleaved from the same module cache.
                        let kernel = if idx % 2 == 0 { "auto" } else { "off" };
                        let sizes_json: Vec<String> =
                            sizes.iter().map(|s| s.to_string()).collect();
                        let body = format!(
                            "{{\"design\":\"{design}\",\"sizes\":[{}],\"seed\":{seed},\
                             \"executor\":\"{executor}\",\"verify\":{verify},\
                             \"kernel\":\"{kernel}\",\"deadline_ms\":60000}}",
                            sizes_json.join(",")
                        );
                        let t0 = Instant::now();
                        let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(now, Ordering::SeqCst);
                        let result = http_post(addr, "/v1/run", &body);
                        in_flight.fetch_sub(1, Ordering::SeqCst);
                        local_lat.push(t0.elapsed().as_micros() as u64);
                        let fail = match &result {
                            Err(e) => Some(format!("client {ci}: transport: {e}")),
                            Ok((200, resp)) => check_stores(resp, &oracle[&(di, seed)])
                                .map(|why| format!("client {ci} ({design}): {why}")),
                            Ok((status, resp)) => Some(format!(
                                "client {ci} ({design}): HTTP {status}: {resp}"
                            )),
                        };
                        if let Some(f) = fail {
                            let mut g = failures.lock().unwrap();
                            if g.len() < 10 {
                                g.push(f);
                            } else {
                                g.push("...".into());
                            }
                        }
                    }
                    all_latencies.lock().unwrap().extend(local_lat);
                })
                .expect("spawn client")
        })
        .collect();

    // Pull the plug only once every client is provably in flight.
    let plug_deadline = Instant::now() + Duration::from_secs(120);
    while in_flight.load(Ordering::SeqCst) < clients as u64 {
        assert!(
            Instant::now() < plug_deadline,
            "clients never all got in flight ({} of {clients})",
            in_flight.load(Ordering::SeqCst)
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    let drain_start = Instant::now();
    for (gate_tx, rx) in plugs {
        let _ = gate_tx.send(());
        let _ = rx.recv();
    }
    for h in handles {
        h.join().expect("client thread");
    }
    let drain_wall = drain_start.elapsed().as_secs_f64();
    let _total_wall = start.elapsed().as_secs_f64();

    let failures = Arc::try_unwrap(failures).unwrap().into_inner().unwrap();
    let mut latencies = Arc::try_unwrap(all_latencies).unwrap().into_inner().unwrap();
    latencies.sort_unstable();
    let total_requests = clients * per_client;

    for f in &failures {
        eprintln!("saturation failure: {f}");
    }
    ScenarioResult {
        scenario: "saturation",
        design: None,
        clients,
        requests: total_requests,
        peak_in_flight: peak.load(Ordering::SeqCst),
        mismatches: failures.len(),
        p50_ms: percentile(&latencies, 50.0),
        p99_ms: percentile(&latencies, 99.0),
        req_per_s: total_requests as f64 / drain_wall.max(1e-9),
    }
}

// ---------------------------------------------------------------------
// Bench file: labeled snapshots + regression gate (the
// `BENCH_simulate.json` scheme, per-scenario keys).

struct Prior {
    scenario: String,
    p50_ms: f64,
    p99_ms: f64,
}

fn prior_best(old: &str) -> Vec<Prior> {
    let mut best: Vec<Prior> = Vec::new();
    for line in old.lines() {
        let Some(s0) = line.find("\"scenario\": \"") else {
            continue;
        };
        let rest = &line[s0 + 13..];
        let Some(s1) = rest.find('"') else { continue };
        let scenario = rest[..s1].to_string();
        let field = |name: &str| -> Option<f64> {
            let i = line.find(name)? + name.len();
            let tail = &line[i..];
            let end = tail
                .find(|ch: char| !(ch.is_ascii_digit() || ch == '.' || ch == '-'))
                .unwrap_or(tail.len());
            tail[..end].parse().ok()
        };
        let (Some(p50), Some(p99)) = (field("\"p50_ms\": "), field("\"p99_ms\": ")) else {
            continue;
        };
        match best.iter_mut().find(|p| p.scenario == scenario) {
            Some(p) => {
                p.p50_ms = p.p50_ms.min(p50);
                p.p99_ms = p.p99_ms.min(p99);
            }
            None => best.push(Prior {
                scenario,
                p50_ms: p50,
                p99_ms: p99,
            }),
        }
    }
    best
}

fn entry_json(e: &ScenarioResult) -> String {
    let design = match e.design {
        Some((d, n)) => format!("\"design\": \"{d}\", \"n\": {n}, "),
        None => String::new(),
    };
    format!(
        "      {{\"scenario\": \"{}\", {design}\"clients\": {}, \"requests\": {}, \
         \"peak_in_flight\": {}, \"mismatches\": {}, \"p50_ms\": {:.3}, \
         \"p99_ms\": {:.3}, \"req_per_s\": {:.1}}}",
        e.scenario, e.clients, e.requests, e.peak_in_flight, e.mismatches, e.p50_ms,
        e.p99_ms, e.req_per_s
    )
}

fn snapshot_json(label: &str, entries: &[ScenarioResult]) -> String {
    let mut snapshot = format!("    {{\"label\": \"{label}\", \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        snapshot.push_str(&entry_json(e));
        snapshot.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    snapshot.push_str("    ]}");
    snapshot
}

fn write_bench(cfg: &Config, entries: &[ScenarioResult]) {
    let path = std::path::Path::new(&cfg.out);
    let old = std::fs::read_to_string(path).unwrap_or_default();

    // Regression gate: latency percentiles vs the best prior snapshot.
    // The saturation slack is large — its latencies are queueing time by
    // design and scale with --clients.
    let mut violations = Vec::new();
    for e in entries {
        let Some(p) = prior_best(&old).into_iter().find(|p| p.scenario == e.scenario)
        else {
            continue;
        };
        let slack_ms = if e.scenario == "saturation" { 250.0 } else { 5.0 };
        let mut check = |what: &str, new: f64, best: f64| {
            let limit = best * (1.0 + cfg.gate_pct / 100.0) + slack_ms;
            if new > limit {
                violations.push(format!(
                    "{} {what}: {new:.3} ms vs best prior {best:.3} ms \
                     (limit {limit:.3} ms at {}% + {slack_ms} ms slack)",
                    e.scenario, cfg.gate_pct
                ));
            }
        };
        check("p50", e.p50_ms, p.p50_ms);
        check("p99", e.p99_ms, p.p99_ms);
    }
    if !violations.is_empty() {
        eprintln!("REGRESSION GATE FAILED — nothing written:");
        for v in &violations {
            eprintln!("  {v}");
        }
        std::process::exit(1);
    }

    let snapshot = snapshot_json(&cfg.label, entries);
    let json = if old.contains("\"snapshots\"") {
        let cut = old.rfind("\n  ]\n}").expect("well-formed snapshot file");
        format!("{},\n{snapshot}\n  ]\n}}\n", &old[..cut])
    } else {
        format!("{{\n  \"suite\": \"service\",\n  \"snapshots\": [\n{snapshot}\n  ]\n}}\n")
    };
    std::fs::write(path, json).expect("write BENCH_service.json");
    println!("wrote {} (snapshot \"{}\")", path.display(), cfg.label);
}

fn main() {
    let cfg = parse_args();

    // The server under test: in-process, real sockets. A queue deeper
    // than the client count keeps backpressure out of the saturation
    // measurement (the 429 path has its own tests).
    let service = Service::new(ServiceConfig {
        queue_cap: cfg.clients + 64,
        max_deadline_ms: 120_000,
        ..ServiceConfig::default()
    });
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let server = http::serve(Arc::clone(&service), listener).expect("serve");
    let addr = server.addr;
    println!(
        "serving on {addr} ({} workers, queue {})",
        service.pool.n_workers, service.pool.queue_cap
    );

    let oracle = Arc::new(build_oracle());
    println!("oracle ready: {} (design, seed) configurations", oracle.len());

    let warm = warm_latency(addr, &cfg);
    println!(
        "warm-latency: {} requests, p50 {:.3} ms, p99 {:.3} ms, {:.1} req/s, \
         {} mismatches",
        warm.requests, warm.p50_ms, warm.p99_ms, warm.req_per_s, warm.mismatches
    );

    let sat = saturation(&service, addr, &oracle, &cfg);
    println!(
        "saturation: {} clients x {} requests, peak {} in flight, p50 {:.1} ms, \
         p99 {:.1} ms, {:.1} req/s, {} failures",
        sat.clients,
        sat.requests / sat.clients.max(1),
        sat.peak_in_flight,
        sat.p50_ms,
        sat.p99_ms,
        sat.req_per_s,
        sat.mismatches
    );

    // Server-side accounting must agree: nothing rejected (the queue was
    // sized for the load), nothing panicked, caches actually shared.
    let (status, stats) = http_get(addr, "/stats").expect("stats");
    assert_eq!(status, 200, "stats failed: {stats}");
    let doc = json::parse(&stats).expect("stats parses");
    let pool = doc.get("pool").expect("pool stats");
    let num = |k: &str| pool.get(k).and_then(|v| v.as_i64()).unwrap_or(-1);
    assert_eq!(num("rejected"), 0, "unexpected 429s under a sized queue: {stats}");
    assert_eq!(num("panics"), 0, "worker panics under load: {stats}");
    let hits = doc
        .get("elab_cache")
        .and_then(|c| c.get("module_hits"))
        .and_then(|v| v.as_i64())
        .unwrap_or(0);
    println!("server stats OK: rejected=0 panics=0 module_hits={hits}");

    // Correctness bars hold in every mode.
    assert_eq!(warm.mismatches, 0, "warm-latency store mismatches");
    assert_eq!(sat.mismatches, 0, "saturation failures (see stderr)");
    assert!(
        sat.peak_in_flight >= cfg.clients as u64,
        "never reached {} concurrent in-flight requests (peak {})",
        cfg.clients,
        sat.peak_in_flight
    );
    assert!(hits > 0, "module cache never shared across requests");

    let entries = [warm, sat];
    if cfg.quick {
        // No wall-clock assertions and no bench write in CI — but a
        // corrupted checked-in bench file must still fail fast.
        let old = std::fs::read_to_string(&cfg.out).unwrap_or_default();
        if !old.is_empty() {
            assert!(
                !prior_best(&old).is_empty(),
                "{} exists but holds no parseable entries",
                cfg.out
            );
            println!("{}: prior snapshots parse OK", cfg.out);
        }
        println!(
            "quick smoke OK: zero mismatches, peak {} in flight",
            entries[1].peak_in_flight
        );
    } else {
        assert!(
            entries[0].p50_ms < 10.0,
            "warm-cache p50 for matmul E.1 n=24 must stay under 10 ms \
             end-to-end (got {:.3} ms)",
            entries[0].p50_ms
        );
        write_bench(&cfg, &entries);
    }

    if let Some(artifact) = &cfg.artifact {
        let doc = format!(
            "{{\n  \"suite\": \"service\",\n  \"snapshots\": [\n{}\n  ]\n}}\n",
            snapshot_json(&cfg.label, &entries)
        );
        std::fs::write(artifact, doc).expect("write artifact");
        println!("wrote {artifact}");
    }

    server.shutdown();
}
